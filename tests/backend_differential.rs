//! Cross-backend differential conformance suite — DESIGN.md §12.
//!
//! Every registered backend pair is compared over a generated matrix of
//! workloads (signal sizes × sparsities × SNRs × fault seeds):
//!
//! 1. **Served = direct** — all three backends declare
//!    `exact_vs_direct`, so serving a request through [`ServeEngine`]
//!    must return a spectrum **bit-identical** to building the plan and
//!    driving `prepare`/`run_batched_ffts`/`finish` on a fresh device.
//! 2. **Per-backend determinism** — for each backend, outcomes
//!    (spectra included), fault tallies and grouping are bit-identical
//!    across serve worker counts {1, 2, 4}, and a rerun of the same
//!    configuration reproduces the whole report, merged timeline
//!    included, bit for bit (the timeline itself is a function of the
//!    worker count: each worker owns a private stream family).
//! 3. **Cross-backend agreement** — the two sFFT backends (gpu-sim and
//!    CPU reference) recover the same large coefficients to ≤ 1e-6,
//!    and both stay within the documented residual bound
//!    ([`cusfft::BackendCaps::oracle_bound`]) of the dense-FFT oracle,
//!    whose own top-k is exact (bound 0.0) against the generated truth.
//! 4. **Fault re-routing is backend selection** — under an injected
//!    fault plan (seed honours `CUSFFT_FAULT_SEED`, like the rest of
//!    the fault suite), every response that stayed on a GPU path is
//!    bit-identical to the fault-free serve, and outcomes and tallies
//!    are invariant under worker count.

use std::sync::Arc;

use cusfft::{
    execute_direct, BackendKind, BackendRegistry, PlanKey, ServeConfig, ServeEngine, ServePath,
    ServeQos, ServeReport, ServeRequest, Variant,
};
use fft::Cplx;
use gpu_sim::{DeviceSpec, FaultConfig, GpuDevice};
use signal::{add_awgn, SparseSignal};

/// Fault seed under test; CI sweeps this via the environment.
fn fault_seed() -> u64 {
    std::env::var("CUSFFT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// One workload cell of the conformance matrix.
struct Case {
    n: usize,
    k: usize,
    snr_db: Option<f64>,
    signal: SparseSignal,
    /// The time samples actually served (noisy when `snr_db` is set).
    time: Vec<Cplx>,
    seed: u64,
}

/// Sizes {2^9, 2^10, 2^11} × sparsities {4, 8} × SNR {clean, 30 dB}.
fn matrix() -> Vec<Case> {
    let mut cases = Vec::new();
    for (ci, &n) in [1usize << 9, 1 << 10, 1 << 11].iter().enumerate() {
        for &k in &[4usize, 8] {
            for &snr_db in &[None, Some(30.0)] {
                let sig_seed = 9000 + (cases.len() as u64) * 37;
                let signal = SparseSignal::generate(n, k, signal::MagnitudeModel::Unit, sig_seed);
                let mut time = signal.time.clone();
                if let Some(snr) = snr_db {
                    add_awgn(&mut time, snr, sig_seed ^ 0x5eed);
                }
                cases.push(Case {
                    n,
                    k,
                    snr_db,
                    signal,
                    time,
                    seed: 100 + ci as u64 * 13 + cases.len() as u64,
                });
            }
        }
    }
    cases
}

fn requests_for(cases: &[Case], backend: BackendKind) -> Vec<ServeRequest> {
    cases
        .iter()
        .map(|c| {
            ServeRequest::new(c.time.clone(), c.k, Variant::Optimized, c.seed)
                .with_backend(backend)
        })
        .collect()
}

/// Serves `reqs` on a fresh engine (fresh plan cache, fresh home device).
fn serve(reqs: &[ServeRequest], workers: usize, faults: Option<FaultConfig>) -> ServeReport {
    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers,
            cache_capacity: 16,
            faults,
            ..ServeConfig::default()
        },
    ).expect("serve config is valid");
    engine.serve_batch(reqs)
}

/// Worker-count-invariant report slice: outcomes (spectra included),
/// fault tallies and grouping. The merged timeline is *not* compared —
/// it is a function of the worker count, since each worker owns a
/// private stream family.
fn assert_outcomes_identical(a: &ServeReport, b: &ServeReport, what: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{what}: outcomes");
    assert_eq!(a.faults, b.faults, "{what}: fault tally");
    assert_eq!(a.group_info, b.group_info, "{what}: grouping");
}

/// Full bit-level report equality for reruns of one configuration:
/// everything above plus the merged-timeline makespan and the
/// concurrency profile.
fn assert_reports_identical(a: &ServeReport, b: &ServeReport, what: &str) {
    assert_outcomes_identical(a, b, what);
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{what}: makespan"
    );
    assert_eq!(a.concurrency, b.concurrency, "{what}: concurrency");
}

/// Coefficients the cross-backend comparison treats as load-bearing.
fn large(rec: &[(usize, Cplx)]) -> Vec<(usize, Cplx)> {
    let mut v: Vec<(usize, Cplx)> = rec.iter().copied().filter(|(_, c)| c.abs() > 0.5).collect();
    v.sort_by_key(|&(f, _)| f);
    v
}

#[test]
fn default_registry_serves_all_three_backends() {
    let registry = BackendRegistry::with_defaults();
    for kind in BackendKind::all() {
        let backend = registry
            .get(kind)
            .unwrap_or_else(|| panic!("{} must be registered by default", kind.label()));
        let caps = backend.capabilities();
        assert_eq!(caps.kind, kind);
        assert!(
            caps.exact_vs_direct,
            "{}: every shipped backend serves bit-identically to direct execution",
            kind.label()
        );
    }
    // The oracle is exact by definition; the sFFT tiers carry the
    // documented residual bound.
    assert_eq!(
        registry
            .get(BackendKind::DenseFft)
            .unwrap()
            .capabilities()
            .oracle_bound,
        0.0
    );
    for kind in [BackendKind::GpuSim, BackendKind::SfftCpu] {
        assert!(registry.get(kind).unwrap().capabilities().oracle_bound > 0.0);
    }
}

/// Contract 1: for every backend, every served spectrum is bit-identical
/// to direct plan execution on a fresh device (`exact_vs_direct`).
#[test]
fn served_spectra_are_bit_identical_to_direct_execution() {
    let cases = matrix();
    let spec = DeviceSpec::tesla_k20x();
    let registry = BackendRegistry::with_defaults();
    let home = Arc::new(GpuDevice::new(spec.clone()));
    for kind in BackendKind::all() {
        let reqs = requests_for(&cases, kind);
        let report = serve(&reqs, 2, None);
        for (i, (req, outcome)) in reqs.iter().zip(&report.outcomes).enumerate() {
            let resp = outcome
                .response()
                .unwrap_or_else(|| panic!("{}: request {i} completes", kind.label()));
            assert_eq!(resp.backend, kind, "{}: request {i} backend", kind.label());
            assert_eq!(resp.qos, ServeQos::Full);
            let plan = registry
                .get(kind)
                .unwrap()
                .build_plan(&home, req.plan_key());
            let direct = execute_direct(plan.as_ref(), &spec, &req.time, req.seed)
                .unwrap_or_else(|e| panic!("{}: direct execution of {i}: {e}", kind.label()));
            assert_eq!(
                resp.recovered, direct,
                "{}: request {i} served vs direct spectra",
                kind.label()
            );
        }
    }
}

/// Contract 2: per-backend outcomes/faults/grouping are bit-identical
/// across worker counts {1, 2, 4} (fresh engine each time), and a rerun
/// at a fixed worker count reproduces the whole report — merged
/// timeline included — bit for bit.
#[test]
fn per_backend_reports_are_worker_count_invariant() {
    let cases = matrix();
    for kind in BackendKind::all() {
        let reqs = requests_for(&cases, kind);
        let reference = serve(&reqs, 1, None);
        for workers in [2usize, 4] {
            let report = serve(&reqs, workers, None);
            assert_outcomes_identical(
                &report,
                &reference,
                &format!("{} workers={workers}", kind.label()),
            );
            let rerun = serve(&reqs, workers, None);
            assert_reports_identical(
                &rerun,
                &report,
                &format!("{} workers={workers} rerun", kind.label()),
            );
        }
    }
}

/// Contract 3: cross-backend agreement over the matrix. The dense
/// oracle's top-k equals the generated truth; the two sFFT backends
/// agree with each other to 1e-6 on large coefficients and sit within
/// their documented `oracle_bound` of the oracle's values.
#[test]
fn backends_agree_within_documented_residual_bounds() {
    let cases = matrix();
    let registry = BackendRegistry::with_defaults();
    let gpu = serve(&requests_for(&cases, BackendKind::GpuSim), 2, None);
    let cpu = serve(&requests_for(&cases, BackendKind::SfftCpu), 2, None);
    let dense = serve(&requests_for(&cases, BackendKind::DenseFft), 2, None);
    let sfft_bound = registry
        .get(BackendKind::GpuSim)
        .unwrap()
        .capabilities()
        .oracle_bound;

    for (i, case) in cases.iter().enumerate() {
        let what = format!(
            "case {i} (n={}, k={}, snr={:?})",
            case.n, case.k, case.snr_db
        );
        let g = &gpu.outcomes[i].response().expect("gpu completes").recovered;
        let c = &cpu.outcomes[i].response().expect("cpu completes").recovered;
        let d = &dense.outcomes[i]
            .response()
            .expect("dense completes")
            .recovered;

        // The oracle recovers the exact truth support; on clean signals
        // its values match the planted coefficients to float round-off.
        let truth: Vec<usize> = case.signal.coords.iter().map(|&(f, _)| f).collect();
        let oracle_support: Vec<usize> = d.iter().map(|&(f, _)| f).collect();
        assert_eq!(oracle_support, truth, "{what}: oracle support");
        if case.snr_db.is_none() {
            for (&(f, est), &(_, v)) in d.iter().zip(&case.signal.coords) {
                assert!(
                    est.dist(v) < 1e-9,
                    "{what}: oracle f={f}: {est:?} vs planted {v:?}"
                );
            }
        }

        // gpu-sim and the CPU reference run the same algorithm: on
        // clean signals they recover the same large support with
        // values within 1e-6. Under noise, marginal coefficients near
        // the 0.5 cut can fall on different sides for the two
        // implementations, so the comparison is over the common large
        // support — which must still cover most of the truth.
        let gl = large(g);
        let cl = large(c);
        if case.snr_db.is_none() {
            assert_eq!(
                gl.iter().map(|&(f, _)| f).collect::<Vec<_>>(),
                cl.iter().map(|&(f, _)| f).collect::<Vec<_>>(),
                "{what}: gpu vs cpu large support"
            );
        }
        let mut common = 0usize;
        for &(f, gv) in &gl {
            if let Some(&(_, cv)) = cl.iter().find(|&&(cf, _)| cf == f) {
                common += 1;
                assert!(
                    gv.dist(cv) < 1e-6,
                    "{what}: f={f}: gpu {gv:?} vs cpu {cv:?}"
                );
            }
        }
        assert!(
            common * 2 >= case.k,
            "{what}: gpu and cpu agree on only {common} of {} coefficients",
            case.k
        );

        // Both sFFT recoveries stay within the documented residual
        // bound of the oracle. On clean cells the recovery covers the
        // whole oracle support and the per-coefficient ℓ1 honours
        // `oracle_bound`; on noisy cells marginal coefficients may be
        // missed entirely, so coverage and value error are bounded
        // separately (value error relaxed to the noise floor).
        for rec in [g, c] {
            let mut hit_err = 0.0;
            let mut hits = 0usize;
            for &(f, dv) in d {
                if let Some(&(_, v)) = rec.iter().find(|&&(rf, _)| rf == f) {
                    hits += 1;
                    hit_err += v.dist(dv);
                }
            }
            match case.snr_db {
                None => {
                    assert_eq!(hits, d.len(), "{what}: clean recovery covers the oracle");
                    let per_coeff = hit_err / d.len() as f64;
                    assert!(
                        per_coeff <= sfft_bound,
                        "{what}: per-coeff ℓ1 {per_coeff} exceeds bound {sfft_bound}"
                    );
                }
                Some(_) => {
                    assert!(
                        hits * 2 >= case.k,
                        "{what}: noisy recovery found only {hits}/{}",
                        case.k
                    );
                    let per_hit = hit_err / hits as f64;
                    assert!(
                        per_hit <= 0.2,
                        "{what}: per-recovered-coeff error {per_hit} exceeds noise floor"
                    );
                }
            }
        }
    }
}

/// A mixed batch naming all three backends in one serve call: requests
/// group per backend, every response reports the backend that executed
/// it, and each spectrum matches the corresponding single-backend serve.
#[test]
fn mixed_backend_batch_routes_each_request_correctly() {
    let cases = matrix();
    let kinds = BackendKind::all();
    let mixed: Vec<ServeRequest> = cases
        .iter()
        .enumerate()
        .map(|(i, c)| {
            ServeRequest::new(c.time.clone(), c.k, Variant::Optimized, c.seed)
                .with_backend(kinds[i % kinds.len()])
        })
        .collect();
    let report = serve(&mixed, 4, None);

    let per_backend: Vec<ServeReport> = kinds
        .iter()
        .map(|&kind| serve(&requests_for(&cases, kind), 2, None))
        .collect();

    for (i, (req, outcome)) in mixed.iter().zip(&report.outcomes).enumerate() {
        let resp = outcome.response().expect("mixed batch completes");
        assert_eq!(resp.backend, req.backend, "request {i} names its backend");
        let solo = per_backend[i % kinds.len()].outcomes[i]
            .response()
            .expect("single-backend serve completes");
        assert_eq!(
            resp.recovered, solo.recovered,
            "request {i}: mixed-batch spectrum must equal the single-backend serve"
        );
    }
    // Grouping respects the backend dimension of the plan key.
    for g in &report.group_info {
        let PlanKey { backend, .. } = g.key;
        for &idx in &g.indices {
            assert_eq!(mixed[idx].backend, backend, "group {} member {idx}", g.gid);
        }
    }
}

/// Contract 4: under injected faults, responses that stayed on a GPU
/// path are bit-identical to the fault-free serve (recovery is
/// invisible), re-routed ones report the `SfftCpu` backend, and the
/// whole report is invariant under worker count.
#[test]
fn faulty_serving_is_worker_invariant_and_gpu_paths_match_fault_free() {
    let cases = matrix();
    let reqs = requests_for(&cases, BackendKind::GpuSim);
    let fc = FaultConfig::uniform(fault_seed(), 0.02);
    let clean = serve(&reqs, 1, None);
    let reference = serve(&reqs, 1, Some(fc));

    for (i, (c, f)) in clean.outcomes.iter().zip(&reference.outcomes).enumerate() {
        let c = c.response().expect("fault-free serving completes");
        let f = f.response().expect("recovery completes every request");
        if f.path == ServePath::Cpu {
            assert_eq!(
                f.backend,
                BackendKind::SfftCpu,
                "request {i}: fault re-route is ordinary backend selection"
            );
        } else {
            assert_eq!(f.backend, BackendKind::GpuSim, "request {i}");
            assert_eq!(c.recovered, f.recovered, "request {i}: recovery is invisible");
        }
    }
    for workers in [2usize, 4] {
        let report = serve(&reqs, workers, Some(fc));
        assert_outcomes_identical(
            &report,
            &reference,
            &format!("faulty workers={workers} seed={}", fault_seed()),
        );
        let rerun = serve(&reqs, workers, Some(fc));
        assert_reports_identical(
            &rerun,
            &report,
            &format!("faulty workers={workers} rerun seed={}", fault_seed()),
        );
    }
}
