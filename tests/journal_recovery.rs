//! Crash-consistency tests for the journaled serving path — DESIGN.md
//! §15.
//!
//! The headline contract: **kill-at-any-epoch + resume equals the
//! uninterrupted run, exactly.** For every crash epoch in a sweep, a run
//! killed there and restarted from its durable journal produces a final
//! outcome vector bit-identical to the run that was never interrupted —
//! across worker counts and fault seeds, with zero requests lost and
//! zero double-completed. Supporting contracts: the journaled path is
//! outcome-identical to `serve_batch`, the journal's durable prefix
//! round-trips through bytes and disk, a crash discards exactly the
//! unflushed tail, and corrupt/mismatched journals are refused typed.
//!
//! The fault seed honours `CUSFFT_FAULT_SEED` so CI can sweep a matrix
//! of seeds over the same assertions.

use cusfft::journal::plan_group_count;
use cusfft::{
    CusFftError, Journal, JournalOptions, ServeConfig, ServeEngine, ServeRequest,
    Variant,
};
use gpu_sim::{CrashPlan, DeviceSpec, FaultConfig};
use signal::{MagnitudeModel, SparseSignal};

/// Fault seed under test; CI sweeps this via the environment.
fn fault_seed() -> u64 {
    std::env::var("CUSFFT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A mixed-geometry batch spanning several plan groups and both tiers.
fn batch(len: usize) -> Vec<ServeRequest> {
    let geometries = [
        (1 << 10, 4, Variant::Optimized),
        (1 << 11, 8, Variant::Optimized),
        (1 << 10, 4, Variant::Baseline),
        (1 << 9, 4, Variant::Optimized),
    ];
    (0..len)
        .map(|i| {
            let (n, k, variant) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 4000 + i as u64);
            ServeRequest::new(s.time, k, variant, 13 * i as u64 + 5)
        })
        .collect()
}

fn engine(workers: usize, faults: Option<FaultConfig>) -> ServeEngine {
    ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers,
            faults,
            ..ServeConfig::default()
        },
    )
    .expect("serve config is valid")
}

/// The headline acceptance sweep: for every crash epoch, kill + resume
/// must reproduce the uninterrupted outcomes exactly, for worker counts
/// {1, 2, 4} × fault seeds {base, base+6}, with nothing lost and
/// nothing double-completed.
#[test]
fn crash_at_every_epoch_then_resume_is_invisible() {
    let requests = batch(8);
    for seed in [fault_seed(), fault_seed() + 6] {
        let faults = Some(FaultConfig::uniform(seed, 0.05));
        for workers in [1usize, 2, 4] {
            let opts = JournalOptions {
                epoch_groups: 1,
                crash: CrashPlan::never(),
            };
            let reference = engine(workers, faults)
                .serve_journaled(&requests, &mut Journal::new(), &opts)
                .into_report()
                .expect("unarmed run completes");
            let epochs = plan_group_count(&engine(workers, faults), &requests) as u64;
            assert!(epochs >= 2, "sweep needs multiple epochs to be meaningful");

            for crash_epoch in 0..epochs {
                let mut journal = Journal::new();
                let crash_opts = JournalOptions {
                    epoch_groups: 1,
                    crash: CrashPlan::at_epoch(crash_epoch),
                };
                let crash = engine(workers, faults)
                    .serve_journaled(&requests, &mut journal, &crash_opts)
                    .into_report()
                    .expect_err("armed crash fires inside the run");
                assert_eq!(crash.epoch, crash_epoch);
                assert!(
                    crash.durable_done < requests.len(),
                    "a crash mid-run must leave unfinished requests"
                );

                let resumed = engine(workers, faults)
                    .resume_from(&requests, &mut journal, &opts)
                    .expect("durable journal is valid")
                    .into_report()
                    .expect("resume completes");

                // Exactly-once: the full outcome vector — responses,
                // errors, attempt counts — is bit-identical to the
                // uninterrupted run. Equal length rules out losses;
                // exact per-index equality rules out double-completion
                // and any visible recovery artifact.
                assert_eq!(
                    resumed.outcomes, reference.outcomes,
                    "crash at epoch {crash_epoch} (workers={workers}, seed={seed}) \
                     changed the final outcomes"
                );
                let tally = resumed.journal.expect("resumed runs carry the tally");
                assert_eq!(
                    tally.groups_recovered, crash_epoch,
                    "exactly the checkpointed epochs must restore from the journal"
                );
                assert!(tally.groups_executed > 0, "the lost epoch must re-execute");
            }
        }
    }
}

/// The journaled path is outcome-identical to `serve_batch`, across
/// epoch granularities — checkpoint cadence must never shift a fault
/// scope.
#[test]
fn journaling_never_changes_outcomes() {
    let requests = batch(7);
    let faults = Some(FaultConfig::uniform(fault_seed(), 0.1));
    let plain = engine(2, faults).serve_batch(&requests);
    for epoch_groups in [1usize, 2, 3] {
        let opts = JournalOptions {
            epoch_groups,
            crash: CrashPlan::never(),
        };
        let journaled = engine(2, faults)
            .serve_journaled(&requests, &mut Journal::new(), &opts)
            .into_report()
            .expect("completes");
        assert_eq!(
            journaled.outcomes, plain.outcomes,
            "epoch_groups={epoch_groups} changed outcomes vs serve_batch"
        );
        assert_eq!(journaled.faults, plain.faults);
    }
}

/// The crashed journal survives a real round trip to disk: save the
/// durable prefix, load it in a "new process", resume from the loaded
/// copy — same guarantee.
#[test]
fn recovery_survives_a_disk_round_trip() {
    let requests = batch(6);
    let faults = Some(FaultConfig::uniform(fault_seed(), 0.05));
    let opts = JournalOptions {
        epoch_groups: 1,
        crash: CrashPlan::never(),
    };
    let reference = engine(2, faults)
        .serve_journaled(&requests, &mut Journal::new(), &opts)
        .into_report()
        .expect("completes");

    let mut journal = Journal::new();
    let crash_opts = JournalOptions {
        epoch_groups: 1,
        crash: CrashPlan::at_epoch(1),
    };
    engine(2, faults)
        .serve_journaled(&requests, &mut journal, &crash_opts)
        .into_report()
        .expect_err("crash fires");

    let dir = std::env::temp_dir().join("cusfft_journal_recovery_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("crash_seed_{}.cjn", fault_seed()));
    journal.save(&path).expect("save durable prefix");
    let mut loaded = Journal::load(&path).expect("load journal");
    std::fs::remove_file(&path).ok();

    let resumed = engine(2, faults)
        .resume_from(&requests, &mut loaded, &opts)
        .expect("loaded journal is valid")
        .into_report()
        .expect("resume completes");
    assert_eq!(resumed.outcomes, reference.outcomes);
}

/// A crash discards exactly the unflushed tail: resuming re-executes
/// the lost epoch's groups and only those.
#[test]
fn crash_loses_only_the_unflushed_epoch() {
    let requests = batch(6);
    let mut journal = Journal::new();
    let crash_opts = JournalOptions {
        epoch_groups: 1,
        crash: CrashPlan::at_epoch(2),
    };
    let eng = engine(2, None);
    let crash = eng
        .serve_journaled(&requests, &mut journal, &crash_opts)
        .into_report()
        .expect_err("crash fires");
    // Epochs 0 and 1 checkpointed durable; epoch 2's records are gone.
    let groups = plan_group_count(&engine(2, None), &requests);
    assert!(groups > 2);
    assert_eq!(crash.epoch, 2);
    let done: usize = journal
        .durable_records()
        .expect("valid durable prefix")
        .iter()
        .filter(|r| matches!(r, cusfft::JournalRecord::Done { .. }))
        .count();
    assert_eq!(done, crash.durable_done);
    assert!(done < requests.len());
}

/// Corrupt or mismatched journals are refused with a typed
/// [`CusFftError::Journal`] — never a panic, never a partial resume.
#[test]
fn bad_journals_are_refused_typed() {
    let requests = batch(4);
    let opts = JournalOptions {
        epoch_groups: 1,
        crash: CrashPlan::never(),
    };

    // Fingerprint mismatch: same count, different content.
    let mut journal = Journal::new();
    engine(1, None)
        .serve_journaled(&requests, &mut journal, &opts)
        .into_report()
        .expect("completes");
    let mut other = batch(4);
    other[0].seed += 1;
    match engine(1, None).resume_from(&other, &mut journal, &opts) {
        Err(CusFftError::Journal { reason }) => {
            assert!(reason.contains("different batch"), "{reason}");
        }
        other => panic!("expected typed journal error, got {other:?}"),
    }

    // An empty journal has no Admitted record.
    let mut empty = Journal::new();
    assert!(matches!(
        engine(1, None).resume_from(&requests, &mut empty, &opts),
        Err(CusFftError::Journal { .. })
    ));
}
