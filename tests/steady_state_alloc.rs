//! Steady-state allocation invariant (DESIGN.md §13): after
//! `ExecutePlan::warm` has pre-sized the worker arena and one warmup
//! request has populated the exact-length free lists, serving further
//! identical-shape requests performs **zero** tracked `MemPool`
//! operations — every device-scratch acquisition is an arena hit. The
//! invariant is what makes the serving hot path allocation-free: pool
//! traffic is a one-time group-warmup cost, not a per-request cost.

use std::sync::Arc;

use cusfft::backend::worker_device;
use cusfft::{
    Backend, BackendKind, ExecStreams, ExecutePlan, GpuSimBackend, PlanKey, ServeConfig,
    ServeEngine, ServeQos, ServeRequest, Variant,
};
use fft::Cplx;
use gpu_sim::{DeviceSpec, GpuDevice};
use signal::{MagnitudeModel, SparseSignal};

/// One full request through the grouped `ExecutePlan` surface: stage the
/// upload, run the front half, the batched-FFT barrier, and the grouped
/// back half.
fn run_once(
    plan: &Arc<dyn ExecutePlan>,
    device: &GpuDevice,
    streams: &ExecStreams,
    time: &[Cplx],
    seed: u64,
) {
    plan.stage_group(device, std::mem::size_of_val(time), streams.main)
        .expect("fault-free staging");
    let mut prep = plan
        .prepare(device, time, seed, streams)
        .expect("fault-free prepare");
    plan.run_batched_ffts(device, &mut [&mut prep], streams.main)
        .expect("fault-free batched FFT");
    let results = plan.finish_group(device, &[&prep], streams);
    assert_eq!(results.len(), 1);
    results
        .into_iter()
        .next()
        .unwrap()
        .expect("fault-free finish");
}

/// After warm + one warmup request, N identical requests must leave the
/// device's `MemPool` op counters and the arena's miss counter exactly
/// where they were, while the arena hit counter keeps climbing.
fn assert_zero_alloc_steady_state(variant: Variant) {
    let n = 1 << 10;
    let k = 4;
    let spec = DeviceSpec::tesla_k20x();
    let home = Arc::new(worker_device(&spec, None));
    let plan = GpuSimBackend::default().build_plan(
        &home,
        PlanKey {
            n,
            k,
            variant,
            qos: ServeQos::Full,
            backend: BackendKind::GpuSim,
        },
    );

    let device = worker_device(&spec, None);
    let streams = ExecStreams::on_device_private(&device, plan.num_streams());
    let sig = SparseSignal::generate(n, k, MagnitudeModel::Unit, 11);

    plan.warm(&device, &streams, 1).expect("fault-free warm");
    // Warmup request: shapes the warm pass cannot know up front (the
    // estimation-value buffer is sized by the located-hit count) take
    // their one miss here.
    run_once(&plan, &device, &streams, &sig.time, 42);

    let alloc0 = device.pool_alloc_ops();
    let release0 = device.pool_release_ops();
    let stats0 = streams.arena.stats();

    for _ in 0..5 {
        run_once(&plan, &device, &streams, &sig.time, 42);
    }

    let stats1 = streams.arena.stats();
    assert_eq!(
        device.pool_alloc_ops(),
        alloc0,
        "{variant:?}: steady-state requests must not touch the MemPool (allocs)"
    );
    assert_eq!(
        device.pool_release_ops(),
        release0,
        "{variant:?}: steady-state requests must not touch the MemPool (releases)"
    );
    assert_eq!(
        stats1.fresh_misses, stats0.fresh_misses,
        "{variant:?}: every steady-state acquisition must be an arena hit"
    );
    assert!(
        stats1.reuse_hits > stats0.reuse_hits,
        "{variant:?}: steady state still acquires scratch — through the free list"
    );
}

#[test]
fn baseline_steady_state_allocates_nothing() {
    assert_zero_alloc_steady_state(Variant::Baseline);
}

#[test]
fn optimized_steady_state_allocates_nothing() {
    assert_zero_alloc_steady_state(Variant::Optimized);
}

/// The same invariant observed from the serving layer's own telemetry:
/// serving one group twice in a row costs the same warmup pool traffic
/// both times (each `serve_batch` call starts from a reset arena), and
/// a *wider* batch of the same shape costs proportionally more warmup
/// but identical per-request reuse — pool ops scale with groups, not
/// with requests.
#[test]
fn serve_report_pool_traffic_is_per_group_not_per_request() {
    let n = 1 << 10;
    let k = 4;
    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    ).expect("serve config is valid");
    let req = || {
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 11);
        ServeRequest::new(s.time, k, Variant::Optimized, 42)
    };

    let narrow = engine.serve_batch(&[req()]);
    let wide = engine.serve_batch(&[req(), req(), req(), req()]);

    assert!(narrow.pool.alloc_ops > 0, "warmup must reserve something");
    assert_eq!(
        narrow.pool.alloc_ops, narrow.pool.release_ops,
        "group-end arena reset returns every reservation"
    );
    assert_eq!(
        wide.pool.alloc_ops, wide.pool.release_ops,
        "group-end arena reset returns every reservation"
    );
    // Same-shape requests share the group's warmed pools: widening the
    // batch 4x must not multiply pool traffic 4x (request-lifetime
    // buffers scale with width; per-request scratch is recycled).
    assert!(
        wide.pool.alloc_ops < 4 * narrow.pool.alloc_ops,
        "pool traffic must be sublinear in batch width: narrow={}, wide={}",
        narrow.pool.alloc_ops,
        wide.pool.alloc_ops
    );
    assert!(
        wide.pool.reuse_hits > narrow.pool.reuse_hits,
        "wider batches reuse more"
    );
}
