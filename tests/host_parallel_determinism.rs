//! Determinism tests for the host execution engine: the work-stealing
//! pool behind `gpu-sim`'s launch paths is a *host-side* optimisation
//! only. For any pool width — including the width-1 inline sequential
//! path — the recovered spectrum, the per-kernel [`KernelStats`], the
//! modelled cost timeline, and the simulated clock must be
//! **bit-identical**. The pool guarantees this by construction (chunk
//! boundaries depend only on the launch geometry, results are collected
//! in block order — see `third_party/rayon`), and these tests pin the
//! contract end to end through the full cusFFT pipeline and the serving
//! layer.
//!
//! [`KernelStats`]: gpu_sim::KernelStats

use std::sync::Arc;

use cusfft::{CusFft, ServeConfig, ServeEngine, ServeRequest, Variant};
use gpu_sim::{DeviceSpec, GpuDevice};
use sfft_cpu::SfftParams;
use signal::{MagnitudeModel, SparseSignal};

/// Pool widths exercised everywhere: the inline sequential path (1), a
/// minimal real pool (2), and a wider-than-this-host pool (8).
const POOL_SIZES: [usize; 3] = [1, 2, 8];

/// Everything observable from one pipeline run, flattened to comparable
/// form. `KernelStats` and `Op` carry `f64`s without `PartialEq` on the
/// containing types, so we fingerprint through `Debug` — Rust's float
/// Debug is shortest-roundtrip, i.e. distinct bits give distinct text.
#[derive(PartialEq)]
struct RunFingerprint {
    recovered: signal::Recovered,
    num_hits: usize,
    sim_time_bits: u64,
    /// One line per launch record: label + aggregated KernelStats + cost.
    records: Vec<String>,
    /// The raw op timeline (enqueue order, durations, dependencies).
    ops: Vec<String>,
}

impl std::fmt::Debug for RunFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RunFingerprint {{ hits: {}, sim_time: {}, records: {}, ops: {} }}",
            self.num_hits,
            f64::from_bits(self.sim_time_bits),
            self.records.len(),
            self.ops.len()
        )
    }
}

/// Runs the full pipeline on a fresh device and captures the fingerprint.
fn run_once(variant: Variant, log2_n: u32, k: usize, seed: u64) -> RunFingerprint {
    let n = 1usize << log2_n;
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, seed);
    let device = Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()));
    let plan = CusFft::new(
        device.clone(),
        Arc::new(SfftParams::tuned(n, k)),
        variant,
    );
    let out = plan.execute(&s.time, seed);
    RunFingerprint {
        recovered: out.recovered,
        num_hits: out.num_hits,
        sim_time_bits: out.sim_time.to_bits(),
        records: device
            .records()
            .iter()
            .map(|r| format!("{:?} {:?} {:?} {:?} {}", r.name, r.stats, r.cost, r.stream, r.bound))
            .collect(),
        ops: device.ops().iter().map(|o| format!("{o:?}")).collect(),
    }
}

/// The same closure under an explicit pool width.
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build is infallible")
        .install(f)
}

#[test]
fn pipeline_outputs_identical_across_pool_sizes() {
    for variant in [Variant::Baseline, Variant::Optimized] {
        let reference = with_pool(1, || run_once(variant, 12, 8, 42));
        assert!(reference.num_hits > 0, "sanity: pipeline recovered something");
        for threads in POOL_SIZES {
            let run = with_pool(threads, || run_once(variant, 12, 8, 42));
            assert!(
                run == reference,
                "{variant:?} with {threads} pool threads diverged from the \
                 sequential path: {run:?} vs {reference:?}"
            );
        }
        // And under whatever this host/CI configured as the default.
        let default_run = run_once(variant, 12, 8, 42);
        assert!(default_run == reference, "{variant:?} default pool diverged");
    }
}

#[test]
fn kernel_stats_and_timeline_identical_across_pool_sizes() {
    // Zoom in on the two fingerprint components the pool could plausibly
    // corrupt: per-kernel aggregated stats (atomic accumulation order)
    // and the op timeline (append order under the state lock).
    let reference = with_pool(1, || run_once(Variant::Optimized, 13, 16, 7));
    assert!(!reference.records.is_empty() && !reference.ops.is_empty());
    for threads in POOL_SIZES[1..].iter().copied() {
        let run = with_pool(threads, || run_once(Variant::Optimized, 13, 16, 7));
        assert_eq!(
            run.records, reference.records,
            "per-kernel KernelStats must not depend on pool width ({threads})"
        );
        assert_eq!(
            run.ops, reference.ops,
            "merged op timeline must not depend on pool width ({threads})"
        );
    }
}

/// A small mixed-geometry batch for the serving-layer check.
fn batch() -> Vec<ServeRequest> {
    let geometries = [(1usize << 10, 4), (1usize << 11, 8), (1usize << 10, 4)];
    (0..6)
        .map(|i| {
            let (n, k) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 500 + i as u64);
            ServeRequest::new(s.time, k, Variant::Optimized, 13 * i as u64 + 1)
        })
        .collect()
}

#[test]
fn serve_engine_identical_across_pool_sizes() {
    // Serving stacks the pool *under* the engine's own worker threads:
    // workers orchestrate requests, every kernel launched on any worker
    // runs its blocks through the one process-wide pool. Neither layer
    // may leak into results or the merged simulated timeline.
    let reqs = batch();
    let serve = || {
        ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 3,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        ).expect("serve config is valid")
        .serve_batch(&reqs)
    };
    let reference = with_pool(1, serve);
    for threads in POOL_SIZES[1..].iter().copied() {
        let report = with_pool(threads, serve);
        for (i, (a, b)) in reference.responses().zip(report.responses()).enumerate() {
            assert_eq!(
                a.recovered, b.recovered,
                "request {i} spectrum changed under {threads} pool threads"
            );
            assert_eq!(a.num_hits, b.num_hits);
        }
        assert_eq!(
            reference.makespan.to_bits(),
            report.makespan.to_bits(),
            "merged-timeline makespan changed under {threads} pool threads"
        );
        assert_eq!(reference.concurrency, report.concurrency);
        assert_eq!(reference.groups, report.groups);
    }
}
