//! Metrics-cardinality guard — see DESIGN.md §16.
//!
//! The flight recorder adds a `cause` label to `cusfft_served_total`
//! and three audit/SLO families. Labels multiply series, and series
//! cost real money on real metric backends, so this test pins the
//! vocabulary closed:
//!
//! 1. every exported `cause` value comes from the fixed
//!    `derive_cause` vocabulary (a closed prefix set, bounded count);
//! 2. every `cusfft_audit_events_total{kind}` value is a known
//!    decision-event kind;
//! 3. the whole audited registry stays under a hard series budget;
//! 4. unaudited registries export no audit families and no `cause`
//!    label at all (the golden-gating contract).

use std::collections::BTreeSet;

use cusfft::{observe, ServeConfig, ServeEngine, ServeRequest, Variant};
use gpu_sim::{DeviceSpec, FaultConfig};
use signal::{MagnitudeModel, SparseSignal};

fn batch(len: usize, seed: u64) -> Vec<ServeRequest> {
    let geometries = [
        (1 << 10, 4, Variant::Optimized),
        (1 << 11, 8, Variant::Optimized),
        (1 << 12, 8, Variant::Baseline),
    ];
    (0..len)
        .map(|i| {
            let (n, k, variant) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, seed * 100 + i as u64);
            ServeRequest::new(s.time, k, variant, 19 * i as u64 + 5)
        })
        .collect()
}

fn prometheus(audit: bool, seed: u64) -> String {
    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 2,
            cache_capacity: 8,
            faults: Some(FaultConfig::uniform(seed, 0.1).with_sdc(0.05)),
            audit,
            ..ServeConfig::default()
        },
    )
    .expect("serve config is valid");
    let report = engine.serve_batch(&batch(12, seed));
    observe::metrics_registry(&report).render_prometheus()
}

/// Series lines of the exposition: `name{labels} value` or `name value`.
fn series_lines(prom: &str) -> Vec<&str> {
    prom.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).collect()
}

/// All values of one label across the exposition.
fn label_values<'a>(prom: &'a str, label: &str) -> BTreeSet<&'a str> {
    let needle = format!("{label}=\"");
    let mut out = BTreeSet::new();
    for line in series_lines(prom) {
        let mut rest = line;
        while let Some(at) = rest.find(&needle) {
            let tail = &rest[at + needle.len()..];
            let end = tail.find('"').expect("label value closes");
            out.insert(&tail[..end]);
            rest = &tail[end..];
        }
    }
    out
}

const CAUSE_PREFIXES: [&str; 6] = ["done:", "degraded:", "failover:", "shed:", "rejected:", "failed:"];

const EVENT_KINDS: [&str; 27] = [
    "batch_admitted", "admitted", "shed", "deadline_rejected", "invalid",
    "group_placed", "brownout", "breaker_transition", "breaker_probe",
    "short_circuit", "hedge_fired", "hedge_resolved", "evicted",
    "retry_attempt", "retry_failed", "cpu_fallback", "terminal",
    "router_placement", "device_loss", "failover", "drain", "drain_probe",
    "recover", "cpu_tier", "checkpoint", "resume", "recovered",
];

#[test]
fn cause_vocabulary_is_closed_and_bounded() {
    for seed in [1u64, 7, 42] {
        let prom = prometheus(true, seed);
        let causes = label_values(&prom, "cause");
        assert!(!causes.is_empty(), "audited export carries cause labels");
        for cause in &causes {
            assert!(
                CAUSE_PREFIXES.iter().any(|p| cause.starts_with(p)),
                "cause {cause:?} is outside the closed vocabulary"
            );
        }
        // The full cross product of the vocabulary is small by design;
        // a run can only ever use a subset of it.
        assert!(causes.len() <= 16, "{} distinct causes: {causes:?}", causes.len());
    }
}

#[test]
fn audit_event_kinds_are_known() {
    let prom = prometheus(true, 7);
    for line in series_lines(&prom) {
        if !line.starts_with("cusfft_audit_events_total") {
            continue;
        }
        let kinds = label_values(line, "kind");
        for kind in kinds {
            assert!(EVENT_KINDS.contains(&kind), "unknown audit event kind {kind:?}");
        }
    }
}

#[test]
fn audited_registry_stays_under_series_budget() {
    for seed in [1u64, 7, 42] {
        let prom = prometheus(true, seed);
        let n = series_lines(&prom).len();
        assert!(n <= 400, "audited registry exports {n} series (budget 400)");
    }
}

#[test]
fn unaudited_registry_has_no_audit_families_or_cause_label() {
    let prom = prometheus(false, 7);
    assert!(label_values(&prom, "cause").is_empty(), "cause leaked into unaudited export");
    for family in ["cusfft_audit_events_total", "cusfft_slo_", "cusfft_slo_alerts_total"] {
        assert!(
            !prom.contains(family),
            "{family} leaked into the unaudited export"
        );
    }
}
