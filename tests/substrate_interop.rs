//! Substrate interop: the independent FFT implementations, the filter
//! construction, and the selection algorithms must all agree with each
//! other — each pair of implementations cross-checks the other.

use fft::cplx::Cplx;
use fft::{
    bluestein_fft, BatchPlan, Direction, FourStepPlan, ParallelPlan, Plan, RealPlan,
    StockhamPlan,
};

fn rand_signal(n: usize, seed: u64) -> Vec<Cplx> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
            Cplx::new(a, b)
        })
        .collect()
}

#[test]
fn five_fft_implementations_agree() {
    for log2 in [6u32, 9, 12] {
        let n = 1usize << log2;
        let x = rand_signal(n, log2 as u64);
        let reference = Plan::new(n).transform(&x, Direction::Forward);
        let candidates: Vec<(&str, Vec<Cplx>)> = vec![
            ("stockham", StockhamPlan::new(n).transform(&x, Direction::Forward)),
            ("four-step", FourStepPlan::new(n).transform(&x, Direction::Forward)),
            ("bluestein", bluestein_fft(&x, Direction::Forward)),
            ("parallel", ParallelPlan::new(n).transform(&x, Direction::Forward)),
        ];
        let tol = 1e-8 * (n as f64).sqrt();
        for (name, got) in candidates {
            for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
                assert!(
                    a.dist(*b) < tol,
                    "{name} vs plan at n=2^{log2}, elem {i}: {a:?} vs {b:?}"
                );
            }
        }
    }
}

#[test]
fn real_fft_agrees_with_complex_pipeline() {
    let n = 512;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() * (i as f64 * 0.031).cos()).collect();
    let as_complex: Vec<Cplx> = x.iter().map(|&v| Cplx::real(v)).collect();
    let full = Plan::new(n).transform(&as_complex, Direction::Forward);
    let half = RealPlan::new(n).forward(&x);
    for f in 0..=n / 2 {
        assert!(half[f].dist(full[f]) < 1e-8, "bin {f}");
    }
    // Conjugate symmetry of the full transform (what r2c relies on).
    for f in 1..n / 2 {
        assert!(full[n - f].dist(full[f].conj()) < 1e-8);
    }
}

#[test]
fn batched_rows_agree_with_single_transforms() {
    let rows = 7;
    let len = 128;
    let data = rand_signal(rows * len, 42);
    let bp = BatchPlan::new(len, rows);
    let mut batched = data.clone();
    bp.process_parallel(&mut batched, Direction::Forward);
    let single = Plan::new(len);
    for r in 0..rows {
        let expect = single.transform(&data[r * len..(r + 1) * len], Direction::Forward);
        for (a, b) in batched[r * len..(r + 1) * len].iter().zip(&expect) {
            assert!(a.dist(*b) < 1e-10);
        }
    }
}

#[test]
fn filter_response_consistent_between_band_and_signal_path() {
    // Push a unit tone through perm_filter at τ=0, σ=1 (identity
    // permutation): the bucket spectrum must equal the filter's own
    // frequency response at the tone's offset, up to the 1/n convention.
    use filters::{FlatFilter, WindowKind};
    use sfft_cpu::inner::{perm_filter, subsample_fft};
    use sfft_cpu::Permutation;

    let n = 1 << 12;
    let b = 64;
    let filt = FlatFilter::design(n, (1.3 * n as f64 / 256.0) as usize, 0.002, 1e-6, n / b, WindowKind::DolphChebyshev);
    let f0 = 37 * (n / b); // exactly at a bucket centre
    let time: Vec<Cplx> = (0..n)
        .map(|t| Cplx::cis(std::f64::consts::TAU * ((f0 * t) % n) as f64 / n as f64).scale(1.0 / n as f64))
        .collect();
    let perm = Permutation::new(1, 0, n);
    let mut buckets = perm_filter(&time, &filt, b, &perm);
    subsample_fft(&mut buckets, &Plan::new(b));
    let expected = filt.freq_at(0).scale(1.0 / n as f64);
    assert!(
        buckets[37].dist(expected) < 1e-9,
        "bucket {:?} vs Ĝ(0)/n {:?}",
        buckets[37],
        expected
    );
}

#[test]
fn selection_algorithms_agree_on_distinct_values() {
    let values: Vec<f64> = (0..4096).map(|i| ((i * 2654435761usize) % 999983) as f64).collect();
    let k = 63;
    let a = kselect::sort_select(&values, k);
    let b = kselect::radix_sort_select(&values, k);
    let mut c = kselect::quickselect_top_k(&values, k);
    let d = kselect::bucket_select(&values, k);
    assert_eq!(a, b, "two sorts agree on order");
    c.sort_unstable();
    let mut a_sorted = a.clone();
    a_sorted.sort_unstable();
    assert_eq!(a_sorted, c, "quickselect finds the same set");
    for idx in &a_sorted {
        assert!(d.indices.contains(idx), "bucket_select missing {idx}");
    }
}

#[test]
fn dft_band_is_the_dense_transform_restriction() {
    let n = 1 << 10;
    let x = rand_signal(200, 3);
    let mut padded = x.clone();
    padded.resize(n, fft::cplx::ZERO);
    let dense = Plan::new(n).transform(&padded, Direction::Forward);
    let band = fft::dft_band(&x, n, 100, 50);
    for (i, v) in band.iter().enumerate() {
        assert!(v.dist(dense[100 + i]) < 1e-8);
    }
}
