//! Span-tree contract for the telemetry layer — see DESIGN.md §11.
//!
//! Pinned contracts:
//!
//! 1. **Total coverage** — over a fault + overload serve run, the span
//!    tree covers every op of the merged timeline exactly once, every
//!    span has a resolvable parent, and children nest inside their
//!    parents ([`cusfft_telemetry::SpanTree::validate`]).
//! 2. **Annotated recovery sub-trees** — retried and hedged executions
//!    show up as attempt spans under their group, and short-circuited
//!    groups / rejected requests still get (zero-width) spans.
//! 3. **Determinism** — the span tree, the metrics exposition and the
//!    Chrome trace JSON are byte-identical across serve worker counts
//!    and host pool widths.
//!
//! The fault seed honours `CUSFFT_FAULT_SEED` so CI can sweep seeds.

use cusfft::{
    observe, OverloadConfig, ServeConfig, ServeEngine, ServeReport, ServeRequest, TimedRequest,
    Variant,
};
use cusfft_telemetry::{validate_chrome_trace, SpanKind, SpanTree};
use gpu_sim::{BreakerConfig, DeviceSpec, FaultConfig};
use signal::{MagnitudeModel, SparseSignal};

/// Fault seed under test; CI sweeps this via the environment.
fn fault_seed() -> u64 {
    std::env::var("CUSFFT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn request(n: usize, k: usize, variant: Variant, sig_seed: u64, seed: u64) -> ServeRequest {
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_seed);
    ServeRequest::new(s.time, k, variant, seed)
}

/// The stress workload: mixed geometries arriving at t = 0 under a tight
/// queue (sheds guaranteed), unmeetable deadlines on some requests,
/// faults with SDC, a hair-trigger breaker and an aggressive hedge
/// budget — every timeline-op family the serving layer can produce.
fn stress_report(workers: usize) -> ServeReport {
    let geometries = [
        (1 << 10, 4, Variant::Optimized),
        (1 << 11, 8, Variant::Optimized),
        (1 << 10, 4, Variant::Baseline),
    ];
    let trace: Vec<TimedRequest> = (0..12)
        .map(|i| {
            let (n, k, variant) = geometries[i % geometries.len()];
            let r = request(n, k, variant, 2000 + i as u64, 17 * i as u64 + 3);
            let t = TimedRequest::at(r, 0.0);
            match i % 5 {
                3 => t.with_deadline(0.0),
                4 => t.with_deadline(1e6),
                _ => t,
            }
        })
        .collect();
    let policy = OverloadConfig {
        queue_capacity: 6,
        brownout_depth: 3,
        breaker: BreakerConfig {
            window: 2,
            trip_faults: 2,
            cooldown: 1,
        },
        epoch_groups: 2,
        hedge_percentile: 0.5,
        hedge_factor: 1.0,
    };
    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers,
            cache_capacity: 8,
            faults: Some(FaultConfig::uniform(fault_seed(), 0.02).with_sdc(0.05)),
            ..ServeConfig::default()
        },
    ).expect("serve config is valid");
    engine.serve_overload(&trace, &policy)
}

/// Runs `f` on a dedicated host pool of the given width.
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build is infallible")
        .install(f)
}

fn count_kind(tree: &SpanTree, kind: SpanKind) -> usize {
    tree.spans.iter().filter(|s| s.kind == kind).count()
}

/// Contract 1: every timeline op is covered by exactly one leaf span and
/// the tree's structure validates.
#[test]
fn span_tree_covers_every_timeline_op() {
    let report = stress_report(2);
    assert!(
        !report.timeline.ops.is_empty(),
        "the stress workload must produce a timeline"
    );
    let tree = observe::span_tree(&report);
    tree.validate(report.timeline.ops.len())
        .expect("span tree must validate");
    let op_leaves = count_kind(&tree, SpanKind::Op) + count_kind(&tree, SpanKind::HostPhase);
    assert_eq!(
        op_leaves,
        report.timeline.ops.len(),
        "one leaf span per timeline op"
    );
}

/// Contract 2: faulty/retried/hedged/short-circuited executions appear
/// as annotated sub-trees, and rejected requests still get spans.
#[test]
fn recovery_and_rejection_are_visible_in_the_tree() {
    let report = stress_report(2);
    let tree = observe::span_tree(&report);

    // The workload guarantees overload activity to annotate.
    assert!(report.overload.shed > 0, "workload must shed");
    assert!(report.overload.deadline_exceeded > 0);
    assert!(report.faults.injected > 0, "workload must fault");

    // One request span per request, rejected ones included.
    assert_eq!(
        count_kind(&tree, SpanKind::Request),
        report.outcomes.len(),
        "every request gets a span, rejected arrivals included"
    );
    // One group span per plan group.
    assert_eq!(count_kind(&tree, SpanKind::Group), report.group_info.len());
    // Retries show up as attempt spans beyond the per-group batch span.
    if report.faults.retries > 0 {
        let attempts = count_kind(&tree, SpanKind::Attempt);
        let executed = report
            .group_info
            .iter()
            .filter(|g| !g.short_circuit)
            .count();
        assert!(
            attempts > executed,
            "retries must add attempt spans: {attempts} attempts over {executed} executed groups"
        );
        assert!(
            tree.spans.iter().any(|s| s.name.starts_with("retry")),
            "retry attempts are named"
        );
    }
    // Hedged groups are flagged on the group span.
    if report.overload.hedges > 0 {
        assert!(
            tree.spans
                .iter()
                .any(|s| s.attrs.iter().any(|(k, v)| k == "hedged" && v == "true")),
            "hedged groups carry the hedged attribute"
        );
    }
    // Rejected requests get zero-width spans with their outcome attached.
    let rejected: Vec<_> = tree
        .spans
        .iter()
        .filter(|s| {
            s.kind == SpanKind::Request
                && s.attrs
                    .iter()
                    .any(|(k, v)| k == "outcome" && (v == "shed" || v == "deadline_exceeded"))
        })
        .collect();
    assert_eq!(
        rejected.len() as u64,
        report.overload.shed + report.overload.deadline_exceeded
    );
    for s in rejected {
        assert_eq!(s.start, s.end, "rejected requests are zero-width instants");
    }
}

/// Contract 3: the tree and both exports are invariant under worker
/// count and host pool width.
#[test]
fn telemetry_is_invariant_across_workers_and_pools() {
    let base = with_pool(1, || stress_report(1));
    let base_tree = observe::span_tree(&base);
    let base_prom = observe::metrics_registry(&base).render_prometheus();
    let base_trace = observe::chrome_trace_json(&base);
    validate_chrome_trace(&base_trace).expect("emitted trace validates");
    for (workers, pool) in [(2, 1), (4, 1), (1, 8), (4, 8)] {
        let report = with_pool(pool, || stress_report(workers));
        assert_eq!(
            base_tree,
            observe::span_tree(&report),
            "span tree, workers={workers} pool={pool}"
        );
        assert_eq!(
            base_prom,
            observe::metrics_registry(&report).render_prometheus(),
            "metrics exposition, workers={workers} pool={pool}"
        );
        assert_eq!(
            base_trace,
            observe::chrome_trace_json(&report),
            "chrome trace, workers={workers} pool={pool}"
        );
    }
}

/// Backend attribution: every leaf span (device op or host phase) on
/// the merged timeline resolves to exactly one backend — a single
/// `backend` attribute whose value is a known backend label (control
/// ops attribute to `control`). Group spans name the backend too.
#[test]
fn every_leaf_span_resolves_to_exactly_one_backend() {
    let report = stress_report(2);
    let tree = observe::span_tree(&report);
    let known = ["control", "gpu_sim", "sfft_cpu", "dense_fft"];
    let mut leaves = 0usize;
    for s in &tree.spans {
        if s.kind != SpanKind::Op && s.kind != SpanKind::HostPhase {
            continue;
        }
        leaves += 1;
        let backends: Vec<_> = s
            .attrs
            .iter()
            .filter(|(k, _)| k == "backend")
            .map(|(_, v)| v.as_str())
            .collect();
        assert_eq!(
            backends.len(),
            1,
            "leaf span {:?} must carry exactly one backend attribute, got {backends:?}",
            s.name
        );
        assert!(
            known.contains(&backends[0]),
            "leaf span {:?} resolves to unknown backend {:?}",
            s.name,
            backends[0]
        );
    }
    assert_eq!(leaves, report.timeline.ops.len(), "one leaf per op");
    // The workload runs on the default backend, so device-attributed
    // work must show up as gpu_sim leaves.
    assert!(
        tree.spans
            .iter()
            .any(|s| s.attrs.iter().any(|(k, v)| k == "backend" && v == "gpu_sim")),
        "gpu_sim work must be attributed"
    );
    // Every group span names its backend.
    for s in tree.spans.iter().filter(|s| s.kind == SpanKind::Group) {
        assert!(
            s.attrs
                .iter()
                .any(|(k, v)| k == "backend" && known.contains(&v.as_str())),
            "group span {:?} must name its backend",
            s.name
        );
    }
}

/// The per-(path, QoS) latency summary is consistent: class counts sum
/// to the completed-request count and quantiles are ordered.
#[test]
fn path_latency_summary_is_consistent() {
    let report = stress_report(2);
    let completed = report.outcomes.iter().filter(|o| o.response().is_some()).count() as u64;
    let total: u64 = report.path_latency.iter().map(|pl| pl.count).sum();
    assert_eq!(total, completed, "latency classes partition completions");
    for pl in &report.path_latency {
        assert!(pl.count > 0, "empty classes are dropped");
        assert_eq!(pl.hist.count, pl.count);
        assert!(pl.p50 <= pl.p95 && pl.p95 <= pl.p99, "quantiles ordered");
    }
}
