//! Overload-robustness tests for the serving layer — see DESIGN.md §10.
//!
//! Pinned contracts:
//!
//! 1. **Determinism** — for a fixed `(trace, config, policy)` the whole
//!    [`cusfft::ServeReport`] (outcomes incl. shed/deadline/QoS, fault
//!    and overload tallies, breaker transition log, latency stats, and
//!    the merged timeline) is bit-identical across serve worker counts
//!    and host pool widths.
//! 2. **The breaker pays for itself** — under a persistent-fault device
//!    the breaker opens and steady-state throughput strictly beats the
//!    retry-every-request behaviour of `serve_batch` on the same
//!    requests.
//! 3. **Admission control rejects before spending** — queue sheds and
//!    deadline rejections produce typed outcomes and no device time.
//! 4. **Brownout degrades, never drops** — pressured requests are served
//!    at [`cusfft::ServeQos::Degraded`] and still complete.
//! 5. **Hedging is deterministic** — stragglers are hedged by the
//!    percentile budget; fault-free, the duplicate ties and the primary
//!    wins.
//! 6. **SDC is caught or bounded** — an injected device→host bit-flip is
//!    either detected by the sampled residual check (and the request
//!    recovers on a retry/CPU path) or the surviving deviation is below
//!    the check's documented bound of `2·k·1e-6` per coefficient.
//!
//! The fault seed honours `CUSFFT_FAULT_SEED` so CI can sweep seeds.

use cusfft::{
    OverloadConfig, RequestOutcome, ServeConfig, ServeEngine, ServePath, ServeQos, ServeReport,
    ServeRequest, TimedRequest, Variant,
};
use gpu_sim::{BreakerConfig, BreakerState, DeviceSpec, FaultConfig};
use proptest::prelude::*;
use signal::{MagnitudeModel, SparseSignal};

/// Fault seed under test; CI sweeps this via the environment.
fn fault_seed() -> u64 {
    std::env::var("CUSFFT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn request(n: usize, k: usize, variant: Variant, sig_seed: u64, seed: u64) -> ServeRequest {
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_seed);
    ServeRequest::new(s.time, k, variant, seed)
}

/// A mixed-geometry batch exercising several plan groups and both tiers.
fn batch(len: usize) -> Vec<ServeRequest> {
    let geometries = [
        (1 << 10, 4, Variant::Optimized),
        (1 << 11, 8, Variant::Optimized),
        (1 << 10, 4, Variant::Baseline),
    ];
    (0..len)
        .map(|i| {
            let (n, k, variant) = geometries[i % geometries.len()];
            request(n, k, variant, 2000 + i as u64, 17 * i as u64 + 3)
        })
        .collect()
}

fn engine(workers: usize, faults: Option<FaultConfig>) -> ServeEngine {
    ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers,
            cache_capacity: 8,
            faults,
            ..ServeConfig::default()
        },
    ).expect("serve config is valid")
}

/// Runs `f` on a dedicated host pool of the given width.
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build is infallible")
        .install(f)
}

/// An all-at-once arrival trace: every request lands at t = 0, so the
/// predicted queue depth equals the number already admitted — shedding
/// and brownout thresholds are exercised exactly, independent of the
/// service-time model's constants.
fn trace_at_zero(reqs: Vec<ServeRequest>) -> Vec<TimedRequest> {
    reqs.into_iter().map(|r| TimedRequest::at(r, 0.0)).collect()
}

/// A hedging-free, breaker-quiet policy with generous bounds.
fn permissive_policy() -> OverloadConfig {
    OverloadConfig {
        queue_capacity: 1000,
        brownout_depth: 1000,
        hedge_factor: 1e12,
        ..OverloadConfig::default()
    }
}

fn assert_same_report(a: &ServeReport, b: &ServeReport, what: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{what}: outcomes");
    assert_eq!(a.faults, b.faults, "{what}: fault tally");
    assert_eq!(a.overload, b.overload, "{what}: overload tally");
    assert_eq!(a.breaker, b.breaker, "{what}: breaker transition log");
    assert_eq!(a.latency, b.latency, "{what}: latency stats");
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{what}: makespan must be bit-identical"
    );
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits(), "{what}");
    assert_eq!(a.concurrency, b.concurrency, "{what}: concurrency profile");
    assert_eq!(a.groups, b.groups, "{what}: group count");
}

/// Contract 1: the full overload report — sheds, deadline rejections,
/// brownout QoS, breaker decisions, hedges, SDC recoveries, latency and
/// the merged timeline — is a pure function of `(trace, config,
/// policy)`, invariant under worker count and host pool width.
#[test]
fn overload_report_invariant_across_workers_and_pools() {
    // Arrivals at 0 with a tight queue: sheds are guaranteed. Some
    // requests carry an unmeetable deadline, some a trivial one. Faults
    // (incl. SDC) and an aggressive hedge budget exercise every path.
    let trace: Vec<TimedRequest> = batch(12)
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let t = TimedRequest::at(r, 0.0);
            match i % 5 {
                3 => t.with_deadline(0.0),
                4 => t.with_deadline(1e6),
                _ => t,
            }
        })
        .collect();
    let policy = OverloadConfig {
        queue_capacity: 6,
        brownout_depth: 3,
        breaker: BreakerConfig {
            window: 2,
            trip_faults: 2,
            cooldown: 1,
        },
        epoch_groups: 2,
        hedge_percentile: 0.5,
        hedge_factor: 1.0,
    };
    let fc = FaultConfig::uniform(fault_seed(), 0.02).with_sdc(0.05);
    let run = |workers: usize, pool: usize| {
        with_pool(pool, || {
            engine(workers, Some(fc)).serve_overload(&trace, &policy)
        })
    };
    let baseline = run(1, 1);
    assert!(
        baseline.overload.shed > 0,
        "the trace must actually shed to pin anything"
    );
    assert!(baseline.overload.deadline_exceeded > 0);
    assert!(baseline.overload.degraded > 0);
    for (workers, pool) in [(2, 1), (4, 1), (1, 8), (2, 8), (4, 8)] {
        let report = run(workers, pool);
        assert_same_report(
            &baseline,
            &report,
            &format!("workers={workers} pool={pool}"),
        );
    }
}

/// Contract 2: under a persistently faulty device the breaker opens and
/// short-circuits straight to the CPU path, beating `serve_batch`'s
/// retry-every-request throughput on the same requests.
#[test]
fn breaker_opens_and_beats_retry_every_request() {
    // Eight single-request groups (distinct k) so the breaker sees a
    // stream of group observations.
    let reqs: Vec<ServeRequest> = (0..8)
        .map(|i| request(1 << 11, 2 + i, Variant::Optimized, 300 + i as u64, 900 + i as u64))
        .collect();
    let config = ServeConfig {
        workers: 2,
        cache_capacity: 16,
        faults: Some(FaultConfig::persistent(fault_seed())),
        ..ServeConfig::default()
    };
    let policy = OverloadConfig {
        breaker: BreakerConfig {
            window: 2,
            trip_faults: 2,
            cooldown: 50,
        },
        epoch_groups: 2,
        ..permissive_policy()
    };
    let over = ServeEngine::new(DeviceSpec::tesla_k20x(), config).expect("serve config is valid")
        .serve_overload(&trace_at_zero(reqs.clone()), &policy);
    assert!(
        over.breaker.iter().any(|t| t.to == BreakerState::Open),
        "persistent faults must trip the breaker: {:?}",
        over.breaker
    );
    assert!(over.overload.breaker_trips >= 1);
    assert!(
        over.overload.breaker_short_circuits > 0,
        "groups after the trip must be short-circuited"
    );
    for o in &over.outcomes {
        let r = o.response().expect("every request still completes");
        assert_eq!(r.path, ServePath::Cpu, "persistent faults end on the CPU");
    }

    let legacy = ServeEngine::new(DeviceSpec::tesla_k20x(), config).expect("serve config is valid").serve_batch(&reqs);
    assert!(
        legacy.outcomes.iter().all(|o| o.response().is_some()),
        "both layers complete everything"
    );
    assert!(
        over.throughput > legacy.throughput,
        "short-circuiting must beat retrying every request: \
         overload {:.1} req/s vs legacy {:.1} req/s",
        over.throughput,
        legacy.throughput
    );
}

/// Contract 3a: a full queue sheds the newest arrivals with a typed
/// outcome and zero device time.
#[test]
fn queue_bound_sheds_newest_arrivals() {
    let trace = trace_at_zero(
        (0..6)
            .map(|i| request(1 << 10, 4, Variant::Optimized, i, 50 + i))
            .collect(),
    );
    let policy = OverloadConfig {
        queue_capacity: 3,
        ..permissive_policy()
    };
    let report = engine(2, None).serve_overload(&trace, &policy);
    assert_eq!(report.overload.admitted, 3);
    assert_eq!(report.overload.shed, 3);
    for (i, o) in report.outcomes.iter().enumerate() {
        if i < 3 {
            assert!(o.response().is_some(), "request {i} admitted");
        } else {
            match o {
                RequestOutcome::Shed { queue_depth } => {
                    assert_eq!(*queue_depth, 3, "depth at shed time")
                }
                other => panic!("request {i}: expected Shed, got {other:?}"),
            }
        }
    }
    // All requests share one plan: sheds cannot split groups.
    assert_eq!(report.groups, 1);
}

/// Contract 3b: an unmeetable deadline is rejected at admission with the
/// predicted latency attached; generous deadlines sail through.
#[test]
fn unmeetable_deadlines_are_rejected_at_admission() {
    let reqs: Vec<ServeRequest> = (0..4)
        .map(|i| request(1 << 10, 4, Variant::Optimized, i, 70 + i))
        .collect();
    let trace: Vec<TimedRequest> = reqs
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let t = TimedRequest::at(r, 0.0);
            if i % 2 == 0 {
                t.with_deadline(1e6) // always met
            } else {
                t.with_deadline(0.0) // never met: service takes time
            }
        })
        .collect();
    let report = engine(1, None).serve_overload(&trace, &permissive_policy());
    assert_eq!(report.overload.deadline_exceeded, 2);
    assert_eq!(report.overload.admitted, 2);
    for (i, o) in report.outcomes.iter().enumerate() {
        if i % 2 == 0 {
            assert!(o.response().is_some(), "request {i} meets its deadline");
        } else {
            match o {
                RequestOutcome::DeadlineExceeded { predicted, deadline } => {
                    assert!(*predicted > *deadline, "request {i}");
                    assert_eq!(*deadline, 0.0);
                }
                other => panic!("request {i}: expected DeadlineExceeded, got {other:?}"),
            }
        }
    }
}

/// Contract 4: past the brownout depth, admitted requests are re-planned
/// onto the degraded QoS tier — and still complete.
#[test]
fn brownout_serves_degraded_without_dropping() {
    let trace = trace_at_zero(
        (0..8)
            .map(|i| request(1 << 10, 4, Variant::Optimized, i, 80 + i))
            .collect(),
    );
    let policy = OverloadConfig {
        queue_capacity: 100,
        brownout_depth: 2,
        ..permissive_policy()
    };
    let report = engine(2, None).serve_overload(&trace, &policy);
    assert_eq!(report.overload.admitted, 8);
    assert_eq!(report.overload.degraded, 6);
    // Full and Degraded tiers are distinct plan groups.
    assert_eq!(report.groups, 2);
    for (i, o) in report.outcomes.iter().enumerate() {
        let r = o.response().expect("brownout degrades, never drops");
        let want = if i < 2 {
            ServeQos::Full
        } else {
            ServeQos::Degraded
        };
        assert_eq!(r.qos, want, "request {i} tier");
        assert!(r.num_hits > 0, "request {i} still recovers energy");
    }
}

/// Contract 5: a group whose duration exceeds the percentile budget gets
/// a hedged duplicate; fault-free the duplicate ties the primary and the
/// primary wins, and the whole race replays bit-for-bit.
#[test]
fn stragglers_get_hedged_deterministically() {
    // Three quick groups and one straggler (16× the signal length).
    let mut reqs: Vec<ServeRequest> = (0..3)
        .map(|i| request(1 << 10, 2 + i, Variant::Optimized, 20 + i as u64, 60 + i as u64))
        .collect();
    reqs.push(request(1 << 14, 4, Variant::Optimized, 33, 99));
    let trace = trace_at_zero(reqs);
    let policy = OverloadConfig {
        queue_capacity: 100,
        brownout_depth: 100,
        hedge_percentile: 0.5,
        hedge_factor: 1.0,
        ..OverloadConfig::default()
    };
    let a = engine(2, None).serve_overload(&trace, &policy);
    assert!(
        a.overload.hedges >= 1,
        "the 16×-length group must exceed the p50 budget"
    );
    assert_eq!(
        a.overload.hedge_wins, 0,
        "fault-free, a hedge ties its primary and the primary wins"
    );
    assert!(a.outcomes.iter().all(|o| o
        .response()
        .is_some_and(|r| r.path == ServePath::Gpu)));
    let b = engine(4, None).serve_overload(&trace, &policy);
    assert_same_report(&a, &b, "hedging across worker counts");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Breaker decisions are a function of the fault plan and the global
    /// group order alone — invariant under worker count and pool width
    /// (tentpole determinism, fuzzed over fault plans).
    #[test]
    fn breaker_decisions_invariant_under_worker_count(
        seed in 0u64..500,
        rate in 0.0f64..0.05,
    ) {
        let trace = trace_at_zero(batch(8));
        let policy = OverloadConfig {
            breaker: BreakerConfig { window: 2, trip_faults: 1, cooldown: 1 },
            epoch_groups: 1,
            ..permissive_policy()
        };
        let fc = FaultConfig::uniform(seed, rate);
        let run = |workers: usize, pool: usize| {
            with_pool(pool, || {
                engine(workers, Some(fc)).serve_overload(&trace, &policy)
            })
        };
        let base = run(1, 1);
        for (workers, pool) in [(2, 1), (4, 8)] {
            let r = run(workers, pool);
            prop_assert_eq!(&base.breaker, &r.breaker,
                "breaker log, workers={} pool={}", workers, pool);
            prop_assert_eq!(&base.overload, &r.overload,
                "overload tally, workers={} pool={}", workers, pool);
            prop_assert_eq!(&base.outcomes, &r.outcomes,
                "outcomes, workers={} pool={}", workers, pool);
        }
    }

    /// Contract 6, fuzzed: with SDC injection on, every request still
    /// completes, and any response served off a GPU path deviates from
    /// the clean run by at most the residual check's documented bound —
    /// a corruption either trips the check (and the request retries or
    /// degrades) or was too small to matter.
    #[test]
    fn sdc_is_caught_or_bounded(seed in 0u64..500, rate in 0.3f64..1.0) {
        let reqs = batch(6);
        let clean = engine(2, None).serve_batch(&reqs);
        let fc = FaultConfig::uniform(seed, 0.0).with_sdc(rate);
        let faulty = engine(2, Some(fc)).serve_batch(&reqs);
        for (i, (c, f)) in clean.outcomes.iter().zip(&faulty.outcomes).enumerate() {
            let c = c.response().expect("clean serving completes");
            let f = f.response().expect("SDC recovery completes every request");
            if f.path == ServePath::Cpu {
                continue; // reference path: different algorithm, not comparable bit-wise
            }
            prop_assert_eq!(c.recovered.len(), f.recovered.len(), "request {}", i);
            let bound = 2.0 * reqs[i].k as f64 * 1e-6;
            for ((cf, cv), (ff, fv)) in c.recovered.iter().zip(&f.recovered) {
                prop_assert_eq!(cf, ff, "request {} frequency set", i);
                let dev = cv.dist(*fv);
                prop_assert!(
                    dev <= bound,
                    "request {i}: surviving deviation {dev:.3e} exceeds bound {bound:.3e}"
                );
            }
        }
    }
}

/// Contract 6, pinned: at SDC rate 1.0 every GPU attempt's returned
/// spectrum is corrupted. The residual check detects the corruption
/// whenever it matters (`sdc_detected > 0`, requests visibly re-routed
/// through retry/CPU recovery via [`cusfft::ServePath`]); the only
/// survivors on the first-attempt GPU path are the documented
/// false-negative corner — a flipped bit on a spurious near-zero
/// coefficient, whose surviving deviation stays under the check's
/// `2·k·1e-6` bound. Verified under several seeds so the pin isn't a
/// single-seed accident.
#[test]
fn sdc_at_rate_one_is_detected_and_recovered() {
    let reqs = batch(6);
    let clean = engine(2, None).serve_batch(&reqs);
    for seed in [1, 7, fault_seed()] {
        let fc = FaultConfig::uniform(seed, 0.0).with_sdc(1.0);
        let report = engine(2, Some(fc)).serve_batch(&reqs);
        assert!(
            report.faults.sdc_detected > 0,
            "seed {seed}: rate-1.0 corruption must be detected"
        );
        assert_eq!(report.faults.failed, 0, "seed {seed}: recovery never fails");
        let mut off_gpu = 0;
        for (i, (c, f)) in clean.outcomes.iter().zip(&report.outcomes).enumerate() {
            let c = c.response().expect("clean serving completes");
            let f = f
                .response()
                .unwrap_or_else(|| panic!("seed {seed}: request {i} must complete"));
            if f.path != ServePath::Gpu {
                off_gpu += 1;
            }
            if f.path == ServePath::Cpu {
                continue; // reference path, not comparable bit-wise
            }
            // Anything still served from the device is corruption-free up
            // to the residual check's bound.
            let bound = 2.0 * reqs[i].k as f64 * 1e-6;
            assert_eq!(c.recovered.len(), f.recovered.len(), "seed {seed} req {i}");
            for ((cf, cv), (ff, fv)) in c.recovered.iter().zip(&f.recovered) {
                assert_eq!(cf, ff, "seed {seed} req {i}: frequency set");
                let dev = cv.dist(*fv);
                assert!(
                    dev <= bound,
                    "seed {seed} req {i}: surviving deviation {dev:.3e} > {bound:.3e}"
                );
            }
        }
        assert!(
            off_gpu > 0,
            "seed {seed}: detected corruptions must visibly re-route requests"
        );
    }
}
