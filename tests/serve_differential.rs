//! Differential tests for the serving layer: `cusfft::serve` must be a
//! pure batching/scheduling optimisation. For every request in a batch —
//! any batch composition, any worker count — the recovered spectrum must
//! be **bit-identical** to running `CusFft::execute` directly on a fresh
//! device, and the whole run (outputs *and* simulated timeline) must be
//! deterministic despite multi-threaded dispatch.

use std::sync::Arc;

use cusfft::{CusFft, ServeConfig, ServeEngine, ServeRequest, Variant};
use gpu_sim::{DeviceSpec, GpuDevice};
use sfft_cpu::SfftParams;
use signal::{MagnitudeModel, SparseSignal};

/// A mixed-geometry batch: three signal lengths, two sparsities, both
/// variants, distinct seeds — enough to populate several plan groups.
fn mixed_batch(len: usize) -> Vec<ServeRequest> {
    let geometries = [
        (1 << 10, 4, Variant::Optimized),
        (1 << 11, 8, Variant::Optimized),
        (1 << 10, 4, Variant::Baseline),
        (1 << 12, 8, Variant::Optimized),
    ];
    (0..len)
        .map(|i| {
            let (n, k, variant) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 1000 + i as u64);
            ServeRequest::new(s.time, k, variant, 31 * i as u64 + 7)
        })
        .collect()
}

/// Direct single-shot execution of one request on a fresh device.
fn direct(req: &ServeRequest) -> (signal::Recovered, usize) {
    let plan = CusFft::new(
        Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x())),
        Arc::new(SfftParams::tuned(req.time.len(), req.k)),
        req.variant,
    );
    let out = plan.execute(&req.time, req.seed);
    (out.recovered, out.num_hits)
}

#[test]
fn serve_is_bit_identical_to_direct_execute() {
    for &batch_len in &[1usize, 3, 6, 8] {
        for &workers in &[1usize, 2, 4] {
            let engine = ServeEngine::new(
                DeviceSpec::tesla_k20x(),
                ServeConfig {
                    workers,
                    cache_capacity: 8,
                    ..ServeConfig::default()
                },
            ).expect("serve config is valid");
            let reqs = mixed_batch(batch_len);
            let report = engine.serve_batch(&reqs);
            assert_eq!(report.outcomes.len(), batch_len);
            for (i, (req, outcome)) in reqs.iter().zip(&report.outcomes).enumerate() {
                let (want, want_hits) = direct(req);
                let resp = outcome.response().expect("fault-free serving completes");
                assert_eq!(
                    resp.recovered, want,
                    "batch {batch_len}, workers {workers}, request {i}: \
                     served spectrum differs from direct execution"
                );
                assert_eq!(resp.num_hits, want_hits);
            }
        }
    }
}

#[test]
fn worker_count_never_changes_results() {
    let reqs = mixed_batch(6);
    let serve = |workers| {
        ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        ).expect("serve config is valid")
        .serve_batch(&reqs)
    };
    let base = serve(1);
    for workers in 2..=4 {
        let report = serve(workers);
        for (a, b) in base.responses().zip(report.responses()) {
            assert_eq!(a.recovered, b.recovered, "workers={workers}");
            assert_eq!(a.num_hits, b.num_hits);
        }
        assert_eq!(base.outcomes.len(), report.outcomes.len());
    }
}

#[test]
fn repeated_runs_reproduce_spectra_and_timeline() {
    // Two engines, same config, same batch: outputs AND the merged
    // simulated timeline must match bit-for-bit — the deterministic op
    // merge makes the timeline a function of (requests, config), not of
    // OS thread scheduling.
    let reqs = mixed_batch(8);
    let run = || {
        ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 3,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        ).expect("serve config is valid")
        .serve_batch(&reqs)
    };
    let a = run();
    let b = run();
    for (ra, rb) in a.responses().zip(b.responses()) {
        assert_eq!(ra.recovered, rb.recovered);
        assert_eq!(ra.num_hits, rb.num_hits);
        assert_eq!(ra.path, rb.path);
    }
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "simulated makespan must be bit-identical across runs"
    );
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(
        a.concurrency, b.concurrency,
        "per-stream occupancy profile must be identical across runs"
    );
    assert_eq!(a.groups, b.groups);
}

#[test]
fn cache_counters_accumulate_across_batches() {
    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 2,
            cache_capacity: 8,
            ..ServeConfig::default()
        },
    ).expect("serve config is valid");
    let reqs = mixed_batch(8); // 4 distinct geometries, each twice
    let first = engine.serve_batch(&reqs);
    assert_eq!(first.cache.misses, 4, "one build per geometry");
    assert_eq!(first.cache.hits, 4, "second request of each geometry hits");
    let second = engine.serve_batch(&reqs);
    assert_eq!(second.cache.misses, 4, "no rebuilds on the second batch");
    assert_eq!(second.cache.hits, 12, "all eight requests hit");
    assert!(second.cache.hit_rate() > 0.7);
}

#[test]
fn multi_group_batches_occupy_concurrent_streams() {
    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 2,
            cache_capacity: 8,
            ..ServeConfig::default()
        },
    ).expect("serve config is valid");
    let report = engine.serve_batch(&mixed_batch(8));
    assert!(
        report.concurrency.max_concurrent_streams >= 2,
        "expected overlapping streams, got {}",
        report.concurrency.max_concurrent_streams
    );
    // Every worker's backbone stream shows up in the per-stream table.
    assert!(report.concurrency.per_stream.len() >= 2);
}
