//! Timing-model integration: the paper's headline performance *shapes*
//! must emerge from the cost model — sub-linear sparse scaling, the
//! dense-FFT crossover, the optimized-vs-baseline gap, and sparsity
//! (in)sensitivity.

use std::sync::Arc;

use cusfft::{cufft_dense_baseline, cufft_model_time, CusFft, Variant};
use gpu_sim::{GpuDevice, DEFAULT_STREAM};
use sfft_cpu::SfftParams;
use signal::{MagnitudeModel, SparseSignal};

fn cusfft_time(log2n: u32, k: usize, variant: Variant) -> f64 {
    let n = 1usize << log2n;
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 3);
    let params = Arc::new(SfftParams::tuned(n, k));
    CusFft::new(Arc::new(GpuDevice::k20x()), params, variant)
        .execute(&s.time, 1)
        .sim_time
}

fn cufft_time(log2n: u32) -> f64 {
    let n = 1usize << log2n;
    let s = SparseSignal::generate(n, 4, MagnitudeModel::Unit, 3);
    let dev = GpuDevice::k20x();
    let _ = cufft_dense_baseline(&dev, &s.time, DEFAULT_STREAM);
    dev.elapsed()
}

#[test]
fn cusfft_scales_sublinearly_in_n() {
    // Quadrupling n (fixed k) must grow cusFFT's time by well under 4x —
    // the defining sub-linearity of Figure 5(a).
    let t_small = cusfft_time(14, 32, Variant::Optimized);
    let t_big = cusfft_time(16, 32, Variant::Optimized);
    let growth = t_big / t_small;
    assert!(
        growth < 3.0,
        "sub-linear growth expected: 4x data -> {growth:.2}x time"
    );
}

#[test]
fn cufft_scales_superlinearly_in_n() {
    let t_small = cufft_time(14);
    let t_big = cufft_time(18);
    assert!(
        t_big / t_small > 8.0,
        "dense FFT must pay ~n log n: got {:.2}x for 16x data",
        t_big / t_small
    );
}

#[test]
fn crossover_cusfft_beats_cufft_at_large_n() {
    // Figure 5(a): cuFFT wins small sizes, cusFFT wins large ones.
    let small = 12u32;
    let large = 19u32;
    let k = 64;
    assert!(
        cusfft_time(small, k.min((1 << small) / 8), Variant::Optimized) > cufft_time(small),
        "at n=2^{small}, dense should win"
    );
    assert!(
        cusfft_time(large, k, Variant::Optimized) < cufft_time(large),
        "at n=2^{large}, sparse should win"
    );
}

#[test]
fn optimized_beats_baseline_across_sizes() {
    for log2n in [13u32, 15, 17] {
        let k = 32;
        let b = cusfft_time(log2n, k, Variant::Baseline);
        let o = cusfft_time(log2n, k, Variant::Optimized);
        assert!(
            o < b,
            "n=2^{log2n}: optimized {o:.3e} should beat baseline {b:.3e}"
        );
    }
}

#[test]
fn optimized_speedup_is_paper_magnitude() {
    // "the optimized cusFFT is on average 2x faster than the baseline" —
    // accept a broad band around that.
    let b = cusfft_time(16, 64, Variant::Baseline);
    let o = cusfft_time(16, 64, Variant::Optimized);
    let speedup = b / o;
    assert!(
        (1.3..8.0).contains(&speedup),
        "optimized/baseline speedup {speedup:.2}x out of plausible band"
    );
}

#[test]
fn cusfft_grows_slowly_with_k() {
    // Figure 5(b): runtime increases "very slowly" with sparsity.
    let t1 = cusfft_time(16, 16, Variant::Optimized);
    let t2 = cusfft_time(16, 256, Variant::Optimized);
    assert!(t2 > t1 * 0.8, "more work with more coefficients");
    assert!(
        t2 < t1 * 8.0,
        "16x sparsity should cost well under 16x: {:.2}x",
        t2 / t1
    );
}

#[test]
fn cufft_is_independent_of_k() {
    // Dense FFT cost depends only on n.
    let a = cufft_model_time(&GpuDevice::k20x(), 1 << 20, 1);
    let b = cufft_model_time(&GpuDevice::k20x(), 1 << 20, 1);
    assert_eq!(a, b);
}

#[test]
fn simulated_times_are_host_independent() {
    // The simulated clock is a pure function of the workload — two
    // consecutive measurements are identical (unlike wall time).
    let a = cusfft_time(13, 16, Variant::Optimized);
    let b = cusfft_time(13, 16, Variant::Optimized);
    assert_eq!(a, b);
}

#[test]
fn input_transfer_scales_with_n() {
    let n1 = 1usize << 12;
    let n2 = 1usize << 14;
    let s1 = SparseSignal::generate(n1, 8, MagnitudeModel::Unit, 1);
    let s2 = SparseSignal::generate(n2, 8, MagnitudeModel::Unit, 1);
    let o1 = CusFft::new(
        Arc::new(GpuDevice::k20x()),
        Arc::new(SfftParams::tuned(n1, 8)),
        Variant::Optimized,
    )
    .execute(&s1.time, 1);
    let o2 = CusFft::new(
        Arc::new(GpuDevice::k20x()),
        Arc::new(SfftParams::tuned(n2, 8)),
        Variant::Optimized,
    )
    .execute(&s2.time, 1);
    assert!(o2.input_transfer > o1.input_transfer);
    // Fixed PCIe latency means not exactly 4x.
    assert!(o2.input_transfer < o1.input_transfer * 4.0);
}
