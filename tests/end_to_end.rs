//! End-to-end integration: every implementation in the workspace —
//! sequential reference, PsFFT, cusFFT baseline, cusFFT optimized — must
//! recover the same sparse spectra on shared workloads, noiseless and
//! noisy.

use std::sync::Arc;

use cusfft::{CusFft, Variant};
use gpu_sim::GpuDevice;
use sfft_cpu::{psfft, sfft, SfftParams};
use signal::{
    add_awgn, l1_error_per_coeff, support_precision, support_recall, MagnitudeModel, Recovered,
    SparseSignal,
};

fn run_all(n: usize, k: usize, signal: &[fft::Cplx], seed: u64) -> [Recovered; 4] {
    let params = Arc::new(SfftParams::tuned(n, k));
    let serial = sfft(&params, signal, seed);
    let parallel = psfft(&params, signal, seed);
    let base = CusFft::new(Arc::new(GpuDevice::k20x()), params.clone(), Variant::Baseline)
        .execute(signal, seed)
        .recovered;
    let opt = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Optimized)
        .execute(signal, seed)
        .recovered;
    [serial, parallel, base, opt]
}

#[test]
fn all_implementations_recover_noiseless_signal() {
    let (n, k) = (1 << 13, 16);
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 101);
    for (i, rec) in run_all(n, k, &s.time, 7).iter().enumerate() {
        let recall = support_recall(&s.coords, rec);
        let err = l1_error_per_coeff(&s.coords, rec);
        assert!(recall > 0.99, "impl {i}: recall {recall}");
        assert!(err < 1e-3, "impl {i}: L1 error {err}");
    }
}

#[test]
fn all_implementations_recover_varied_magnitudes() {
    let (n, k) = (1 << 13, 12);
    let s = SparseSignal::generate(n, k, MagnitudeModel::Uniform { lo: 1.0, hi: 8.0 }, 33);
    for (i, rec) in run_all(n, k, &s.time, 3).iter().enumerate() {
        assert!(
            support_recall(&s.coords, rec) > 0.9,
            "impl {i} missed coefficients"
        );
        assert!(
            l1_error_per_coeff(&s.coords, rec) < 0.05,
            "impl {i}: L1 error too high"
        );
    }
}

#[test]
fn robust_to_moderate_noise() {
    let (n, k) = (1 << 13, 8);
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 5);
    let mut noisy = s.time.clone();
    add_awgn(&mut noisy, 40.0, 77);
    for (i, rec) in run_all(n, k, &noisy, 11).iter().enumerate() {
        let recall = support_recall(&s.coords, rec);
        assert!(recall > 0.9, "impl {i}: recall under noise {recall}");
        // Large coefficients still accurate to ~the noise floor.
        for &(f, v) in &s.coords {
            if let Some(&(_, est)) = rec.iter().find(|&&(g, _)| g == f) {
                assert!(
                    est.dist(v) < 0.15,
                    "impl {i}, f={f}: {est:?} vs {v:?}"
                );
            }
        }
    }
}

#[test]
fn spurious_coefficients_are_negligible() {
    let (n, k) = (1 << 13, 8);
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 21);
    for (i, rec) in run_all(n, k, &s.time, 13).iter().enumerate() {
        // Either precision is high, or every spurious entry is tiny.
        let precision = support_precision(&s.coords, rec);
        let worst_spurious = rec
            .iter()
            .filter(|&&(f, _)| s.coords.iter().all(|&(g, _)| g != f))
            .map(|(_, v)| v.abs())
            .fold(0.0f64, f64::max);
        assert!(
            precision > 0.5 || worst_spurious < 1e-3,
            "impl {i}: precision {precision}, worst spurious {worst_spurious}"
        );
    }
}

#[test]
fn clustered_support_degrades_gracefully() {
    // Adjacent-frequency clusters are the sFFT's known hard case: the
    // permutation maps a cluster to an arithmetic progression that can
    // still collide in buckets. Loose clusters must still recover well;
    // the experiment documents the behaviour rather than assuming it.
    use signal::clustered_signal;
    let n = 1 << 13;
    let k = 16;
    let params = Arc::new(SfftParams::tuned(n, k));

    let loose = clustered_signal(n, k, 2, 5);
    let rec_loose = CusFft::new(Arc::new(GpuDevice::k20x()), params.clone(), Variant::Optimized)
        .execute(&loose.time, 3)
        .recovered;
    assert!(
        support_recall(&loose.coords, &rec_loose) > 0.9,
        "pairs of adjacent coefficients should mostly survive"
    );

    let tight = clustered_signal(n, k, 8, 5);
    let rec_tight = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Optimized)
        .execute(&tight.time, 3)
        .recovered;
    let recall_tight = support_recall(&tight.coords, &rec_tight);
    // Must still find most of the energy; exact recovery is not promised
    // for tight clusters (documented limitation).
    assert!(
        recall_tight > 0.5,
        "tight clusters lost too much: recall {recall_tight}"
    );
}

#[test]
fn cross_size_sweep_stays_accurate() {
    for (log2n, k) in [(11usize, 4usize), (12, 8), (14, 32)] {
        let n = 1 << log2n;
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, log2n as u64);
        let params = Arc::new(SfftParams::tuned(n, k));
        let out = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Optimized)
            .execute(&s.time, 1);
        assert!(
            support_recall(&s.coords, &out.recovered) > 0.99,
            "n=2^{log2n} k={k}"
        );
    }
}
