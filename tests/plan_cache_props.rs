//! Property tests for the serving layer's plan cache: under arbitrary
//! interleaved lookup sequences, plans never cross-contaminate (the plan
//! returned for a key always has that key's geometry and variant) and the
//! resident set never exceeds the LRU bound.

use std::sync::Arc;

use cusfft::{PlanCache, PlanKey, ServeQos, Variant};
use gpu_sim::{DeviceSpec, GpuDevice};
use proptest::prelude::*;

/// Decodes a generated triple into a plan key: signal lengths 2^9..2^12,
/// sparsities {2, 4, 8}, both variants.
fn key(n_exp: usize, k_sel: usize, v_sel: usize) -> PlanKey {
    PlanKey {
        n: 1 << n_exp,
        k: [2, 4, 8][k_sel],
        variant: if v_sel == 0 {
            Variant::Baseline
        } else {
            Variant::Optimized
        },
        qos: ServeQos::Full,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn plans_never_cross_contaminate_and_lru_bound_holds(
        capacity in 1usize..5,
        lookups in prop::collection::vec((9usize..13, 0usize..3, 0usize..2), 1..30),
    ) {
        let cache = PlanCache::new(capacity);
        let device = Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()));
        for &(n_exp, k_sel, v_sel) in &lookups {
            let k = key(n_exp, k_sel, v_sel);
            let plan = cache.get_or_build(&device, k);
            // The plan handed back for this key must be *for* this key —
            // an interleaved workload must never observe another
            // geometry's filters or the wrong variant.
            prop_assert_eq!(plan.params().n, k.n);
            prop_assert_eq!(plan.params().k, k.k);
            prop_assert_eq!(plan.variant(), k.variant);
            // The LRU bound is an invariant, not an eventual property.
            prop_assert!(cache.stats().len <= capacity);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lookups.len() as u64);
    }

    #[test]
    fn repeated_key_shares_one_plan(
        n_exp in 9usize..13,
        k_sel in 0usize..3,
        repeats in 2usize..6,
    ) {
        let cache = PlanCache::new(4);
        let device = Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()));
        let k = key(n_exp, k_sel, 1);
        let first = cache.get_or_build(&device, k);
        for _ in 1..repeats {
            let again = cache.get_or_build(&device, k);
            prop_assert!(Arc::ptr_eq(&first, &again),
                "hits must return the cached plan, not a rebuild");
        }
        prop_assert_eq!(cache.stats().misses, 1);
        prop_assert_eq!(cache.stats().hits, (repeats - 1) as u64);
    }
}

#[test]
fn eviction_is_strictly_lru() {
    // Deterministic companion to the property: fill a capacity-2 cache,
    // touch the older key, insert a third — the untouched key is evicted.
    let cache = PlanCache::new(2);
    let device = Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()));
    let a = key(9, 0, 0);
    let b = key(10, 0, 0);
    let c = key(11, 0, 0);
    cache.get_or_build(&device, a);
    cache.get_or_build(&device, b);
    cache.get_or_build(&device, a); // a most recent; b is the LRU victim
    cache.get_or_build(&device, c);
    assert_eq!(cache.stats().evictions, 1);
    cache.get_or_build(&device, a); // still resident: a hit
    assert_eq!(cache.stats().hits, 2);
    cache.get_or_build(&device, b); // evicted: a rebuild
    assert_eq!(cache.stats().misses, 4);
}
