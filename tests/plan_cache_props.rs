//! Property tests for the serving layer's plan cache: under arbitrary
//! interleaved lookup sequences, plans never cross-contaminate (the plan
//! returned for a key always has that key's geometry, variant and
//! backend) and the resident set never exceeds the LRU bound.

use std::sync::Arc;

use cusfft::{BackendKind, BackendRegistry, PlanCache, PlanKey, ServeQos, Variant};
use gpu_sim::{DeviceSpec, GpuDevice};
use proptest::prelude::*;

/// Decodes a generated tuple into a plan key: signal lengths 2^9..2^12,
/// sparsities {2, 4, 8}, both variants, all three backends.
fn key(n_exp: usize, k_sel: usize, v_sel: usize, b_sel: usize) -> PlanKey {
    PlanKey {
        n: 1 << n_exp,
        k: [2, 4, 8][k_sel],
        variant: if v_sel == 0 {
            Variant::Baseline
        } else {
            Variant::Optimized
        },
        qos: ServeQos::Full,
        backend: BackendKind::all()[b_sel],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn plans_never_cross_contaminate_and_lru_bound_holds(
        capacity in 1usize..5,
        lookups in prop::collection::vec(
            (9usize..13, 0usize..3, 0usize..2, 0usize..3), 1..30),
    ) {
        let cache = PlanCache::new(capacity);
        let registry = BackendRegistry::with_defaults();
        let device = Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()));
        for &(n_exp, k_sel, v_sel, b_sel) in &lookups {
            let k = key(n_exp, k_sel, v_sel, b_sel);
            let plan = cache.get_or_build(&device, &registry, k).unwrap();
            // The plan handed back for this key must be *for* this key —
            // an interleaved workload must never observe another
            // geometry's filters, the wrong variant, or a plan built by
            // a different backend.
            prop_assert_eq!(plan.params().n, k.n);
            prop_assert_eq!(plan.params().k, k.k);
            prop_assert_eq!(plan.variant(), k.variant);
            prop_assert_eq!(plan.backend(), k.backend);
            // The LRU bound is an invariant, not an eventual property.
            prop_assert!(cache.stats().len <= capacity);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lookups.len() as u64);
    }

    #[test]
    fn repeated_key_shares_one_plan(
        n_exp in 9usize..13,
        k_sel in 0usize..3,
        b_sel in 0usize..3,
        repeats in 2usize..6,
    ) {
        let cache = PlanCache::new(4);
        let registry = BackendRegistry::with_defaults();
        let device = Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()));
        let k = key(n_exp, k_sel, 1, b_sel);
        let first = cache.get_or_build(&device, &registry, k).unwrap();
        for _ in 1..repeats {
            let again = cache.get_or_build(&device, &registry, k).unwrap();
            prop_assert!(Arc::ptr_eq(&first, &again),
                "hits must return the cached plan, not a rebuild");
        }
        prop_assert_eq!(cache.stats().misses, 1);
        prop_assert_eq!(cache.stats().hits, (repeats - 1) as u64);
    }
}

#[test]
fn eviction_is_strictly_lru() {
    // Deterministic companion to the property: fill a capacity-2 cache,
    // touch the older key, insert a third — the untouched key is evicted.
    let cache = PlanCache::new(2);
    let registry = BackendRegistry::with_defaults();
    let device = Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()));
    let a = key(9, 0, 0, 0);
    let b = key(10, 0, 0, 0);
    let c = key(11, 0, 0, 0);
    cache.get_or_build(&device, &registry, a);
    cache.get_or_build(&device, &registry, b);
    cache.get_or_build(&device, &registry, a); // a most recent; b is the LRU victim
    cache.get_or_build(&device, &registry, c);
    assert_eq!(cache.stats().evictions, 1);
    cache.get_or_build(&device, &registry, a); // still resident: a hit
    assert_eq!(cache.stats().hits, 2);
    cache.get_or_build(&device, &registry, b); // evicted: a rebuild
    assert_eq!(cache.stats().misses, 4);
}

/// Regression: before the backend dimension existed, two requests with
/// the same `(n, k, variant, qos)` but different execution backends
/// aliased to one cache slot — the second requester silently received a
/// plan built by the *other* backend. The key now carries the backend,
/// so equal geometries on different backends are distinct entries that
/// never share a plan.
#[test]
fn backend_dimension_prevents_plan_aliasing() {
    let cache = PlanCache::new(8);
    let registry = BackendRegistry::with_defaults();
    let device = Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()));
    let gpu = key(10, 1, 1, 0);
    let cpu = PlanKey {
        backend: BackendKind::SfftCpu,
        ..gpu
    };
    assert_eq!(gpu.n, cpu.n);
    assert_eq!(gpu.variant, cpu.variant);
    assert_ne!(gpu, cpu, "keys differing only in backend must not collide");

    let gpu_plan = cache.get_or_build(&device, &registry, gpu).unwrap();
    let cpu_plan = cache.get_or_build(&device, &registry, cpu).unwrap();
    assert_eq!(gpu_plan.backend(), BackendKind::GpuSim);
    assert_eq!(cpu_plan.backend(), BackendKind::SfftCpu);
    assert_eq!(cache.stats().misses, 2, "distinct backends are distinct entries");
    assert_eq!(cache.stats().len, 2);

    // Looking either key up again returns the plan built by its own
    // backend, not the other one's.
    let gpu_again = cache.get_or_build(&device, &registry, gpu).unwrap();
    assert!(Arc::ptr_eq(&gpu_plan, &gpu_again));
    assert_eq!(cache.stats().hits, 1);
}
