//! Flight-recorder contract tests — see DESIGN.md §16.
//!
//! Pinned contracts:
//!
//! 1. **Artifact bit-identity** — on every serving path (batch,
//!    overload, fleet) the rendered audit artifacts (decision log JSON
//!    and text, SLO report, every request's explain chain, the derived
//!    cause vector) are byte-identical across serve worker counts
//!    {1, 2, 4}, host pool widths {1, 8} and fault seeds {1, 7} (each
//!    seed compared against itself, of course — seeds change *which*
//!    decisions happen, never whether they replay identically).
//! 2. **Complete chains** — every submitted request explains: the
//!    chain is non-empty, starts at an admission root, and ends at the
//!    request's terminal event. In particular every non-`Done` outcome
//!    carries the decision trail that rejected or failed it.
//! 3. **Golden explain** — the rendered chain of a small fixed run is
//!    pinned byte for byte.
//! 4. **Forest contract (property)** — over random batch shapes and
//!    fault seeds, parent links always form a forest whose roots are
//!    admission events, and explain chains stay root-anchored.

use cusfft::{
    explain, is_root_kind, DeviceFleet, FleetConfig, OverloadConfig, ServeConfig, ServeEngine,
    ServeReport, ServeRequest, TimedRequest, Variant,
};
use gpu_sim::{DeviceSpec, FaultConfig};
use proptest::prelude::*;
use signal::{MagnitudeModel, SparseSignal};

/// A mixed-geometry batch producing several plan groups.
fn batch(len: usize, seed: u64) -> Vec<ServeRequest> {
    let geometries = [
        (1 << 10, 4, Variant::Optimized),
        (1 << 11, 8, Variant::Optimized),
        (1 << 12, 8, Variant::Optimized),
        (1 << 11, 8, Variant::Baseline),
    ];
    (0..len)
        .map(|i| {
            let (n, k, variant) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, seed * 100 + i as u64);
            ServeRequest::new(s.time, k, variant, 19 * i as u64 + 5)
        })
        .collect()
}

/// Runs `f` on a dedicated host pool of the given width.
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build is infallible")
        .install(f)
}

/// Every byte the flight recorder renders for a report, concatenated —
/// equality of this string is equality of all shipped artifacts.
fn audit_fingerprint(report: &ServeReport) -> String {
    let audit = report.audit.as_deref().expect("audited run");
    audit.validate().expect("audit log roots at admissions");
    let mut out = String::new();
    out.push_str(&audit.log.to_json());
    out.push_str(&audit.log.to_text());
    out.push_str(&audit.slo.to_json());
    for cause in &audit.causes {
        out.push_str(cause);
        out.push('\n');
    }
    for r in 0..report.outcomes.len() {
        let chain = explain(report, r).expect("every request has a chain");
        out.push_str(&chain.render_text());
        out.push_str(&chain.render_json());
    }
    out
}

/// Asserts contract 2 on a report: complete root-to-terminal chains.
fn assert_complete_chains(report: &ServeReport, what: &str) {
    for (r, outcome) in report.outcomes.iter().enumerate() {
        let chain = explain(report, r)
            .unwrap_or_else(|| panic!("{what}: request {r} has no decision chain"));
        assert!(!chain.events.is_empty(), "{what}: request {r} chain is empty");
        assert!(
            is_root_kind(&chain.events[0].name),
            "{what}: request {r} chain starts at {:?}, not an admission root",
            chain.events[0].name
        );
        assert!(
            chain.events.iter().any(|e| e.name == "terminal"),
            "{what}: request {r} chain has no terminal event"
        );
        if outcome.response().is_none() {
            assert!(
                chain.events.len() >= 2,
                "{what}: non-served request {r} has a bare chain"
            );
        }
    }
}

fn engine(workers: usize, seed: u64) -> ServeEngine {
    ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers,
            cache_capacity: 8,
            faults: Some(FaultConfig::uniform(seed, 0.05).with_sdc(0.02)),
            audit: true,
            ..ServeConfig::default()
        },
    )
    .expect("serve config is valid")
}

fn lossy_fleet(workers: usize, seed: u64) -> DeviceFleet {
    let mut fleet = FleetConfig::heterogeneous();
    fleet.members[0].faults = Some(FaultConfig::uniform(seed, 0.2).with_device_loss(1.0));
    fleet.members[2].faults = Some(FaultConfig::uniform(seed.wrapping_add(1), 0.1));
    DeviceFleet::new(
        fleet,
        ServeConfig {
            workers,
            cache_capacity: 8,
            audit: true,
            ..ServeConfig::default()
        },
    )
    .expect("fleet config is valid")
}

/// An overload trace paced at 2x the admission model's drain estimate,
/// with a deadline on every fourth request.
fn overload_trace(reqs: Vec<ServeRequest>) -> Vec<TimedRequest> {
    let spec = DeviceSpec::tesla_k20x();
    let nominal = cusfft::nominal_service(&spec, 1 << 11, 8);
    let gap = nominal / 2.0;
    reqs.into_iter()
        .enumerate()
        .map(|(i, req)| {
            let t = TimedRequest::at(req, i as f64 * gap);
            if i % 4 == 3 {
                t.with_deadline(4.0 * nominal)
            } else {
                t
            }
        })
        .collect()
}

fn overload_policy(batch: usize) -> OverloadConfig {
    OverloadConfig {
        queue_capacity: (batch / 2).max(2),
        brownout_depth: (batch / 4).max(1),
        hedge_percentile: 0.5,
        hedge_factor: 1.25,
        ..OverloadConfig::default()
    }
}

/// Contract 1 across the full matrix, on all three serving paths.
#[test]
fn artifacts_bit_identical_across_workers_pools_and_seeds() {
    for seed in [1u64, 7] {
        let reqs = batch(10, seed);
        let trace = overload_trace(batch(10, seed));
        let policy = overload_policy(10);

        let batch_ref = with_pool(1, || audit_fingerprint(&engine(1, seed).serve_batch(&reqs)));
        let over_ref =
            with_pool(1, || audit_fingerprint(&engine(1, seed).serve_overload(&trace, &policy)));
        let fleet_ref = with_pool(1, || audit_fingerprint(&lossy_fleet(1, seed).serve(&reqs)));

        for workers in [1usize, 2, 4] {
            for pool in [1usize, 8] {
                let what = format!("seed={seed} workers={workers} pool={pool}");
                let b = with_pool(pool, || {
                    audit_fingerprint(&engine(workers, seed).serve_batch(&reqs))
                });
                assert!(b == batch_ref, "{what}: batch artifacts diverged");
                let o = with_pool(pool, || {
                    audit_fingerprint(&engine(workers, seed).serve_overload(&trace, &policy))
                });
                assert!(o == over_ref, "{what}: overload artifacts diverged");
                let f = with_pool(pool, || {
                    audit_fingerprint(&lossy_fleet(workers, seed).serve(&reqs))
                });
                assert!(f == fleet_ref, "{what}: fleet artifacts diverged");
            }
        }
    }
}

/// Contract 2 on all three paths, both fault seeds.
#[test]
fn every_request_explains_root_to_terminal() {
    for seed in [1u64, 7] {
        let reqs = batch(12, seed);
        assert_complete_chains(&engine(2, seed).serve_batch(&reqs), "batch");
        let trace = overload_trace(batch(12, seed));
        let report = engine(2, seed).serve_overload(&trace, &overload_policy(12));
        assert!(
            report.outcomes.iter().any(|o| o.response().is_none()),
            "sanity: the 2x overload trace rejects or fails something"
        );
        assert_complete_chains(&report, "overload");
        assert_complete_chains(&lossy_fleet(2, seed).serve(&reqs), "fleet");
    }
}

/// Contract 3: the explain rendering of a tiny fault-free run is pinned
/// byte for byte. A fixed 2-request single-group batch: admission root,
/// placement, terminal — any change to event naming, ordering, ids or
/// the text renderer shows up here.
#[test]
fn golden_explain_snapshot() {
    let reqs = batch(2, 3);
    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 2,
            cache_capacity: 8,
            audit: true,
            ..ServeConfig::default()
        },
    )
    .expect("serve config is valid");
    let report = engine.serve_batch(&reqs);
    let rendered: String = (0..reqs.len())
        .map(|r| explain(&report, r).expect("chain").render_text())
        .collect();
    let golden = "\
request 0: 3 decision events
  #0 [0] batch_admitted requests=2 groups=2 <- root
  #1 [0] group_placed(gid=0) members=1 n=1024 k=4 qos=full backend=gpu_sim <- #0
  #3 [0] terminal(request=0, gid=0) outcome=done cause=done:gpu <- #1
request 1: 3 decision events
  #0 [0] batch_admitted requests=2 groups=2 <- root
  #2 [0] group_placed(gid=1) members=1 n=2048 k=8 qos=full backend=gpu_sim <- #0
  #4 [1] terminal(request=1, gid=1) outcome=done cause=done:gpu <- #2
";
    assert_eq!(rendered, golden, "explain text drifted from the golden snapshot");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 4: for random batch shapes, fault rates and seeds, the
    /// audit log is a forest rooted at admission events and every chain
    /// explain returns is anchored at a root.
    #[test]
    fn audit_log_is_admission_rooted_forest(
        len in 1usize..10,
        seed in 0u64..500,
        rate in 0.0f64..0.3,
        workers in 1usize..4,
    ) {
        let reqs = batch(len, seed);
        let engine = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers,
                cache_capacity: 4,
                faults: Some(FaultConfig::uniform(seed, rate).with_sdc(rate / 2.0)),
                audit: true,
                ..ServeConfig::default()
            },
        )
        .expect("serve config is valid");
        let report = engine.serve_batch(&reqs);
        let audit = report.audit.as_deref().expect("audited run");
        prop_assert!(audit.validate().is_ok(), "forest violated: {:?}", audit.validate());
        for r in 0..len {
            let chain = explain(&report, r).expect("chain exists");
            prop_assert!(!chain.events.is_empty());
            prop_assert!(is_root_kind(&chain.events[0].name));
        }
    }
}
