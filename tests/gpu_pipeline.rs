//! GPU-pipeline integration: step accounting, stream semantics, and the
//! per-kernel structure of a cusFFT execution on the simulated device.

use std::sync::Arc;

use cusfft::{CusFft, Variant};
use gpu_sim::{DeviceSpec, GpuDevice};
use sfft_cpu::SfftParams;
use signal::{MagnitudeModel, SparseSignal};

fn run(variant: Variant, n: usize, k: usize) -> (cusfft::CusFftOutput, Arc<GpuDevice>) {
    let device = Arc::new(GpuDevice::k20x());
    let params = Arc::new(SfftParams::tuned(n, k));
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 17);
    let out = CusFft::new(device.clone(), params, variant).execute(&s.time, 23);
    (out, device)
}

#[test]
fn baseline_launches_expected_kernel_set() {
    let (_, device) = run(Variant::Baseline, 1 << 12, 8);
    let names: Vec<String> = device.records().iter().map(|r| r.name.clone()).collect();
    for expected in [
        "perm_filter_partition",
        "cufft_batched_loc",
        "cufft_batched_est",
        "magnitude",
        "cutoff_sort",
        "locate",
        "reconstruct",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(expected)),
            "missing kernel {expected}; launched: {names:?}"
        );
    }
    assert!(
        !names.iter().any(|n| n.starts_with("remap")),
        "baseline must not use the async layout"
    );
}

#[test]
fn optimized_launches_expected_kernel_set() {
    let (_, device) = run(Variant::Optimized, 1 << 12, 8);
    let names: Vec<String> = device.records().iter().map(|r| r.name.clone()).collect();
    for expected in ["remap", "exec", "bucket_reduce", "cutoff_select", "noise_floor"] {
        assert!(
            names.iter().any(|n| n.starts_with(expected)),
            "missing kernel {expected}"
        );
    }
    assert!(
        !names.iter().any(|n| n.starts_with("cutoff_sort")),
        "optimized must use fast selection, not Thrust sort"
    );
}

#[test]
fn loop_count_matches_parameters() {
    let n = 1 << 12;
    let params = SfftParams::tuned(n, 8);
    let loops = params.loops_total();
    let (_, device) = run(Variant::Baseline, n, 8);
    let filters = device
        .records()
        .iter()
        .filter(|r| r.name.starts_with("perm_filter_partition"))
        .count();
    assert_eq!(filters, loops, "one filter kernel per loop");
    let sorts = device
        .records()
        .iter()
        .filter(|r| r.name.starts_with("cutoff_sort"))
        .count();
    assert_eq!(sorts, params.loops_loc, "one cutoff per location loop");
}

#[test]
fn elapsed_time_respects_schedule_bounds() {
    let (out, device) = run(Variant::Optimized, 1 << 13, 16);
    let records = device.records();
    let serial_sum: f64 = records.iter().map(|r| r.cost.total).sum();
    let longest: f64 = records.iter().map(|r| r.cost.total).fold(0.0, f64::max);
    // Fair-share device model: overlapping device kernels split bandwidth,
    // so the makespan sits between the longest op and the serial sum (the
    // reduce kernel's event dependencies keep it honest — before events
    // were added it could race ahead of the chunk execs).
    assert!(out.sim_time <= serial_sum + 1e-12, "makespan cannot exceed serial sum");
    assert!(out.sim_time >= longest - 1e-15);
    assert!(out.sim_time > 0.0);
}

#[test]
fn transfers_are_charged_in_and_out() {
    let (out, device) = run(Variant::Baseline, 1 << 12, 8);
    let recs = device.records();
    // Input is device-resident by convention; its cost is reported
    // separately and must match the PCIe model.
    assert!(recs.iter().all(|r| !r.name.starts_with("htod")));
    assert!(out.input_transfer > 0.0);
    let expected =
        gpu_sim::transfer_time(device.spec(), (1usize << 12) * std::mem::size_of::<fft::Cplx>());
    assert!((out.input_transfer - expected).abs() < 1e-15);
    // Sparse results go back over PCIe.
    assert!(recs.iter().any(|r| r.name.starts_with("dtoh")));
    assert!(out.sim_time_with_transfer() > out.sim_time);
}

#[test]
fn step_breakdown_sums_to_serial_total() {
    let (out, device) = run(Variant::Optimized, 1 << 12, 8);
    let serial_sum: f64 = device.records().iter().map(|r| r.cost.total).sum();
    assert!((out.steps.total() - serial_sum).abs() < 1e-12);
}

#[test]
fn bigger_devices_run_faster() {
    let n = 1 << 14;
    let k = 32;
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 2);
    let params = Arc::new(SfftParams::tuned(n, k));

    let k20x = CusFft::new(
        Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x())),
        params.clone(),
        Variant::Optimized,
    )
    .execute(&s.time, 1);
    let k40 = CusFft::new(
        Arc::new(GpuDevice::new(DeviceSpec::tesla_k40())),
        params,
        Variant::Optimized,
    )
    .execute(&s.time, 1);
    assert!(
        k40.sim_time < k20x.sim_time,
        "K40 ({:.3e}) should beat K20x ({:.3e})",
        k40.sim_time,
        k20x.sim_time
    );
    assert_eq!(k40.recovered, k20x.recovered, "results are device-independent");
}

#[test]
fn comb_variant_recovers_with_fewer_hits() {
    use sfft_cpu::CombParams;
    use signal::support_recall;

    let n = 1 << 13;
    let k = 16;
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 17);
    let params = Arc::new(SfftParams::tuned(n, k));

    let plain = CusFft::new(Arc::new(GpuDevice::k20x()), params.clone(), Variant::Optimized)
        .execute(&s.time, 23);
    let combed = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Optimized)
        .with_comb(CombParams::tuned(n, k))
        .execute(&s.time, 23);

    assert!(support_recall(&s.coords, &combed.recovered) > 0.99);
    assert!(
        combed.num_hits <= plain.num_hits,
        "comb must not add candidates: {} vs {}",
        combed.num_hits,
        plain.num_hits
    );
}

#[test]
fn profiler_report_is_renderable() {
    let (_, device) = run(Variant::Optimized, 1 << 12, 8);
    let report = device.profile_report();
    assert!(report.contains("remap"));
    assert!(report.contains("reconstruct"));
    let by_kernel = device.time_by_kernel();
    assert!(by_kernel.len() >= 5);
    assert!(by_kernel.iter().all(|(_, t)| *t >= 0.0));
}
