//! Tests for the deterministic chaos explorer (DESIGN.md §15): a small
//! slice of the smoke space runs green, exploration is bit-reproducible,
//! schedules round-trip through their replay JSON, and the shrinker
//! minimizes a schedule whose failure is synthesized by an invariant
//! stand-in.

use cusfft::chaos::run_schedule;
use cusfft::{chaos_space, explore, shrink, ChaosSchedule, ChaosSpace};
use gpu_sim::{FaultClass, FaultRates};

/// A cheap sub-slice of the smoke space: every fifth schedule, capped.
fn small_space() -> ChaosSpace {
    let all = chaos_space(true);
    ChaosSpace {
        schedules: all.schedules.into_iter().step_by(5).take(8).collect(),
    }
}

/// The serving stack holds its invariants across a fault/crash/fleet
/// slice — zero violations, every schedule explored, crash schedules
/// measuring a recovery overhead.
#[test]
fn smoke_slice_runs_clean() {
    let space = small_space();
    let report = explore(&space);
    assert_eq!(report.explored, space.schedules.len());
    assert!(
        report.violations.is_empty(),
        "invariant violations: {:?}",
        report
            .violations
            .iter()
            .map(|v| (&v.schedule, &v.violations))
            .collect::<Vec<_>>()
    );
    assert!(report.invariants_checked >= report.explored as u64 * 2);
    if report.crash_runs > 0 {
        assert!(report.max_recovery_overhead.is_finite());
    }
}

/// Exploration is deterministic: two sweeps of the same space agree on
/// every counter.
#[test]
fn exploration_is_reproducible() {
    let space = small_space();
    let a = explore(&space);
    let b = explore(&space);
    assert_eq!(a.explored, b.explored);
    assert_eq!(a.invariants_checked, b.invariants_checked);
    assert_eq!(a.violations.len(), b.violations.len());
    assert_eq!(a.crash_runs, b.crash_runs);
    assert_eq!(
        a.mean_recovery_overhead.to_bits(),
        b.mean_recovery_overhead.to_bits()
    );
    assert_eq!(
        a.max_recovery_overhead.to_bits(),
        b.max_recovery_overhead.to_bits()
    );
}

/// A single crash schedule runs end-to-end: recovery is invisible and
/// its overhead is measured.
#[test]
fn crash_schedule_measures_recovery_overhead() {
    let outcome = run_schedule(&ChaosSchedule {
        fault_seed: 7,
        rates: FaultRates::uniform(0.05),
        crash_epoch: Some(0),
        epoch_groups: 1,
        requests: 4,
        ..ChaosSchedule::default()
    });
    assert!(
        outcome.violations.is_empty(),
        "violations: {:?}",
        outcome.violations
    );
    let overhead = outcome
        .recovery_overhead
        .expect("a crash schedule measures recovery overhead");
    assert!(overhead.is_finite());
    assert!(overhead > -0.5, "overhead {overhead} is implausibly negative");
}

/// Every schedule in the smoke space replays exactly through its JSON
/// artifact encoding — the property CI relies on when it attaches a
/// minimal failing schedule.
#[test]
fn all_smoke_schedules_round_trip_through_json() {
    for s in &chaos_space(true).schedules {
        let back = ChaosSchedule::from_json(&s.to_json())
            .unwrap_or_else(|e| panic!("{}: {e}", s.to_json()));
        assert_eq!(&back, s);
    }
}

/// The shrinker is a no-op on passing schedules and monotone on the
/// schedule's complexity axes when it does run.
#[test]
fn shrink_never_grows_a_schedule() {
    let s = ChaosSchedule {
        fault_seed: 1,
        rates: FaultRates::one_hot(FaultClass::Launch, 0.5),
        crash_epoch: Some(1),
        requests: 4,
        workers: 2,
        epoch_groups: 2,
        ..ChaosSchedule::default()
    };
    let min = shrink(&s);
    assert!(min.requests <= s.requests);
    assert!(min.workers <= s.workers);
    assert!(min.epoch_groups <= s.epoch_groups);
    for class in FaultClass::ALL {
        assert!(min.rates.get(class) <= s.rates.get(class));
    }
}
