//! Property tests for the serving layer's exactly-once shape
//! (DESIGN.md §15): for arbitrary fault seeds, rates, worker counts and
//! batch mixes, every submitted request resolves to exactly one outcome
//! and the plan groups partition the request indices — the
//! [`cusfft::check_outcome_bijection`] invariant the chaos explorer
//! reuses on every schedule it runs.

use cusfft::{
    check_outcome_bijection, Journal, JournalOptions, ServeConfig, ServeEngine, ServeRequest,
    Variant,
};
use gpu_sim::{DeviceSpec, FaultConfig};
use proptest::prelude::*;
use signal::{MagnitudeModel, SparseSignal};

fn batch(len: usize, sig_salt: u64) -> Vec<ServeRequest> {
    let geometries = [
        (1 << 9, 4, Variant::Optimized),
        (1 << 10, 4, Variant::Baseline),
        (1 << 10, 8, Variant::Optimized),
    ];
    (0..len)
        .map(|i| {
            let (n, k, variant) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_salt + i as u64);
            ServeRequest::new(s.time, k, variant, 7 * i as u64 + 1)
        })
        .collect()
}

fn engine(workers: usize, faults: Option<FaultConfig>) -> ServeEngine {
    ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers,
            faults,
            ..ServeConfig::default()
        },
    )
    .expect("serve config is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `serve_batch` under arbitrary fault pressure: outcome count is a
    /// bijection with the submitted ids, groups partition the indices,
    /// and the per-request outcomes are invariant under the worker
    /// count.
    #[test]
    fn serve_batch_outcomes_are_a_bijection(
        fault_seed in 0u64..1_000,
        rate in 0.0f64..0.4,
        workers in 1usize..5,
        len in 1usize..9,
        sig_salt in 0u64..1_000,
    ) {
        let requests = batch(len, 9000 + sig_salt);
        let faults = Some(FaultConfig::uniform(fault_seed, rate));
        let report = engine(workers, faults).serve_batch(&requests);
        prop_assert!(
            check_outcome_bijection(requests.len(), &report).is_ok(),
            "bijection broken: {:?}",
            check_outcome_bijection(requests.len(), &report)
        );
        // Worker invariance on the same schedule.
        let single = engine(1, faults).serve_batch(&requests);
        prop_assert_eq!(&report.outcomes, &single.outcomes);
    }

    /// The journaled path preserves the bijection under fault pressure
    /// and arbitrary checkpoint cadence, and never invents or loses a
    /// request relative to `serve_batch`.
    #[test]
    fn journaled_outcomes_are_a_bijection(
        fault_seed in 0u64..1_000,
        rate in 0.0f64..0.4,
        workers in 1usize..4,
        epoch_groups in 1usize..4,
        len in 1usize..7,
    ) {
        let requests = batch(len, 17_000);
        let faults = Some(FaultConfig::uniform(fault_seed, rate));
        let opts = JournalOptions {
            epoch_groups,
            crash: gpu_sim::CrashPlan::never(),
        };
        let journaled = engine(workers, faults)
            .serve_journaled(&requests, &mut Journal::new(), &opts)
            .into_report()
            .expect("unarmed journaled run completes");
        prop_assert!(check_outcome_bijection(requests.len(), &journaled).is_ok());
        let plain = engine(workers, faults).serve_batch(&requests);
        prop_assert_eq!(&journaled.outcomes, &plain.outcomes);
    }
}
