//! Fleet serving contract tests — see DESIGN.md §14.
//!
//! Pinned contracts:
//!
//! 1. **Routing determinism** — the fleet [`ServeReport`] (outcomes,
//!    makespan, fleet tally, per-device summaries, merged timeline) is
//!    **bit-identical** across serve worker counts and host pool widths:
//!    every routing, breaker, health and clock decision happens on the
//!    coordinator thread, in group order, from deterministic inputs.
//! 2. **Loss never fails a request** — under certain whole-device loss
//!    (even fleet-wide), every request still completes: failover onto
//!    standby slabs where a healthy member exists, the CPU tier where
//!    none does. `FaultTally::failed` stays zero.
//! 3. **Failover is allocation-free** — failover placements ride the
//!    standby slabs reserved at fleet build; the only pool allocations a
//!    serve call performs are the primary routing reservations, and all
//!    of them are returned by the end of the call.
//! 4. **Drain/recovery lifecycle** — a member whose breaker keeps
//!    tripping is quarantined, probed after its cooldown, and the fleet
//!    serves on around it.
//! 5. **Brownout** — when healthy capacity collapses, full-QoS groups
//!    degrade instead of requests failing.
//!
//! The fault seed honours `CUSFFT_FAULT_SEED` so CI can sweep seeds.

use cusfft::{
    observe, CusFftError, DeviceFleet, FleetConfig, ServeConfig, ServePath, ServeQos,
    ServeReport, ServeRequest, Variant,
};
use gpu_sim::{BreakerConfig, FaultConfig};
use signal::{MagnitudeModel, SparseSignal};

/// Fault seed under test; CI sweeps this via the environment.
fn fault_seed() -> u64 {
    std::env::var("CUSFFT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A mixed-geometry batch producing several plan groups (grouping is by
/// plan key, so distinct `(n, variant)` pairs give distinct groups).
fn batch(len: usize) -> Vec<ServeRequest> {
    let geometries = [
        (1 << 10, 4, Variant::Optimized),
        (1 << 11, 8, Variant::Optimized),
        (1 << 12, 8, Variant::Optimized),
        (1 << 10, 4, Variant::Baseline),
        (1 << 11, 8, Variant::Baseline),
        (1 << 12, 8, Variant::Baseline),
    ];
    (0..len)
        .map(|i| {
            let (n, k, variant) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 3000 + i as u64);
            ServeRequest::new(s.time, k, variant, 19 * i as u64 + 5)
        })
        .collect()
}

/// Runs `f` on a dedicated host pool of the given width (the same
/// `install` idiom as `host_parallel_determinism`).
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build is infallible")
        .install(f)
}

/// Asserts two fleet reports are bit-identical in every deterministic
/// dimension, including the merged op timeline.
fn assert_same_report(a: &ServeReport, b: &ServeReport, what: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{what}: outcomes diverged");
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{what}: makespan diverged"
    );
    assert_eq!(a.fleet, b.fleet, "{what}: fleet tally diverged");
    assert_eq!(a.devices, b.devices, "{what}: device summaries diverged");
    assert_eq!(a.faults, b.faults, "{what}: fault tally diverged");
    let ops = |r: &ServeReport| -> Vec<String> {
        r.timeline.ops.iter().map(|o| format!("{o:?}")).collect()
    };
    assert_eq!(ops(a), ops(b), "{what}: merged timeline diverged");
}

/// A heterogeneous fleet with faults plus certain device loss targeted
/// at member 0 — the stress topology the determinism matrix runs.
fn lossy_fleet(workers: usize) -> DeviceFleet {
    let mut fleet = FleetConfig::heterogeneous();
    fleet.members[0].faults =
        Some(FaultConfig::uniform(fault_seed(), 0.2).with_device_loss(1.0));
    fleet.members[2].faults = Some(FaultConfig::uniform(fault_seed().wrapping_add(1), 0.1));
    DeviceFleet::new(
        fleet,
        ServeConfig {
            workers,
            cache_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .expect("fleet config is valid")
}

#[test]
fn fleet_report_bit_identical_across_workers_and_pool_widths() {
    let reqs = batch(12);
    let reference = with_pool(1, || lossy_fleet(1).serve(&reqs));
    assert!(
        reference.outcomes.iter().all(|o| o.response().is_some()),
        "sanity: the stress batch completes"
    );
    assert!(reference.fleet.device_losses >= 1, "sanity: member 0 went dark");
    for workers in [1usize, 2, 4] {
        for pool in [1usize, 8] {
            let report = with_pool(pool, || lossy_fleet(workers).serve(&reqs));
            assert_same_report(
                &reference,
                &report,
                &format!("workers={workers} pool={pool}"),
            );
        }
    }
}

#[test]
fn certain_loss_of_every_member_still_completes_on_cpu() {
    // Both members roll certain device loss at the first epoch: no
    // healthy failover target exists, so the whole batch lands on the
    // CPU tier — and still completes.
    let mut cfg = FleetConfig::homogeneous(2);
    for m in &mut cfg.members {
        m.faults = Some(FaultConfig::uniform(fault_seed(), 0.0).with_device_loss(1.0));
    }
    let fleet = DeviceFleet::new(cfg, ServeConfig::default()).expect("fleet config is valid");
    let reqs = batch(8);
    let report = fleet.serve(&reqs);
    assert!(report.outcomes.iter().all(|o| o.response().is_some()));
    assert_eq!(report.faults.failed, 0, "loss must never fail a request");
    assert_eq!(report.fleet.device_losses, 2);
    assert!(report.devices.iter().all(|d| d.lost));
    assert!(report.fleet.cpu_served_groups > 0);
    assert!(report.fleet.failovers > 0);
    for o in &report.outcomes {
        let resp = o.response().expect("checked above");
        assert_eq!(resp.path, ServePath::Cpu);
    }
    // CPU-served groups carry no device attribution.
    assert!(report.group_info.iter().all(|g| g.device.is_none()));
}

#[test]
fn failover_rides_standby_slabs_with_no_extra_pool_traffic() {
    // Member 0 goes dark at epoch 0; member 1 absorbs its placements
    // through the pre-reserved standby slots.
    let mut cfg = FleetConfig::homogeneous(2);
    cfg.members[0].faults =
        Some(FaultConfig::uniform(fault_seed(), 0.0).with_device_loss(1.0));
    let fleet = DeviceFleet::new(cfg, ServeConfig::default()).expect("fleet config is valid");
    let before = fleet.pool_traffic();
    let report = fleet.serve(&batch(8));
    let after = fleet.pool_traffic();

    assert!(report.outcomes.iter().all(|o| o.response().is_some()));
    assert_eq!(report.faults.failed, 0);
    assert!(report.fleet.failovers > 0, "loss must trigger failover");
    // Every failover that found a healthy member acquired a standby
    // slot; none of them touched a pool.
    let landed: u64 = report.devices.iter().map(|d| d.failovers_in).sum();
    assert_eq!(report.fleet.standby_acquires, landed);
    let allocs: u64 = after
        .iter()
        .zip(&before)
        .map(|((a, _), (b, _))| a - b)
        .sum();
    assert_eq!(
        allocs, report.fleet.routed_groups,
        "the only pool allocations are primary routing reservations"
    );
    // And every reservation taken during the call was returned.
    for ((alloc, release), (alloc0, release0)) in after.iter().zip(&before) {
        assert_eq!(alloc - alloc0, release - release0);
    }
}

#[test]
fn tripped_member_drains_probes_and_the_fleet_keeps_serving() {
    // Member 0 faults on every op (seed-independent), under a
    // hair-trigger breaker and a one-epoch quarantine: it trips, drains,
    // and is probed after cooldown; the probes keep faulting, so it ends
    // the call still quarantined — while every request completes.
    let mut cfg = FleetConfig::homogeneous(2);
    cfg.members[0].faults = Some(FaultConfig::persistent(fault_seed()));
    cfg.breaker = BreakerConfig {
        window: 2,
        trip_faults: 1,
        cooldown: 1,
    };
    cfg.drain_after_trips = 1;
    cfg.drain_cooldown_epochs = 1;
    cfg.epoch_groups = 2;
    let fleet = DeviceFleet::new(cfg, ServeConfig::default()).expect("fleet config is valid");
    let report = fleet.serve(&batch(12));

    assert!(report.outcomes.iter().all(|o| o.response().is_some()));
    assert_eq!(report.faults.failed, 0);
    assert!(report.fleet.drains >= 1, "member 0 must enter quarantine");
    assert!(
        report.fleet.drain_probes >= 1,
        "quarantine must be probed after its cooldown"
    );
    assert!(report.devices[0].trips >= 1);
    assert!(report.devices[0].drained, "persistent faults keep member 0 out");
    assert!(!report.devices[1].drained);
    assert!(
        report.devices[1].groups > 0,
        "the healthy member carries the load"
    );
}

#[test]
fn capacity_collapse_degrades_qos_instead_of_shedding() {
    // The two fast members (K20x, K40) go dark at epoch 0, leaving only
    // the budget Quadro: healthy modeled speed collapses below the
    // brownout fraction, so later epochs re-key full-QoS groups to
    // Degraded plans rather than dropping them.
    let mut cfg = FleetConfig::heterogeneous();
    cfg.members[0].faults =
        Some(FaultConfig::uniform(fault_seed(), 0.0).with_device_loss(1.0));
    cfg.members[1].faults =
        Some(FaultConfig::uniform(fault_seed().wrapping_add(9), 0.0).with_device_loss(1.0));
    cfg.epoch_groups = 1;
    let fleet = DeviceFleet::new(cfg, ServeConfig::default()).expect("fleet config is valid");
    let report = fleet.serve(&batch(12));

    assert!(report.outcomes.iter().all(|o| o.response().is_some()));
    assert_eq!(report.faults.failed, 0);
    assert!(
        report.fleet.brownout_groups >= 1,
        "capacity collapse must trigger brownout: {:?}",
        report.fleet
    );
    assert!(
        report
            .outcomes
            .iter()
            .filter_map(|o| o.response())
            .any(|r| r.qos == ServeQos::Degraded),
        "browned-out groups serve degraded responses"
    );
    assert!(
        report
            .timeline
            .ops
            .iter()
            .any(|o| o.label == "fleet:brownout"),
        "the brownout decision is on the control timeline"
    );
}

#[test]
fn invalid_fleet_configs_are_typed_errors() {
    let empty = DeviceFleet::new(FleetConfig::default(), ServeConfig::default());
    assert!(matches!(
        empty.unwrap_err(),
        CusFftError::BadConfig { ref reason } if reason.contains("no members")
    ));

    let mut zero_epoch = FleetConfig::homogeneous(1);
    zero_epoch.epoch_groups = 0;
    assert!(matches!(
        DeviceFleet::new(zero_epoch, ServeConfig::default()).unwrap_err(),
        CusFftError::BadConfig { ref reason } if reason.contains("epoch_groups")
    ));

    let mut bad_fraction = FleetConfig::homogeneous(1);
    bad_fraction.brownout_capacity_fraction = 1.5;
    assert!(matches!(
        DeviceFleet::new(bad_fraction, ServeConfig::default()).unwrap_err(),
        CusFftError::BadConfig { ref reason } if reason.contains("brownout")
    ));

    let zero_workers = DeviceFleet::new(
        FleetConfig::homogeneous(1),
        ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        },
    );
    assert!(matches!(
        zero_workers.unwrap_err(),
        CusFftError::BadConfig { .. }
    ));
}

#[test]
fn fleet_telemetry_exports_the_device_dimension() {
    let report = lossy_fleet(2).serve(&batch(12));

    // The span tree still covers the merged timeline exactly once.
    let tree = observe::span_tree(&report);
    tree.validate(report.timeline.ops.len())
        .expect("fleet span tree must validate");

    // Loss and failover decisions are visible as control-plane ops.
    assert!(report
        .timeline
        .ops
        .iter()
        .any(|o| o.label.starts_with("fault:device_loss:member0")));
    assert!(report
        .timeline
        .ops
        .iter()
        .any(|o| o.label.starts_with("fleet:failover:m0:")));

    // The metrics exposition grows the device dimension and the fleet
    // event counters.
    let prom = observe::metrics_registry(&report).render_prometheus();
    assert!(prom.contains("cusfft_fleet_events_total"), "{prom}");
    assert!(prom.contains("kind=\"device_loss\""));
    assert!(prom.contains("kind=\"failover\""));
    assert!(prom.contains("cusfft_fleet_device_health"));
    assert!(
        prom.contains("device=\"0/Tesla K20x\""),
        "served/device metrics carry the id/spec label"
    );
}
