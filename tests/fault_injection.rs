//! Fault-injection tests: the deterministic fault layer in `gpu-sim` and
//! the serving layer's recovery machinery (request isolation, bounded
//! retry, CPU degradation) — see DESIGN.md §9.
//!
//! Three contracts are pinned:
//!
//! 1. **Recovery is invisible** — a request that completes on a GPU path
//!    (first attempt or retry) returns a spectrum **bit-identical** to
//!    the fault-free run; only explicit CPU degradation may differ (it
//!    runs the reference algorithm, not the device kernels).
//! 2. **Faults are deterministic** — per-request outcomes and fault
//!    tallies are a pure function of `(requests, config, fault seed)`,
//!    invariant under the serve worker count and the host pool width;
//!    the merged timeline is bit-identical across pool widths and reruns.
//! 3. **Persistent faults re-route, never fail** — with every device op
//!    faulting, a whole batch still completes by re-routing onto the
//!    `SfftCpu` backend, producing the same spectra a fault-free serve
//!    explicitly addressed to that backend returns, with the counters to
//!    prove the recovery machinery ran.
//!
//! The fault seed honours `CUSFFT_FAULT_SEED` so CI can sweep a matrix of
//! seeds over the same assertions.

use cusfft::{BackendKind, ServeConfig, ServeEngine, ServePath, ServeReport, ServeRequest, Variant};
use gpu_sim::{DeviceSpec, FaultConfig, GpuDevice, GpuError, DEFAULT_STREAM};
use proptest::prelude::*;
use signal::{MagnitudeModel, SparseSignal};

/// Fault seed under test; CI sweeps this via the environment.
fn fault_seed() -> u64 {
    std::env::var("CUSFFT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A mixed-geometry batch exercising several plan groups and both tiers.
fn batch(len: usize) -> Vec<ServeRequest> {
    let geometries = [
        (1 << 10, 4, Variant::Optimized),
        (1 << 11, 8, Variant::Optimized),
        (1 << 10, 4, Variant::Baseline),
    ];
    (0..len)
        .map(|i| {
            let (n, k, variant) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 2000 + i as u64);
            ServeRequest::new(s.time, k, variant, 17 * i as u64 + 3)
        })
        .collect()
}

fn engine(workers: usize, faults: Option<FaultConfig>) -> ServeEngine {
    ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers,
            cache_capacity: 8,
            faults,
            ..ServeConfig::default()
        },
    ).expect("serve config is valid")
}

/// Runs `f` on a dedicated host pool of the given width (the same
/// `install` idiom as `host_parallel_determinism`).
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build is infallible")
        .install(f)
}

/// Asserts the merged simulated timelines of two reports are
/// bit-identical (makespan, throughput, per-stream profile).
fn assert_same_timeline(a: &ServeReport, b: &ServeReport, what: &str) {
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{what}: makespan must be bit-identical"
    );
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits(), "{what}");
    assert_eq!(a.concurrency, b.concurrency, "{what}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Contract 1: recovery is invisible. Any request the faulty engine
    /// completes on a GPU path matches the fault-free spectrum bit for
    /// bit; every request completes (CPU fallback catches stragglers).
    #[test]
    fn recovered_gpu_spectra_match_fault_free(seed in 0u64..1000, rate in 0.0f64..0.01) {
        let reqs = batch(6);
        let clean = engine(2, None).serve_batch(&reqs);
        let faulty = engine(2, Some(FaultConfig::uniform(seed, rate))).serve_batch(&reqs);
        prop_assert_eq!(faulty.outcomes.len(), reqs.len());
        for (i, (c, f)) in clean.outcomes.iter().zip(&faulty.outcomes).enumerate() {
            let c = c.response().expect("fault-free serving completes");
            let f = f.response().expect("recovery completes every request");
            if f.path != ServePath::Cpu {
                prop_assert_eq!(&c.recovered, &f.recovered, "request {} spectrum", i);
                prop_assert_eq!(c.num_hits, f.num_hits, "request {} hits", i);
            }
        }
    }
}

/// Contract 2: fault decisions are scoped per global group, so outcomes
/// and tallies cannot depend on how groups are dealt to workers, nor on
/// the host pool width; the timeline is a pure function of the config.
#[test]
fn fault_outcomes_invariant_across_workers_and_pools() {
    let reqs = batch(8);
    let fc = FaultConfig::uniform(fault_seed(), 0.02);
    let run = |workers: usize, pool: usize| {
        with_pool(pool, || engine(workers, Some(fc)).serve_batch(&reqs))
    };

    let reference = run(1, 1);
    assert!(
        reference.faults.injected > 0,
        "a 2% rate over this batch injects something (seed {})",
        fault_seed()
    );
    for workers in [1usize, 4] {
        for pool in [1usize, 8] {
            let report = run(workers, pool);
            assert_eq!(
                report.outcomes, reference.outcomes,
                "outcomes changed under workers={workers}, pool={pool}"
            );
            assert_eq!(
                report.faults, reference.faults,
                "fault tally changed under workers={workers}, pool={pool}"
            );
            if workers == 1 {
                // Same config ⇒ the merged timeline is also bit-identical
                // (across pool widths and reruns alike).
                assert_same_timeline(&report, &reference, "workers=1");
            }
        }
    }
}

/// Contract 3: a device where *every* op faults still serves the whole
/// batch — each request burns its retries and is re-routed onto the
/// `SfftCpu` backend, with the counters accounting for every step. The
/// re-route is ordinary backend selection: the spectra match a
/// fault-free serve that addresses the `SfftCpu` backend explicitly.
#[test]
fn persistent_faults_reroute_batch_to_cpu_backend() {
    let reqs = batch(16);
    let fc = FaultConfig::persistent(fault_seed());
    let reference = engine(1, Some(fc)).serve_batch(&reqs);

    // What the CPU backend computes when asked for by name, no faults.
    let cpu_reqs: Vec<ServeRequest> = reqs
        .iter()
        .cloned()
        .map(|r| r.with_backend(BackendKind::SfftCpu))
        .collect();
    let cpu_direct = engine(1, None).serve_batch(&cpu_reqs);

    assert_eq!(reference.outcomes.len(), 16);
    for (i, outcome) in reference.outcomes.iter().enumerate() {
        let resp = outcome
            .response()
            .unwrap_or_else(|| panic!("request {i} must complete via backend re-route"));
        assert_eq!(resp.path, ServePath::Cpu, "request {i}");
        assert_eq!(
            resp.backend,
            BackendKind::SfftCpu,
            "request {i} must report the backend that actually served it"
        );
        assert!(!resp.recovered.is_empty(), "request {i} recovered a spectrum");
        let direct = cpu_direct.outcomes[i]
            .response()
            .expect("explicit CPU-backend serving completes");
        assert_eq!(
            resp.recovered, direct.recovered,
            "request {i}: re-routed spectrum must equal the explicit SfftCpu backend's"
        );
    }
    let t = reference.faults;
    assert_eq!(t.cpu_fallbacks, 16, "every request re-routed");
    assert_eq!(t.evictions, 16, "every request was evicted from its group");
    assert!(t.retries > 0, "retries were attempted before re-routing");
    assert!(t.injected > 0, "faults were recorded");
    assert_eq!(t.failed, 0, "no request terminally failed");

    // Worker-count invariance and rerun timeline reproducibility hold
    // even in the all-faulting regime: outcomes and fault tallies are
    // bit-identical whether 1 or 4 workers drained the batch.
    let wide = engine(4, Some(fc)).serve_batch(&reqs);
    assert_eq!(wide.outcomes, reference.outcomes);
    assert_eq!(wide.faults, reference.faults);
    let rerun = engine(1, Some(fc)).serve_batch(&reqs);
    assert_eq!(rerun.outcomes, reference.outcomes);
    assert_same_timeline(&rerun, &reference, "rerun");
}

/// The fault timeline records what was injected: every fault appears as
/// a `fault:<class>:<what>` op, so the wasted time is visible in the
/// simulated schedule rather than silently dropped.
#[test]
fn injected_faults_are_visible_on_the_timeline() {
    let device = GpuDevice::new(DeviceSpec::tesla_k20x());
    device.install_fault_plan(FaultConfig::persistent(fault_seed()));
    let host = vec![0.0f64; 1024];
    assert!(device.try_htod(&host, DEFAULT_STREAM).is_err());
    assert!(device.try_charge_device_op("k", 1e-6, DEFAULT_STREAM).is_err());
    let fault_ops = device
        .ops()
        .iter()
        .filter(|op| op.label.starts_with("fault:"))
        .count();
    assert_eq!(fault_ops as u64, device.faults_injected());
    assert!(fault_ops >= 2);
}

/// Device memory is a real resource: tracked allocations debit the K20x
/// capacity, dropping them credits it back, and exceeding it is a typed
/// OOM — not a panic, and not an unbounded simulation.
#[test]
fn device_capacity_is_enforced_and_released() {
    let mut spec = DeviceSpec::tesla_k20x();
    spec.global_mem_bytes = 1 << 20; // shrink to 1 MiB to keep the test cheap
    let device = GpuDevice::new(spec);
    assert_eq!(device.capacity_bytes(), 1 << 20);
    assert_eq!(device.used_bytes(), 0);

    let buf = device
        .try_alloc_zeroed::<f64>(64 * 1024, DEFAULT_STREAM) // 512 KiB
        .expect("fits in capacity");
    assert!(device.used_bytes() >= 512 * 1024);
    match device.try_alloc_zeroed::<f64>(128 * 1024, DEFAULT_STREAM) {
        Err(GpuError::OutOfMemory {
            requested,
            free,
            capacity,
        }) => {
            assert!(requested > free, "{requested} vs {free}");
            assert_eq!(capacity, 1 << 20);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
    drop(buf);
    assert_eq!(device.used_bytes(), 0, "drop releases the reservation");
    assert!(device
        .try_alloc_zeroed::<f64>(128 * 1024, DEFAULT_STREAM)
        .is_ok());
}

/// The single-shot fallible entry point surfaces injected faults as
/// typed errors and recovers completely once the plan is cleared.
#[test]
fn try_execute_surfaces_faults_and_recovers() {
    use std::sync::Arc;
    let n = 1 << 10;
    let k = 4;
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 7);
    let device = Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()));
    let plan = cusfft::CusFft::new(
        Arc::clone(&device),
        Arc::new(sfft_cpu::SfftParams::tuned(n, k)),
        Variant::Optimized,
    );

    let clean = plan.try_execute(&s.time, 9).expect("fault-free run");

    device.install_fault_plan(FaultConfig::persistent(fault_seed()));
    match plan.try_execute(&s.time, 9) {
        Err(cusfft::CusFftError::Gpu(_)) => {}
        other => panic!("expected a typed device error, got {other:?}"),
    }

    device.clear_fault_plan();
    let recovered = plan.try_execute(&s.time, 9).expect("recovers after clear");
    assert_eq!(recovered.recovered, clean.recovered);

    // Malformed input is typed too, before the device is touched.
    match plan.try_execute(&s.time[..64], 9) {
        Err(cusfft::CusFftError::BadRequest { reason }) => {
            assert!(reason.contains("must match"), "{reason}");
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
}

/// Pins the `RequestOutcome::Failed::after_attempts` contract across
/// every recovery path (DESIGN.md §9/§15):
///
/// * exhausted retry under persistent faults with fallback disabled
///   reports exactly `max_retries` attempts — the retries genuinely ran
///   and are counted once each;
/// * pre-execution failures (validation) report `0` — nothing was
///   attempted;
/// * the counts are invariant under the worker count and identical on
///   the journaled path, for a known fault schedule.
#[test]
fn failed_attempt_counts_are_pinned_per_path() {
    use cusfft::{CusFftError, Journal, JournalOptions};

    let mut reqs = batch(6);
    // One malformed request (k = 0) that fails validation, never runs.
    reqs.push(ServeRequest::new(reqs[0].time.clone(), 0, Variant::Optimized, 99));
    let fc = FaultConfig::persistent(fault_seed());
    let max_retries = 3u32;
    let config = |workers| ServeConfig {
        workers,
        faults: Some(fc),
        max_retries,
        cpu_fallback: false,
        ..ServeConfig::default()
    };
    let serve = |workers| {
        ServeEngine::new(DeviceSpec::tesla_k20x(), config(workers))
            .expect("serve config is valid")
            .serve_batch(&reqs)
    };

    let reference = serve(1);
    for (i, outcome) in reference.outcomes.iter().enumerate() {
        match outcome {
            cusfft::RequestOutcome::Failed {
                error,
                after_attempts,
            } => {
                if i == reqs.len() - 1 {
                    assert!(
                        matches!(error, CusFftError::BadRequest { .. }),
                        "request {i} fails validation"
                    );
                    assert_eq!(
                        *after_attempts, 0,
                        "request {i} never reached execution, attempts must be 0"
                    );
                } else {
                    assert!(
                        matches!(error, CusFftError::Gpu(_)),
                        "request {i} exhausts on a device error, got {error:?}"
                    );
                    assert_eq!(
                        *after_attempts, max_retries,
                        "request {i} must report exactly max_retries attempts"
                    );
                }
            }
            other => panic!("request {i}: expected Failed, got {other:?}"),
        }
    }
    assert_eq!(reference.faults.failed, reqs.len() as u64);
    assert_eq!(
        reference.faults.retries,
        (reqs.len() as u64 - 1) * u64::from(max_retries),
        "each executable request retried exactly max_retries times"
    );

    // Attempt accounting is invariant under the worker count…
    let wide = serve(4);
    assert_eq!(wide.outcomes, reference.outcomes);
    assert_eq!(wide.faults, reference.faults);

    // …and identical on the journaled path.
    let journaled = ServeEngine::new(DeviceSpec::tesla_k20x(), config(2))
        .expect("serve config is valid")
        .serve_journaled(&reqs, &mut Journal::new(), &JournalOptions::default())
        .into_report()
        .expect("unarmed journaled run completes");
    assert_eq!(journaled.outcomes, reference.outcomes);
}
