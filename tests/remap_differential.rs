//! Differential tests for the tiled affine-permutation remap
//! (DESIGN.md §13): forcing [`RemapKind::Tiled`] versus
//! [`RemapKind::Direct`] through the backend must change only the
//! *modeled cost* of the layout pass, never its output. Recovered
//! spectra are pinned bit-identical across signal sizes × batch widths ×
//! fault seeds, and the transaction model must actually prefer the tiled
//! flavour where the paper says it wins (large padded widths).

use std::sync::Arc;

use cusfft::{
    choose_remap, BackendRegistry, GpuSimBackend, RemapKind, ServeConfig, ServeEngine,
    ServeRequest, SfftCpuBackend, Variant,
};
use gpu_sim::{DeviceSpec, FaultConfig};
use signal::{MagnitudeModel, SparseSignal};

/// An engine whose GPU backend is pinned to one remap flavour (the CPU
/// backend rides along for fault-exhausted fallbacks).
fn engine(kind: RemapKind, faults: Option<FaultConfig>) -> ServeEngine {
    let mut registry = BackendRegistry::empty();
    registry.register(Arc::new(GpuSimBackend { remap: Some(kind) }));
    registry.register(Arc::new(SfftCpuBackend));
    ServeEngine::with_registry(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 2,
            faults,
            ..ServeConfig::default()
        },
        registry,
    ).expect("serve config is valid")
}

fn batch(n: usize, width: usize) -> Vec<ServeRequest> {
    (0..width)
        .map(|i| {
            let s = SparseSignal::generate(n, 4, MagnitudeModel::Unit, 500 + i as u64);
            ServeRequest::new(s.time, 4, Variant::Optimized, 31 * i as u64 + 7)
        })
        .collect()
}

#[test]
fn tiled_remap_spectra_are_bit_identical_to_direct() {
    let fault_plans: [Option<FaultConfig>; 3] = [
        None,
        Some(FaultConfig::uniform(0xc0ffee, 0.02)),
        Some(FaultConfig::uniform(97, 0.05)),
    ];
    for &n in &[1usize << 10, 1 << 12] {
        for &width in &[1usize, 3] {
            for faults in &fault_plans {
                let reqs = batch(n, width);
                let direct = engine(RemapKind::Direct, *faults).serve_batch(&reqs);
                let tiled = engine(RemapKind::Tiled, *faults).serve_batch(&reqs);
                assert_eq!(direct.outcomes.len(), tiled.outcomes.len());
                for (i, (d, t)) in direct.outcomes.iter().zip(&tiled.outcomes).enumerate() {
                    assert_eq!(
                        d, t,
                        "n={n} width={width} faults={:?} request {i}: tiled remap \
                         must be execution-invisible",
                        faults.as_ref().map(|f| f.seed)
                    );
                }
            }
        }
    }
}

/// The cost model must select the tiled flavour exactly when it strictly
/// reduces modeled DRAM transactions without an occupancy penalty — and
/// on the paper's large-width configurations it must actually win.
#[test]
fn transaction_model_prefers_tiled_on_large_widths() {
    let spec = DeviceSpec::tesla_k20x();

    // A large padded width with many rounds per bucket: the dominant
    // scattered-gather stream amortises the tile's extra staging store,
    // so tiling must strictly reduce transactions.
    let big = choose_remap(&spec, 1 << 14, 1 << 8);
    assert!(
        big.tiled_txns < big.direct_txns,
        "large-width remap must save transactions: tiled={} direct={}",
        big.tiled_txns,
        big.direct_txns
    );
    assert_eq!(big.kind, RemapKind::Tiled);

    // Consistency: the tiled flavour is only ever selected when it
    // strictly undercuts the direct price (occupancy can veto a win,
    // but never manufacture one).
    for &(w_pad, b) in &[(1usize << 8, 1usize << 6), (1 << 11, 1 << 7), (1 << 14, 1 << 8)] {
        let c = choose_remap(&spec, w_pad, b);
        if c.kind == RemapKind::Tiled {
            assert!(
                c.tiled_txns < c.direct_txns,
                "w_pad={w_pad} b={b}: tiled selected without a saving ({c:?})"
            );
            assert!(c.tiled_occupancy > 0.0, "occupancy must be populated");
        }
    }
}

/// End to end through serving telemetry: with the tiled remap the
/// permutation step's rolled-up modeled transactions must drop relative
/// to direct remap on a large-n batch, while every other kernel's
/// launch counts line up one to one.
#[test]
fn serve_rollup_shows_transaction_drop() {
    let reqs = batch(1 << 14, 2);
    let direct = engine(RemapKind::Direct, None).serve_batch(&reqs);
    let tiled = engine(RemapKind::Tiled, None).serve_batch(&reqs);

    // The layout-transform step is the remap staging kernel plus the
    // bucket execution kernel that consumes it: the tiled flavour stages
    // the product, so `exec_tiled` drops the whole tap read stream.
    let step = ["remap", "remap_tiled", "exec", "exec_tiled"];
    let txns = |report: &cusfft::ServeReport| -> (f64, f64) {
        let mut perm = 0.0;
        let mut total = 0.0;
        for k in &report.kernels {
            total += k.transactions;
            if step.contains(&k.name.as_str()) {
                perm += k.transactions;
            }
        }
        (perm, total)
    };
    let (perm_direct, total_direct) = txns(&direct);
    let (perm_tiled, total_tiled) = txns(&tiled);
    assert!(perm_direct > 0.0, "permutation kernels must appear in the rollup");
    assert!(
        perm_tiled < perm_direct,
        "tiled remap must lower the permutation step's modeled transactions: \
         tiled={perm_tiled} direct={perm_direct}"
    );
    assert!(
        total_tiled < total_direct,
        "the saving must survive into the end-to-end total: \
         tiled={total_tiled} direct={total_direct}"
    );
}
