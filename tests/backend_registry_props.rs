//! Property tests for the backend registry (DESIGN.md §12): the
//! wasi-nn-shaped fixed-slot registry must be idempotent under
//! re-registration (first wins), total for registered kinds, and hand
//! back deterministic capability reports.

use std::sync::Arc;

use cusfft::{
    Backend, BackendKind, BackendRegistry, DenseFftBackend, GpuSimBackend, SfftCpuBackend,
};
use proptest::prelude::*;

fn stock(kind: BackendKind) -> Arc<dyn Backend> {
    match kind {
        BackendKind::GpuSim => Arc::new(GpuSimBackend::default()),
        BackendKind::SfftCpu => Arc::new(SfftCpuBackend),
        BackendKind::DenseFft => Arc::new(DenseFftBackend),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Registration is idempotent with first-wins semantics: over an
    /// arbitrary registration sequence, the first `register` for a kind
    /// returns true, every later one returns false, and lookups keep
    /// returning the *first* instance registered for that kind.
    #[test]
    fn registration_is_idempotent_and_first_wins(
        sequence in prop::collection::vec(0usize..3, 0..12),
    ) {
        let mut registry = BackendRegistry::empty();
        let mut first: [Option<Arc<dyn Backend>>; 3] = [None, None, None];
        for &sel in &sequence {
            let kind = BackendKind::all()[sel];
            let backend = stock(kind);
            let inserted = registry.register(Arc::clone(&backend));
            match &first[sel] {
                None => {
                    prop_assert!(inserted, "{}: empty slot accepts", kind.label());
                    first[sel] = Some(backend);
                }
                Some(original) => {
                    prop_assert!(!inserted, "{}: occupied slot refuses", kind.label());
                    let held = registry.get(kind).expect("registered kind resolves");
                    prop_assert!(
                        Arc::ptr_eq(held, original),
                        "{}: the first registration must keep winning",
                        kind.label()
                    );
                }
            }
        }
    }

    /// Lookup is total exactly over the registered kinds: `get` is Some
    /// iff the kind appeared in the registration sequence, and `kinds()`
    /// lists exactly those, in slot order.
    #[test]
    fn lookup_is_total_for_registered_kinds(
        sequence in prop::collection::vec(0usize..3, 0..12),
    ) {
        let mut registry = BackendRegistry::empty();
        for &sel in &sequence {
            registry.register(stock(BackendKind::all()[sel]));
        }
        let expected: Vec<BackendKind> = BackendKind::all()
            .into_iter()
            .filter(|k| sequence.iter().any(|&s| BackendKind::all()[s] == *k))
            .collect();
        for kind in BackendKind::all() {
            prop_assert_eq!(
                registry.get(kind).is_some(),
                expected.contains(&kind),
                "{} lookup totality", kind.label()
            );
        }
        prop_assert_eq!(registry.kinds(), expected);
    }

    /// Capability reports are deterministic: repeated calls on the same
    /// registered backend, and calls on fresh instances of the same
    /// backend type, all return the same report.
    #[test]
    fn capability_reports_are_deterministic(sel in 0usize..3, repeats in 1usize..6) {
        let kind = BackendKind::all()[sel];
        let mut registry = BackendRegistry::empty();
        registry.register(stock(kind));
        let held = registry.get(kind).expect("registered kind resolves");
        let first = held.capabilities();
        prop_assert_eq!(first.kind, kind, "caps name their backend");
        for _ in 0..repeats {
            prop_assert_eq!(held.capabilities(), first.clone(), "stable across calls");
        }
        prop_assert_eq!(
            stock(kind).capabilities(),
            first,
            "stable across instances"
        );
    }
}

/// The default registry is the three stock backends, and `kinds()`
/// reports them in slot order.
#[test]
fn default_registry_lists_all_kinds_in_slot_order() {
    let registry = BackendRegistry::with_defaults();
    assert_eq!(registry.kinds(), BackendKind::all().to_vec());
    assert_eq!(BackendRegistry::default().kinds(), registry.kinds());
}
