//! Cross-implementation equivalence: with a shared seed the four
//! pipelines consume identical permutation sequences, so their outputs
//! must agree — bit-exactly between serial and PsFFT, and numerically
//! (different accumulation orders) for the GPU variants.

use std::sync::Arc;

use cusfft::{CusFft, Variant};
use gpu_sim::GpuDevice;
use sfft_cpu::{psfft, sfft, SfftParams};
use signal::{MagnitudeModel, Recovered, SparseSignal};

fn big_support(rec: &Recovered, threshold: f64) -> Vec<usize> {
    rec.iter()
        .filter(|(_, v)| v.abs() > threshold)
        .map(|&(f, _)| f)
        .collect()
}

#[test]
fn psfft_is_bit_identical_to_serial() {
    for seed in [1u64, 2, 3] {
        let (n, k) = (1 << 12, 8);
        let params = SfftParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, seed);
        let a = sfft(&params, &s.time, seed * 31);
        let b = psfft(&params, &s.time, seed * 31);
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn gpu_variants_agree_with_each_other() {
    let (n, k) = (1 << 13, 16);
    let params = Arc::new(SfftParams::tuned(n, k));
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 9);
    let base = CusFft::new(Arc::new(GpuDevice::k20x()), params.clone(), Variant::Baseline)
        .execute(&s.time, 42)
        .recovered;
    let opt = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Optimized)
        .execute(&s.time, 42)
        .recovered;
    assert_eq!(
        big_support(&base, 0.5),
        big_support(&opt, 0.5),
        "variants must locate the same large coefficients"
    );
    for (f, v) in base.iter().filter(|(_, v)| v.abs() > 0.5) {
        let (_, w) = opt.iter().find(|(g, _)| g == f).unwrap();
        assert!(v.dist(*w) < 1e-6, "f={f}: {v:?} vs {w:?}");
    }
}

#[test]
fn gpu_matches_cpu_reference_values() {
    let (n, k) = (1 << 12, 8);
    let params = Arc::new(SfftParams::tuned(n, k));
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 4);
    let cpu = sfft(&params, &s.time, 3);
    let gpu = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Baseline)
        .execute(&s.time, 3)
        .recovered;
    for (f, v) in cpu.iter().filter(|(_, v)| v.abs() > 0.5) {
        let (_, w) = gpu
            .iter()
            .find(|(g, _)| g == f)
            .unwrap_or_else(|| panic!("GPU missed f={f}"));
        assert!(v.dist(*w) < 1e-6, "f={f}: cpu {v:?} vs gpu {w:?}");
    }
}

#[test]
fn every_implementation_is_deterministic() {
    let (n, k) = (1 << 12, 8);
    let params = Arc::new(SfftParams::tuned(n, k));
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 6);

    assert_eq!(sfft(&params, &s.time, 5), sfft(&params, &s.time, 5));
    assert_eq!(psfft(&params, &s.time, 5), psfft(&params, &s.time, 5));
    let plan = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Optimized);
    let a = plan.execute(&s.time, 5);
    let b = plan.execute(&s.time, 5);
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.num_hits, b.num_hits);
    assert!((a.sim_time - b.sim_time).abs() < 1e-15);
}

#[test]
fn random_tau_agrees_across_cpu_and_gpu() {
    let (n, k) = (1 << 12, 6);
    let params = Arc::new(SfftParams::tuned(n, k).with_random_tau());
    let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 12);
    let cpu = sfft(&params, &s.time, 8);
    let gpu = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Optimized)
        .execute(&s.time, 8)
        .recovered;
    assert_eq!(big_support(&cpu, 0.5), big_support(&gpu, 0.5));
}
