//! A tour of the `gpu-sim` device model as a standalone library: write a
//! CUDA-shaped kernel, launch it, inspect what the cost model believed
//! about it, and use the occupancy advisor — everything the cusFFT
//! kernels build on, demonstrated on a toy SAXPY and a histogram.
//!
//! ```text
//! cargo run --release --example device_model_tour
//! ```

use gpu_sim::{
    occupancy, suggest_block_size, DevAtomicU32, DeviceBuffer, GpuDevice, LaunchConfig,
    DEFAULT_STREAM,
};

fn main() {
    let device = GpuDevice::k20x();
    println!("device: {}", device.spec().table_row());

    // --- 1. A coalesced map kernel: y = a*x + y (SAXPY). -----------------
    let n = 1 << 20;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let y: Vec<f64> = vec![1.0; n];
    let a = 2.0;

    let block = suggest_block_size(device.spec(), 0);
    println!("\noccupancy advisor suggests {block}-thread blocks");
    let cfg = LaunchConfig::for_elements(n, block);
    let occ = occupancy(device.spec(), cfg);
    println!(
        "predicted occupancy: {:.0}% ({} warps/SM, limited by {:?})",
        occ.fraction * 100.0,
        occ.warps_per_sm,
        occ.limited_by
    );

    let xb = DeviceBuffer::from_host(&x);
    let yb = DeviceBuffer::from_host(&y);
    let mut out: DeviceBuffer<f64> = device.alloc_zeroed(n);
    device.launch_map("saxpy", cfg, DEFAULT_STREAM, &mut out, |ctx, gm| {
        let i = ctx.global_id();
        let v = a * gm.ld(&xb, i) + gm.ld(&yb, i);
        gm.flops(2);
        v
    });
    assert_eq!(out.peek()[3], 2.0 * 3.0 + 1.0);

    // --- 2. The same traffic, scattered: watch the model react. ----------
    let stride = 999_983; // prime → full scatter
    let mut out2: DeviceBuffer<f64> = device.alloc_zeroed(n);
    device.launch_map("saxpy_scattered", cfg, DEFAULT_STREAM, &mut out2, |ctx, gm| {
        let i = (ctx.global_id() * stride) % n;
        let v = a * gm.ld(&xb, i) + gm.ld(&yb, i);
        gm.flops(2);
        v
    });

    // --- 3. A histogram with atomics. ------------------------------------
    let bins = DevAtomicU32::zeroed(64);
    device.launch_foreach("histogram", cfg, DEFAULT_STREAM, |ctx, gm| {
        let i = ctx.global_id();
        bins.fetch_add(gm, i % 64, 1);
    });
    assert!(bins.snapshot().iter().all(|&c| c as usize == n / 64));

    // --- 4. What did the device believe happened? ------------------------
    println!("\nper-kernel profile (simulated K20x):");
    print!("{}", device.profile_report());
    let records = device.records();
    let coal = records.iter().find(|r| r.name == "saxpy").unwrap();
    let scat = records.iter().find(|r| r.name == "saxpy_scattered").unwrap();
    println!(
        "scatter cost amplification: {:.1}x time, {:.1}x DRAM bytes",
        scat.cost.total / coal.cost.total,
        scat.stats.dram_bytes / coal.stats.dram_bytes
    );
    println!(
        "total simulated elapsed: {:.3} ms",
        device.elapsed() * 1e3
    );

    assert!(scat.cost.total > coal.cost.total);
}
