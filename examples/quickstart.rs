//! Quickstart: recover a sparse spectrum with cusFFT and check it against
//! the ground truth and a dense FFT.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use cusfft::{cufft_dense_baseline, CusFft, Variant};
use gpu_sim::{GpuDevice, DEFAULT_STREAM};
use sfft_cpu::SfftParams;
use signal::{l1_error_per_coeff, MagnitudeModel, SparseSignal};

fn main() {
    // A 2^16-point signal whose spectrum has exactly 20 non-zero
    // coefficients at random frequencies.
    let n = 1 << 16;
    let k = 20;
    let signal = SparseSignal::generate(n, k, MagnitudeModel::Unit, 42);
    println!("signal: n = {n}, k = {k} non-zero coefficients");

    // Plan once (filters and device buffers), execute on the simulated
    // Tesla K20x.
    let device = Arc::new(GpuDevice::k20x());
    let params = Arc::new(SfftParams::tuned(n, k));
    let plan = CusFft::new(device, params, Variant::Optimized);
    let out = plan.execute(&signal.time, 7);

    // Every true coefficient should be recovered with the right value.
    println!(
        "\nrecovered {} candidates; ground truth vs estimate:",
        out.recovered.len()
    );
    println!(
        "{:>10} {:>24} {:>24} {:>10}",
        "freq", "true", "estimated", "|error|"
    );
    for &(f, truth) in &signal.coords {
        let est = out
            .recovered
            .iter()
            .find(|&&(g, _)| g == f)
            .map(|&(_, v)| v)
            .unwrap_or(fft::cplx::ZERO);
        println!(
            "{f:>10} {:>24} {:>24} {:>10.2e}",
            format!("{truth:.4}"),
            format!("{est:.4}"),
            truth.dist(est)
        );
    }
    let err = l1_error_per_coeff(&signal.coords, &out.recovered);
    println!("\nL1 error per large coefficient: {err:.3e}");

    // Compare the simulated device time against the dense cuFFT baseline.
    let dev = GpuDevice::k20x();
    let _ = cufft_dense_baseline(&dev, &signal.time, DEFAULT_STREAM);
    let cufft_time = dev.elapsed();
    println!("\nsimulated Tesla K20x times (input device-resident):");
    println!("  cusFFT (optimized): {:>10.3} ms", out.sim_time * 1e3);
    println!("  cuFFT  (dense)    : {:>10.3} ms", cufft_time * 1e3);
    println!("  speedup           : {:>10.2}x", cufft_time / out.sim_time);
    println!("\nper-step breakdown (simulated):");
    for (label, t) in out.steps.as_pairs() {
        if t > 0.0 {
            println!("  {label:<16} {:>10.3} ms", t * 1e3);
        }
    }

    assert!(err < 1e-3, "recovery failed");
}
