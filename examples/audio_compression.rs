//! Spectral compression of a harmonic signal — the "audio, image and
//! video data" motivation from the paper's introduction.
//!
//! Musical signals are dominated by a handful of harmonics, so keeping
//! only the top-k Fourier coefficients compresses them well. This example
//! synthesises a chord, extracts the k strongest coefficients with
//! cusFFT (without ever computing the full spectrum), reconstructs the
//! waveform from them, and reports the reconstruction SNR and the
//! effective compression ratio.
//!
//! ```text
//! cargo run --release --example audio_compression
//! ```

use std::sync::Arc;

use cusfft::{CusFft, Variant};
use fft::cplx::{Cplx, ZERO};
use fft::{Direction, Plan};
use gpu_sim::GpuDevice;
use sfft_cpu::SfftParams;
use signal::measure_snr_db;

fn main() {
    let n = 1 << 17;

    // A "chord": three notes, each with a fundamental plus decaying
    // harmonics (24 partials in total — an exactly sparse spectrum).
    let notes = [440.0f64, 554.37, 659.25]; // A4, C#5, E5
    let bins_per_hz = n as f64 / 44_100.0;
    let mut spectrum = vec![ZERO; n];
    let mut partials = 0;
    for (ni, &note) in notes.iter().enumerate() {
        for h in 1..=8usize {
            let f = ((note * h as f64 * bins_per_hz).round() as usize) % n;
            let amp = 1.0 / h as f64;
            let phase = 0.7 * ni as f64 + 0.3 * h as f64;
            spectrum[f] = Cplx::from_polar(amp, phase);
            partials += 1;
        }
    }
    let truth: Vec<(usize, Cplx)> = spectrum
        .iter()
        .enumerate()
        .filter(|(_, v)| v.abs() > 0.0)
        .map(|(f, &v)| (f, v))
        .collect();
    let mut audio = spectrum;
    Plan::new(n).process(&mut audio, Direction::Inverse);

    println!("synthetic chord: n = {n} samples, {partials} partials");

    // Sparse analysis: ask cusFFT for the dominant coefficients.
    let k = partials;
    let params = Arc::new(SfftParams::tuned(n, k));
    let plan = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Optimized);
    let out = plan.execute(&audio, 3);

    // Keep the k strongest recovered coefficients.
    let mut kept = out.recovered.clone();
    kept.sort_unstable_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    kept.truncate(k);
    kept.sort_unstable_by_key(|&(f, _)| f);

    // Reconstruct the waveform from the sparse representation.
    let mut rec_spectrum = vec![ZERO; n];
    for &(f, v) in &kept {
        rec_spectrum[f] = v;
    }
    let mut reconstructed = rec_spectrum;
    Plan::new(n).process(&mut reconstructed, Direction::Inverse);

    let snr = measure_snr_db(&audio, &reconstructed);
    let found = truth
        .iter()
        .filter(|&&(f, _)| kept.iter().any(|&(g, _)| g == f))
        .count();

    println!("\nrecovered {found}/{partials} partials");
    println!(
        "strongest recovered partial: bin {} (|a| = {:.3})",
        kept.iter()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .map(|&(f, _)| f)
            .unwrap_or(0),
        kept.iter().map(|(_, v)| v.abs()).fold(0.0f64, f64::max),
    );
    println!("reconstruction SNR: {snr:.1} dB");
    println!(
        "compression: {} complex samples -> {} coefficients ({}:1)",
        n,
        k,
        n / k
    );
    println!(
        "simulated analysis time on the K20x: {:.3} ms",
        out.sim_time * 1e3
    );

    assert!(found == partials, "lost a partial");
    assert!(snr > 60.0, "reconstruction SNR too low: {snr} dB");
}
