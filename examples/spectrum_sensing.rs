//! Spectrum sensing for cognitive radio — one of the sparse-spectrum
//! applications the paper's introduction motivates.
//!
//! A wideband receiver digitises a large band in which only a few
//! channels are occupied (each occupied channel contributes a carrier
//! tone). The sensing task is to find the occupied channels much faster
//! than a full FFT would: the occupancy spectrum is k-sparse by
//! construction, so cusFFT applies directly.
//!
//! ```text
//! cargo run --release --example spectrum_sensing
//! ```

use std::sync::Arc;

use cusfft::{cufft_dense_baseline, CusFft, Variant};
use fft::cplx::{Cplx, ZERO};
use fft::{Direction, Plan};
use gpu_sim::{GpuDevice, DEFAULT_STREAM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfft_cpu::SfftParams;
use signal::add_awgn;

/// Number of channels the band is divided into.
const CHANNELS: usize = 256;

fn main() {
    let n = 1 << 18; // samples in the sensing window
    let mut rng = StdRng::seed_from_u64(2026);

    // 6 occupied channels, each transmitting a carrier somewhere inside
    // its channel, with distinct power levels.
    let occupied: Vec<usize> = {
        let mut set = Vec::new();
        while set.len() < 6 {
            let c = rng.gen_range(0..CHANNELS);
            if !set.contains(&c) {
                set.push(c);
            }
        }
        set
    };
    let ch_width = n / CHANNELS;
    let mut spectrum = vec![ZERO; n];
    let mut truth: Vec<(usize, usize)> = Vec::new(); // (channel, freq)
    for &c in &occupied {
        let f = c * ch_width + rng.gen_range(ch_width / 4..3 * ch_width / 4);
        let power = rng.gen_range(0.5..2.0);
        spectrum[f] = Cplx::from_polar(power, rng.gen_range(0.0..std::f64::consts::TAU));
        truth.push((c, f));
    }
    truth.sort_unstable();

    // Received samples: inverse transform + receiver noise (30 dB SNR).
    let mut time = spectrum;
    Plan::new(n).process(&mut time, Direction::Inverse);
    add_awgn(&mut time, 30.0, 99);

    println!("wideband sensing: n = {n} samples, {CHANNELS} channels, 6 occupied");
    println!(
        "truth: channels {:?}",
        truth.iter().map(|&(c, _)| c).collect::<Vec<_>>()
    );

    // Sparse sensing with cusFFT: look for up to 2x the expected carrier
    // count (headroom for noise).
    let k = 16;
    let params = Arc::new(SfftParams::tuned(n, k));
    let plan = CusFft::new(Arc::new(GpuDevice::k20x()), params, Variant::Optimized);
    let out = plan.execute(&time, 5);

    // Channel occupancy from the recovered coefficients: a channel is
    // occupied when a strong coefficient falls inside it.
    let peak = out
        .recovered
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max);
    let mut detected: Vec<(usize, usize, f64)> = out
        .recovered
        .iter()
        .filter(|(_, v)| v.abs() > 0.2 * peak)
        .map(|&(f, v)| (f / ch_width, f, v.abs()))
        .collect();
    detected.sort_unstable_by_key(|&(c, f, _)| (c, f));
    detected.dedup_by_key(|&mut (c, _, _)| c);

    println!("\ndetected occupied channels (cusFFT, optimized variant):");
    println!("{:>8} {:>10} {:>8}", "channel", "freq", "power");
    for &(c, f, p) in &detected {
        println!("{c:>8} {f:>10} {p:>8.3}");
    }

    // Verification against truth and against a dense FFT sensing pass.
    let dev = GpuDevice::k20x();
    let _ = cufft_dense_baseline(&dev, &time, DEFAULT_STREAM);
    let dense_time = dev.elapsed();

    let missed: Vec<usize> = truth
        .iter()
        .filter(|&&(c, _)| !detected.iter().any(|&(d, _, _)| d == c))
        .map(|&(c, _)| c)
        .collect();
    let false_alarms: Vec<usize> = detected
        .iter()
        .filter(|&&(c, _, _)| !truth.iter().any(|&(t, _)| t == c))
        .map(|&(c, _, _)| c)
        .collect();
    println!("\nmissed channels: {missed:?}   false alarms: {false_alarms:?}");
    println!(
        "simulated sensing time: cusFFT {:.3} ms vs dense FFT {:.3} ms ({:.1}x)",
        out.sim_time * 1e3,
        dense_time * 1e3,
        dense_time / out.sim_time
    );

    assert!(missed.is_empty(), "a transmitter went undetected");
}
