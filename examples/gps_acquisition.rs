//! GPS-style Doppler acquisition with a sparse FFT — after Hassanieh et
//! al., "Faster GPS via the Sparse Fourier Transform" (MobiCom 2012),
//! which the paper cites as a flagship sFFT application.
//!
//! A GPS receiver must find the Doppler shift of each satellite. After
//! wiping off the known PRN spreading code, the residual signal is a pure
//! tone at the Doppler frequency — i.e. a 1-sparse spectrum per
//! satellite, buried in noise. Searching many satellites means many such
//! sparse transforms, which is exactly the regime where a sparse FFT
//! beats a dense one.
//!
//! ```text
//! cargo run --release --example gps_acquisition
//! ```

use std::sync::Arc;

use cusfft::{CusFft, Variant};
use fft::cplx::Cplx;
use gpu_sim::GpuDevice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfft_cpu::SfftParams;
use signal::add_awgn;

/// Generates a ±1 PRN spreading sequence of length `n` from a seed.
fn prn_code(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect()
}

fn main() {
    let n = 1 << 16; // samples per acquisition window
    let satellites = 4;
    let mut rng = StdRng::seed_from_u64(7);

    println!("GPS acquisition: {satellites} satellites, n = {n} samples each");
    println!("{:>5} {:>12} {:>12} {:>9}", "sat", "true doppler", "estimated", "status");

    let params = Arc::new(SfftParams::tuned(n, 4));
    let device = Arc::new(GpuDevice::k20x());
    let plan = CusFft::new(device, params, Variant::Optimized);

    let mut total_sim = 0.0;
    let mut all_ok = true;
    for sat in 0..satellites {
        // Satellite transmits its PRN code; channel applies a Doppler
        // shift (a frequency offset) and noise.
        let code = prn_code(n, 1000 + sat as u64);
        let doppler = rng.gen_range(0..n);
        let mut rx: Vec<Cplx> = (0..n)
            .map(|t| {
                let carrier =
                    Cplx::cis(std::f64::consts::TAU * (doppler as u64 * t as u64 % n as u64) as f64 / n as f64);
                carrier.scale(code[t])
            })
            .collect();
        add_awgn(&mut rx, 10.0, 55 + sat as u64);

        // Code wipe-off: multiply by the known PRN. What remains is the
        // Doppler tone — a 1-sparse spectrum.
        let wiped: Vec<Cplx> = rx.iter().zip(&code).map(|(s, &c)| s.scale(c)).collect();

        let out = plan.execute(&wiped, 11 + sat as u64);
        total_sim += out.sim_time;
        let est = out
            .recovered
            .iter()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .map(|&(f, _)| f);

        let ok = est == Some(doppler);
        all_ok &= ok;
        println!(
            "{sat:>5} {doppler:>12} {:>12} {:>9}",
            est.map_or("-".into(), |f| f.to_string()),
            if ok { "locked" } else { "MISSED" }
        );
    }

    println!(
        "\ntotal simulated acquisition time ({} satellites): {:.3} ms",
        satellites,
        total_sim * 1e3
    );
    assert!(all_ok, "acquisition failed for at least one satellite");
}
