//! Telemetry: overload a flaky serving engine, then look at the run
//! through the three telemetry surfaces — the structured span tree, the
//! Prometheus-style metrics exposition, and a Chrome/Perfetto trace
//! written to `results/telemetry_example_trace.json` (open it at
//! ui.perfetto.dev or chrome://tracing).
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use cusfft::{
    observe, OverloadConfig, ServeConfig, ServeEngine, ServeRequest, TimedRequest, Variant,
};
use cusfft_telemetry::{validate_chrome_trace, SpanKind};
use gpu_sim::{BreakerConfig, DeviceSpec, FaultConfig};
use signal::{MagnitudeModel, SparseSignal};

fn main() {
    // The flaky-device + overload demo: a 2x-capacity burst over three
    // geometries on an engine that injects faults (including silent
    // corruptions), with a hedging budget and a touchy breaker — so the
    // trace shows sheds, brownout, retries, hedges and fault recovery.
    let geometries = [(1 << 12, 8), (1 << 13, 8), (1 << 12, 16)];
    let trace: Vec<TimedRequest> = (0..18)
        .map(|i| {
            let (n, k) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 700 + i as u64);
            let req = ServeRequest::new(s.time, k, Variant::Optimized, 13 * i as u64 + 5);
            let t = TimedRequest::at(req, 0.0);
            if i % 6 == 5 {
                t.with_deadline(0.0) // cannot be met: service takes time
            } else {
                t
            }
        })
        .collect();
    let policy = OverloadConfig {
        queue_capacity: 9,
        brownout_depth: 4,
        breaker: BreakerConfig::default(),
        hedge_percentile: 0.5,
        hedge_factor: 1.25,
        ..OverloadConfig::default()
    };
    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 3,
            cache_capacity: 8,
            faults: Some(FaultConfig::uniform(42, 0.01).with_sdc(0.02)),
            ..ServeConfig::default()
        },
    ).expect("serve config is valid");
    let report = engine.serve_overload(&trace, &policy);
    println!(
        "served {} requests: {} admitted, {} shed, {} past-deadline, {} faults injected",
        trace.len(),
        report.overload.admitted,
        report.overload.shed,
        report.overload.deadline_exceeded,
        report.faults.injected,
    );

    // Surface 1: the span tree. Every op of the merged timeline hangs
    // off a request → group → attempt chain, so retries, hedges and
    // fallbacks are visible as sub-trees.
    let tree = observe::span_tree(&report);
    tree.validate(report.timeline.ops.len())
        .expect("span tree covers the timeline");
    let count = |k: SpanKind| tree.spans.iter().filter(|s| s.kind == k).count();
    println!(
        "\nspan tree: {} spans ({} requests, {} groups, {} attempts, {} op leaves)",
        tree.spans.len(),
        count(SpanKind::Request),
        count(SpanKind::Group),
        count(SpanKind::Attempt),
        count(SpanKind::Op) + count(SpanKind::HostPhase),
    );
    for span in tree.spans.iter().filter(|s| s.kind == SpanKind::Attempt) {
        println!(
            "  attempt {:>24}  [{:>9.3} ms, {:>9.3} ms]",
            span.name,
            span.start * 1e3,
            span.end * 1e3
        );
    }

    // Surface 2: the metrics registry, rendered as a Prometheus text
    // exposition (counters, gauges, and per-(path, QoS) latency
    // histograms).
    let registry = observe::metrics_registry(&report);
    println!("\nmetrics exposition:\n{}", registry.render_prometheus());

    // Surface 3: the Chrome/Perfetto trace. Streams are tracks; faults,
    // breaker decisions and hedge ops are instant events.
    let trace_json = observe::chrome_trace_json(&report);
    let summary = validate_chrome_trace(&trace_json).expect("trace conforms to the schema");
    let path = std::path::Path::new("results/telemetry_example_trace.json");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(path, &trace_json).expect("write trace");
    println!(
        "wrote {} ({} events on {} tracks) — load it at ui.perfetto.dev",
        path.display(),
        summary.events,
        summary.tracks
    );
}
