//! Serving: push a mixed batch of sparse-FFT requests through the
//! concurrent serving engine and inspect the plan cache and the merged
//! multi-stream timeline.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use cusfft::{ServeConfig, ServeEngine, ServePath, ServeRequest, Variant};
use gpu_sim::{DeviceSpec, FaultConfig};
use signal::{MagnitudeModel, SparseSignal};

fn main() {
    // A request stream over three geometries — the server sees the same
    // few `(n, k)` shapes over and over, which is what the plan cache and
    // cross-request cuFFT batching exploit.
    let geometries = [(1 << 14, 16), (1 << 15, 16), (1 << 16, 32)];
    let requests: Vec<ServeRequest> = (0..12)
        .map(|i| {
            let (n, k) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 90 + i as u64);
            ServeRequest {
                time: s.time,
                k,
                variant: Variant::Optimized,
                seed: 5 * i as u64 + 1,
            }
        })
        .collect();
    println!(
        "batch: {} requests over {} geometries",
        requests.len(),
        geometries.len()
    );

    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 3,
            cache_capacity: 8,
            ..ServeConfig::default()
        },
    );

    // First batch: every geometry misses once, then hits.
    let report = engine.serve_batch(&requests);
    println!("\nfirst batch:");
    print_report(&report);

    // Second batch of the same shapes: plans are all warm.
    let report2 = engine.serve_batch(&requests);
    println!("\nsecond batch (warm cache):");
    print_report(&report2);

    assert!(report2.cache.hits > report.cache.hits);
    assert!(report.concurrency.max_concurrent_streams >= 2);

    // Same batch on a flaky device: a deterministic fault plan injects
    // OOM/transfer/launch failures; the engine evicts failing requests
    // from their batch groups, retries them with backoff, and degrades
    // stragglers to the CPU reference path — every request completes.
    let flaky = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 3,
            cache_capacity: 8,
            faults: Some(FaultConfig::uniform(42, 0.002)),
            ..ServeConfig::default()
        },
    );
    let report3 = flaky.serve_batch(&requests);
    println!("\nsame batch, 0.2% fault rate on every device op:");
    print_report(&report3);
    let t = report3.faults;
    println!(
        "  faults: {} injected, {} evictions, {} retries, {} cpu fallbacks, {} failed",
        t.injected, t.evictions, t.retries, t.cpu_fallbacks, t.failed
    );
    let count = |p: ServePath| {
        report3
            .responses()
            .filter(|r| r.path == p)
            .count()
    };
    println!(
        "  paths: {} gpu, {} gpu-after-retry, {} cpu",
        count(ServePath::Gpu),
        count(ServePath::GpuRetry),
        count(ServePath::Cpu)
    );
    assert_eq!(
        report3.outcomes.len(),
        requests.len(),
        "every request resolves even on a flaky device"
    );
}

fn print_report(report: &cusfft::ServeReport) {
    println!(
        "  groups: {}   makespan: {:.3} ms   throughput: {:.0} req/s (simulated)",
        report.groups,
        report.makespan * 1e3,
        report.throughput
    );
    println!(
        "  cache: {} hits / {} misses / {} evictions ({} resident, hit rate {:.0}%)",
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.len,
        report.cache.hit_rate() * 100.0
    );
    println!(
        "  streams: {} active, max {} concurrent, avg {:.2} concurrent",
        report.concurrency.per_stream.len(),
        report.concurrency.max_concurrent_streams,
        report.concurrency.avg_concurrent_streams
    );
    for s in &report.concurrency.per_stream {
        println!(
            "    stream {:>3}: {:>3} ops, busy {:>8.3} ms, utilisation {:>5.1}%",
            s.stream.0,
            s.ops,
            s.busy * 1e3,
            s.utilisation * 100.0
        );
    }
}
