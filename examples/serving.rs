//! Serving: push a mixed batch of sparse-FFT requests through the
//! concurrent serving engine and inspect the plan cache and the merged
//! multi-stream timeline — then overload it and watch admission
//! control, brownout QoS and the circuit breaker hold the line.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use cusfft::{
    OverloadConfig, RequestOutcome, ServeConfig, ServeEngine, ServePath, ServeQos, ServeRequest,
    TimedRequest, Variant,
};
use gpu_sim::{BreakerConfig, DeviceSpec, FaultConfig};
use signal::{MagnitudeModel, SparseSignal};

fn main() {
    // A request stream over three geometries — the server sees the same
    // few `(n, k)` shapes over and over, which is what the plan cache and
    // cross-request cuFFT batching exploit.
    let geometries = [(1 << 14, 16), (1 << 15, 16), (1 << 16, 32)];
    let requests: Vec<ServeRequest> = (0..12)
        .map(|i| {
            let (n, k) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 90 + i as u64);
            ServeRequest::new(s.time, k, Variant::Optimized, 5 * i as u64 + 1)
        })
        .collect();
    println!(
        "batch: {} requests over {} geometries",
        requests.len(),
        geometries.len()
    );

    let engine = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 3,
            cache_capacity: 8,
            ..ServeConfig::default()
        },
    ).expect("serve config is valid");

    // First batch: every geometry misses once, then hits.
    let report = engine.serve_batch(&requests);
    println!("\nfirst batch:");
    print_report(&report);

    // Second batch of the same shapes: plans are all warm.
    let report2 = engine.serve_batch(&requests);
    println!("\nsecond batch (warm cache):");
    print_report(&report2);

    assert!(report2.cache.hits > report.cache.hits);
    assert!(report.concurrency.max_concurrent_streams >= 2);

    // Same batch on a flaky device: a deterministic fault plan injects
    // OOM/transfer/launch failures; the engine evicts failing requests
    // from their batch groups, retries them with backoff, and degrades
    // stragglers to the CPU reference path — every request completes.
    let flaky = ServeEngine::new(
        DeviceSpec::tesla_k20x(),
        ServeConfig {
            workers: 3,
            cache_capacity: 8,
            faults: Some(FaultConfig::uniform(42, 0.002)),
            ..ServeConfig::default()
        },
    ).expect("serve config is valid");
    let report3 = flaky.serve_batch(&requests);
    println!("\nsame batch, 0.2% fault rate on every device op:");
    print_report(&report3);
    let t = report3.faults;
    println!(
        "  faults: {} injected, {} evictions, {} retries, {} cpu fallbacks, {} failed",
        t.injected, t.evictions, t.retries, t.cpu_fallbacks, t.failed
    );
    let count = |p: ServePath| {
        report3
            .responses()
            .filter(|r| r.path == p)
            .count()
    };
    println!(
        "  paths: {} gpu, {} gpu-after-retry, {} cpu",
        count(ServePath::Gpu),
        count(ServePath::GpuRetry),
        count(ServePath::Cpu)
    );
    assert_eq!(
        report3.outcomes.len(),
        requests.len(),
        "every request resolves even on a flaky device"
    );

    // Overload: 24 requests all arriving at once, some with unmeetable
    // deadlines, against a bounded queue. Admission control sheds the
    // overflow before it costs device time, queue pressure re-plans
    // later arrivals onto the degraded-accuracy tier, and everything
    // that is admitted completes.
    let trace: Vec<TimedRequest> = (0..24)
        .map(|i| {
            let (n, k) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 400 + i as u64);
            let req = ServeRequest::new(s.time, k, Variant::Optimized, 11 * i as u64 + 2);
            let t = TimedRequest::at(req, 0.0);
            if i % 6 == 5 {
                t.with_deadline(0.0) // cannot be met: service takes time
            } else {
                t
            }
        })
        .collect();
    let policy = OverloadConfig {
        queue_capacity: 12,
        brownout_depth: 6,
        breaker: BreakerConfig::default(),
        ..OverloadConfig::default()
    };
    let report4 = engine.serve_overload(&trace, &policy);
    println!(
        "\noverload: {} requests at t=0 against a queue of {}:",
        trace.len(),
        policy.queue_capacity
    );
    print_report(&report4);
    let mut done = 0;
    let mut failed = 0;
    let mut shed = 0;
    let mut missed = 0;
    for o in &report4.outcomes {
        match o {
            RequestOutcome::Done(_) => done += 1,
            RequestOutcome::Failed { .. } => failed += 1,
            RequestOutcome::Shed { .. } => shed += 1,
            RequestOutcome::DeadlineExceeded { .. } => missed += 1,
        }
    }
    println!(
        "  outcomes: {done} done, {failed} failed, {shed} shed, {missed} past-deadline"
    );
    let degraded = report4
        .responses()
        .filter(|r| r.qos == ServeQos::Degraded)
        .count();
    let ov = report4.overload;
    println!(
        "  overload: {} admitted ({} degraded-QoS, {degraded} served degraded), \
         {} hedges ({} wins), {} breaker short-circuits",
        ov.admitted, ov.degraded, ov.hedges, ov.hedge_wins, ov.breaker_short_circuits
    );
    println!(
        "  latency: p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms over {} completions",
        report4.latency.p50 * 1e3,
        report4.latency.p99 * 1e3,
        report4.latency.max * 1e3,
        report4.latency.count
    );
    assert_eq!(done + failed + shed + missed, trace.len());
    assert!(shed > 0, "a 2x-capacity burst must shed");
}

fn print_report(report: &cusfft::ServeReport) {
    println!(
        "  groups: {}   makespan: {:.3} ms   throughput: {:.0} req/s (simulated)",
        report.groups,
        report.makespan * 1e3,
        report.throughput
    );
    println!(
        "  cache: {} hits / {} misses / {} evictions ({} resident, hit rate {:.0}%)",
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.len,
        report.cache.hit_rate() * 100.0
    );
    println!(
        "  streams: {} active, max {} concurrent, avg {:.2} concurrent",
        report.concurrency.per_stream.len(),
        report.concurrency.max_concurrent_streams,
        report.concurrency.avg_concurrent_streams
    );
    for s in &report.concurrency.per_stream {
        println!(
            "    stream {:>3}: {:>3} ops, busy {:>8.3} ms, utilisation {:>5.1}%",
            s.stream.0,
            s.ops,
            s.busy * 1e3,
            s.utilisation * 100.0
        );
    }
}
