//! Explain: serve an overloaded, flaky batch with the policy flight
//! recorder on, then ask the audit log *why* each request ended the way
//! it did — the causally-linked decision chain from admission to
//! terminal verdict — plus the derived terminal causes and the SLO
//! burn-rate report.
//!
//! ```text
//! cargo run --release --example explain
//! ```

use cusfft::{
    explain, OverloadConfig, ServeConfig, ServeEngine, ServeRequest, TimedRequest, Variant,
};
use gpu_sim::{DeviceSpec, FaultConfig};
use signal::{MagnitudeModel, SparseSignal};

fn main() {
    // A 2x-capacity burst over three geometries on a flaky engine:
    // enough pressure that admissions shed, QoS degrades, hedges fire
    // and retries run — every one of which lands in the audit log.
    let geometries = [(1 << 12, 8), (1 << 13, 8), (1 << 12, 16)];
    let spec = DeviceSpec::tesla_k20x();
    let nominal = cusfft::nominal_service(&spec, 1 << 13, 8);
    let trace: Vec<TimedRequest> = (0..16)
        .map(|i| {
            let (n, k) = geometries[i % geometries.len()];
            let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 700 + i as u64);
            let req = ServeRequest::new(s.time, k, Variant::Optimized, 13 * i as u64 + 5);
            let t = TimedRequest::at(req, i as f64 * nominal / 2.0);
            if i % 4 == 3 {
                t.with_deadline(4.0 * nominal)
            } else {
                t
            }
        })
        .collect();
    let policy = OverloadConfig {
        queue_capacity: 8,
        brownout_depth: 4,
        hedge_percentile: 0.5,
        hedge_factor: 1.25,
        ..OverloadConfig::default()
    };
    let engine = ServeEngine::new(
        spec,
        ServeConfig {
            workers: 3,
            cache_capacity: 8,
            faults: Some(FaultConfig::uniform(42, 0.05).with_sdc(0.02)),
            audit: true, // <- the flight recorder
            ..ServeConfig::default()
        },
    )
    .expect("serve config is valid");
    let report = engine.serve_overload(&trace, &policy);
    let audit = report.audit.as_deref().expect("audited run");
    audit.validate().expect("every event roots at an admission");

    // 1. Why did each request end the way it did? `explain` returns the
    //    causal chain: admission -> placement -> (hedges, retries,
    //    brownout, breaker verdicts...) -> terminal.
    println!("== decision chains ==");
    for r in 0..trace.len() {
        let chain = explain(&report, r).expect("every request has a chain");
        print!("{}", chain.render_text());
    }

    // 2. The same verdicts, compressed to one structured label each —
    //    what the `cause` label on `cusfft_served_total` exports.
    println!("\n== terminal causes ==");
    for (r, cause) in audit.causes.iter().enumerate() {
        println!("  request {r:2}: {cause}");
    }

    // 3. The SLO view: availability and latency attainment over the
    //    run, plus any multi-window burn-rate alerts. Every alert cites
    //    the terminal events that burned the budget — nothing fires
    //    that the audit log cannot explain.
    println!("\n== SLO ==");
    println!(
        "  availability {:.3}, latency attainment {:.3}",
        audit.slo.availability, audit.slo.latency_attainment
    );
    for alert in &audit.slo.alerts {
        println!(
            "  ALERT {}/{} at t={:.6}s: burn {:.1}x/{:.1}x over threshold {:.1}x, {} contributing event(s)",
            alert.slo,
            alert.window,
            alert.ts,
            alert.long_burn,
            alert.short_burn,
            alert.threshold,
            alert.contributing.len(),
        );
        for &id in &alert.contributing {
            println!("    <- {}", audit.log.events[id as usize].to_text());
        }
    }
}
