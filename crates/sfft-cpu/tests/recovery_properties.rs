//! Property tests on the sparse-FFT pipeline: recovery must hold across
//! randomly drawn problem shapes, not just the unit-test points.

use proptest::prelude::*;
use sfft_cpu::{psfft, sfft, SfftParams};
use signal::{l1_error_per_coeff, support_recall, MagnitudeModel, SparseSignal};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The serial reference recovers the full support of random k-sparse
    /// signals at random sizes. The domain respects the algorithm's
    /// regime: sFFT's isolation argument needs `k ≪ B`, so the sparsity
    /// cap scales with n (at n=2^10 a k of 13 gives only ~10 buckets per
    /// coefficient and collisions legitimately degrade the estimates).
    #[test]
    fn serial_recovers_random_instances(
        log2n in 11u32..14,
        k_frac in 0.0..1.0f64,
        sig_seed in 0u64..1_000,
        run_seed in 0u64..1_000,
    ) {
        let n = 1usize << log2n;
        let k_max = (n / 256).max(3);
        let k = 2 + (k_frac * (k_max - 2) as f64) as usize;
        let params = SfftParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_seed);
        let rec = sfft(&params, &s.time, run_seed);
        prop_assert!(
            support_recall(&s.coords, &rec) > 0.99,
            "missed support at n=2^{log2n}, k={k}, seeds=({sig_seed},{run_seed})"
        );
        // The estimate quality is probabilistic: with ~k²/2B bucket
        // collisions per loop, the occasional random instance carries a
        // handful of degraded medians. Bound the *average* error loosely
        // here; the deterministic unit tests pin it at 1e-3.
        prop_assert!(l1_error_per_coeff(&s.coords, &rec) < 0.1);
    }

    /// PsFFT is bit-identical to the serial reference for any seed.
    #[test]
    fn psfft_equals_serial_for_any_seed(
        sig_seed in 0u64..500,
        run_seed in 0u64..500,
    ) {
        let n = 1usize << 11;
        let k = 6;
        let params = SfftParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_seed);
        prop_assert_eq!(
            sfft(&params, &s.time, run_seed),
            psfft(&params, &s.time, run_seed)
        );
    }

    /// Recovery is magnitude-equivariant: scaling the signal scales the
    /// recovered coefficients.
    #[test]
    fn recovery_is_linear_in_amplitude(scale in 0.1f64..50.0, seed in 0u64..200) {
        let n = 1usize << 11;
        let k = 4;
        let params = SfftParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, seed);
        let scaled: Vec<fft::Cplx> = s.time.iter().map(|c| c.scale(scale)).collect();
        let base = sfft(&params, &s.time, 7);
        let big = sfft(&params, &scaled, 7);
        prop_assert_eq!(base.len(), big.len());
        for ((f1, v1), (f2, v2)) in base.iter().zip(&big) {
            prop_assert_eq!(f1, f2);
            prop_assert!(v2.dist(v1.scale(scale)) < 1e-6 * scale.max(1.0));
        }
    }

    /// The frequency permutation maps the support bijectively: every
    /// recovered large coefficient corresponds to a true one.
    #[test]
    fn no_large_phantom_coefficients(sig_seed in 0u64..500) {
        let n = 1usize << 12;
        let k = 8;
        let params = SfftParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_seed);
        let rec = sfft(&params, &s.time, 99);
        for (f, v) in rec {
            if v.abs() > 0.5 {
                prop_assert!(
                    s.coords.iter().any(|&(g, _)| g == f),
                    "phantom large coefficient at {f} ({v:?})"
                );
            }
        }
    }
}
