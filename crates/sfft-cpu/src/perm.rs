//! Random spectrum permutations (sFFT Step 1).
//!
//! A permutation is a pair `(σ, τ)` with `gcd(σ, n) = 1`: the algorithm
//! samples the time-domain signal at `x[(τ + t·σ⁻¹) mod n]`, which scales
//! the spectrum by σ — original frequency `f` appears at permuted
//! frequency `σ⁻¹·f` with an extra phase `e^{+2πi f τ / n}` (Definition 1
//! in the paper, with our FFT sign convention; the derivation is spelled
//! out in DESIGN.md).
//!
//! For power-of-two `n`, "invertible mod n" simply means *odd*.

use rand::Rng;

/// Greatest common divisor (Euclid).
pub fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Modular inverse of `a` mod `n` via the extended Euclidean algorithm.
/// Panics when `gcd(a, n) != 1`.
pub fn mod_inverse(a: usize, n: usize) -> usize {
    assert!(n > 1, "modulus must exceed 1");
    let (mut old_r, mut r) = (a as i128, n as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        let tr = old_r - q * r;
        old_r = r;
        r = tr;
        let ts = old_s - q * s;
        old_s = s;
        s = ts;
    }
    assert!(old_r == 1, "{a} is not invertible mod {n}");
    old_s.rem_euclid(n as i128) as usize
}

/// A spectrum permutation `(σ, τ)` for signals of length `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Permutation {
    /// σ — the frequency scaling factor ("a" in the paper's kernels).
    pub a: usize,
    /// σ⁻¹ mod n — the time-domain sampling stride ("ai").
    pub ai: usize,
    /// τ — the time-domain offset.
    pub tau: usize,
    /// Signal length.
    pub n: usize,
}

impl Permutation {
    /// Builds a permutation from explicit `σ` and `τ`.
    pub fn new(a: usize, tau: usize, n: usize) -> Self {
        assert!(n > 1, "n must exceed 1");
        assert!(a < n && tau < n, "parameters must be reduced mod n");
        assert_eq!(gcd(a, n), 1, "σ={a} must be invertible mod n={n}");
        Permutation {
            a,
            ai: mod_inverse(a, n),
            tau,
            n,
        }
    }

    /// Samples a random permutation (σ odd when n is a power of two,
    /// otherwise rejection-sampled for invertibility; τ uniform).
    pub fn random<R: Rng>(rng: &mut R, n: usize, random_tau: bool) -> Self {
        let a = loop {
            let cand = rng.gen_range(1..n);
            if gcd(cand, n) == 1 {
                break cand;
            }
        };
        let tau = if random_tau { rng.gen_range(0..n) } else { 0 };
        Permutation::new(a, tau, n)
    }

    /// Time-domain sample index used at loop position `t`:
    /// `(τ + t·σ⁻¹) mod n`.
    #[inline]
    pub fn source_index(&self, t: i64) -> usize {
        let n = self.n as i64;
        (self.tau as i64 + (t.rem_euclid(n)) * self.ai as i64).rem_euclid(n) as usize
    }

    /// The permuted frequency where original frequency `f` lands:
    /// `σ⁻¹·f mod n`.
    #[inline]
    pub fn permuted_freq(&self, f: usize) -> usize {
        mul_mod(self.ai, f, self.n)
    }

    /// Inverse map: original frequency for permuted frequency `g`:
    /// `σ·g mod n`.
    #[inline]
    pub fn original_freq(&self, g: usize) -> usize {
        mul_mod(self.a, g, self.n)
    }
}

/// `(a * b) mod n` without overflow for `n ≤ 2^63`.
#[inline]
pub fn mul_mod(a: usize, b: usize, n: usize) -> usize {
    ((a as u128 * b as u128) % n as u128) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn mod_inverse_is_inverse() {
        for n in [16usize, 64, 1024, 4096] {
            for a in (1..n.min(200)).step_by(2) {
                let ai = mod_inverse(a, n);
                assert_eq!(mul_mod(a, ai, n), 1, "a={a} n={n}");
            }
        }
        assert_eq!(mod_inverse(3, 7), 5);
    }

    #[test]
    #[should_panic(expected = "not invertible")]
    fn even_not_invertible_mod_pow2() {
        mod_inverse(4, 16);
    }

    #[test]
    fn permutation_roundtrips_frequencies() {
        let p = Permutation::new(5, 3, 64);
        for f in 0..64 {
            assert_eq!(p.original_freq(p.permuted_freq(f)), f);
            assert_eq!(p.permuted_freq(p.original_freq(f)), f);
        }
    }

    #[test]
    fn permuted_freq_is_bijection() {
        let p = Permutation::new(13, 0, 256);
        let mut seen = vec![false; 256];
        for f in 0..256 {
            let g = p.permuted_freq(f);
            assert!(!seen[g], "collision at {g}");
            seen[g] = true;
        }
    }

    #[test]
    fn source_index_handles_negative_t() {
        let p = Permutation::new(3, 7, 32);
        // t = -1 ≡ 31: index = (7 + 31·ai) mod 32
        let expect = (7 + 31 * p.ai) % 32;
        assert_eq!(p.source_index(-1), expect);
        assert_eq!(p.source_index(0), 7);
    }

    #[test]
    fn random_permutations_are_valid_and_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sigmas = std::collections::HashSet::new();
        for _ in 0..50 {
            let p = Permutation::random(&mut rng, 1 << 12, true);
            assert_eq!(gcd(p.a, p.n), 1);
            assert_eq!(mul_mod(p.a, p.ai, p.n), 1);
            sigmas.insert(p.a);
        }
        assert!(sigmas.len() > 30, "σ values should vary");
    }

    #[test]
    fn tau_zero_when_disabled() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(Permutation::random(&mut rng, 256, false).tau, 0);
        }
    }

    #[test]
    fn spectrum_permutation_identity() {
        // The load-bearing property: permuting time by (τ, σ⁻¹) moves
        // frequency f to σ⁻¹·f with phase e^{+2πi f τ / n}.
        use fft::cplx::Cplx;
        use fft::dft::dft_coefficient;
        let n = 128;
        let f0 = 37;
        let x: Vec<Cplx> = (0..n)
            .map(|t| Cplx::cis(std::f64::consts::TAU * (f0 * t % n) as f64 / n as f64))
            .collect();
        let p = Permutation::new(29, 11, n);
        let permuted: Vec<Cplx> = (0..n).map(|t| x[p.source_index(t as i64)]).collect();
        let g = p.permuted_freq(f0);
        let got = dft_coefficient(&permuted, g);
        let expected = Cplx::real(n as f64)
            * Cplx::cis(std::f64::consts::TAU * (f0 * p.tau % n) as f64 / n as f64);
        assert!(
            got.dist(expected) < 1e-8 * n as f64,
            "{got:?} vs {expected:?}"
        );
        // All other permuted frequencies are ~zero.
        let other = (g + 1) % n;
        assert!(dft_coefficient(&permuted, other).abs() < 1e-6);
    }
}
