//! Step 6: magnitude reconstruction.
//!
//! For each located frequency `f`, every loop contributes one estimate
//! `Z_r[hash_r(f)]·n / Ĝ_r(off_r) · e^{−2πi f τ_r / n}`; the reported
//! coefficient is the component-wise median over loops — robust to the
//! loops where `f` collided with another coefficient or landed in the
//! filter's transition region.

use fft::cplx::Cplx;
use kselect::median_cplx;
use rayon::prelude::*;

use crate::inner::LoopData;
use crate::params::SfftParams;
use crate::perm::mul_mod;

/// Minimum |Ĝ| we are willing to divide by; below this the loop's sample
/// carries no usable information about `f` and is skipped.
const MIN_FILTER_MAG: f64 = 1e-8;

/// Computes one loop's estimate of `x̂[f]`, or `None` when the filter
/// response at the hash offset is too small to divide by.
pub fn loop_estimate(f: usize, ld: &LoopData, params: &SfftParams) -> Option<Cplx> {
    let n = params.n;
    let (b, filter) = if ld.is_loc {
        (params.b_loc, &params.filter_loc)
    } else {
        (params.b_est, &params.filter_est)
    };
    let n_div_b = n / b;
    let g = ld.perm.permuted_freq(f);
    let mut hashed = g / n_div_b;
    let mut dist = (g % n_div_b) as i64;
    if dist > (n_div_b / 2) as i64 {
        hashed = (hashed + 1) % b;
        dist -= n_div_b as i64;
    }
    let gf = filter.freq_at(-dist);
    if gf.abs() < MIN_FILTER_MAG {
        return None;
    }
    let phase = Cplx::cis(-std::f64::consts::TAU * mul_mod(f, ld.perm.tau, n) as f64 / n as f64);
    Some(ld.buckets[hashed].scale(n as f64) / gf * phase)
}

/// Reconstructs the coefficients for all `hits` (sequential).
pub fn estimate(hits: &[usize], loops: &[LoopData], params: &SfftParams) -> Vec<(usize, Cplx)> {
    hits.iter()
        .map(|&f| (f, estimate_one(f, loops, params)))
        .collect()
}

/// Reconstructs in parallel over hits (the PsFFT/OpenMP form).
pub fn estimate_parallel(
    hits: &[usize],
    loops: &[LoopData],
    params: &SfftParams,
) -> Vec<(usize, Cplx)> {
    hits.par_iter()
        .map(|&f| (f, estimate_one(f, loops, params)))
        .collect()
}

fn estimate_one(f: usize, loops: &[LoopData], params: &SfftParams) -> Cplx {
    let vals: Vec<Cplx> = loops
        .iter()
        .filter_map(|ld| loop_estimate(f, ld, params))
        .collect();
    if vals.is_empty() {
        fft::cplx::ZERO
    } else {
        median_cplx(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inner::{perm_filter, subsample_fft};
    use crate::perm::Permutation;
    use fft::Plan;
    use signal::{MagnitudeModel, SparseSignal};

    fn build_loops(
        s: &SparseSignal,
        params: &SfftParams,
        seeds: &[usize],
        tau: usize,
    ) -> Vec<LoopData> {
        let plan_loc = Plan::new(params.b_loc);
        let plan_est = Plan::new(params.b_est);
        seeds
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let is_loc = i < params.loops_loc.min(seeds.len());
                let (b, filt, plan) = if is_loc {
                    (params.b_loc, &params.filter_loc, &plan_loc)
                } else {
                    (params.b_est, &params.filter_est, &plan_est)
                };
                let perm = Permutation::new(a, tau, s.n);
                let mut buckets = perm_filter(&s.time, filt, b, &perm);
                subsample_fft(&mut buckets, plan);
                LoopData {
                    perm,
                    buckets,
                    is_loc,
                }
            })
            .collect()
    }

    #[test]
    fn estimates_recover_sparse_coefficients() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 8);
        let s = SparseSignal::generate(n, 8, MagnitudeModel::Unit, 21);
        let loops = build_loops(&s, &params, &[101, 2031, 333, 1097, 55, 777], 0);
        let hits: Vec<usize> = s.coords.iter().map(|&(f, _)| f).collect();
        let rec = estimate(&hits, &loops, &params);
        for ((f, est), &(tf, tv)) in rec.iter().zip(&s.coords) {
            assert_eq!(*f, tf);
            assert!(
                est.dist(tv) < 1e-3,
                "f={f}: estimated {est:?}, true {tv:?}"
            );
        }
    }

    #[test]
    fn estimates_with_random_tau_phase_correction() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 4).with_random_tau();
        let s = SparseSignal::generate(n, 4, MagnitudeModel::Unit, 5);
        let loops = build_loops(&s, &params, &[101, 2031, 333], 911);
        let hits: Vec<usize> = s.coords.iter().map(|&(f, _)| f).collect();
        let rec = estimate(&hits, &loops, &params);
        for ((_, est), &(_, tv)) in rec.iter().zip(&s.coords) {
            assert!(
                est.dist(tv) < 1e-3,
                "τ-corrected estimate {est:?} vs {tv:?}"
            );
        }
    }

    #[test]
    fn parallel_estimation_matches_sequential() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 8);
        let s = SparseSignal::generate(n, 8, MagnitudeModel::Unit, 9);
        let loops = build_loops(&s, &params, &[101, 2031, 333, 1097], 0);
        let hits: Vec<usize> = s.coords.iter().map(|&(f, _)| f).collect();
        let a = estimate(&hits, &loops, &params);
        let b = estimate_parallel(&hits, &loops, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn non_signal_frequency_estimates_near_zero() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 4);
        let s = SparseSignal::generate(n, 4, MagnitudeModel::Unit, 31);
        let loops = build_loops(&s, &params, &[101, 2031, 333, 1097, 13], 0);
        // A frequency far from the support.
        let f = (0..n)
            .find(|f| s.coords.iter().all(|&(c, _)| c.abs_diff(*f) > 50))
            .unwrap();
        let rec = estimate(&[f], &loops, &params);
        assert!(
            rec[0].1.abs() < 1e-3,
            "noise estimate should be tiny: {:?}",
            rec[0].1
        );
    }
}
