//! PsFFT — the multicore CPU sparse FFT (the paper's OpenMP baseline from
//! prior work [6]), reimplemented with rayon.
//!
//! Parallel structure mirrors the OpenMP version:
//!
//! * the permute+filter+bin step is partitioned *by bucket* (each worker
//!   owns a stride-B slice of the filter taps — the same decomposition as
//!   GPU Algorithm 2, which keeps the reduction collision-free);
//! * the independent inner loops run concurrently;
//! * estimation parallelises over hits.
//!
//! Voting is aggregated sequentially in loop order, so PsFFT is
//! bit-identical to the serial reference for the same seed — asserted by
//! tests, and the property the paper relies on when it claims "the same
//! numerical accuracy as the original sequential algorithm".

use fft::cplx::{Cplx, ZERO};
use fft::Plan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use signal::Recovered;

use crate::estimate::estimate_parallel;
use crate::inner::{cutoff, locate, subsample_fft, LoopData};
use crate::params::SfftParams;
use crate::perm::Permutation;

/// Bucket-partitioned permute+filter (the loop-partition decomposition):
/// worker `tid` accumulates taps `i ≡ tid (mod B)` — collision-free.
pub fn perm_filter_partitioned(
    time: &[Cplx],
    filter: &filters::FlatFilter,
    b: usize,
    perm: &Permutation,
) -> Vec<Cplx> {
    let n = time.len();
    assert!(b > 0 && n.is_multiple_of(b), "B={b} must divide n={n}");
    let taps = filter.taps();
    let w = taps.len();
    let half = (w / 2) as i64;

    (0..b)
        .into_par_iter()
        .map(|tid| {
            // First loop position i with (i − w/2) mod B == tid.
            let first = (tid as i64 + half).rem_euclid(b as i64) as usize;
            let mut acc = ZERO;
            let mut i = first;
            while i < w {
                let t = i as i64 - half;
                let src = perm.source_index(t);
                acc += time[src] * taps[i];
                i += b;
            }
            acc
        })
        .collect()
}

/// Runs PsFFT. Deterministic and bit-identical to
/// [`crate::serial::sfft`] for the same `(params, time, seed)`.
pub fn psfft(params: &SfftParams, time: &[Cplx], seed: u64) -> Recovered {
    let n = params.n;
    assert_eq!(time.len(), n, "signal length must match params.n");
    let mut rng = StdRng::seed_from_u64(seed);

    // Draw all permutations up front (same RNG consumption order as the
    // serial reference).
    let perms: Vec<Permutation> = (0..params.loops_total())
        .map(|_| Permutation::random(&mut rng, n, params.random_tau))
        .collect();

    let plan_loc = Plan::new(params.b_loc);
    let plan_est = Plan::new(params.b_est);

    // Independent loops in parallel.
    let loops: Vec<LoopData> = perms
        .into_par_iter()
        .enumerate()
        .map(|(r, perm)| {
            let is_loc = r < params.loops_loc;
            let (b, filter, plan) = if is_loc {
                (params.b_loc, &params.filter_loc, &plan_loc)
            } else {
                (params.b_est, &params.filter_est, &plan_est)
            };
            let mut buckets = perm_filter_partitioned(time, filter, b, &perm);
            subsample_fft(&mut buckets, plan);
            LoopData {
                perm,
                buckets,
                is_loc,
            }
        })
        .collect();

    // Sequential vote aggregation in loop order (determinism).
    let mut score = vec![0u8; n];
    let mut hits: Vec<usize> = Vec::new();
    for ld in loops.iter().take(params.loops_loc) {
        let selected = cutoff(&ld.buckets, params.num_candidates);
        locate(
            &selected,
            &ld.perm,
            params.b_loc,
            params.loops_thresh,
            &mut score,
            &mut hits,
        );
    }

    let mut rec = estimate_parallel(&hits, &loops, params);
    rec.sort_unstable_by_key(|&(f, _)| f);
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inner::perm_filter;
    use crate::serial::sfft;
    use signal::{support_recall, MagnitudeModel, SparseSignal};

    #[test]
    fn partitioned_filter_matches_sequential_filter() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 8);
        let s = SparseSignal::generate(n, 8, MagnitudeModel::Unit, 17);
        let perm = Permutation::new(1001, 5, n);
        let seq = perm_filter(&s.time, &params.filter_loc, params.b_loc, &perm);
        let par = perm_filter_partitioned(&s.time, &params.filter_loc, params.b_loc, &perm);
        assert_eq!(seq.len(), par.len());
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert!(a.dist(*b) < 1e-12, "bucket {i}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn psfft_matches_serial_reference_exactly() {
        let n = 1 << 12;
        let k = 8;
        let params = SfftParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 23);
        let a = sfft(&params, &s.time, 555);
        let b = psfft(&params, &s.time, 555);
        assert_eq!(a.len(), b.len(), "same number of recovered coefficients");
        for ((fa, va), (fb, vb)) in a.iter().zip(&b) {
            assert_eq!(fa, fb);
            assert!(va.dist(*vb) < 1e-12, "f={fa}: {va:?} vs {vb:?}");
        }
    }

    #[test]
    fn psfft_recovers_support() {
        let n = 1 << 13;
        let k = 20;
        let params = SfftParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 77);
        let rec = psfft(&params, &s.time, 1);
        assert!(support_recall(&s.coords, &rec) > 0.95);
    }

    #[test]
    fn psfft_with_random_tau() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 6).with_random_tau();
        let s = SparseSignal::generate(n, 6, MagnitudeModel::Unit, 3);
        let a = sfft(&params, &s.time, 9);
        let b = psfft(&params, &s.time, 9);
        assert_eq!(a, b);
    }
}
