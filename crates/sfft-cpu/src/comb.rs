//! The Comb-filter heuristic of sFFT v2 (Hassanieh et al., SODA 2012 —
//! reference [2] of the paper).
//!
//! Subsampling the time signal by `n/M` aliases the spectrum mod `M`:
//! every coefficient `x̂_f` folds onto residue `f mod M`. A handful of
//! such combs with random offsets reveals which residues carry energy;
//! the location loops can then ignore candidate frequencies whose residue
//! never lit up, cutting the location/voting work by roughly `M / (c·k)`.
//! The random offset τ rotates each coefficient's phase, so two
//! coefficients sharing a residue are unlikely to cancel in *every* comb.

use fft::cplx::Cplx;
use fft::{Direction, Plan};
use rand::Rng;

/// Parameters of the comb pre-filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombParams {
    /// Comb size `M` (power of two dividing n). Residues are taken mod M.
    pub comb_size: usize,
    /// Number of comb passes with independent offsets.
    pub comb_loops: usize,
    /// Residues kept, as a multiple of k (`c·k` loudest residues).
    pub keep_factor: usize,
}

impl CombParams {
    /// Reference-style defaults: `M = 8·⌊√(n·k)⌋₂`-ish capped to `n/8`,
    /// 2 comb passes, keep `4k` residues.
    pub fn tuned(n: usize, k: usize) -> Self {
        let target = 8 * ((n * k) as f64).sqrt() as usize;
        let comb_size = fft::floor_pow2(target.clamp(16, n / 8));
        CombParams {
            comb_size,
            comb_loops: 2,
            keep_factor: 4,
        }
    }
}

/// One comb pass: the aliased magnitude spectrum
/// `|Σ_{f ≡ j (mod M)} x̂_f·e^{2πi f τ / n}|` for every residue `j`.
pub fn comb_magnitudes(time: &[Cplx], plan_m: &Plan, tau: usize) -> Vec<f64> {
    let n = time.len();
    let m = plan_m.len();
    assert!(m > 0 && n.is_multiple_of(m), "comb size {m} must divide n={n}");
    let stride = n / m;
    let mut sub: Vec<Cplx> = (0..m).map(|i| time[(tau + i * stride) % n]).collect();
    plan_m.process(&mut sub, Direction::Forward);
    sub.into_iter().map(|z| z.abs()).collect()
}

/// Runs the comb pre-filter and returns the residue mask: `mask[f % M]`
/// is true when frequency `f` is still a candidate.
pub fn comb_mask<R: Rng>(
    time: &[Cplx],
    k: usize,
    comb: &CombParams,
    rng: &mut R,
) -> Vec<bool> {
    let n = time.len();
    let m = comb.comb_size;
    let plan = Plan::new(m);
    let mut score = vec![0.0f64; m];
    for _ in 0..comb.comb_loops {
        let tau = rng.gen_range(0..n);
        for (s, mag) in score.iter_mut().zip(comb_magnitudes(time, &plan, tau)) {
            *s = s.max(mag);
        }
    }
    let keep = (comb.keep_factor * k).min(m);
    let selected = kselect::quickselect_top_k(&score, keep);
    let mut mask = vec![false; m];
    for i in selected {
        mask[i] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft::cplx::ZERO;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use signal::{MagnitudeModel, SparseSignal};

    #[test]
    fn tuned_params_divide_n() {
        for (log2n, k) in [(12u32, 8usize), (16, 100), (20, 1000)] {
            let n = 1usize << log2n;
            let c = CombParams::tuned(n, k);
            assert!(c.comb_size.is_power_of_two());
            assert_eq!(n % c.comb_size, 0);
            assert!(c.comb_size <= n / 8);
        }
    }

    #[test]
    fn single_tone_folds_to_its_residue() {
        let n = 1 << 10;
        let m = 64;
        let f0 = 517;
        let mut spectrum = vec![ZERO; n];
        spectrum[f0] = Cplx::new(1.0, 0.5);
        let mut time = spectrum;
        Plan::new(n).process(&mut time, Direction::Inverse);
        let mags = comb_magnitudes(&time, &Plan::new(m), 3);
        let peak = mags.iter().cloned().fold(0.0f64, f64::max);
        let loud: Vec<usize> = (0..m).filter(|&j| mags[j] > 0.5 * peak).collect();
        assert_eq!(loud, vec![f0 % m], "tone must alias to f0 mod M");
    }

    #[test]
    fn comb_magnitude_scaling_matches_theory() {
        // |ŷ[f0 mod M]| = (M/n)·|x̂_f0| for an isolated tone.
        let n = 1 << 10;
        let m = 128;
        let f0 = 333;
        let mut spectrum = vec![ZERO; n];
        spectrum[f0] = Cplx::real(2.0);
        let mut time = spectrum;
        Plan::new(n).process(&mut time, Direction::Inverse);
        let mags = comb_magnitudes(&time, &Plan::new(m), 0);
        let expected = 2.0 * m as f64 / n as f64;
        assert!(
            (mags[f0 % m] - expected).abs() < 1e-9,
            "{} vs {expected}",
            mags[f0 % m]
        );
    }

    #[test]
    fn mask_keeps_all_true_residues() {
        let n = 1 << 14;
        let k = 20;
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 11);
        let comb = CombParams::tuned(n, k);
        let mut rng = StdRng::seed_from_u64(5);
        let mask = comb_mask(&s.time, k, &comb, &mut rng);
        for &(f, _) in &s.coords {
            assert!(
                mask[f % comb.comb_size],
                "true coefficient at {f} filtered out by the comb"
            );
        }
        // And the mask is actually restrictive.
        let kept = mask.iter().filter(|&&b| b).count();
        assert!(
            kept <= comb.keep_factor * k + k,
            "mask keeps {kept} of {} residues",
            comb.comb_size
        );
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_comb_panics() {
        let time = vec![ZERO; 100];
        comb_magnitudes(&time, &Plan::new(64), 0);
    }
}
