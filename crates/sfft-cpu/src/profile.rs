//! Per-step wall-clock profiling of the sequential sFFT — the
//! instrumentation behind the paper's Figure 2 ("time distribution for the
//! major steps in sFFT").

use fft::cplx::Cplx;
use fft::Plan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use signal::Recovered;
use std::time::Instant;

use crate::estimate::estimate;
use crate::inner::{cutoff, locate, perm_filter, subsample_fft, LoopData};
use crate::params::SfftParams;
use crate::perm::Permutation;

/// Accumulated wall-clock seconds per sFFT step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepTimings {
    /// Steps 1-2: permutation + filtering + binning.
    pub perm_filter: f64,
    /// Step 3: B-dimensional FFTs.
    pub subsampled_fft: f64,
    /// Step 4: cutoff (top-k bucket selection).
    pub cutoff: f64,
    /// Step 5: reverse-hash location + voting.
    pub locate: f64,
    /// Step 6: magnitude reconstruction.
    pub estimate: f64,
    /// Whole-pipeline time (≥ the sum; includes bookkeeping).
    pub total: f64,
}

impl StepTimings {
    /// Sum of the per-step times.
    pub fn steps_sum(&self) -> f64 {
        self.perm_filter + self.subsampled_fft + self.cutoff + self.locate + self.estimate
    }

    /// Per-step shares of the step sum, in Figure-2 order.
    pub fn shares(&self) -> [f64; 5] {
        let s = self.steps_sum().max(f64::MIN_POSITIVE);
        [
            self.perm_filter / s,
            self.subsampled_fft / s,
            self.cutoff / s,
            self.locate / s,
            self.estimate / s,
        ]
    }

    /// Step labels matching [`StepTimings::shares`].
    pub const LABELS: [&'static str; 5] = [
        "perm+filter",
        "subsampled FFT",
        "cutoff",
        "locate",
        "estimate",
    ];
}

/// Runs the sequential sFFT, timing each step. Produces the same result
/// as [`crate::serial::sfft`] for the same seed.
pub fn sfft_profiled(params: &SfftParams, time: &[Cplx], seed: u64) -> (Recovered, StepTimings) {
    let n = params.n;
    assert_eq!(time.len(), n, "signal length must match params.n");
    let mut rng = StdRng::seed_from_u64(seed);
    let t_start = Instant::now();

    let plan_loc = Plan::new(params.b_loc);
    let plan_est = Plan::new(params.b_est);

    let mut timings = StepTimings::default();
    let mut score = vec![0u8; n];
    let mut hits: Vec<usize> = Vec::new();
    let mut loops: Vec<LoopData> = Vec::with_capacity(params.loops_total());

    for r in 0..params.loops_total() {
        let is_loc = r < params.loops_loc;
        let (b, filter, plan) = if is_loc {
            (params.b_loc, &params.filter_loc, &plan_loc)
        } else {
            (params.b_est, &params.filter_est, &plan_est)
        };
        let perm = Permutation::random(&mut rng, n, params.random_tau);

        let t0 = Instant::now();
        let mut buckets = perm_filter(time, filter, b, &perm);
        timings.perm_filter += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        subsample_fft(&mut buckets, plan);
        timings.subsampled_fft += t1.elapsed().as_secs_f64();

        if is_loc {
            let t2 = Instant::now();
            let selected = cutoff(&buckets, params.num_candidates);
            timings.cutoff += t2.elapsed().as_secs_f64();

            let t3 = Instant::now();
            locate(
                &selected,
                &perm,
                b,
                params.loops_thresh,
                &mut score,
                &mut hits,
            );
            timings.locate += t3.elapsed().as_secs_f64();
        }
        loops.push(LoopData {
            perm,
            buckets,
            is_loc,
        });
    }

    let t4 = Instant::now();
    let mut rec = estimate(&hits, &loops, params);
    timings.estimate += t4.elapsed().as_secs_f64();
    rec.sort_unstable_by_key(|&(f, _)| f);

    timings.total = t_start.elapsed().as_secs_f64();
    (rec, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::sfft;
    use signal::{MagnitudeModel, SparseSignal};

    #[test]
    fn profiled_run_matches_plain_run() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 8);
        let s = SparseSignal::generate(n, 8, MagnitudeModel::Unit, 2);
        let plain = sfft(&params, &s.time, 42);
        let (profiled, t) = sfft_profiled(&params, &s.time, 42);
        assert_eq!(plain, profiled);
        assert!(t.total > 0.0);
        assert!(t.steps_sum() <= t.total * 1.5);
    }

    #[test]
    fn shares_sum_to_one() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 8);
        let s = SparseSignal::generate(n, 8, MagnitudeModel::Unit, 2);
        let (_, t) = sfft_profiled(&params, &s.time, 1);
        let sum: f64 = t.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(StepTimings::LABELS.len(), t.shares().len());
    }

    #[test]
    fn perm_filter_dominates_at_larger_n() {
        // Figure 2(a): permutation+filter is the most time-consuming step
        // as n grows with fixed k.
        let n = 1 << 16;
        let params = SfftParams::tuned(n, 64);
        let s = SparseSignal::generate(n, 64, MagnitudeModel::Unit, 5);
        // Wall-clock shares are noisy on a loaded host; accept the best
        // of three runs.
        let mut best: Option<[f64; 5]> = None;
        for attempt in 0..3 {
            let (_, t) = sfft_profiled(&params, &s.time, 3);
            let shares = t.shares();
            let max = shares.iter().cloned().fold(0.0, f64::max);
            if shares[0] >= max * 0.8 {
                return;
            }
            best = Some(shares);
            let _ = attempt;
        }
        panic!("perm+filter should be (near-)dominant: {best:?}");
    }
}
