//! sFFT v2: the v1 pipeline preceded by the Comb pre-filter.
//!
//! The comb restricts location candidates to `O(k)` residue classes mod
//! `M`, which shrinks the voting work and starves spurious hits of votes.
//! This is the second algorithm of the paper's reference [2]; cusFFT
//! ports v1, so v2 lives here as the extension the original authors list
//! among the variants ("more applications with denser spectra could also
//! achieve speedups").

use fft::cplx::Cplx;
use fft::Plan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use signal::Recovered;

use crate::comb::{comb_mask, CombParams};
use crate::estimate::estimate;
use crate::inner::{cutoff, locate_masked, perm_filter, subsample_fft, LoopData};
use crate::params::SfftParams;
use crate::perm::Permutation;

/// Statistics of a v2 run, for the comb-ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Stats {
    /// Residues the comb kept (out of `comb_size`).
    pub residues_kept: usize,
    /// Hits that reached the vote threshold.
    pub hits: usize,
}

/// Runs sFFT v2. Deterministic per `(params, comb, time, seed)`.
pub fn sfft_v2(
    params: &SfftParams,
    comb: &CombParams,
    time: &[Cplx],
    seed: u64,
) -> (Recovered, V2Stats) {
    let n = params.n;
    assert_eq!(time.len(), n, "signal length must match params.n");
    let mut rng = StdRng::seed_from_u64(seed);

    let mask = comb_mask(time, params.k, comb, &mut rng);
    let residues_kept = mask.iter().filter(|&&b| b).count();

    let plan_loc = Plan::new(params.b_loc);
    let plan_est = Plan::new(params.b_est);
    let mut score = vec![0u8; n];
    let mut hits: Vec<usize> = Vec::new();
    let mut loops: Vec<LoopData> = Vec::with_capacity(params.loops_total());

    for r in 0..params.loops_total() {
        let is_loc = r < params.loops_loc;
        let (b, filter, plan) = if is_loc {
            (params.b_loc, &params.filter_loc, &plan_loc)
        } else {
            (params.b_est, &params.filter_est, &plan_est)
        };
        let perm = Permutation::random(&mut rng, n, params.random_tau);
        let mut buckets = perm_filter(time, filter, b, &perm);
        subsample_fft(&mut buckets, plan);
        if is_loc {
            let selected = cutoff(&buckets, params.num_candidates);
            locate_masked(
                &selected,
                &perm,
                b,
                params.loops_thresh,
                &mut score,
                &mut hits,
                &mask,
            );
        }
        loops.push(LoopData {
            perm,
            buckets,
            is_loc,
        });
    }

    let mut rec = estimate(&hits, &loops, params);
    rec.sort_unstable_by_key(|&(f, _)| f);
    let stats = V2Stats {
        residues_kept,
        hits: rec.len(),
    };
    (rec, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::sfft;
    use signal::{l1_error_per_coeff, support_recall, MagnitudeModel, SparseSignal};

    #[test]
    fn v2_recovers_sparse_spectrum() {
        let n = 1 << 13;
        let k = 16;
        let params = SfftParams::tuned(n, k);
        let comb = CombParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 9);
        let (rec, stats) = sfft_v2(&params, &comb, &s.time, 4);
        assert!(support_recall(&s.coords, &rec) > 0.99);
        assert!(l1_error_per_coeff(&s.coords, &rec) < 1e-3);
        assert!(stats.residues_kept <= comb.keep_factor * k + k);
    }

    #[test]
    fn v2_produces_no_more_hits_than_v1() {
        let n = 1 << 13;
        let k = 8;
        let params = SfftParams::tuned(n, k);
        let comb = CombParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 2);
        let v1 = sfft(&params, &s.time, 6);
        let (v2, _) = sfft_v2(&params, &comb, &s.time, 6);
        // The comb can only remove candidates (spurious hits), never add.
        assert!(v2.len() <= v1.len() + k, "v2 {} vs v1 {}", v2.len(), v1.len());
        assert!(support_recall(&s.coords, &v2) > 0.99);
    }

    #[test]
    fn v2_deterministic() {
        let n = 1 << 12;
        let k = 8;
        let params = SfftParams::tuned(n, k);
        let comb = CombParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 3);
        let a = sfft_v2(&params, &comb, &s.time, 5);
        let b = sfft_v2(&params, &comb, &s.time, 5);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn masked_locate_rejects_filtered_residues() {
        use crate::inner::locate_masked;
        let n = 256;
        let b = 16;
        let perm = Permutation::new(9, 0, n);
        let mut score = vec![0u8; n];
        let mut hits = Vec::new();
        // Mask that allows nothing: no votes at all.
        let mask = vec![false; 16];
        locate_masked(&[3], &perm, b, 1, &mut score, &mut hits, &mask);
        assert!(hits.is_empty());
        assert!(score.iter().all(|&s| s == 0));
        // Mask that allows everything: same as unmasked.
        let mask = vec![true; 16];
        locate_masked(&[3], &perm, b, 1, &mut score, &mut hits, &mask);
        assert_eq!(hits.len(), n / b);
    }
}
