//! The sFFT inner loop: permute+filter+bin (Steps 1-2), subsampled FFT
//! (Step 3), cutoff (Step 4), and location voting (Step 5).
//!
//! Time indices are *centred* on the filter support: loop position `i`
//! corresponds to time `t = i − w/2`, sampled from the permuted signal at
//! `x[(τ + t·σ⁻¹) mod n]` and binned into bucket `t mod B`. Keeping the
//! support centred makes the filter's frequency response phase-free (see
//! `filters::flat`), so estimation divides by a real-positive passband.

use fft::cplx::{Cplx, ZERO};
use fft::{Direction, Plan};
use filters::FlatFilter;

use crate::perm::{mul_mod, Permutation};

/// Permutes, filters and bins the signal into `b` buckets (sequential
/// recurrence form — the paper's Algorithm 1, plus centring).
pub fn perm_filter(time: &[Cplx], filter: &FlatFilter, b: usize, perm: &Permutation) -> Vec<Cplx> {
    let n = time.len();
    assert_eq!(n, perm.n, "permutation built for different n");
    assert_eq!(n, filter.n(), "filter designed for different n");
    assert!(b > 0 && n.is_multiple_of(b), "B={b} must divide n={n}");
    let taps = filter.taps();
    let w = taps.len();
    let half = (w / 2) as i64;

    let mut buckets = vec![ZERO; b];
    // Running state: src = (τ + t·σ⁻¹) mod n and bi = t mod B for t = i−w/2.
    let mut src = perm.source_index(-half);
    let mut bi = (-half).rem_euclid(b as i64) as usize;
    let ai = perm.ai;
    for &tap in taps {
        buckets[bi] += time[src] * tap;
        src += ai;
        if src >= n {
            src -= n;
        }
        bi += 1;
        if bi == b {
            bi = 0;
        }
    }
    buckets
}

/// Step 3: the B-dimensional FFT of the binned buckets, in place.
pub fn subsample_fft(buckets: &mut [Cplx], plan: &Plan) {
    plan.process(buckets, Direction::Forward);
}

/// Step 4 (reference cutoff): indices of the `num` buckets with the
/// largest squared magnitudes (ties may add a few extra — the algorithm
/// tolerates a superset).
pub fn cutoff(buckets: &[Cplx], num: usize) -> Vec<usize> {
    let samples: Vec<f64> = buckets.iter().map(|c| c.norm_sqr()).collect();
    kselect::quickselect_top_k(&samples, num)
}

/// Step 5: reverse the hash for every selected bucket and vote for the
/// candidate original frequencies. A frequency whose score *reaches*
/// `thresh` is appended to `hits` (exactly once).
pub fn locate(
    selected: &[usize],
    perm: &Permutation,
    b: usize,
    thresh: usize,
    score: &mut [u8],
    hits: &mut Vec<usize>,
) {
    let n = perm.n;
    assert_eq!(score.len(), n, "score array must have n entries");
    let n_div_b = n / b;
    let half = n_div_b / 2;
    let thresh = thresh.min(u8::MAX as usize) as u8;
    for &j in selected {
        // Permuted frequencies hashing to bucket j: [j·n/B − n/2B, …+n/B).
        let low = (j * n_div_b + n - half) % n;
        let mut loc = mul_mod(low, perm.a, n);
        let step = perm.a;
        for _ in 0..n_div_b {
            let s = &mut score[loc];
            if *s < u8::MAX {
                *s += 1;
                if *s == thresh {
                    hits.push(loc);
                }
            }
            loc += step;
            if loc >= n {
                loc -= n;
            }
        }
    }
}

/// Step 5 with a comb restriction (sFFT v2): identical to [`locate`]
/// except that candidates whose residue mod `mask.len()` is not set are
/// skipped — they were ruled out by the comb pre-filter, so neither the
/// vote nor the score write happens.
#[allow(clippy::too_many_arguments)]
pub fn locate_masked(
    selected: &[usize],
    perm: &Permutation,
    b: usize,
    thresh: usize,
    score: &mut [u8],
    hits: &mut Vec<usize>,
    mask: &[bool],
) {
    let n = perm.n;
    assert_eq!(score.len(), n, "score array must have n entries");
    let m = mask.len();
    assert!(m > 0 && n.is_multiple_of(m), "mask length must divide n");
    let n_div_b = n / b;
    let half = n_div_b / 2;
    let thresh = thresh.min(u8::MAX as usize) as u8;
    for &j in selected {
        let low = (j * n_div_b + n - half) % n;
        let mut loc = mul_mod(low, perm.a, n);
        for _ in 0..n_div_b {
            if mask[loc % m] {
                let s = &mut score[loc];
                if *s < u8::MAX {
                    *s += 1;
                    if *s == thresh {
                        hits.push(loc);
                    }
                }
            }
            loc += perm.a;
            if loc >= n {
                loc -= n;
            }
        }
    }
}

/// Data retained per loop for the estimation step.
#[derive(Debug, Clone)]
pub struct LoopData {
    /// The loop's permutation.
    pub perm: Permutation,
    /// Post-FFT bucket spectrum `Z[b]`.
    pub buckets: Vec<Cplx>,
    /// Whether this was a location loop (selects which filter applies).
    pub is_loc: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SfftParams;
    use signal::{MagnitudeModel, SparseSignal};

    /// The correctness anchor: for an isolated tone x̂[f]=v, the bucket
    /// value satisfies Z[hash(f)]·n / Ĝ(off) · e^{−2πi fτ/n} = v.
    #[test]
    fn single_tone_bucket_identity() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 4);
        let b = params.b_loc;
        let plan = Plan::new(b);
        for (f0, tau) in [(137usize, 0usize), (2049, 97), (4000, 1234)] {
            let v = Cplx::new(0.8, -0.6);
            let mut spectrum = vec![ZERO; n];
            spectrum[f0] = v;
            let mut time = spectrum;
            Plan::new(n).process(&mut time, Direction::Inverse);

            let perm = Permutation::new(101, tau, n);
            let mut buckets = perm_filter(&time, &params.filter_loc, b, &perm);
            subsample_fft(&mut buckets, &plan);

            let n_div_b = n / b;
            let g = perm.permuted_freq(f0);
            let mut hashed = g / n_div_b;
            let mut dist = (g % n_div_b) as i64;
            if dist > (n_div_b / 2) as i64 {
                hashed = (hashed + 1) % b;
                dist -= n_div_b as i64;
            }
            let gf = params.filter_loc.freq_at(-dist);
            let phase = Cplx::cis(
                -std::f64::consts::TAU * mul_mod(f0, tau, n) as f64 / n as f64,
            );
            let est = buckets[hashed].scale(n as f64) / gf * phase;
            assert!(
                est.dist(v) < 1e-4,
                "f0={f0} τ={tau}: estimated {est:?}, true {v:?} (|Ĝ|={})",
                gf.abs()
            );
        }
    }

    #[test]
    fn tone_lands_in_exactly_one_loud_bucket() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 4);
        let b = params.b_loc;
        let s = SparseSignal::generate(n, 1, MagnitudeModel::Unit, 3);
        let perm = Permutation::new(77, 0, n);
        let mut buckets = perm_filter(&s.time, &params.filter_loc, b, &perm);
        subsample_fft(&mut buckets, &Plan::new(b));
        let loud: Vec<usize> = (0..b)
            .filter(|&i| buckets[i].abs() > 0.1 / n as f64 * n as f64 * 0.001)
            .collect();
        let mags: Vec<f64> = buckets.iter().map(|c| c.abs()).collect();
        let max = mags.iter().cloned().fold(0.0, f64::max);
        let big: Vec<usize> = (0..b).filter(|&i| mags[i] > max * 0.5).collect();
        assert!(big.len() <= 3, "tone should concentrate: {big:?} {loud:?}");
    }

    #[test]
    fn cutoff_returns_top_buckets() {
        let mut buckets = vec![ZERO; 16];
        buckets[3] = Cplx::real(10.0);
        buckets[9] = Cplx::real(5.0);
        buckets[12] = Cplx::real(7.0);
        let top = cutoff(&buckets, 2);
        assert!(top.contains(&3) && top.contains(&12));
    }

    #[test]
    fn locate_votes_cover_the_true_frequency() {
        let n = 1 << 10;
        let b = 64;
        let perm = Permutation::new(237, 0, n);
        // Put a tone at f0; its bucket is round(g·B/n).
        let f0 = 500;
        let g = perm.permuted_freq(f0);
        let n_div_b = n / b;
        let j = ((g + n_div_b / 2) / n_div_b) % b;
        let mut score = vec![0u8; n];
        let mut hits = Vec::new();
        locate(&[j], &perm, b, 1, &mut score, &mut hits);
        assert!(
            hits.contains(&f0),
            "true frequency {f0} must be among the candidates {hits:?}"
        );
        assert_eq!(hits.len(), n_div_b, "one candidate per preimage element");
    }

    #[test]
    fn locate_threshold_requires_repeat_votes() {
        let n = 256;
        let b = 16;
        let perm = Permutation::new(9, 0, n);
        let mut score = vec![0u8; n];
        let mut hits = Vec::new();
        locate(&[3], &perm, b, 2, &mut score, &mut hits);
        assert!(hits.is_empty(), "one vote is below threshold 2");
        locate(&[3], &perm, b, 2, &mut score, &mut hits);
        assert_eq!(hits.len(), n / b, "second pass pushes them over");
        // A third pass must not duplicate.
        locate(&[3], &perm, b, 2, &mut score, &mut hits);
        assert_eq!(hits.len(), n / b);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn b_must_divide_n() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 4);
        let perm = Permutation::new(5, 0, n);
        perm_filter(
            &vec![ZERO; n],
            &params.filter_loc,
            3,
            &perm,
        );
    }
}
