//! The sequential sFFT v1 pipeline — the reference the paper ports to the
//! GPU, and the ground truth every parallel implementation in this
//! workspace is tested against.

use fft::cplx::Cplx;
use fft::Plan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use signal::Recovered;

use crate::estimate::estimate;
use crate::inner::{cutoff, locate, perm_filter, subsample_fft, LoopData};
use crate::params::SfftParams;
use crate::perm::Permutation;

/// Runs the full sparse FFT on `time` and returns the recovered
/// `(frequency, coefficient)` pairs sorted by frequency.
///
/// `seed` drives the random permutations; the result is fully
/// deterministic given `(params, time, seed)`.
///
/// ```
/// use sfft_cpu::{sfft, SfftParams};
/// use signal::{SparseSignal, MagnitudeModel};
/// let n = 1 << 11;
/// let s = SparseSignal::generate(n, 4, MagnitudeModel::Unit, 7);
/// let rec = sfft(&SfftParams::tuned(n, 4), &s.time, 1);
/// for (f, v) in &s.coords {
///     let (_, est) = rec.iter().find(|(g, _)| g == f).expect("recovered");
///     assert!(est.dist(*v) < 1e-3);
/// }
/// ```
pub fn sfft(params: &SfftParams, time: &[Cplx], seed: u64) -> Recovered {
    let (mut rec, _) = sfft_with_loops(params, time, seed);
    rec.sort_unstable_by_key(|&(f, _)| f);
    rec
}

/// Like [`sfft`], also returning the per-loop data (for tests and the GPU
/// implementation's cross-checks).
pub fn sfft_with_loops(
    params: &SfftParams,
    time: &[Cplx],
    seed: u64,
) -> (Recovered, Vec<LoopData>) {
    let n = params.n;
    assert_eq!(time.len(), n, "signal length must match params.n");
    let mut rng = StdRng::seed_from_u64(seed);

    let plan_loc = Plan::new(params.b_loc);
    let plan_est = Plan::new(params.b_est);

    let mut score = vec![0u8; n];
    let mut hits: Vec<usize> = Vec::new();
    let mut loops: Vec<LoopData> = Vec::with_capacity(params.loops_total());

    for r in 0..params.loops_total() {
        let is_loc = r < params.loops_loc;
        let (b, filter, plan) = if is_loc {
            (params.b_loc, &params.filter_loc, &plan_loc)
        } else {
            (params.b_est, &params.filter_est, &plan_est)
        };
        let perm = Permutation::random(&mut rng, n, params.random_tau);
        let mut buckets = perm_filter(time, filter, b, &perm);
        subsample_fft(&mut buckets, plan);
        if is_loc {
            let selected = cutoff(&buckets, params.num_candidates);
            locate(
                &selected,
                &perm,
                b,
                params.loops_thresh,
                &mut score,
                &mut hits,
            );
        }
        loops.push(LoopData {
            perm,
            buckets,
            is_loc,
        });
    }

    (estimate(&hits, &loops, params), loops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::{l1_error_per_coeff, support_recall, MagnitudeModel, SparseSignal};

    fn run(n: usize, k: usize, seed: u64) -> (SparseSignal, Recovered) {
        let params = SfftParams::tuned(n, k);
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, seed);
        let rec = sfft(&params, &s.time, seed ^ 0xabcdef);
        (s, rec)
    }

    #[test]
    fn recovers_all_coefficients_small() {
        let (s, rec) = run(1 << 12, 8, 1);
        assert!(
            support_recall(&s.coords, &rec) > 0.99,
            "missed coefficients: truth {:?}",
            s.coords.iter().map(|&(f, _)| f).collect::<Vec<_>>()
        );
        let err = l1_error_per_coeff(&s.coords, &rec);
        assert!(err < 1e-3, "L1 error {err}");
    }

    #[test]
    fn recovers_at_moderate_size_and_sparsity() {
        let (s, rec) = run(1 << 14, 50, 2);
        assert!(support_recall(&s.coords, &rec) > 0.98);
        let err = l1_error_per_coeff(&s.coords, &rec);
        assert!(err < 1e-2, "L1 error {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let params = SfftParams::tuned(1 << 12, 8);
        let s = SparseSignal::generate(1 << 12, 8, MagnitudeModel::Unit, 4);
        let a = sfft(&params, &s.time, 99);
        let b = sfft(&params, &s.time, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_same_support() {
        let params = SfftParams::tuned(1 << 12, 8);
        let s = SparseSignal::generate(1 << 12, 8, MagnitudeModel::Unit, 4);
        let a = sfft(&params, &s.time, 1);
        let b = sfft(&params, &s.time, 2);
        let fa: Vec<usize> = a
            .iter()
            .filter(|(_, v)| v.abs() > 0.5)
            .map(|&(f, _)| f)
            .collect();
        let fb: Vec<usize> = b
            .iter()
            .filter(|(_, v)| v.abs() > 0.5)
            .map(|&(f, _)| f)
            .collect();
        assert_eq!(fa, fb, "large coefficients must not depend on the seed");
    }

    #[test]
    fn random_tau_variant_recovers() {
        let n = 1 << 12;
        let params = SfftParams::tuned(n, 8).with_random_tau();
        let s = SparseSignal::generate(n, 8, MagnitudeModel::Unit, 10);
        let rec = sfft(&params, &s.time, 7);
        assert!(support_recall(&s.coords, &rec) > 0.99);
        assert!(l1_error_per_coeff(&s.coords, &rec) < 1e-3);
    }

    #[test]
    fn works_with_varied_magnitudes() {
        let n = 1 << 13;
        let k = 16;
        let params = SfftParams::tuned(n, k);
        let s = SparseSignal::generate(
            n,
            k,
            MagnitudeModel::Uniform { lo: 1.0, hi: 10.0 },
            6,
        );
        let rec = sfft(&params, &s.time, 3);
        assert!(support_recall(&s.coords, &rec) > 0.9);
        // Relative error per coefficient magnitude.
        let err = l1_error_per_coeff(&s.coords, &rec);
        assert!(err < 0.1, "L1 error {err}");
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn wrong_signal_length_panics() {
        let params = SfftParams::tuned(1 << 12, 8);
        sfft(&params, &[fft::cplx::ZERO; 16], 1);
    }
}
