//! Tuned sFFT parameters.
//!
//! The reference implementation ships experimentally tuned constants per
//! `(n, k)`; the shapes below follow its recipe:
//!
//! * bucket counts `B = floor_pow2(Bcst·√(n·k / log₂ n))` with separate
//!   constants for the location and estimation filters,
//! * filter lobe fraction `0.5 / BB` and flat width `≈ 1.3·n/BB`,
//! * a handful of location loops with a majority-vote threshold and a
//!   larger set of estimation loops.

use filters::{FlatFilter, WindowKind};

/// All derived parameters for one `(n, k)` problem, including the two
/// designed filters (filters are the expensive part — build once, reuse).
#[derive(Debug, Clone)]
pub struct SfftParams {
    /// Signal length (power of two).
    pub n: usize,
    /// Target sparsity.
    pub k: usize,
    /// Buckets for location loops (power of two dividing n).
    pub b_loc: usize,
    /// Buckets for estimation loops.
    pub b_est: usize,
    /// Number of location loops.
    pub loops_loc: usize,
    /// Number of estimation-only loops (total loops = loc + est).
    pub loops_est: usize,
    /// Vote threshold: a frequency is a hit once it scores this many
    /// location-loop votes.
    pub loops_thresh: usize,
    /// Buckets selected per location loop (the cutoff size, ≈ 2k).
    pub num_candidates: usize,
    /// Whether permutations use random τ offsets (the reference fixes
    /// τ = 0; the general path is kept for testing Definition 1).
    pub random_tau: bool,
    /// Location filter.
    pub filter_loc: FlatFilter,
    /// Estimation filter (tighter tolerance).
    pub filter_est: FlatFilter,
}

/// Tuning constants (the reference's `Bcst` etc.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// Location bucket constant.
    pub bcst_loc: f64,
    /// Estimation bucket constant.
    pub bcst_est: f64,
    /// Location filter stopband level.
    pub tol_loc: f64,
    /// Estimation filter stopband level.
    pub tol_est: f64,
    /// Location loops.
    pub loops_loc: usize,
    /// Estimation loops.
    pub loops_est: usize,
    /// Vote threshold.
    pub loops_thresh: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            bcst_loc: 4.0,
            bcst_est: 2.0,
            tol_loc: 1e-6,
            tol_est: 1e-8,
            loops_loc: 4,
            loops_est: 12,
            loops_thresh: 3,
        }
    }
}

impl Tuning {
    /// Size-aware tuning in the spirit of the MIT reference's experiment
    /// tables: larger problems afford fewer, wider location loops (the
    /// buckets get so numerous that collisions are rare), while small
    /// problems need more voting rounds to suppress spurious candidates.
    pub fn for_problem(n: usize, k: usize) -> Self {
        let density = k as f64 / n as f64;
        let mut t = Tuning::default();
        if density > 1.0 / 2048.0 {
            // Relatively dense spectra: more location loops and a higher
            // vote threshold keep the candidate set clean.
            t.loops_loc = 6;
            t.loops_thresh = 4;
            t.loops_est = 14;
        } else if n >= 1 << 22 {
            // Huge, very sparse problems: buckets are plentiful, so fewer
            // estimation loops suffice.
            t.loops_est = 10;
        }
        t
    }

    /// Brownout tuning: the serving layer's reduced-accuracy mode under
    /// queue pressure. Halves the location and estimation loop counts
    /// (the dominant runtime term — each loop is a full
    /// permute/filter/FFT/select round), trading recovery margin for
    /// latency per the accuracy/runtime curves in the sFFT survey
    /// literature. Floors keep the voting scheme functional: at least
    /// two location loops so a vote threshold exists, and enough
    /// estimation loops for the median to reject outliers.
    pub fn degraded(mut self) -> Self {
        self.loops_loc = (self.loops_loc / 2).max(2);
        self.loops_est = (self.loops_est / 2).max(3);
        self.loops_thresh = self.loops_thresh.min(self.loops_loc).max(1);
        self
    }
}

/// Why parameters could not be derived for a `(n, k)` problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// `n` is not a power of two.
    NotPowerOfTwo(usize),
    /// `n` is below the practical minimum.
    TooSmall(usize),
    /// `k` outside `1..=n/8`.
    BadSparsity {
        /// Requested sparsity.
        k: usize,
        /// Maximum supported for this n.
        max: usize,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::NotPowerOfTwo(n) => write!(f, "n={n} is not a power of two"),
            ParamError::TooSmall(n) => {
                write!(f, "n={n} is below 512; use a dense FFT at this size")
            }
            ParamError::BadSparsity { k, max } => {
                write!(f, "sparsity k={k} outside 1..={max}")
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl SfftParams {
    /// Fallible parameter derivation: returns a typed error instead of
    /// panicking on bad problem shapes.
    pub fn try_tuned(n: usize, k: usize) -> Result<Self, ParamError> {
        if !fft::is_pow2(n) {
            return Err(ParamError::NotPowerOfTwo(n));
        }
        if n < 512 {
            return Err(ParamError::TooSmall(n));
        }
        if k == 0 || k > n / 8 {
            return Err(ParamError::BadSparsity { k, max: n / 8 });
        }
        Ok(Self::tuned(n, k))
    }

    /// Derives parameters for `(n, k)` with the default tuning.
    pub fn tuned(n: usize, k: usize) -> Self {
        Self::with_tuning(n, k, Tuning::default())
    }

    /// Derives parameters with explicit tuning constants.
    pub fn with_tuning(n: usize, k: usize, t: Tuning) -> Self {
        assert!(fft::is_pow2(n), "n must be a power of two, got {n}");
        assert!(n >= 512, "sFFT needs n ≥ 512 to beat direct methods");
        assert!(k >= 1 && k <= n / 8, "k={k} out of 1..={}", n / 8);
        assert!(t.loops_thresh <= t.loops_loc, "threshold exceeds loop count");

        let (b_loc, filter_loc) = design_side(n, k, t.bcst_loc, t.tol_loc);
        let (b_est, filter_est) = design_side(n, k, t.bcst_est, t.tol_est);

        SfftParams {
            n,
            k,
            b_loc,
            b_est,
            loops_loc: t.loops_loc,
            loops_est: t.loops_est,
            loops_thresh: t.loops_thresh.max(1),
            num_candidates: (2 * k).min(b_loc),
            random_tau: false,
            filter_loc,
            filter_est,
        }
    }

    /// Enables random τ offsets (exercises the phase-correction path).
    pub fn with_random_tau(mut self) -> Self {
        self.random_tau = true;
        self
    }

    /// Total loops (location + estimation).
    #[inline]
    pub fn loops_total(&self) -> usize {
        self.loops_loc + self.loops_est
    }

    /// Deterministic abstract host-work estimate for one execution of
    /// these parameters, in arbitrary "operation" units: per loop, the
    /// filter convolution (`width` multiply-adds) plus the subsampled
    /// FFT (`B·log₂B`), plus one pass over the signal. Only *relative*
    /// consistency matters — admission-control pricers scale this by a
    /// constant rate — so degraded tunings (fewer loops) price cheaper
    /// and larger geometries price higher, with no wall clocks involved.
    pub fn host_work_estimate(&self) -> f64 {
        let side = |loops: usize, b: usize, width: usize| {
            loops as f64 * (width as f64 + b as f64 * (b as f64).log2().max(1.0))
        };
        side(self.loops_loc, self.b_loc, self.filter_loc.width())
            + side(self.loops_est, self.b_est, self.filter_est.width())
            + self.n as f64
    }
}

/// Designs one side (location or estimation): bucket count + filter.
fn design_side(n: usize, k: usize, bcst: f64, tol: f64) -> (usize, FlatFilter) {
    let log2n = (n as f64).log2();
    let bb = (bcst * ((n * k) as f64 / log2n).sqrt()).max(8.0);
    let mut b = fft::floor_pow2(bb as usize);
    // B must divide n and leave a sensible bucket width.
    b = b.clamp(8, n / 8);
    let lobefrac = 0.5 / bb;
    let flat_width = ((1.3 * n as f64 / bb) as usize).max(2);
    // Estimation reads Ĝ at offsets up to n/(2B); keep a margin.
    let half_band = n / b;
    (
        b,
        FlatFilter::design(
            n,
            flat_width.min(n - 1),
            lobefrac.min(0.49),
            tol,
            half_band,
            WindowKind::DolphChebyshev,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_sizes_are_consistent() {
        let p = SfftParams::tuned(1 << 14, 20);
        assert!(p.b_loc.is_power_of_two());
        assert!(p.b_est.is_power_of_two());
        assert!(p.b_loc > p.b_est, "Bcst_loc > Bcst_est ⇒ more loc buckets");
        assert_eq!(p.n % p.b_loc, 0);
        assert_eq!(p.n % p.b_est, 0);
        assert!(p.num_candidates <= p.b_loc);
        assert_eq!(p.loops_total(), 16);
    }

    #[test]
    fn filters_have_sublinear_support() {
        let p = SfftParams::tuned(1 << 16, 50);
        assert!(p.filter_loc.width() < p.n);
        assert!(p.filter_est.width() < p.n);
        // Estimation filter is tighter → wider in time.
        assert!(p.filter_est.width() >= p.filter_loc.width() / 4);
    }

    #[test]
    fn bucket_count_grows_with_k_and_n() {
        let a = SfftParams::tuned(1 << 14, 10);
        let b = SfftParams::tuned(1 << 14, 100);
        let c = SfftParams::tuned(1 << 18, 10);
        assert!(b.b_loc >= a.b_loc);
        assert!(c.b_loc >= a.b_loc);
    }

    #[test]
    fn degraded_tuning_halves_loops_and_stays_valid() {
        let d = Tuning::default().degraded();
        assert_eq!(d.loops_loc, 2);
        assert_eq!(d.loops_est, 6);
        assert!(d.loops_thresh <= d.loops_loc && d.loops_thresh >= 1);
        let p = SfftParams::with_tuning(1 << 14, 20, d);
        assert!(p.loops_total() < SfftParams::tuned(1 << 14, 20).loops_total());
        // Degrading an already-degraded tuning hits the floors, never 0.
        let dd = d.degraded().degraded();
        assert!(dd.loops_loc >= 2 && dd.loops_est >= 3 && dd.loops_thresh >= 1);
    }

    #[test]
    fn half_band_covers_estimation_range() {
        let p = SfftParams::tuned(1 << 14, 20);
        assert!(p.filter_loc.half_band() >= p.n / (2 * p.b_loc));
        assert!(p.filter_est.half_band() >= p.n / (2 * p.b_est));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        SfftParams::tuned(1000, 10);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn oversparse_rejected() {
        SfftParams::tuned(1 << 10, 1 << 9);
    }

    #[test]
    fn size_aware_tuning_adapts() {
        let dense = Tuning::for_problem(1 << 12, 64); // density 1/64
        assert_eq!(dense.loops_loc, 6);
        assert_eq!(dense.loops_thresh, 4);
        let huge = Tuning::for_problem(1 << 24, 100);
        assert_eq!(huge.loops_est, 10);
        let default_like = Tuning::for_problem(1 << 16, 16);
        assert_eq!(default_like.loops_loc, Tuning::default().loops_loc);
        // Dense tuning actually recovers a dense-ish instance.
        let n = 1 << 12;
        let k = 64;
        let params = SfftParams::with_tuning(n, k, Tuning::for_problem(n, k));
        let s = signal::SparseSignal::generate(n, k, signal::MagnitudeModel::Unit, 3);
        let rec = crate::serial::sfft(&params, &s.time, 1);
        assert!(signal::support_recall(&s.coords, &rec) > 0.9);
    }

    #[test]
    fn try_tuned_reports_typed_errors() {
        assert!(SfftParams::try_tuned(1 << 12, 8).is_ok());
        assert_eq!(
            SfftParams::try_tuned(1000, 8).err(),
            Some(super::ParamError::NotPowerOfTwo(1000))
        );
        assert_eq!(
            SfftParams::try_tuned(256, 8).err(),
            Some(super::ParamError::TooSmall(256))
        );
        assert_eq!(
            SfftParams::try_tuned(1 << 12, 4096).err(),
            Some(super::ParamError::BadSparsity {
                k: 4096,
                max: 512
            })
        );
        let msg = SfftParams::try_tuned(256, 8).unwrap_err().to_string();
        assert!(msg.contains("dense FFT"));
    }

    #[test]
    fn custom_tuning_respected() {
        let t = Tuning {
            loops_loc: 6,
            loops_thresh: 4,
            ..Tuning::default()
        };
        let p = SfftParams::with_tuning(1 << 12, 8, t);
        assert_eq!(p.loops_loc, 6);
        assert_eq!(p.loops_thresh, 4);
    }
}
