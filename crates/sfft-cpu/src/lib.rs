//! # `sfft-cpu` — the sparse FFT on the CPU
//!
//! The MIT-style sFFT v1 pipeline (permute → flat-window filter → bin →
//! subsampled FFT → cutoff → location voting → median estimation), in two
//! forms:
//!
//! * [`serial::sfft`] — the sequential reference the paper starts from;
//! * [`parallel::psfft`] — the rayon port of the authors' OpenMP "PsFFT"
//!   baseline, bit-identical to the serial reference per seed.
//!
//! [`profile::sfft_profiled`] instruments the steps for Figure 2, and the
//! building blocks ([`inner`], [`estimate`], [`perm`], [`params`]) are
//! public because the GPU implementation in the `cusfft` crate reuses the
//! same math and is tested against them.

pub mod comb;
pub mod estimate;
pub mod inner;
pub mod params;
pub mod parallel;
pub mod perm;
pub mod profile;
pub mod serial;
pub mod v2;

pub use comb::CombParams;
pub use params::{ParamError, SfftParams, Tuning};
pub use parallel::psfft;
pub use perm::Permutation;
pub use profile::{sfft_profiled, StepTimings};
pub use serial::sfft;
pub use v2::{sfft_v2, V2Stats};
