//! A from-scratch double-precision complex number type.
//!
//! The whole workspace standardises on [`Cplx`] instead of pulling in
//! `num-complex`: the sparse-FFT kernels need exactly the operations below
//! and nothing else, and owning the type lets the GPU simulator treat it as
//! a plain 16-byte POD for its memory-transaction model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` real and imaginary parts.
///
/// Layout-compatible with a `[f64; 2]` pair (`#[repr(C)]`), which the GPU
/// simulator relies on when it charges 16 bytes per element of memory
/// traffic.
#[derive(Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
/// The imaginary unit.
pub const I: Cplx = Cplx { re: 0.0, im: 1.0 };

impl Cplx {
    /// Builds a complex number from rectangular coordinates.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// Builds a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Cplx { re, im: 0.0 }
    }

    /// Returns `e^{i theta}` — a unit phasor with the given angle in radians.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Cplx { re: c, im: s }
    }

    /// Builds a complex number from polar coordinates.
    #[inline(always)]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Cplx {
            re: r * c,
            im: r * s,
        }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²` (avoids the square root of [`Cplx::abs`]).
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (Euclidean norm).
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Cplx {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Divides by a real scalar.
    #[inline(always)]
    pub fn unscale(self, s: f64) -> Self {
        Cplx {
            re: self.re / s,
            im: self.im / s,
        }
    }

    /// Multiplicative inverse `1/self`.
    #[inline(always)]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Cplx {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Fused multiply-add: `self * b + c`, the butterfly workhorse.
    #[inline(always)]
    pub fn mul_add(self, b: Cplx, c: Cplx) -> Self {
        Cplx {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Distance `|self - other|`, handy in accuracy assertions.
    #[inline]
    pub fn dist(self, other: Cplx) -> f64 {
        (self - other).abs()
    }
}

impl fmt::Debug for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Cplx {
    #[inline]
    fn from(re: f64) -> Self {
        Cplx::real(re)
    }
}

impl From<(f64, f64)> for Cplx {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Cplx::new(re, im)
    }
}

impl Add for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn add(self, o: Cplx) -> Cplx {
        Cplx::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn sub(self, o: Cplx) -> Cplx {
        Cplx::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn mul(self, o: Cplx) -> Cplx {
        Cplx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn div(self, o: Cplx) -> Cplx {
        let d = o.norm_sqr();
        Cplx::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn mul(self, s: f64) -> Cplx {
        self.scale(s)
    }
}

impl Div<f64> for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn div(self, s: f64) -> Cplx {
        self.unscale(s)
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

impl AddAssign for Cplx {
    #[inline(always)]
    fn add_assign(&mut self, o: Cplx) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for Cplx {
    #[inline(always)]
    fn sub_assign(&mut self, o: Cplx) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for Cplx {
    #[inline(always)]
    fn mul_assign(&mut self, o: Cplx) {
        *self = *self * o;
    }
}

impl DivAssign for Cplx {
    #[inline(always)]
    fn div_assign(&mut self, o: Cplx) {
        *self = *self / o;
    }
}

impl Sum for Cplx {
    fn sum<I: Iterator<Item = Cplx>>(iter: I) -> Cplx {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Cplx> for Cplx {
    fn sum<I: Iterator<Item = &'a Cplx>>(iter: I) -> Cplx {
        iter.fold(ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_accessors() {
        let z = Cplx::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(Cplx::real(2.0), Cplx::new(2.0, 0.0));
        assert_eq!(Cplx::from(2.5), Cplx::new(2.5, 0.0));
        assert_eq!(Cplx::from((1.0, 2.0)), Cplx::new(1.0, 2.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Cplx::new(1.5, -2.5);
        let b = Cplx::new(-0.5, 3.0);
        assert_eq!(a + ZERO, a);
        assert_eq!(a * ONE, a);
        assert_eq!(a - a, ZERO);
        assert!(((a * b) / b).dist(a) < EPS);
        assert!((a * a.inv()).dist(ONE) < EPS);
        assert_eq!(-a, ZERO - a);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(I * I, Cplx::real(-1.0));
    }

    #[test]
    fn conjugate_properties() {
        let a = Cplx::new(2.0, 7.0);
        assert_eq!(a.conj().conj(), a);
        assert!((a * a.conj()).dist(Cplx::real(a.norm_sqr())) < EPS);
    }

    #[test]
    fn norms_and_abs() {
        let z = Cplx::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Cplx::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let t = k as f64 * 0.41;
            let z = Cplx::cis(t);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn cis_addition_formula() {
        // e^{ia} * e^{ib} == e^{i(a+b)}
        let (a, b) = (0.7, -1.9);
        assert!((Cplx::cis(a) * Cplx::cis(b)).dist(Cplx::cis(a + b)) < EPS);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(3.0, -1.0);
        let c = Cplx::new(-2.0, 0.5);
        assert!((a.mul_add(b, c)).dist(a * b + c) < EPS);
    }

    #[test]
    fn scale_and_unscale() {
        let a = Cplx::new(1.0, -1.0);
        assert_eq!(a.scale(2.0), Cplx::new(2.0, -2.0));
        assert!(a.scale(3.0).unscale(3.0).dist(a) < EPS);
        assert_eq!(a * 2.0, a.scale(2.0));
        assert_eq!(a / 2.0, a.unscale(2.0));
    }

    #[test]
    fn assign_ops() {
        let mut a = Cplx::new(1.0, 1.0);
        a += Cplx::new(1.0, -1.0);
        assert_eq!(a, Cplx::new(2.0, 0.0));
        a -= Cplx::new(1.0, 0.0);
        assert_eq!(a, ONE);
        a *= Cplx::new(0.0, 2.0);
        assert_eq!(a, Cplx::new(0.0, 2.0));
        a /= Cplx::new(0.0, 2.0);
        assert!(a.dist(ONE) < EPS);
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![Cplx::new(1.0, 2.0); 10];
        let s: Cplx = v.iter().sum();
        assert!(s.dist(Cplx::new(10.0, 20.0)) < EPS);
        let s2: Cplx = v.into_iter().sum();
        assert!(s2.dist(Cplx::new(10.0, 20.0)) < EPS);
    }

    #[test]
    fn nan_and_finite_detection() {
        assert!(Cplx::new(f64::NAN, 0.0).is_nan());
        assert!(Cplx::new(0.0, f64::NAN).is_nan());
        assert!(!ONE.is_nan());
        assert!(ONE.is_finite());
        assert!(!Cplx::new(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{}", Cplx::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Cplx::new(1.0, -2.0)), "1-2i");
    }
}
