//! Real-input FFT (r2c / c2r) via the classic pack-into-half-size-complex
//! trick: an `n`-point real transform costs one `n/2`-point complex
//! transform plus an O(n) untangling pass.
//!
//! Audio/seismic front-ends (the sparse-FFT application domains) produce
//! real samples; this module lets them enter the pipeline without paying
//! for a full complex transform.

use crate::cplx::{Cplx, ZERO};
use crate::plan::{is_pow2, Plan};
use crate::Direction;

/// A plan for `n`-point real-input transforms (`n` a power of two ≥ 2).
///
/// ```
/// use fft::RealPlan;
/// let samples: Vec<f64> = (0..64).map(|t| (t as f64 * 0.3).sin()).collect();
/// let plan = RealPlan::new(64);
/// let spectrum = plan.forward(&samples);       // 33 non-redundant bins
/// assert_eq!(spectrum.len(), 33);
/// let back = plan.inverse(&spectrum);
/// assert!(back.iter().zip(&samples).all(|(a, b)| (a - b).abs() < 1e-9));
/// ```
#[derive(Debug, Clone)]
pub struct RealPlan {
    n: usize,
    half_plan: Plan,
}

impl RealPlan {
    /// Builds a real-FFT plan.
    pub fn new(n: usize) -> Self {
        assert!(is_pow2(n) && n >= 2, "RealPlan needs a power of two ≥ 2, got {n}");
        RealPlan {
            n,
            half_plan: Plan::new(n / 2),
        }
    }

    /// Transform size (number of real samples).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward r2c transform: returns the `n/2 + 1` non-redundant
    /// spectrum values `X[0..=n/2]` (the rest follow from conjugate
    /// symmetry `X[n-f] = conj(X[f])`).
    pub fn forward(&self, input: &[f64]) -> Vec<Cplx> {
        let n = self.n;
        assert_eq!(input.len(), n, "expected {n} real samples");
        let half = n / 2;

        // Pack adjacent pairs into complex: z[t] = x[2t] + i·x[2t+1].
        let mut z: Vec<Cplx> = (0..half)
            .map(|t| Cplx::new(input[2 * t], input[2 * t + 1]))
            .collect();
        self.half_plan.process(&mut z, Direction::Forward);

        // Untangle: with E/O the transforms of the even/odd subsequences,
        //   Z[f]        = E[f] + i·O[f]
        //   conj(Z[-f]) = E[f] − i·O[f]
        // and X[f] = E[f] + w·O[f], w = e^{-2πi f/n}.
        let mut out = vec![ZERO; half + 1];
        for f in 0..=half {
            let zf = if f == half { z[0] } else { z[f] };
            let zc = z[(half - f) % half].conj();
            let e = (zf + zc).scale(0.5);
            let o = (zf - zc) * Cplx::new(0.0, -0.5);
            let w = Cplx::cis(-std::f64::consts::TAU * f as f64 / n as f64);
            out[f] = e + w * o;
        }
        out
    }

    /// Inverse c2r transform: consumes the `n/2 + 1` non-redundant values
    /// and returns `n` real samples. Matches the workspace convention
    /// (inverse scaled by `1/n`).
    pub fn inverse(&self, spectrum: &[Cplx]) -> Vec<f64> {
        let n = self.n;
        let half = n / 2;
        assert_eq!(spectrum.len(), half + 1, "expected n/2+1 spectrum values");

        // Repack: Z[f] = E[f] + i·O[f] where E, O are recovered from the
        // symmetric spectrum: E[f] = (X[f] + conj(X[h-f]))/2,
        // O[f] = w^{-1}·(X[f] − conj(X[h-f]))/2 with h = n/2.
        let mut z = vec![ZERO; half];
        for (f, slot) in z.iter_mut().enumerate() {
            let xf = spectrum[f];
            let xc = spectrum[half - f].conj();
            let e = (xf + xc).scale(0.5);
            let w_inv = Cplx::cis(std::f64::consts::TAU * f as f64 / n as f64);
            let o = (xf - xc).scale(0.5) * w_inv;
            *slot = e + o * Cplx::new(0.0, 1.0);
        }
        self.half_plan.process(&mut z, Direction::Inverse);
        let mut out = Vec::with_capacity(n);
        for v in z {
            out.push(v.re);
            out.push(v.im);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn rand_real(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn forward_matches_complex_dft() {
        for n in [4usize, 16, 64, 256] {
            let x = rand_real(n, n as u64);
            let complex_in: Vec<Cplx> = x.iter().map(|&v| Cplx::real(v)).collect();
            let full = dft(&complex_in, Direction::Forward);
            let got = RealPlan::new(n).forward(&x);
            assert_eq!(got.len(), n / 2 + 1);
            for f in 0..=n / 2 {
                assert!(
                    got[f].dist(full[f]) < 1e-8 * n as f64,
                    "n={n} f={f}: {:?} vs {:?}",
                    got[f],
                    full[f]
                );
            }
        }
    }

    #[test]
    fn spectrum_has_real_dc_and_nyquist() {
        let x = rand_real(128, 9);
        let spec = RealPlan::new(128).forward(&x);
        assert!(spec[0].im.abs() < 1e-10, "DC must be real");
        assert!(spec[64].im.abs() < 1e-10, "Nyquist must be real");
    }

    #[test]
    fn roundtrip_recovers_samples() {
        for n in [8usize, 64, 1024] {
            let x = rand_real(n, 3 + n as u64);
            let plan = RealPlan::new(n);
            let back = plan.inverse(&plan.forward(&x));
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn pure_cosine_hits_one_bin() {
        let n = 64;
        let f0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|t| (std::f64::consts::TAU * f0 as f64 * t as f64 / n as f64).cos())
            .collect();
        let spec = RealPlan::new(n).forward(&x);
        assert!((spec[f0].re - n as f64 / 2.0).abs() < 1e-8);
        for (f, v) in spec.iter().enumerate() {
            if f != f0 {
                assert!(v.abs() < 1e-8, "leakage at {f}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_size_rejected() {
        RealPlan::new(12);
    }
}
