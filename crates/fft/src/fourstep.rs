//! Four-step (Bailey) FFT: decompose an `n = n1·n2` transform into column
//! FFTs, twiddle multiplication, row FFTs, and a transpose.
//!
//! This is the blocking scheme large-scale FFT libraries (cuFFT included)
//! use once a transform outgrows fast memory: every inner FFT touches a
//! cache-sized working set and the long-range data movement concentrates
//! in the transposes. It rounds out the substrate with the variant whose
//! memory behaviour actually matches the `passes × 2·16·n` traffic model
//! used for the simulated cuFFT.
//!
//! Decomposition (DIT, row-major `x[t] = x[t1·n2 + t2]`):
//!
//! 1. FFT each *column* (stride `n2`, length `n1`);
//! 2. multiply element `(t2, f1)` by the twiddle `e^{-2πi·f1·t2/n}`;
//! 3. FFT each *row* (contiguous, length `n2`);
//! 4. read out transposed: `X[f2·n1 + f1] = buf[f1·n2 + f2]`.

use crate::cplx::{Cplx, ZERO};
use crate::plan::{is_pow2, Plan};
use crate::Direction;

/// A four-step plan for `n = n1 · n2` (both powers of two).
#[derive(Debug, Clone)]
pub struct FourStepPlan {
    n1: usize,
    n2: usize,
    col_plan: Plan,
    row_plan: Plan,
}

impl FourStepPlan {
    /// Builds a plan with a near-square split (`n1 ≤ n2`).
    pub fn new(n: usize) -> Self {
        assert!(is_pow2(n) && n >= 4, "FourStepPlan needs a power of two ≥ 4");
        let log2 = n.trailing_zeros();
        let n1 = 1usize << (log2 / 2);
        let n2 = n / n1;
        Self::with_split(n1, n2)
    }

    /// Builds a plan with an explicit split.
    pub fn with_split(n1: usize, n2: usize) -> Self {
        assert!(is_pow2(n1) && is_pow2(n2), "both factors must be powers of two");
        FourStepPlan {
            n1,
            n2,
            col_plan: Plan::new(n1),
            row_plan: Plan::new(n2),
        }
    }

    /// Total transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n1 * self.n2
    }

    /// Never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `(n1, n2)` split.
    #[inline]
    pub fn split(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// Out-of-place transform.
    pub fn transform(&self, input: &[Cplx], dir: Direction) -> Vec<Cplx> {
        let (n1, n2) = (self.n1, self.n2);
        let n = n1 * n2;
        assert_eq!(input.len(), n, "expected {n} points");
        let sign = match dir {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        };

        // Step 1: column FFTs (gather a strided column, transform, put back).
        let mut buf = input.to_vec();
        let mut col = vec![ZERO; n1];
        for t2 in 0..n2 {
            for t1 in 0..n1 {
                col[t1] = buf[t1 * n2 + t2];
            }
            // Column transforms are unnormalised in both directions; the
            // single 1/n scaling happens at the end for inverses
            // (unnormalised inverse = conj ∘ forward ∘ conj).
            let mut c: Vec<Cplx> = if dir == Direction::Forward {
                col.clone()
            } else {
                col.iter().map(|v| v.conj()).collect()
            };
            self.col_plan.process(&mut c, Direction::Forward);
            if dir == Direction::Inverse {
                for v in c.iter_mut() {
                    *v = v.conj();
                }
            }
            for (t1, &v) in c.iter().enumerate() {
                buf[t1 * n2 + t2] = v;
            }
        }

        // Step 2: twiddles W_n^{f1·t2}.
        let base = sign * std::f64::consts::TAU / n as f64;
        for f1 in 0..n1 {
            for t2 in 0..n2 {
                let k = (f1 * t2) % n;
                buf[f1 * n2 + t2] *= Cplx::cis(base * k as f64);
            }
        }

        // Step 3: row FFTs (contiguous), unnormalised in both directions.
        for row in buf.chunks_exact_mut(n2) {
            if dir == Direction::Forward {
                self.row_plan.process(row, Direction::Forward);
            } else {
                for v in row.iter_mut() {
                    *v = v.conj();
                }
                self.row_plan.process(row, Direction::Forward);
                for v in row.iter_mut() {
                    *v = v.conj();
                }
            }
        }

        // Step 4: transposed readout (+ 1/n for inverses).
        let scale = if dir == Direction::Inverse {
            1.0 / n as f64
        } else {
            1.0
        };
        let mut out = vec![ZERO; n];
        for f1 in 0..n1 {
            for f2 in 0..n2 {
                out[f2 * n1 + f1] = buf[f1 * n2 + f2].scale(scale);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn rand_signal(n: usize, seed: u64) -> Vec<Cplx> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                Cplx::new(a, b)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [4usize, 16, 64, 256, 1024] {
            let x = rand_signal(n, n as u64);
            let got = FourStepPlan::new(n).transform(&x, Direction::Forward);
            let expect = dft(&x, Direction::Forward);
            for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
                assert!(a.dist(*b) < 1e-8 * n as f64, "n={n} elem {i}");
            }
        }
    }

    #[test]
    fn asymmetric_split_also_correct() {
        let n1 = 4;
        let n2 = 64;
        let x = rand_signal(n1 * n2, 5);
        let got = FourStepPlan::with_split(n1, n2).transform(&x, Direction::Forward);
        let expect = Plan::new(n1 * n2).transform(&x, Direction::Forward);
        for (a, b) in got.iter().zip(&expect) {
            assert!(a.dist(*b) < 1e-8);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let n = 1 << 10;
        let x = rand_signal(n, 3);
        let p = FourStepPlan::new(n);
        let y = p.transform(&x, Direction::Forward);
        let z = p.transform(&y, Direction::Inverse);
        for (a, b) in z.iter().zip(&x) {
            assert!(a.dist(*b) < 1e-9);
        }
    }

    #[test]
    fn inverse_matches_plan_inverse() {
        let n = 256;
        let x = rand_signal(n, 9);
        let a = FourStepPlan::new(n).transform(&x, Direction::Inverse);
        let b = Plan::new(n).transform(&x, Direction::Inverse);
        for (u, v) in a.iter().zip(&b) {
            assert!(u.dist(*v) < 1e-9);
        }
    }

    #[test]
    fn split_is_near_square() {
        let p = FourStepPlan::new(1 << 11);
        let (n1, n2) = p.split();
        assert_eq!(n1 * n2, 1 << 11);
        assert!(n2 / n1 <= 2);
        assert_eq!(p.len(), 1 << 11);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        FourStepPlan::new(48);
    }
}
