//! Naive O(n²) discrete Fourier transform.
//!
//! This module is the *oracle* the fast algorithms are tested against. It is
//! deliberately written as the textbook double loop with per-term phasors so
//! that a bug in the twiddle tables of the fast paths cannot hide here.

use crate::cplx::{Cplx, ZERO};
use crate::Direction;

/// Computes the DFT of `input` by direct summation.
///
/// Convention (used across the whole workspace):
/// * `Forward`:  `X[f] = Σ_t x[t]·e^{-2πi f t / n}` (unnormalised)
/// * `Inverse`:  `x[t] = (1/n)·Σ_f X[f]·e^{+2πi f t / n}`
pub fn dft(input: &[Cplx], dir: Direction) -> Vec<Cplx> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let base = sign * std::f64::consts::TAU / n as f64;
    let mut out = vec![ZERO; n];
    for (f, slot) in out.iter_mut().enumerate() {
        let mut acc = ZERO;
        for (t, &x) in input.iter().enumerate() {
            // (f*t) mod n keeps the angle argument small for large inputs.
            let k = (f * t) % n;
            acc += x * Cplx::cis(base * k as f64);
        }
        *slot = acc;
    }
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for v in &mut out {
            *v = v.scale(inv);
        }
    }
    out
}

/// Evaluates a single output coefficient `X[f]` of the forward DFT.
///
/// Used by the sparse-FFT accuracy checks to spot-verify individual
/// frequencies without materialising a full transform.
pub fn dft_coefficient(input: &[Cplx], f: usize) -> Cplx {
    let n = input.len();
    assert!(f < n, "frequency index {f} out of range for n={n}");
    let base = -std::f64::consts::TAU / n as f64;
    let mut acc = ZERO;
    for (t, &x) in input.iter().enumerate() {
        let k = (f * t) % n;
        acc += x * Cplx::cis(base * k as f64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cplx::ONE;

    fn assert_close(a: &[Cplx], b: &[Cplx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.dist(*y) < tol, "mismatch at {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(dft(&[], Direction::Forward).is_empty());
    }

    #[test]
    fn single_point_is_identity() {
        let x = [Cplx::new(2.0, -3.0)];
        assert_close(&dft(&x, Direction::Forward), &x, 1e-12);
        assert_close(&dft(&x, Direction::Inverse), &x, 1e-12);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![crate::cplx::ZERO; 8];
        x[0] = ONE;
        let y = dft(&x, Direction::Forward);
        for v in y {
            assert!(v.dist(ONE) < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let x = vec![ONE; 8];
        let y = dft(&x, Direction::Forward);
        assert!(y[0].dist(Cplx::real(8.0)) < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_lands_on_its_bin() {
        let n = 16;
        let f0 = 5;
        let x: Vec<Cplx> = (0..n)
            .map(|t| Cplx::cis(std::f64::consts::TAU * f0 as f64 * t as f64 / n as f64))
            .collect();
        let y = dft(&x, Direction::Forward);
        assert!(y[f0].dist(Cplx::real(n as f64)) < 1e-9);
        for (f, v) in y.iter().enumerate() {
            if f != f0 {
                assert!(v.abs() < 1e-9, "leakage at {f}: {v:?}");
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let x: Vec<Cplx> = (0..12)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let y = dft(&x, Direction::Forward);
        let z = dft(&y, Direction::Inverse);
        assert_close(&z, &x, 1e-10);
    }

    #[test]
    fn non_power_of_two_roundtrip() {
        let x: Vec<Cplx> = (0..7).map(|i| Cplx::new(i as f64, -(i as f64))).collect();
        let z = dft(&dft(&x, Direction::Forward), Direction::Inverse);
        assert_close(&z, &x, 1e-10);
    }

    #[test]
    fn linearity() {
        let a: Vec<Cplx> = (0..10).map(|i| Cplx::new(i as f64, 1.0)).collect();
        let b: Vec<Cplx> = (0..10).map(|i| Cplx::new(1.0, i as f64)).collect();
        let sum: Vec<Cplx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = dft(&a, Direction::Forward);
        let fb = dft(&b, Direction::Forward);
        let fsum = dft(&sum, Direction::Forward);
        for i in 0..10 {
            assert!(fsum[i].dist(fa[i] + fb[i]) < 1e-9);
        }
    }

    #[test]
    fn parseval_theorem() {
        let x: Vec<Cplx> = (0..32)
            .map(|i| Cplx::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let y = dft(&x, Direction::Forward);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!((ey - 32.0 * ex).abs() < 1e-8 * ey.max(1.0));
    }

    #[test]
    fn single_coefficient_matches_full_transform() {
        let x: Vec<Cplx> = (0..20).map(|i| Cplx::new(i as f64, 2.0)).collect();
        let y = dft(&x, Direction::Forward);
        for f in [0, 1, 7, 19] {
            assert!(dft_coefficient(&x, f).dist(y[f]) < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coefficient_out_of_range_panics() {
        let x = vec![ONE; 4];
        dft_coefficient(&x, 4);
    }
}
