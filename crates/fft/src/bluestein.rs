//! Arbitrary-size transforms via the Bluestein / chirp-z decomposition.
//!
//! Two entry points:
//!
//! * [`bluestein_fft`] — full DFT of any length (the Dolph-Chebyshev window
//!   construction needs odd-length transforms, which the power-of-two plans
//!   cannot do).
//! * [`dft_band`] — a contiguous band `X[start .. start+m]` of the *n*-point
//!   DFT of a short signal. The sparse-FFT filters have time support `w ≪ n`
//!   but their frequency response is only ever evaluated within `±n/(2B)` of
//!   zero; this routine computes exactly that band in
//!   `O((w+m)·log(w+m))` without materialising a size-`n` spectrum
//!   (for n = 2²⁷ that spectrum alone would be 2 GiB).
//!
//! Both are built on the same chirp convolution: with `W = e^{-2πi/n}`,
//! `jm = (j² + m² − (m−j)²)/2`, so `X[m] = W^{m²/2} · Σ_j a[j]·W^{−(m−j)²/2}`
//! where `a[j] = x[j]·A^{j}·W^{j²/2}` — a linear convolution evaluated with
//! power-of-two FFTs. The quadratic phases are reduced `mod 2n` in exact
//! integer arithmetic before entering `f64`, so precision holds even for
//! `n = 2²⁷` where `j²` overflows the exact-integer range of `f64`.

use crate::cplx::{Cplx, ZERO};
use crate::plan::{next_pow2, Plan};
use crate::Direction;

/// `e^{-πi (j² mod 2n) / n}` with the square reduced exactly.
#[inline]
fn chirp(j: u64, n: u64) -> Cplx {
    let sq = ((j as u128 * j as u128) % (2 * n as u128)) as u64;
    Cplx::cis(-std::f64::consts::PI * sq as f64 / n as f64)
}

/// Computes `X[start + t]` for `t in 0..m`, where `X` is the `n`-point
/// forward DFT of `x` (zero-padded to length `n`; `x.len() <= n` required).
///
/// `start` may be negative; indices are interpreted mod `n`.
pub fn dft_band(x: &[Cplx], n: usize, start: i64, m: usize) -> Vec<Cplx> {
    assert!(n > 0, "dft_band requires n > 0");
    assert!(
        x.len() <= n,
        "signal of length {} longer than transform size {}",
        x.len(),
        n
    );
    if m == 0 {
        return Vec::new();
    }
    let l = x.len();
    if l == 0 {
        return vec![ZERO; m];
    }
    let nu = n as u64;
    let start_mod = start.rem_euclid(n as i64) as u64;

    // a[j] = x[j] · e^{-2πi·start·j/n} · W^{j²/2}
    let p = next_pow2(l + m - 1);
    let plan = Plan::new(p);
    let mut a = vec![ZERO; p];
    let tau = -std::f64::consts::TAU / n as f64;
    for (j, slot) in a.iter_mut().enumerate().take(l) {
        let lin = ((start_mod as u128 * j as u128) % nu as u128) as u64;
        *slot = x[j] * Cplx::cis(tau * lin as f64) * chirp(j as u64, nu);
    }
    // b[k] = conj(W^{k²/2}) for k in −(l−1) ..= m−1, wrapped into [0, p).
    let mut b = vec![ZERO; p];
    for k in 0..m as i64 {
        b[k as usize] = chirp(k as u64, nu).conj();
    }
    for k in 1..l as i64 {
        b[p - k as usize] = chirp(k as u64, nu).conj();
    }
    plan.process(&mut a, Direction::Forward);
    plan.process(&mut b, Direction::Forward);
    for (av, bv) in a.iter_mut().zip(&b) {
        *av *= *bv;
    }
    plan.process(&mut a, Direction::Inverse);

    (0..m).map(|t| a[t] * chirp(t as u64, nu)).collect()
}

/// Full forward/inverse DFT of arbitrary length using Bluestein's algorithm.
///
/// Delegates to the power-of-two [`Plan`] when possible. Matches the
/// workspace convention: forward unnormalised, inverse scaled by `1/n`.
pub fn bluestein_fft(x: &[Cplx], dir: Direction) -> Vec<Cplx> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if crate::plan::is_pow2(n) {
        return Plan::new(n).transform(x, dir);
    }
    match dir {
        Direction::Forward => dft_band(x, n, 0, n),
        Direction::Inverse => {
            // ifft(x) = conj(fft(conj(x))) / n
            let conj_in: Vec<Cplx> = x.iter().map(|v| v.conj()).collect();
            let y = dft_band(&conj_in, n, 0, n);
            let inv = 1.0 / n as f64;
            y.into_iter().map(|v| v.conj().scale(inv)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn rand_signal(n: usize, seed: u64) -> Vec<Cplx> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                Cplx::new(a, b)
            })
            .collect()
    }

    fn assert_close(a: &[Cplx], b: &[Cplx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.dist(*y) < tol, "mismatch at {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_dft_odd_sizes() {
        for n in [3usize, 5, 7, 15, 31, 63, 101, 255] {
            let x = rand_signal(n, n as u64);
            assert_close(
                &bluestein_fft(&x, Direction::Forward),
                &dft(&x, Direction::Forward),
                1e-8 * n as f64,
            );
        }
    }

    #[test]
    fn matches_dft_even_nonpow2() {
        for n in [6usize, 12, 20, 48, 100] {
            let x = rand_signal(n, n as u64 + 1);
            assert_close(
                &bluestein_fft(&x, Direction::Forward),
                &dft(&x, Direction::Forward),
                1e-8 * n as f64,
            );
        }
    }

    #[test]
    fn pow2_path_delegates_to_plan() {
        let x = rand_signal(64, 5);
        assert_close(
            &bluestein_fft(&x, Direction::Forward),
            &dft(&x, Direction::Forward),
            1e-8,
        );
    }

    #[test]
    fn inverse_roundtrip_arbitrary_size() {
        for n in [9usize, 21, 50, 127] {
            let x = rand_signal(n, 77 + n as u64);
            let y = bluestein_fft(&x, Direction::Forward);
            let z = bluestein_fft(&y, Direction::Inverse);
            assert_close(&z, &x, 1e-8);
        }
    }

    #[test]
    fn inverse_matches_naive() {
        let n = 33;
        let x = rand_signal(n, 4);
        assert_close(
            &bluestein_fft(&x, Direction::Inverse),
            &dft(&x, Direction::Inverse),
            1e-9,
        );
    }

    #[test]
    fn band_matches_full_dft() {
        let n = 128;
        let x = rand_signal(40, 8); // short signal, zero-padded to n
        let mut padded = x.clone();
        padded.resize(n, ZERO);
        let full = dft(&padded, Direction::Forward);
        let band = dft_band(&x, n, 10, 30);
        for (t, v) in band.iter().enumerate() {
            assert!(v.dist(full[10 + t]) < 1e-8, "band offset {t}");
        }
    }

    #[test]
    fn band_with_negative_start_wraps() {
        let n = 64;
        let x = rand_signal(17, 3);
        let mut padded = x.clone();
        padded.resize(n, ZERO);
        let full = dft(&padded, Direction::Forward);
        let band = dft_band(&x, n, -5, 11); // covers f = 59..63, 0..5
        for (t, v) in band.iter().enumerate() {
            let f = ((-5 + t as i64).rem_euclid(n as i64)) as usize;
            assert!(v.dist(full[f]) < 1e-8, "band offset {t} -> f {f}");
        }
    }

    #[test]
    fn band_of_large_n_is_precise() {
        // n far beyond what a full transform would allow; verify against
        // direct per-coefficient summation.
        let n = 1usize << 27;
        let x = rand_signal(64, 12);
        let start = (n / 2 - 8) as i64;
        let band = dft_band(&x, n, start, 16);
        let tau = -std::f64::consts::TAU / n as f64;
        for (t, v) in band.iter().enumerate() {
            let f = start as u64 + t as u64;
            let mut acc = ZERO;
            for (j, &xv) in x.iter().enumerate() {
                let k = (f as u128 * j as u128 % n as u128) as u64;
                acc += xv * Cplx::cis(tau * k as f64);
            }
            assert!(v.dist(acc) < 1e-7, "offset {t}: {v:?} vs {acc:?}");
        }
    }

    #[test]
    fn empty_band_and_empty_signal() {
        assert!(dft_band(&rand_signal(4, 1), 8, 0, 0).is_empty());
        let z = dft_band(&[], 8, 0, 4);
        assert!(z.iter().all(|v| v.abs() == 0.0));
        assert!(bluestein_fft(&[], Direction::Forward).is_empty());
    }

    #[test]
    #[should_panic(expected = "longer than transform size")]
    fn signal_longer_than_n_panics() {
        dft_band(&rand_signal(16, 1), 8, 0, 4);
    }
}
