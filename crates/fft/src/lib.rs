//! # `fft` — the dense FFT substrate
//!
//! A from-scratch double-precision FFT library serving three roles in the
//! cusFFT reproduction:
//!
//! 1. the **B-dimensional subsampled FFT** inside the sparse pipeline,
//! 2. the **cuFFT baseline** (executed under the GPU simulator's cost
//!    model in the `cusfft` crate), and
//! 3. the **multithreaded FFTW baseline** on the CPU side
//!    ([`parallel::ParallelPlan`]).
//!
//! Transform convention throughout the workspace:
//!
//! * forward: `X[f] = Σ_t x[t]·e^{-2πi f t/n}` (unnormalised)
//! * inverse: `x[t] = (1/n)·Σ_f X[f]·e^{+2πi f t/n}`
//!
//! Modules: [`cplx`] (the complex type), [`dft`] (O(n²) oracle), [`plan`]
//! (power-of-two iterative plans), [`bluestein`] (arbitrary sizes and
//! banded spectra via chirp-z), [`batch`] (cuFFT-style batched mode),
//! [`parallel`] (rayon executor), [`shift`] (fftshift helpers).

pub mod batch;
pub mod bluestein;
pub mod cplx;
pub mod dft;
pub mod fourstep;
pub mod parallel;
pub mod plan;
pub mod real;
pub mod shift;
pub mod stockham;

pub use batch::BatchPlan;
pub use bluestein::{bluestein_fft, dft_band};
pub use cplx::Cplx;
pub use fourstep::FourStepPlan;
pub use parallel::ParallelPlan;
pub use plan::{floor_pow2, is_pow2, next_pow2, Plan, PlanError};
pub use real::RealPlan;
pub use stockham::StockhamPlan;

/// Transform direction shared by every implementation in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Time → frequency, unnormalised.
    Forward,
    /// Frequency → time, scaled by `1/n`.
    Inverse,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

/// One-shot FFT of any size (power-of-two fast path, Bluestein otherwise).
pub fn fft(input: &[Cplx]) -> Vec<Cplx> {
    bluestein_fft(input, Direction::Forward)
}

/// One-shot inverse FFT of any size.
pub fn ifft(input: &[Cplx]) -> Vec<Cplx> {
    bluestein_fft(input, Direction::Inverse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Inverse);
        assert_eq!(Direction::Inverse.flip(), Direction::Forward);
    }

    #[test]
    fn oneshot_roundtrip_pow2_and_odd() {
        for n in [8usize, 13] {
            let x: Vec<Cplx> = (0..n).map(|i| Cplx::new(i as f64, -1.0)).collect();
            let back = ifft(&fft(&x));
            for (a, b) in back.iter().zip(&x) {
                assert!(a.dist(*b) < 1e-9);
            }
        }
    }
}
