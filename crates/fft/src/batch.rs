//! Batched transforms: many same-size FFTs over a contiguous buffer.
//!
//! This mirrors cuFFT's *batched mode*, which the paper uses for the
//! B-dimensional subsampled FFTs of all outer loops in a single call
//! ("by sharing the twiddle factors, the batched cuFFT combines the
//! number of outer_loops transforms into one function call"). Here the
//! shared state is the [`Plan`]: one twiddle/bit-reversal table serves
//! every row, and the rows are independent so they parallelise with rayon.

use rayon::prelude::*;

use crate::cplx::Cplx;
use crate::plan::Plan;
use crate::Direction;

/// A plan for `batch` transforms of `row_len` points each, laid out
/// contiguously (row-major) in one buffer.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    plan: Plan,
    batch: usize,
}

impl BatchPlan {
    /// Builds a batched plan. `row_len` must be a power of two.
    pub fn new(row_len: usize, batch: usize) -> Self {
        BatchPlan {
            plan: Plan::new(row_len),
            batch,
        }
    }

    /// Points per row.
    #[inline]
    pub fn row_len(&self) -> usize {
        self.plan.len()
    }

    /// Number of rows.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Total buffer length this plan expects.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.plan.len() * self.batch
    }

    /// Shared single-row plan.
    #[inline]
    pub fn row_plan(&self) -> &Plan {
        &self.plan
    }

    fn check(&self, data: &[Cplx]) {
        assert_eq!(
            data.len(),
            self.total_len(),
            "batched buffer must be row_len*batch = {} elements, got {}",
            self.total_len(),
            data.len()
        );
    }

    /// Transforms every row sequentially, in place.
    pub fn process(&self, data: &mut [Cplx], dir: Direction) {
        self.check(data);
        for row in data.chunks_exact_mut(self.plan.len()) {
            self.plan.process(row, dir);
        }
    }

    /// Transforms every row in parallel (one rayon task per row), in place.
    ///
    /// Rows are disjoint `chunks_exact_mut` slices, so this is data-race
    /// free by construction.
    pub fn process_parallel(&self, data: &mut [Cplx], dir: Direction) {
        self.check(data);
        data.par_chunks_exact_mut(self.plan.len())
            .for_each(|row| self.plan.process(row, dir));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn rand_signal(n: usize, seed: u64) -> Vec<Cplx> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                Cplx::new(a, b)
            })
            .collect()
    }

    #[test]
    fn each_row_matches_standalone_transform() {
        let (rows, len) = (5, 32);
        let data = rand_signal(rows * len, 1);
        let bp = BatchPlan::new(len, rows);
        let mut batched = data.clone();
        bp.process(&mut batched, Direction::Forward);
        for r in 0..rows {
            let row = &data[r * len..(r + 1) * len];
            let expected = dft(row, Direction::Forward);
            for (i, v) in batched[r * len..(r + 1) * len].iter().enumerate() {
                assert!(v.dist(expected[i]) < 1e-8, "row {r} elem {i}");
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let bp = BatchPlan::new(64, 9);
        let data = rand_signal(bp.total_len(), 2);
        let mut a = data.clone();
        let mut b = data;
        bp.process(&mut a, Direction::Forward);
        bp.process_parallel(&mut b, Direction::Forward);
        assert_eq!(a, b, "parallel batch must be bit-identical to sequential");
    }

    #[test]
    fn inverse_roundtrip() {
        let bp = BatchPlan::new(16, 4);
        let data = rand_signal(bp.total_len(), 3);
        let mut buf = data.clone();
        bp.process(&mut buf, Direction::Forward);
        bp.process_parallel(&mut buf, Direction::Inverse);
        for (x, y) in buf.iter().zip(&data) {
            assert!(x.dist(*y) < 1e-9);
        }
    }

    #[test]
    fn accessors() {
        let bp = BatchPlan::new(8, 3);
        assert_eq!(bp.row_len(), 8);
        assert_eq!(bp.batch(), 3);
        assert_eq!(bp.total_len(), 24);
        assert_eq!(bp.row_plan().len(), 8);
    }

    #[test]
    fn zero_batch_is_noop() {
        let bp = BatchPlan::new(8, 0);
        let mut buf: Vec<Cplx> = Vec::new();
        bp.process(&mut buf, Direction::Forward);
        bp.process_parallel(&mut buf, Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "row_len*batch")]
    fn wrong_length_panics() {
        let bp = BatchPlan::new(8, 2);
        let mut buf = rand_signal(8, 1);
        bp.process(&mut buf, Direction::Forward);
    }
}
