//! Power-of-two FFT plans: precomputed twiddle factors and bit-reversal
//! tables, executed as an iterative in-place radix-2 decimation-in-time
//! transform with a fused radix-4 first pass.
//!
//! A [`Plan`] is created once per transform size and reused; executing a
//! plan allocates nothing, which matters both for the CPU baselines (FFTW
//! plans behave the same way) and for the GPU simulator, whose kernels must
//! not allocate in their per-thread hot paths.

use crate::cplx::Cplx;
use crate::Direction;

/// A reusable FFT plan for a fixed power-of-two size.
///
/// ```
/// use fft::{Plan, Direction, Cplx};
/// let plan = Plan::new(8);
/// let x: Vec<Cplx> = (0..8).map(|i| Cplx::real(i as f64)).collect();
/// let spectrum = plan.transform(&x, Direction::Forward);
/// let back = plan.transform(&spectrum, Direction::Inverse);
/// assert!(back.iter().zip(&x).all(|(a, b)| a.dist(*b) < 1e-12));
/// ```
#[derive(Clone)]
pub struct Plan {
    n: usize,
    log2n: u32,
    /// Forward twiddles `e^{-2πi j / n}` for `j` in `0..n/2`.
    twiddles: Vec<Cplx>,
    /// Bit-reversal permutation indices (stored as u32: n ≤ 2^32).
    bitrev: Vec<u32>,
}

/// Returns true when `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n`.
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Largest power of two `<= n`; panics on 0.
#[inline]
pub fn floor_pow2(n: usize) -> usize {
    assert!(n > 0, "floor_pow2(0) is undefined");
    1usize << (usize::BITS - 1 - n.leading_zeros())
}

/// Why a plan could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The requested size is not a power of two.
    NotPowerOfTwo(usize),
    /// The requested size exceeds the 2^32 index range.
    TooLarge(usize),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NotPowerOfTwo(n) => {
                write!(f, "FFT plans require a power-of-two size, got {n}")
            }
            PlanError::TooLarge(n) => write!(f, "plan size {n} exceeds the 2^32 index range"),
        }
    }
}

impl std::error::Error for PlanError {}

impl Plan {
    /// Fallible constructor: returns a typed error instead of panicking.
    pub fn try_new(n: usize) -> Result<Self, PlanError> {
        if !is_pow2(n) {
            return Err(PlanError::NotPowerOfTwo(n));
        }
        if n > u32::MAX as usize {
            return Err(PlanError::TooLarge(n));
        }
        Ok(Self::new(n))
    }

    /// Builds a plan for an `n`-point transform. `n` must be a power of two.
    pub fn new(n: usize) -> Self {
        assert!(is_pow2(n), "Plan requires a power-of-two size, got {n}");
        assert!(n <= u32::MAX as usize, "Plan sizes above 2^32 unsupported");
        let log2n = n.trailing_zeros();
        let half = n / 2;
        let base = -std::f64::consts::TAU / n as f64;
        let twiddles: Vec<Cplx> = (0..half).map(|j| Cplx::cis(base * j as f64)).collect();
        let mut bitrev = vec![0u32; n];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - log2n.max(1));
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        Plan {
            n,
            log2n,
            twiddles,
            bitrev,
        }
    }

    /// The transform size this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate 1-point plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// log2 of the transform size.
    #[inline]
    pub fn log2_len(&self) -> u32 {
        self.log2n
    }

    /// Forward twiddle table (`n/2` entries), exposed for the parallel
    /// executor in [`crate::parallel`].
    #[inline]
    pub(crate) fn twiddle_table(&self) -> &[Cplx] {
        &self.twiddles
    }

    /// Bit-reversal table, exposed for the parallel executor.
    #[inline]
    pub(crate) fn bitrev_table(&self) -> &[u32] {
        &self.bitrev
    }

    /// Applies the bit-reversal permutation in place.
    #[inline]
    pub(crate) fn permute(&self, data: &mut [Cplx]) {
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if j > i {
                data.swap(i, j);
            }
        }
    }

    /// Executes the transform in place.
    ///
    /// Forward is unnormalised; inverse divides by `n` (see [`crate::dft`]
    /// for the exact convention).
    pub fn process(&self, data: &mut [Cplx], dir: Direction) {
        assert_eq!(
            data.len(),
            self.n,
            "plan built for n={}, got buffer of len {}",
            self.n,
            data.len()
        );
        if self.n == 1 {
            return;
        }
        self.permute(data);
        self.butterflies(data, dir);
        if dir == Direction::Inverse {
            let inv = 1.0 / self.n as f64;
            for v in data.iter_mut() {
                *v = v.scale(inv);
            }
        }
    }

    /// All butterfly stages after the bit-reversal permutation.
    ///
    /// `data` must already be in bit-reversed order. No normalisation is
    /// applied here.
    pub(crate) fn butterflies(&self, data: &mut [Cplx], dir: Direction) {
        let conj = dir == Direction::Inverse;
        let n = self.n;
        // Stage len=2: twiddle is 1, plain add/sub.
        let mut len = 2;
        if len <= n {
            for chunk in data.chunks_exact_mut(2) {
                let a = chunk[0];
                let b = chunk[1];
                chunk[0] = a + b;
                chunk[1] = a - b;
            }
            len <<= 1;
        }
        // Stage len=4: twiddles are 1 and ∓i, still multiplication-free.
        if len <= n {
            for chunk in data.chunks_exact_mut(4) {
                let a = chunk[0];
                let b = chunk[1];
                let c = chunk[2];
                let d = chunk[3];
                // twiddle for j=1 is e^{-iπ/2} = -i forward, +i inverse.
                let d_tw = if conj {
                    Cplx::new(-d.im, d.re)
                } else {
                    Cplx::new(d.im, -d.re)
                };
                chunk[0] = a + c;
                chunk[2] = a - c;
                chunk[1] = b + d_tw;
                chunk[3] = b - d_tw;
            }
            len <<= 1;
        }
        // General stages with table lookups.
        while len <= n {
            let stride = n / len;
            let half = len / 2;
            for chunk in data.chunks_exact_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                for j in 0..half {
                    let mut w = self.twiddles[j * stride];
                    if conj {
                        w = w.conj();
                    }
                    let t = hi[j] * w;
                    let a = lo[j];
                    lo[j] = a + t;
                    hi[j] = a - t;
                }
            }
            len <<= 1;
        }
    }

    /// Convenience: out-of-place transform returning a fresh vector.
    pub fn transform(&self, input: &[Cplx], dir: Direction) -> Vec<Cplx> {
        let mut buf = input.to_vec();
        self.process(&mut buf, dir);
        buf
    }

    /// Forward transform into analysis coefficients `c_f` matching the
    /// repo-wide convention `x[t] = (1/n) Σ_f c_f e^{+2πi f t / n}`
    /// (the inverse here carries the `1/n`, so the plain forward is
    /// already in coefficient units). These are directly comparable
    /// with sFFT's recovered `(frequency, coefficient)` pairs.
    pub fn forward_coefficients(&self, input: &[Cplx]) -> Vec<Cplx> {
        self.transform(input, Direction::Forward)
    }
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("n", &self.n)
            .field("log2n", &self.log2n)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cplx::{ONE, ZERO};
    use crate::dft::dft;

    fn rand_signal(n: usize, seed: u64) -> Vec<Cplx> {
        // Small deterministic LCG so unit tests need no rand dependency here.
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                Cplx::new(a, b)
            })
            .collect()
    }

    fn assert_close(a: &[Cplx], b: &[Cplx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.dist(*y) < tol, "mismatch at {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn pow2_helpers() {
        assert!(is_pow2(1));
        assert!(is_pow2(1024));
        assert!(!is_pow2(0));
        assert!(!is_pow2(6));
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(floor_pow2(5), 4);
        assert_eq!(floor_pow2(8), 8);
        assert_eq!(floor_pow2(1), 1);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_plan_panics() {
        Plan::new(12);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert!(Plan::try_new(64).is_ok());
        assert_eq!(
            Plan::try_new(12).err(),
            Some(crate::plan::PlanError::NotPowerOfTwo(12))
        );
        let msg = Plan::try_new(10).unwrap_err().to_string();
        assert!(msg.contains("power-of-two"));
    }

    #[test]
    #[should_panic(expected = "plan built for")]
    fn wrong_buffer_size_panics() {
        let p = Plan::new(8);
        let mut buf = vec![ZERO; 4];
        p.process(&mut buf, Direction::Forward);
    }

    #[test]
    fn one_point_plan_is_identity() {
        let p = Plan::new(1);
        let mut buf = vec![Cplx::new(3.0, 4.0)];
        p.process(&mut buf, Direction::Forward);
        assert_eq!(buf[0], Cplx::new(3.0, 4.0));
    }

    #[test]
    fn two_point_plan() {
        let p = Plan::new(2);
        let mut buf = vec![ONE, Cplx::real(2.0)];
        p.process(&mut buf, Direction::Forward);
        assert!(buf[0].dist(Cplx::real(3.0)) < 1e-12);
        assert!(buf[1].dist(Cplx::real(-1.0)) < 1e-12);
    }

    #[test]
    fn matches_naive_dft_small_sizes() {
        for log2 in 0..=10 {
            let n = 1usize << log2;
            let x = rand_signal(n, 42 + log2 as u64);
            let expected = dft(&x, Direction::Forward);
            let got = Plan::new(n).transform(&x, Direction::Forward);
            assert_close(&got, &expected, 1e-8 * n as f64);
        }
    }

    #[test]
    fn inverse_matches_naive_dft() {
        for log2 in 1..=8 {
            let n = 1usize << log2;
            let x = rand_signal(n, 7 + log2 as u64);
            let expected = dft(&x, Direction::Inverse);
            let got = Plan::new(n).transform(&x, Direction::Inverse);
            assert_close(&got, &expected, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip_large() {
        let n = 1 << 14;
        let x = rand_signal(n, 9);
        let p = Plan::new(n);
        let mut buf = x.clone();
        p.process(&mut buf, Direction::Forward);
        p.process(&mut buf, Direction::Inverse);
        assert_close(&buf, &x, 1e-9);
    }

    #[test]
    fn plan_reuse_is_deterministic() {
        let p = Plan::new(256);
        let x = rand_signal(256, 1);
        let a = p.transform(&x, Direction::Forward);
        let b = p.transform(&x, Direction::Forward);
        assert_eq!(a.len(), b.len());
        for (u, v) in a.iter().zip(&b) {
            assert_eq!(u, v, "plan execution must be bit-reproducible");
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 512;
        let x = rand_signal(n, 3);
        let y = Plan::new(n).transform(&x, Direction::Forward);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!((ey - n as f64 * ex).abs() < 1e-8 * ey);
    }

    #[test]
    fn time_shift_is_frequency_phase_ramp() {
        // x[(t-s) mod n]  ⇒  X[f] * e^{-2πi f s / n}
        let n = 64;
        let s = 5usize;
        let x = rand_signal(n, 11);
        let shifted: Vec<Cplx> = (0..n).map(|t| x[(t + n - s) % n]).collect();
        let p = Plan::new(n);
        let fx = p.transform(&x, Direction::Forward);
        let fs = p.transform(&shifted, Direction::Forward);
        for f in 0..n {
            let phase = Cplx::cis(-std::f64::consts::TAU * (f * s) as f64 / n as f64);
            assert!(fs[f].dist(fx[f] * phase) < 1e-9);
        }
    }
}
