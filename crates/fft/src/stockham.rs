//! Stockham autosort FFT: an out-of-place radix-2 formulation that avoids
//! the bit-reversal pass by re-sorting as it goes (ping-pong buffers).
//!
//! This is the algorithm GPU FFT libraries (including cuFFT) actually
//! build on — every pass reads and writes with unit stride, which is what
//! makes the `2·16·n` bytes-per-pass traffic model in `cusfft::cufft`
//! accurate. Here it doubles as an independent second implementation the
//! [`crate::plan::Plan`] is cross-checked against.

use crate::cplx::{Cplx, ZERO};
use crate::plan::is_pow2;
use crate::Direction;

/// A Stockham autosort plan for a power-of-two size.
#[derive(Debug, Clone)]
pub struct StockhamPlan {
    n: usize,
    /// Twiddles per stage: stage `s` (len `2^{s+1}`) uses `2^s` factors.
    stage_twiddles: Vec<Vec<Cplx>>,
}

impl StockhamPlan {
    /// Builds a plan for an `n`-point transform (`n` a power of two).
    pub fn new(n: usize) -> Self {
        assert!(is_pow2(n), "StockhamPlan requires a power of two, got {n}");
        let log2n = n.trailing_zeros();
        let mut stage_twiddles = Vec::with_capacity(log2n as usize);
        for s in 0..log2n {
            let half = 1usize << s;
            let len = half * 2;
            let base = -std::f64::consts::TAU / len as f64;
            stage_twiddles.push((0..half).map(|j| Cplx::cis(base * j as f64)).collect());
        }
        StockhamPlan { n, stage_twiddles }
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty; 1-point plans have length 1.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Executes the transform out of place using `scratch` (same length)
    /// as the ping-pong partner. The result ends up in `data`.
    pub fn process_with_scratch(
        &self,
        data: &mut [Cplx],
        scratch: &mut [Cplx],
        dir: Direction,
    ) {
        let n = self.n;
        assert_eq!(data.len(), n, "data length mismatch");
        assert_eq!(scratch.len(), n, "scratch length mismatch");
        if n == 1 {
            return;
        }
        let conj = dir == Direction::Inverse;

        // Stockham DIT: at stage s, the transform consists of n/len
        // interleaved blocks; src index (q, j, h) → dst with the block
        // count halving each stage.
        let mut src: &mut [Cplx] = data;
        let mut dst: &mut [Cplx] = scratch;
        for (s, tw) in self.stage_twiddles.iter().enumerate() {
            let half = 1usize << s; // butterflies per block
            let blocks = n >> (s + 1); // remaining "columns"
            for q in 0..blocks {
                for j in 0..half {
                    let mut w = tw[j];
                    if conj {
                        w = w.conj();
                    }
                    let a = src[q * half + j];
                    let b = src[(q + blocks) * half + j] * w;
                    dst[q * 2 * half + j] = a + b;
                    dst[q * 2 * half + half + j] = a - b;
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }
        // After log2n swaps the result is in `src`; copy back if that is
        // the scratch buffer.
        if self.stage_twiddles.len() % 2 == 1 {
            dst.copy_from_slice(src);
        }
        if dir == Direction::Inverse {
            let inv = 1.0 / n as f64;
            for v in data.iter_mut() {
                *v = v.scale(inv);
            }
        }
    }

    /// Out-of-place convenience wrapper (allocates the scratch).
    pub fn transform(&self, input: &[Cplx], dir: Direction) -> Vec<Cplx> {
        let mut data = input.to_vec();
        let mut scratch = vec![ZERO; self.n];
        self.process_with_scratch(&mut data, &mut scratch, dir);
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use crate::plan::Plan;

    fn rand_signal(n: usize, seed: u64) -> Vec<Cplx> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                Cplx::new(a, b)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for log2 in 0..=10u32 {
            let n = 1usize << log2;
            let x = rand_signal(n, log2 as u64 + 1);
            let got = StockhamPlan::new(n).transform(&x, Direction::Forward);
            let expect = dft(&x, Direction::Forward);
            for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    a.dist(*b) < 1e-8 * n as f64,
                    "n={n} elem {i}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn matches_radix2_plan() {
        let n = 1 << 12;
        let x = rand_signal(n, 7);
        let a = StockhamPlan::new(n).transform(&x, Direction::Forward);
        let b = Plan::new(n).transform(&x, Direction::Forward);
        let scale = (n as f64).sqrt();
        for (u, v) in a.iter().zip(&b) {
            assert!(u.dist(*v) < 1e-9 * scale);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let n = 1 << 9;
        let x = rand_signal(n, 3);
        let p = StockhamPlan::new(n);
        let y = p.transform(&x, Direction::Forward);
        let z = p.transform(&y, Direction::Inverse);
        for (a, b) in z.iter().zip(&x) {
            assert!(a.dist(*b) < 1e-9);
        }
    }

    #[test]
    fn scratch_api_leaves_result_in_data() {
        let n = 64;
        let x = rand_signal(n, 5);
        let p = StockhamPlan::new(n);
        let mut data = x.clone();
        let mut scratch = vec![ZERO; n];
        p.process_with_scratch(&mut data, &mut scratch, Direction::Forward);
        let expect = dft(&x, Direction::Forward);
        for (a, b) in data.iter().zip(&expect) {
            assert!(a.dist(*b) < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        StockhamPlan::new(24);
    }

    #[test]
    #[should_panic(expected = "scratch length")]
    fn bad_scratch_rejected() {
        let p = StockhamPlan::new(8);
        let mut d = vec![ZERO; 8];
        let mut s = vec![ZERO; 4];
        p.process_with_scratch(&mut d, &mut s, Direction::Forward);
    }
}
