//! Circular shifts and spectrum-centering helpers used by the filter
//! construction (the Dolph-Chebyshev window is built centred and then
//! rotated to the index origin).

use crate::cplx::Cplx;

/// Rotates `data` left by `s` positions (circularly): element at index `s`
/// moves to index 0. `s` may exceed the length.
pub fn rotate_left(data: &mut [Cplx], s: usize) {
    if data.is_empty() {
        return;
    }
    let s = s % data.len();
    data.rotate_left(s);
}

/// Rotates `data` right by `s` positions (circularly).
pub fn rotate_right(data: &mut [Cplx], s: usize) {
    if data.is_empty() {
        return;
    }
    let s = s % data.len();
    data.rotate_right(s);
}

/// `fftshift`: swaps the low and high halves so the zero frequency sits in
/// the middle. For odd lengths, matches the NumPy convention
/// (`out[i] = in[(i + ceil(n/2)) mod n]`).
pub fn fftshift(data: &mut [Cplx]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    data.rotate_left(n.div_ceil(2));
}

/// Inverse of [`fftshift`].
pub fn ifftshift(data: &mut [Cplx]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    data.rotate_left(n / 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<Cplx> {
        (0..n).map(|i| Cplx::real(i as f64)).collect()
    }

    fn reals(v: &[Cplx]) -> Vec<f64> {
        v.iter().map(|c| c.re).collect()
    }

    #[test]
    fn rotate_left_basic() {
        let mut v = seq(5);
        rotate_left(&mut v, 2);
        assert_eq!(reals(&v), [2.0, 3.0, 4.0, 0.0, 1.0]);
    }

    #[test]
    fn rotate_right_undoes_left() {
        let mut v = seq(7);
        rotate_left(&mut v, 3);
        rotate_right(&mut v, 3);
        assert_eq!(reals(&v), reals(&seq(7)));
    }

    #[test]
    fn rotate_wraps_modulo_len() {
        let mut a = seq(4);
        let mut b = seq(4);
        rotate_left(&mut a, 6);
        rotate_left(&mut b, 2);
        assert_eq!(reals(&a), reals(&b));
    }

    #[test]
    fn rotate_empty_is_noop() {
        let mut v: Vec<Cplx> = vec![];
        rotate_left(&mut v, 3);
        rotate_right(&mut v, 3);
    }

    #[test]
    fn fftshift_even() {
        let mut v = seq(6);
        fftshift(&mut v);
        assert_eq!(reals(&v), [3.0, 4.0, 5.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn fftshift_odd_matches_numpy() {
        let mut v = seq(5);
        fftshift(&mut v);
        assert_eq!(reals(&v), [3.0, 4.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn ifftshift_inverts_fftshift() {
        for n in [2usize, 5, 6, 9, 16] {
            let mut v = seq(n);
            fftshift(&mut v);
            ifftshift(&mut v);
            assert_eq!(reals(&v), reals(&seq(n)), "n={n}");
        }
    }
}
