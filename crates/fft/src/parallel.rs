//! Multithreaded single-transform FFT — the stand-in for multithreaded FFTW
//! in the paper's CPU baseline.
//!
//! Strategy per butterfly stage: while blocks are plentiful, parallelise
//! across blocks (`par_chunks_exact_mut`); once blocks become fewer than the
//! desired task count, switch to splitting the *inside* of each block, which
//! is safe because the lo/hi halves of a block are disjoint slices.

use rayon::prelude::*;

use crate::cplx::{Cplx, ZERO};
use crate::plan::Plan;
use crate::Direction;

/// Minimum work (in elements) per rayon task; below this, sequential
/// execution wins because task spawning dominates.
const MIN_TASK_ELEMS: usize = 1 << 13;

/// A parallel executor wrapping a shared [`Plan`].
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    plan: Plan,
}

impl ParallelPlan {
    /// Builds a parallel plan for a power-of-two size.
    pub fn new(n: usize) -> Self {
        ParallelPlan { plan: Plan::new(n) }
    }

    /// Wraps an existing plan.
    pub fn from_plan(plan: Plan) -> Self {
        ParallelPlan { plan }
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Never true; 1-point plans still have length 1.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Executes the transform in place using the global rayon pool.
    pub fn process(&self, data: &mut [Cplx], dir: Direction) {
        let n = self.plan.len();
        assert_eq!(
            data.len(),
            n,
            "plan built for n={n}, got buffer of len {}",
            data.len()
        );
        if n < 2 * MIN_TASK_ELEMS {
            // Small transforms: the sequential plan is strictly faster.
            self.plan.process(data, dir);
            return;
        }

        // Parallel bit-reversal gather into scratch, then copy back.
        let bitrev = self.plan.bitrev_table();
        let mut scratch = vec![ZERO; n];
        scratch
            .par_chunks_mut(MIN_TASK_ELEMS)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * MIN_TASK_ELEMS;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = data[bitrev[base + i] as usize];
                }
            });
        data.par_chunks_mut(MIN_TASK_ELEMS)
            .zip(scratch.par_chunks(MIN_TASK_ELEMS))
            .for_each(|(d, s)| d.copy_from_slice(s));

        let twiddles = self.plan.twiddle_table();
        let conj = dir == Direction::Inverse;
        let mut len = 2usize;
        while len <= n {
            let stride = n / len;
            let half = len / 2;
            if len <= MIN_TASK_ELEMS {
                // Many small blocks: group them so each task is big enough.
                let group = (MIN_TASK_ELEMS / len).max(1) * len;
                data.par_chunks_mut(group).for_each(|span| {
                    for chunk in span.chunks_exact_mut(len) {
                        butterfly_block(chunk, half, twiddles, stride, conj);
                    }
                });
            } else {
                // Few large blocks: split the inside of each block.
                for chunk in data.chunks_exact_mut(len) {
                    let (lo, hi) = chunk.split_at_mut(half);
                    lo.par_chunks_mut(MIN_TASK_ELEMS / 2)
                        .zip(hi.par_chunks_mut(MIN_TASK_ELEMS / 2))
                        .enumerate()
                        .for_each(|(ci, (lo_c, hi_c))| {
                            let j0 = ci * (MIN_TASK_ELEMS / 2);
                            for (j, (a, b)) in lo_c.iter_mut().zip(hi_c.iter_mut()).enumerate() {
                                let mut w = twiddles[(j0 + j) * stride];
                                if conj {
                                    w = w.conj();
                                }
                                let t = *b * w;
                                let av = *a;
                                *a = av + t;
                                *b = av - t;
                            }
                        });
                }
            }
            len <<= 1;
        }

        if dir == Direction::Inverse {
            let inv = 1.0 / n as f64;
            data.par_chunks_mut(MIN_TASK_ELEMS)
                .for_each(|chunk| chunk.iter_mut().for_each(|v| *v = v.scale(inv)));
        }
    }

    /// Out-of-place convenience wrapper.
    pub fn transform(&self, input: &[Cplx], dir: Direction) -> Vec<Cplx> {
        let mut buf = input.to_vec();
        self.process(&mut buf, dir);
        buf
    }
}

#[inline]
fn butterfly_block(chunk: &mut [Cplx], half: usize, twiddles: &[Cplx], stride: usize, conj: bool) {
    let (lo, hi) = chunk.split_at_mut(half);
    for j in 0..half {
        let mut w = twiddles[j * stride];
        if conj {
            w = w.conj();
        }
        let t = hi[j] * w;
        let a = lo[j];
        lo[j] = a + t;
        hi[j] = a - t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_signal(n: usize, seed: u64) -> Vec<Cplx> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = ((s >> 16) as u32 as f64) / u32::MAX as f64 - 0.5;
                Cplx::new(a, b)
            })
            .collect()
    }

    #[test]
    fn matches_sequential_plan_small() {
        // Small sizes take the sequential fallback path.
        for log2 in [4u32, 8, 10] {
            let n = 1usize << log2;
            let x = rand_signal(n, log2 as u64);
            let seq = Plan::new(n).transform(&x, Direction::Forward);
            let par = ParallelPlan::new(n).transform(&x, Direction::Forward);
            for (a, b) in seq.iter().zip(&par) {
                assert!(a.dist(*b) < 1e-10);
            }
        }
    }

    #[test]
    fn matches_sequential_plan_large() {
        // Large enough to exercise both parallel stage strategies.
        let n = 1usize << 16;
        let x = rand_signal(n, 99);
        let seq = Plan::new(n).transform(&x, Direction::Forward);
        let par = ParallelPlan::new(n).transform(&x, Direction::Forward);
        let scale = (n as f64).sqrt();
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert!(a.dist(*b) < 1e-9 * scale, "elem {i}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn inverse_roundtrip_large() {
        let n = 1usize << 16;
        let x = rand_signal(n, 123);
        let pp = ParallelPlan::new(n);
        let mut buf = x.clone();
        pp.process(&mut buf, Direction::Forward);
        pp.process(&mut buf, Direction::Inverse);
        for (a, b) in buf.iter().zip(&x) {
            assert!(a.dist(*b) < 1e-9);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let n = 1usize << 15;
        let x = rand_signal(n, 5);
        let pp = ParallelPlan::new(n);
        let a = pp.transform(&x, Direction::Forward);
        let b = pp.transform(&x, Direction::Forward);
        assert_eq!(a, b, "parallel FFT must be run-to-run deterministic");
    }

    #[test]
    #[should_panic(expected = "plan built for")]
    fn wrong_size_panics() {
        let pp = ParallelPlan::new(1 << 14);
        let mut buf = rand_signal(8, 1);
        pp.process(&mut buf, Direction::Forward);
    }
}
