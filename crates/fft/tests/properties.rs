//! Property-based tests for the FFT substrate: the algebraic identities any
//! correct DFT implementation must satisfy, checked on arbitrary signals and
//! sizes with proptest.

use fft::cplx::Cplx;
use fft::{bluestein_fft, dft_band, Direction, ParallelPlan, Plan};
use proptest::prelude::*;

fn cplx_strategy() -> impl Strategy<Value = Cplx> {
    (-1.0e3..1.0e3f64, -1.0e3..1.0e3f64).prop_map(|(re, im)| Cplx::new(re, im))
}

fn signal(max_log2: u32) -> impl Strategy<Value = Vec<Cplx>> {
    (0..=max_log2)
        .prop_flat_map(move |log2| prop::collection::vec(cplx_strategy(), 1usize << log2))
}

fn arbitrary_len_signal() -> impl Strategy<Value = Vec<Cplx>> {
    (1usize..200).prop_flat_map(|n| prop::collection::vec(cplx_strategy(), n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_roundtrip_recovers_input(x in signal(10)) {
        let p = Plan::new(x.len());
        let mut buf = x.clone();
        p.process(&mut buf, Direction::Forward);
        p.process(&mut buf, Direction::Inverse);
        let scale: f64 = x.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (a, b) in buf.iter().zip(&x) {
            prop_assert!(a.dist(*b) < 1e-9 * scale * x.len() as f64);
        }
    }

    #[test]
    fn plan_is_linear(x in signal(8), y_seed in 0u64..1000) {
        let n = x.len();
        let y: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new(((i as u64 + y_seed) % 97) as f64, ((i as u64 * y_seed) % 31) as f64))
            .collect();
        let sum: Vec<Cplx> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let p = Plan::new(n);
        let fx = p.transform(&x, Direction::Forward);
        let fy = p.transform(&y, Direction::Forward);
        let fsum = p.transform(&sum, Direction::Forward);
        let scale: f64 = fsum.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for i in 0..n {
            prop_assert!(fsum[i].dist(fx[i] + fy[i]) < 1e-9 * scale);
        }
    }

    #[test]
    fn parseval_energy_conservation(x in signal(9)) {
        let n = x.len();
        let y = Plan::new(n).transform(&x, Direction::Forward);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        prop_assert!((ey - n as f64 * ex).abs() <= 1e-8 * (ey.abs().max(1.0)));
    }

    #[test]
    fn bluestein_roundtrip_any_size(x in arbitrary_len_signal()) {
        let y = bluestein_fft(&x, Direction::Forward);
        let z = bluestein_fft(&y, Direction::Inverse);
        let scale: f64 = x.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (a, b) in z.iter().zip(&x) {
            prop_assert!(a.dist(*b) < 1e-7 * scale * x.len() as f64);
        }
    }

    #[test]
    fn bluestein_matches_plan_on_pow2(x in signal(7)) {
        let a = bluestein_fft(&x, Direction::Forward);
        let b = Plan::new(x.len()).transform(&x, Direction::Forward);
        let scale: f64 = b.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!(u.dist(*v) < 1e-8 * scale);
        }
    }

    #[test]
    fn parallel_matches_sequential(x in signal(10)) {
        let n = x.len();
        let seq = Plan::new(n).transform(&x, Direction::Forward);
        let par = ParallelPlan::new(n).transform(&x, Direction::Forward);
        let scale: f64 = seq.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (a, b) in seq.iter().zip(&par) {
            prop_assert!(a.dist(*b) < 1e-9 * scale);
        }
    }

    #[test]
    fn band_agrees_with_full_transform(
        x in prop::collection::vec(cplx_strategy(), 1..64),
        n_log2 in 7u32..10,
        start in -100i64..100,
        m in 1usize..40,
    ) {
        let n = 1usize << n_log2;
        let mut padded = x.clone();
        padded.resize(n, fft::cplx::ZERO);
        let full = Plan::new(n).transform(&padded, Direction::Forward);
        let band = dft_band(&x, n, start, m);
        let scale: f64 = full.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (t, v) in band.iter().enumerate() {
            let f = (start + t as i64).rem_euclid(n as i64) as usize;
            prop_assert!(v.dist(full[f]) < 1e-8 * scale);
        }
    }

    #[test]
    fn impulse_position_becomes_phase_ramp(n_log2 in 2u32..9, pos_frac in 0.0..1.0f64) {
        let n = 1usize << n_log2;
        let pos = ((pos_frac * n as f64) as usize).min(n - 1);
        let mut x = vec![fft::cplx::ZERO; n];
        x[pos] = fft::cplx::ONE;
        let y = Plan::new(n).transform(&x, Direction::Forward);
        for (f, v) in y.iter().enumerate() {
            let expected = Cplx::cis(-std::f64::consts::TAU * (f * pos % n) as f64 / n as f64);
            prop_assert!(v.dist(expected) < 1e-9);
        }
    }
}
