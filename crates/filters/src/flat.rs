//! Flat-window filters: a prototype window multiplied (in time) by a
//! Dirichlet kernel, which convolves its spectrum (in frequency) with a
//! width-`b` boxcar. The result is ≈1 across a `b`-bin passband, decays to
//! the window's tolerance outside it, and still has time support `w ≪ n` —
//! the property that makes the permute+filter+bin step sublinear.
//!
//! Conventions (consistent with the derivation in DESIGN.md):
//!
//! * taps are stored for time indices `t = i − w/2` (centred support);
//! * the frequency response is `Ĝ(f) = Σ_t g[t]·e^{-2πi f t/n}` with the
//!   *centred* t — no linear phase, so `Ĝ` is real-positive across the
//!   passband and estimation needs no phase unwinding beyond the
//!   permutation's own factor;
//! * only a band `|f| ≤ half_band` of `Ĝ` is materialised (via the chirp-z
//!   [`fft::dft_band`]); the sparse-FFT estimation step never looks
//!   outside `|f| ≤ n/(2B)`.

use fft::cplx::Cplx;
use fft::dft_band;
use serde::{Deserialize, Serialize};

use crate::cheb::{dolph_chebyshev, dolph_width};
use crate::gauss::{gauss_width, gaussian};

/// Which prototype window to flatten.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowKind {
    /// Dolph-Chebyshev (minimax sidelobes) — the reference choice.
    DolphChebyshev,
    /// Truncated Gaussian.
    Gaussian,
}

/// A flat-window filter: centred time taps plus a banded frequency
/// response.
#[derive(Debug, Clone)]
pub struct FlatFilter {
    /// Time-domain taps `g[i]` for `t = i − w/2`, complex because of the
    /// Dirichlet modulation.
    taps: Vec<Cplx>,
    /// Signal length the filter was designed for.
    n: usize,
    /// Boxcar width in bins (the flat passband width).
    b: usize,
    /// Frequency response at offsets `-half_band ..= half_band`.
    band: Vec<Cplx>,
    half_band: usize,
    /// Design parameters, kept for reports.
    kind: WindowKind,
    lobefrac: f64,
    tolerance: f64,
}

impl FlatFilter {
    /// Designs a flat-window filter for signals of length `n`:
    /// `b`-bin-wide flat passband, transition `lobefrac·n` bins, stopband
    /// level `tolerance`. `half_band` is how far (in bins from centre) the
    /// materialised frequency response extends; estimation requires at
    /// least `n/(2B)` where `B` is the bucket count.
    pub fn design(
        n: usize,
        b: usize,
        lobefrac: f64,
        tolerance: f64,
        half_band: usize,
        kind: WindowKind,
    ) -> Self {
        assert!(n > 0 && b > 0, "n and b must be positive");
        assert!(b < n, "passband wider than the whole spectrum");
        let w = match kind {
            WindowKind::DolphChebyshev => dolph_width(lobefrac, tolerance),
            WindowKind::Gaussian => gauss_width(lobefrac, tolerance),
        }
        .min(if n.is_multiple_of(2) { n - 1 } else { n });
        let proto = match kind {
            WindowKind::DolphChebyshev => dolph_chebyshev(w, tolerance),
            WindowKind::Gaussian => gaussian(w, tolerance),
        };

        // Multiply by the centred Dirichlet kernel: spectrum ⇐ boxcar over
        // frequencies j ∈ [−b/2, b/2).
        let j_lo = -((b / 2) as i64);
        let j_hi = j_lo + b as i64; // exclusive
        let half = (w / 2) as i64;
        let mut taps: Vec<Cplx> = Vec::with_capacity(w);
        for (i, &p) in proto.iter().enumerate() {
            let t = i as i64 - half;
            // D(t) = Σ_{j=j_lo}^{j_hi-1} e^{+2πi j t / n}, summed in closed
            // form via the geometric series when possible.
            let d = dirichlet(t, j_lo, j_hi, n);
            taps.push(d.scale(p));
        }

        // Banded frequency response with the centred-time convention:
        // Ĝ(f) = e^{+2πi f (w/2) / n} · DFT_n(taps_as_stored)(f).
        let start = -(half_band as i64);
        let m = 2 * half_band + 1;
        let raw = dft_band(&taps, n, start, m);
        let mut band: Vec<Cplx> = raw
            .into_iter()
            .enumerate()
            .map(|(idx, v)| {
                let f = start + idx as i64;
                let phase =
                    Cplx::cis(std::f64::consts::TAU * (f * half) as f64 / n as f64);
                v * phase
            })
            .collect();

        // Normalise to a unit passband (peak of |Ĝ|).
        let peak = band
            .iter()
            .map(|c| c.abs())
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for t in &mut taps {
            *t = t.unscale(peak);
        }
        for v in &mut band {
            *v = v.unscale(peak);
        }

        FlatFilter {
            taps,
            n,
            b,
            band,
            half_band,
            kind,
            lobefrac,
            tolerance,
        }
    }

    /// Time-domain taps (`t = i − w/2`).
    #[inline]
    pub fn taps(&self) -> &[Cplx] {
        &self.taps
    }

    /// Time support `w`.
    #[inline]
    pub fn width(&self) -> usize {
        self.taps.len()
    }

    /// Designed signal length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Flat passband width in bins.
    #[inline]
    pub fn passband(&self) -> usize {
        self.b
    }

    /// Extent of the materialised response, in bins from centre.
    #[inline]
    pub fn half_band(&self) -> usize {
        self.half_band
    }

    /// Window kind used for the prototype.
    #[inline]
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// Design lobe fraction.
    #[inline]
    pub fn lobefrac(&self) -> f64 {
        self.lobefrac
    }

    /// Design tolerance (stopband level).
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Frequency response at a signed offset from the centre frequency.
    ///
    /// Panics if `|offset| > half_band` — the sparse-FFT estimation step
    /// only ever asks within `±n/(2B)`, and a silent zero would corrupt
    /// magnitudes.
    #[inline]
    pub fn freq_at(&self, offset: i64) -> Cplx {
        let idx = offset + self.half_band as i64;
        assert!(
            (0..self.band.len() as i64).contains(&idx),
            "offset {offset} outside materialised band ±{}",
            self.half_band
        );
        self.band[idx as usize]
    }

    /// Full `n`-point frequency response (test/inspection helper — O(n·w),
    /// use only for small `n`).
    pub fn freq_full(&self) -> Vec<Cplx> {
        let n = self.n;
        let half = (self.width() / 2) as i64;
        let mut out = vec![fft::cplx::ZERO; n];
        for (f, slot) in out.iter_mut().enumerate() {
            let mut acc = fft::cplx::ZERO;
            for (i, &g) in self.taps.iter().enumerate() {
                let t = i as i64 - half;
                let k = (f as i64 * t).rem_euclid(n as i64);
                acc += g * Cplx::cis(-std::f64::consts::TAU * k as f64 / n as f64);
            }
            *slot = acc;
        }
        out
    }
}

/// Centred Dirichlet kernel `Σ_{j=j_lo}^{j_hi−1} e^{2πi j t / n}` in closed
/// form.
fn dirichlet(t: i64, j_lo: i64, j_hi: i64, n: usize) -> Cplx {
    let count = (j_hi - j_lo) as f64;
    if t.rem_euclid(n as i64) == 0 {
        return Cplx::real(count);
    }
    let theta = std::f64::consts::TAU * t as f64 / n as f64;
    // Geometric series: e^{iθ j_lo} · (e^{iθ c} − 1)/(e^{iθ} − 1)
    let c = j_hi - j_lo;
    let num = Cplx::cis(theta * c as f64) - fft::cplx::ONE;
    let den = Cplx::cis(theta) - fft::cplx::ONE;
    Cplx::cis(theta * j_lo as f64) * (num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design_small(kind: WindowKind) -> FlatFilter {
        let n = 4096;
        let buckets = 64; // B buckets → bucket width n/B = 64
        let b = (1.2 * n as f64 / buckets as f64) as usize; // ≈ 76
        FlatFilter::design(n, b, 0.004, 1e-6, n / buckets, kind)
    }

    #[test]
    fn dirichlet_matches_direct_sum() {
        let n = 256;
        for &t in &[-7i64, -1, 0, 1, 5, 100] {
            for (lo, hi) in [(-8i64, 8i64), (0, 5), (-3, 1)] {
                let direct: Cplx = (lo..hi)
                    .map(|j| Cplx::cis(std::f64::consts::TAU * (j * t) as f64 / n as f64))
                    .sum();
                let closed = dirichlet(t, lo, hi, n);
                assert!(
                    closed.dist(direct) < 1e-9,
                    "t={t} box=({lo},{hi}): {closed:?} vs {direct:?}"
                );
            }
        }
    }

    #[test]
    fn banded_response_matches_full_response() {
        let f = design_small(WindowKind::DolphChebyshev);
        let full = f.freq_full();
        let n = f.n();
        for off in -(f.half_band() as i64)..=(f.half_band() as i64) {
            let idx = off.rem_euclid(n as i64) as usize;
            let banded = f.freq_at(off);
            assert!(
                banded.dist(full[idx]) < 1e-7,
                "offset {off}: {banded:?} vs {:?}",
                full[idx]
            );
        }
    }

    #[test]
    fn passband_is_flat_and_unit() {
        let f = design_small(WindowKind::DolphChebyshev);
        let transition = (f.lobefrac() * f.n() as f64).ceil() as i64;
        let flat_edge = (f.passband() / 2) as i64 - transition;
        assert!(flat_edge > 2, "test setup must leave a flat region");
        for off in -flat_edge..=flat_edge {
            let v = f.freq_at(off).abs();
            assert!(
                (0.95..=1.000001).contains(&v),
                "passband not flat at {off}: {v}"
            );
        }
    }

    #[test]
    fn response_decays_outside_passband() {
        let f = design_small(WindowKind::DolphChebyshev);
        let n = f.n();
        let full = f.freq_full();
        let transition = (f.lobefrac() * n as f64).ceil() as i64;
        let stop_edge = (f.passband() / 2) as i64 + transition;
        for fr in 0..n as i64 {
            let dist = fr.min(n as i64 - fr);
            if dist > stop_edge {
                let v = full[fr as usize].abs();
                assert!(
                    v < 1e-3,
                    "stopband leakage at {fr} (dist {dist}): {v}"
                );
            }
        }
    }

    #[test]
    fn gaussian_variant_also_flat() {
        let f = design_small(WindowKind::Gaussian);
        let v0 = f.freq_at(0).abs();
        assert!((0.9..=1.000001).contains(&v0));
        // A few bins around centre stay close to 1.
        for off in -4i64..=4 {
            assert!(f.freq_at(off).abs() > 0.8);
        }
    }

    #[test]
    fn time_support_much_smaller_than_n() {
        let f = design_small(WindowKind::DolphChebyshev);
        assert!(f.width() < f.n() / 2, "w={} n={}", f.width(), f.n());
        assert_eq!(f.taps().len(), f.width());
    }

    #[test]
    fn accessors_report_design() {
        let f = design_small(WindowKind::DolphChebyshev);
        assert_eq!(f.n(), 4096);
        assert_eq!(f.kind(), WindowKind::DolphChebyshev);
        assert!((f.tolerance() - 1e-6).abs() < 1e-18);
        assert!((f.lobefrac() - 0.004).abs() < 1e-12);
        assert_eq!(f.half_band(), 64);
    }

    #[test]
    #[should_panic(expected = "outside materialised band")]
    fn out_of_band_query_panics() {
        let f = design_small(WindowKind::DolphChebyshev);
        f.freq_at(f.half_band() as i64 + 1);
    }

    #[test]
    #[should_panic(expected = "passband wider")]
    fn oversized_passband_panics() {
        FlatFilter::design(64, 64, 0.01, 1e-6, 8, WindowKind::DolphChebyshev);
    }

    #[test]
    fn width_capped_by_n() {
        // Tiny n with demanding tolerance: width must be clamped below n.
        let f = FlatFilter::design(128, 8, 0.001, 1e-9, 16, WindowKind::DolphChebyshev);
        assert!(f.width() <= 128);
    }
}
