//! # `filters` — flat-window filter design for the sparse FFT
//!
//! Step 2 of the sFFT ("Flat Window Function") needs a filter that is
//! simultaneously short in time (support `w ≪ n`, so permute+filter is
//! sublinear) and nearly ideal in frequency (flat over a `b`-bin passband,
//! ≤ δ outside it, so Fourier coefficients bin into buckets without
//! leaking into their neighbours).
//!
//! * [`cheb`] — Chebyshev polynomials and the Dolph-Chebyshev window;
//! * [`gauss`] — the truncated Gaussian alternative;
//! * [`flat`] — the boxcar-flattened [`FlatFilter`] with a banded
//!   frequency response (the full `n`-point response is never stored:
//!   at `n = 2²⁷` it would be 2 GiB, and estimation only reads
//!   `|offset| ≤ n/(2B)`);
//! * [`quality`] — ripple/leakage/concentration measurements.

pub mod cheb;
pub mod flat;
pub mod gauss;
pub mod quality;

pub use cheb::{cheb_poly, dolph_chebyshev, dolph_width};
pub use flat::{FlatFilter, WindowKind};
pub use gauss::{gauss_width, gaussian};
pub use quality::{measure, FilterQuality};
