//! Chebyshev polynomials and the Dolph-Chebyshev window.
//!
//! The Dolph-Chebyshev window is the minimax window: for a given main-lobe
//! width, every sidelobe sits at exactly the prescribed attenuation. The
//! sparse FFT uses it because its frequency response decays to the design
//! tolerance `δ` immediately outside the lobe fraction — the spectral
//! "leakage" between buckets is bounded by `δ` by construction.
//!
//! Construction follows the classic recipe (and the MIT reference code):
//! sample the order-`(w−1)` Chebyshev polynomial on the frequency grid,
//! inverse-transform, and centre. `w` is kept odd so the window has a
//! well-defined centre tap.

use fft::cplx::Cplx;
use fft::{bluestein_fft, Direction};

/// Evaluates the Chebyshev polynomial `T_m(x)` for any real `x`.
///
/// Uses `cos(m·acos x)` inside `[-1, 1]` and `±cosh(m·acosh |x|)` outside;
/// both branches are exact continuations of the same polynomial.
pub fn cheb_poly(m: u64, x: f64) -> f64 {
    let ax = x.abs();
    let t = if ax <= 1.0 {
        (m as f64 * x.acos()).cos()
    } else {
        (m as f64 * ax.acosh()).cosh()
    };
    if x < -1.0 && m % 2 == 1 {
        -t
    } else {
        t
    }
}

/// Window width needed so that sidelobes beyond `lobefrac` (a fraction of
/// the signal length) are below `tolerance`:
/// `w = (1/π)·(1/lobefrac)·acosh(1/tolerance)`, forced odd.
pub fn dolph_width(lobefrac: f64, tolerance: f64) -> usize {
    assert!(lobefrac > 0.0 && lobefrac < 0.5, "lobefrac out of (0, 0.5)");
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "tolerance out of (0, 1)"
    );
    let mut w = ((1.0 / std::f64::consts::PI) * (1.0 / lobefrac) * (1.0 / tolerance).acosh())
        as usize;
    if w.is_multiple_of(2) {
        w = w.saturating_sub(1);
    }
    w.max(1)
}

/// Builds an odd-length Dolph-Chebyshev window of width `w` with sidelobe
/// level `tolerance`, normalised to a unit centre tap. The result is real
/// and symmetric about index `w/2`.
pub fn dolph_chebyshev(w: usize, tolerance: f64) -> Vec<f64> {
    assert!(w % 2 == 1, "window width must be odd, got {w}");
    assert!(tolerance > 0.0 && tolerance < 1.0);
    if w == 1 {
        return vec![1.0];
    }
    let m = (w - 1) as u64;
    let t0 = ((1.0 / tolerance).acosh() / m as f64).cosh();
    // Frequency samples of the window (real).
    let freq: Vec<Cplx> = (0..w)
        .map(|i| {
            Cplx::real(cheb_poly(m, t0 * (std::f64::consts::PI * i as f64 / w as f64).cos())
                * tolerance)
        })
        .collect();
    // Inverse transform to time domain; the result is real up to rounding.
    let mut time = bluestein_fft(&freq, Direction::Forward);
    // Centre the window: index 0 of the transform corresponds to tap 0;
    // rotate so the peak sits at w/2.
    fft::shift::rotate_right(&mut time, w / 2);
    let peak = time[w / 2].re;
    time.iter()
        .map(|c| c.re / peak)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheb_poly_matches_recurrence() {
        // T_0=1, T_1=x, T_{n+1} = 2x T_n − T_{n−1}
        for &x in &[-2.5, -1.0, -0.3, 0.0, 0.7, 1.0, 3.0] {
            // (a, b) = (T_m, T_{m+1}) at the top of iteration m.
            let (mut a, mut b) = (1.0, x);
            for m in 0..10u64 {
                let direct = cheb_poly(m, x);
                assert!(
                    (direct - a).abs() < 1e-6 * a.abs().max(1.0),
                    "T_{m}({x}) = {direct}, recurrence {a}"
                );
                let next = 2.0 * x * b - a;
                a = b;
                b = next;
            }
        }
    }

    #[test]
    fn cheb_bounded_on_unit_interval() {
        for i in 0..100 {
            let x = -1.0 + 2.0 * i as f64 / 99.0;
            assert!(cheb_poly(25, x).abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn width_grows_with_tighter_tolerance() {
        let w1 = dolph_width(0.01, 1e-4);
        let w2 = dolph_width(0.01, 1e-8);
        assert!(w2 > w1);
        assert!(w1 % 2 == 1 && w2 % 2 == 1);
    }

    #[test]
    fn width_grows_with_narrower_lobe() {
        assert!(dolph_width(0.001, 1e-6) > dolph_width(0.01, 1e-6));
    }

    #[test]
    fn window_is_real_symmetric_unit_peak() {
        let w = 65;
        let win = dolph_chebyshev(w, 1e-6);
        assert_eq!(win.len(), w);
        assert!((win[w / 2] - 1.0).abs() < 1e-12, "centre tap is the peak");
        for i in 0..w {
            assert!(
                (win[i] - win[w - 1 - i]).abs() < 1e-8,
                "symmetry broken at {i}"
            );
            assert!(win[i] <= 1.0 + 1e-9, "no tap exceeds the peak");
        }
    }

    #[test]
    fn window_sidelobes_below_tolerance() {
        // Frequency response of the window itself: pad to n and check
        // sidelobes beyond the main lobe are ≤ tolerance (relative to the
        // DC response).
        let tol = 1e-5;
        let lobefrac = 0.05;
        let w = dolph_width(lobefrac, tol);
        let win = dolph_chebyshev(w, tol);
        let n = 1024;
        let mut padded = vec![fft::cplx::ZERO; n];
        for (i, &v) in win.iter().enumerate() {
            // centre at 0 (wrapped)
            let t = (i as i64 - (w / 2) as i64).rem_euclid(n as i64) as usize;
            padded[t] = Cplx::real(v);
        }
        let spec = fft::Plan::new(n).transform(&padded, Direction::Forward);
        let dc = spec[0].abs();
        let lobe_bins = (lobefrac * n as f64).ceil() as usize;
        for (f, v) in spec.iter().enumerate() {
            let dist = f.min(n - f);
            if dist > lobe_bins {
                assert!(
                    v.abs() / dc < tol * 3.0,
                    "sidelobe at {f}: {} vs tol {tol}",
                    v.abs() / dc
                );
            }
        }
    }

    #[test]
    fn degenerate_width_one() {
        assert_eq!(dolph_chebyshev(1, 1e-6), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_width_panics() {
        dolph_chebyshev(64, 1e-6);
    }

    #[test]
    #[should_panic(expected = "lobefrac")]
    fn bad_lobefrac_panics() {
        dolph_width(0.7, 1e-6);
    }
}
