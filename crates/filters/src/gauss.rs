//! Gaussian window — the second standard window of the sparse-FFT
//! literature ("sFFT employs special signal processing filters, notably
//! the Gaussian and Dolph-Chebyshev filters").
//!
//! A truncated Gaussian is concentrated in both domains; choosing
//! `σ = w / (2·√(2·ln(1/δ)))` puts the truncation error at the design
//! tolerance `δ`. It needs a somewhat wider support than Dolph-Chebyshev
//! for the same leakage, which is why the reference implementation (and
//! our default) prefers the latter; the Gaussian is kept as an alternative
//! and for ablation studies.

/// Width required for a Gaussian window with the given lobe fraction and
/// tolerance (a conservative bound mirroring the Dolph-Chebyshev sizing
/// with the Gaussian's extra log factor), forced odd.
pub fn gauss_width(lobefrac: f64, tolerance: f64) -> usize {
    assert!(lobefrac > 0.0 && lobefrac < 0.5, "lobefrac out of (0, 0.5)");
    assert!(tolerance > 0.0 && tolerance < 1.0);
    let l = (1.0 / tolerance).ln();
    let mut w = ((2.0 / std::f64::consts::PI) * (1.0 / lobefrac) * l) as usize;
    if w.is_multiple_of(2) {
        w = w.saturating_sub(1);
    }
    w.max(1)
}

/// Builds an odd-length truncated Gaussian window with unit centre tap and
/// edge value ≈ `tolerance`.
pub fn gaussian(w: usize, tolerance: f64) -> Vec<f64> {
    assert!(w % 2 == 1, "window width must be odd, got {w}");
    assert!(tolerance > 0.0 && tolerance < 1.0);
    if w == 1 {
        return vec![1.0];
    }
    let half = (w / 2) as f64;
    // exp(-half² / (2σ²)) = tolerance  ⇒  σ = half / sqrt(2 ln(1/tol))
    let sigma = half / (2.0 * (1.0 / tolerance).ln()).sqrt();
    (0..w)
        .map(|i| {
            let t = i as f64 - half;
            (-0.5 * (t / sigma) * (t / sigma)).exp()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_peak_and_symmetry() {
        let w = 101;
        let g = gaussian(w, 1e-8);
        assert_eq!(g.len(), w);
        assert!((g[w / 2] - 1.0).abs() < 1e-15);
        for i in 0..w {
            assert!((g[i] - g[w - 1 - i]).abs() < 1e-15);
        }
    }

    #[test]
    fn edges_hit_tolerance() {
        let tol = 1e-6;
        let g = gaussian(201, tol);
        let edge = g[0];
        assert!(
            (edge / tol).ln().abs() < 0.1,
            "edge value {edge} should be ≈ {tol}"
        );
    }

    #[test]
    fn monotone_from_centre() {
        let g = gaussian(51, 1e-7);
        for i in 0..25 {
            assert!(g[i] < g[i + 1], "left half must rise");
        }
        for i in 26..50 {
            assert!(g[i] < g[i - 1], "right half must fall");
        }
    }

    #[test]
    fn width_helper_is_odd_and_scales() {
        let a = gauss_width(0.01, 1e-6);
        let b = gauss_width(0.005, 1e-6);
        assert!(a % 2 == 1);
        assert!(b > a);
    }

    #[test]
    fn degenerate_width_one() {
        assert_eq!(gaussian(1, 0.5), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_width_panics() {
        gaussian(10, 1e-6);
    }
}
