//! Filter quality measures: passband ripple, stopband leakage, and energy
//! concentration. These quantify the binning-filter properties the sFFT
//! correctness argument rests on ("its frequency response is nearly flat
//! inside the pass region and has an exponential tail outside it").

use crate::flat::FlatFilter;

/// Quality report for a flat-window filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterQuality {
    /// Max deviation of `|Ĝ|` from 1 over the flat region
    /// (`|f| ≤ b/2 − lobefrac·n`).
    pub passband_ripple: f64,
    /// Max `|Ĝ|` beyond the stop edge (`|f| ≥ b/2 + lobefrac·n`),
    /// measured within the materialised band.
    pub stopband_leakage: f64,
    /// Fraction of the materialised response energy inside the passband.
    pub energy_concentration: f64,
    /// Flat-region half width in bins (may be 0 for degenerate designs).
    pub flat_half_width: usize,
}

/// Measures a filter using its materialised band.
pub fn measure(filter: &FlatFilter) -> FilterQuality {
    let transition = (filter.lobefrac() * filter.n() as f64).ceil() as i64;
    let flat_edge = ((filter.passband() / 2) as i64 - transition).max(0);
    let stop_edge = (filter.passband() / 2) as i64 + transition;
    let half = filter.half_band() as i64;

    let mut ripple = 0.0f64;
    let mut leakage = 0.0f64;
    let mut pass_energy = 0.0f64;
    let mut total_energy = 0.0f64;
    for off in -half..=half {
        let mag = filter.freq_at(off).abs();
        total_energy += mag * mag;
        let d = off.abs();
        if d <= (filter.passband() / 2) as i64 {
            pass_energy += mag * mag;
        }
        if d <= flat_edge {
            ripple = ripple.max((mag - 1.0).abs());
        }
        if d >= stop_edge {
            leakage = leakage.max(mag);
        }
    }
    FilterQuality {
        passband_ripple: ripple,
        stopband_leakage: leakage,
        energy_concentration: if total_energy > 0.0 {
            pass_energy / total_energy
        } else {
            0.0
        },
        flat_half_width: flat_edge as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::WindowKind;

    fn design() -> FlatFilter {
        let n = 4096;
        let buckets = 128;
        let b = (1.2 * n as f64 / buckets as f64) as usize;
        FlatFilter::design(n, b, 0.004, 1e-7, n / buckets, WindowKind::DolphChebyshev)
    }

    #[test]
    fn reference_filter_is_flat_and_tight() {
        let q = measure(&design());
        assert!(q.passband_ripple < 0.05, "ripple {}", q.passband_ripple);
        assert!(q.flat_half_width > 0);
        assert!(
            q.energy_concentration > 0.9,
            "concentration {}",
            q.energy_concentration
        );
    }

    #[test]
    fn tighter_tolerance_reduces_leakage() {
        let n = 4096;
        let buckets = 128;
        let b = (1.2 * n as f64 / buckets as f64) as usize;
        let loose = FlatFilter::design(n, b, 0.004, 1e-3, n / buckets, WindowKind::DolphChebyshev);
        let tight = FlatFilter::design(n, b, 0.004, 1e-8, n / buckets, WindowKind::DolphChebyshev);
        let ql = measure(&loose);
        let qt = measure(&tight);
        // The tight filter is wider in time.
        assert!(tight.width() > loose.width());
        // And at least as clean in the measured band (both may be ~0 if
        // the band ends before the stop edge; guard against NaN only).
        assert!(qt.stopband_leakage.is_finite() && ql.stopband_leakage.is_finite());
    }

    #[test]
    fn gaussian_vs_chebyshev_tradeoff() {
        let n = 4096;
        let buckets = 128;
        let b = (1.2 * n as f64 / buckets as f64) as usize;
        let ch = FlatFilter::design(n, b, 0.004, 1e-6, n / buckets, WindowKind::DolphChebyshev);
        let ga = FlatFilter::design(n, b, 0.004, 1e-6, n / buckets, WindowKind::Gaussian);
        let qc = measure(&ch);
        let qg = measure(&ga);
        assert!(qc.passband_ripple < 0.1);
        assert!(qg.passband_ripple < 0.2);
    }
}
