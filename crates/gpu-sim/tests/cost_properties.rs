//! Property tests on the cost model and the stream scheduler: the
//! monotonicity and conservation laws any sane performance model must
//! satisfy.

use gpu_sim::cost::{kernel_cost, transfer_time};
use gpu_sim::timeline::{schedule, Engine, Op, StreamId};
use gpu_sim::{DeviceSpec, KernelStats, LaunchConfig};
use proptest::prelude::*;

fn stats(threads: u64, bytes: f64, flops: f64, chain: f64) -> KernelStats {
    let cfg = LaunchConfig::for_elements(threads.max(1) as usize, 256);
    KernelStats {
        name: "p".into(),
        threads: cfg.total_threads(),
        warps: cfg.total_warps(32),
        sampled_warps: 1,
        flops,
        dram_bytes: bytes,
        transactions: bytes / 64.0,
        mem_ops: bytes / 16.0,
        chain_len: chain,
        ops_per_thread: if threads > 0 {
            (bytes / 16.0) / threads as f64
        } else {
            0.0
        },
        atomic_ops: 0.0,
        atomic_max_conflict: 0.0,
        block_dim: 256,
        grid_dim: cfg.grid_dim,
        shared_mem_bytes: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// More traffic never makes a kernel faster.
    #[test]
    fn cost_monotone_in_bytes(
        threads in 1u64..1_000_000,
        bytes in 1.0e3..1.0e9f64,
        extra in 1.0..2.0e9f64,
    ) {
        let spec = DeviceSpec::tesla_k20x();
        let a = kernel_cost(&spec, &stats(threads, bytes, 0.0, 0.0));
        let b = kernel_cost(&spec, &stats(threads, bytes + extra, 0.0, 0.0));
        prop_assert!(b.total >= a.total - 1e-15);
    }

    /// More flops never makes a kernel faster.
    #[test]
    fn cost_monotone_in_flops(
        flops in 1.0e3..1.0e12f64,
        extra in 1.0..1.0e12f64,
    ) {
        let spec = DeviceSpec::tesla_k20x();
        let a = kernel_cost(&spec, &stats(1 << 20, 1e6, flops, 0.0));
        let b = kernel_cost(&spec, &stats(1 << 20, 1e6, flops + extra, 0.0));
        prop_assert!(b.total >= a.total - 1e-15);
    }

    /// Serial dependence (longer chains) never speeds a kernel up.
    #[test]
    fn cost_monotone_in_chain(
        threads in 1u64..100_000,
        bytes in 1.0e4..1.0e8f64,
        chain in 0.0..64.0f64,
    ) {
        let spec = DeviceSpec::tesla_k20x();
        let a = kernel_cost(&spec, &stats(threads, bytes, 0.0, chain));
        let b = kernel_cost(&spec, &stats(threads, bytes, 0.0, chain + 1.0));
        prop_assert!(b.total >= a.total - 1e-15);
    }

    /// Transfers are monotone and affine in size.
    #[test]
    fn transfer_monotone(a in 0usize..1_000_000_000, b in 0usize..1_000_000_000) {
        let spec = DeviceSpec::tesla_k20x();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(transfer_time(&spec, lo) <= transfer_time(&spec, hi));
    }

    /// Schedule conservation: the makespan is at least the longest op and
    /// at most the serial sum, and per-op spans are consistent.
    #[test]
    fn schedule_bounds(
        durs in prop::collection::vec(0.0f64..10.0, 1..20),
        streams in prop::collection::vec(0u32..4, 1..20),
    ) {
        let n = durs.len().min(streams.len());
        let ops: Vec<Op> = (0..n)
            .map(|i| Op::new(
                i,
                StreamId(streams[i]),
                if i % 3 == 0 { Engine::Pcie } else { Engine::Device },
                durs[i],
                format!("op{i}"),
            ))
            .collect();
        let s = schedule(&ops, 32);
        let longest = durs[..n].iter().cloned().fold(0.0, f64::max);
        let total: f64 = durs[..n].iter().sum();
        prop_assert!(s.makespan >= longest - 1e-9);
        prop_assert!(s.makespan <= total + 1e-9);
        for (i, os) in s.ops.iter().enumerate() {
            prop_assert!(os.end >= os.start - 1e-12);
            prop_assert!(os.end - os.start >= ops[i].duration - 1e-9,
                "an op cannot finish faster than its exclusive duration");
        }
        // Per-stream ordering respected.
        for st in 0..4u32 {
            let mut last_end = 0.0f64;
            for (i, os) in s.ops.iter().enumerate() {
                if ops[i].stream == StreamId(st) {
                    prop_assert!(os.start >= last_end - 1e-9);
                    last_end = os.end;
                }
            }
        }
    }

    /// Capping concurrency never shortens the makespan.
    #[test]
    fn tighter_cap_never_faster(
        durs in prop::collection::vec(0.1f64..5.0, 2..12),
    ) {
        let ops: Vec<Op> = durs
            .iter()
            .enumerate()
            .map(|(i, &d)| Op::new(i, StreamId(i as u32), Engine::Device, d, String::new()))
            .collect();
        let wide = schedule(&ops, 32).makespan;
        let narrow = schedule(&ops, 1).makespan;
        prop_assert!(narrow >= wide - 1e-9);
    }
}
