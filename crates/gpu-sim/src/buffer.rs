//! Device memory buffers.
//!
//! A [`DeviceBuffer`] owns its storage (a host `Vec` standing in for device
//! DRAM) plus a synthetic base address used by the coalescing analyzer.
//! Rust ownership gives us for free what CUDA programmers enforce by
//! convention: a buffer cannot be freed while a kernel borrows it, and
//! host code cannot read it without an explicit device-to-host copy.
//!
//! Allocations made through a device's fallible entry points
//! (`GpuDevice::try_alloc_zeroed` and friends) are charged against a
//! [`MemPool`] sized from `DeviceSpec::global_mem_bytes` (6 GB on the
//! paper's K20x) and release their reservation on `Drop` — so device
//! memory is bounded and OOM is a *typed* error, not an impossibility.
//! Direct `DeviceBuffer::zeroed`/`from_host` construction stays untracked
//! for plan setup and tests that do not model residency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::GpuError;

/// Allocator for synthetic device addresses. Buffers get disjoint,
/// 256-byte-aligned address ranges so the transaction analyzer never
/// conflates accesses to different buffers.
static NEXT_ADDR: AtomicU64 = AtomicU64::new(0x1000);

pub(crate) fn alloc_addr(bytes: u64) -> u64 {
    let aligned = (bytes + 255) & !255;
    NEXT_ADDR.fetch_add(aligned.max(256), Ordering::Relaxed)
}

/// Device DRAM accounting: a capacity and the bytes currently reserved.
///
/// Shared (via `Arc`) between a `GpuDevice` and every tracked
/// [`DeviceBuffer`] it allocated; buffers release their reservation on
/// `Drop`, so `used()` always reflects live allocations only.
#[derive(Debug)]
pub struct MemPool {
    capacity: u64,
    used: AtomicU64,
}

impl MemPool {
    /// A pool of `capacity` bytes (from `DeviceSpec::global_mem_bytes`).
    pub fn new(capacity: u64) -> Self {
        MemPool {
            capacity,
            used: AtomicU64::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved by live tracked buffers.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used())
    }

    /// Reserves `bytes` (rounded up to the 256-byte allocation granule),
    /// or reports a typed OOM without changing the accounting.
    pub fn try_reserve(&self, bytes: u64) -> Result<u64, GpuError> {
        let granule = ((bytes + 255) & !255).max(256);
        // CAS loop: never lets `used` exceed `capacity`, even under
        // concurrent allocation from several serve workers.
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(granule);
            if new > self.capacity {
                return Err(GpuError::OutOfMemory {
                    requested: granule,
                    free: self.capacity.saturating_sub(cur),
                    capacity: self.capacity,
                });
            }
            match self
                .used
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(granule),
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, granule: u64) {
        self.used.fetch_sub(granule, Ordering::Relaxed);
    }
}

/// A typed allocation in simulated device memory.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    base_addr: u64,
    /// Present on buffers allocated through a device's tracked `try_*`
    /// APIs: the pool to credit on drop and the reserved granule size.
    reservation: Option<(Arc<MemPool>, u64)>,
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        if let Some((pool, granule)) = self.reservation.take() {
            pool.release(granule);
        }
    }
}

impl<T: Copy + Default> DeviceBuffer<T> {
    /// Allocates a zero/default-initialised buffer of `len` elements.
    ///
    /// Untracked: no capacity check, no pool accounting. Device-resident
    /// working memory should go through `GpuDevice::try_alloc_zeroed`.
    pub fn zeroed(len: usize) -> Self {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        DeviceBuffer {
            data: vec![T::default(); len],
            base_addr: alloc_addr(bytes),
            reservation: None,
        }
    }

    /// Allocates a zeroed buffer charged against `pool`, failing with a
    /// typed [`GpuError::OutOfMemory`] when the device is full.
    pub fn zeroed_in(len: usize, pool: &Arc<MemPool>) -> Result<Self, GpuError> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let granule = pool.try_reserve(bytes)?;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
            base_addr: alloc_addr(bytes),
            reservation: Some((Arc::clone(pool), granule)),
        })
    }
}

impl<T: Copy> DeviceBuffer<T> {
    /// Allocates a buffer holding a copy of `host` (the data movement cost
    /// is charged by [`crate::device::GpuDevice::htod`], which calls this).
    ///
    /// Untracked; see [`DeviceBuffer::zeroed`] for the distinction.
    pub fn from_host(host: &[T]) -> Self {
        let bytes = std::mem::size_of_val(host) as u64;
        DeviceBuffer {
            data: host.to_vec(),
            base_addr: alloc_addr(bytes),
            reservation: None,
        }
    }

    /// Like [`DeviceBuffer::from_host`] but charged against `pool`.
    pub fn from_host_in(host: &[T], pool: &Arc<MemPool>) -> Result<Self, GpuError> {
        let bytes = std::mem::size_of_val(host) as u64;
        let granule = pool.try_reserve(bytes)?;
        Ok(DeviceBuffer {
            data: host.to_vec(),
            base_addr: alloc_addr(bytes),
            reservation: Some((Arc::clone(pool), granule)),
        })
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<T>() * self.data.len()
    }

    /// Synthetic device base address (for the transaction analyzer).
    #[inline]
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Byte address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base_addr + (i * std::mem::size_of::<T>()) as u64
    }

    /// Read-only view for kernels (access it through
    /// [`crate::gmem::Gmem`] so traffic is accounted).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view — used by the executor for `launch_map` outputs; not
    /// normally touched by user code.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies device contents back to a fresh host vector *without* going
    /// through the device (test/debug helper; benchmark code should use
    /// [`crate::device::GpuDevice::dtoh`] so PCIe time is charged).
    pub fn peek(&self) -> Vec<T> {
        self.data.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_buffer() {
        let b: DeviceBuffer<f64> = DeviceBuffer::zeroed(100);
        assert_eq!(b.len(), 100);
        assert!(!b.is_empty());
        assert_eq!(b.size_bytes(), 800);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_host_copies() {
        let host = vec![1u32, 2, 3];
        let b = DeviceBuffer::from_host(&host);
        assert_eq!(b.peek(), host);
    }

    #[test]
    fn distinct_buffers_do_not_overlap() {
        let a: DeviceBuffer<f64> = DeviceBuffer::zeroed(64);
        let b: DeviceBuffer<f64> = DeviceBuffer::zeroed(64);
        let a_end = a.base_addr() + a.size_bytes() as u64;
        let b_end = b.base_addr() + b.size_bytes() as u64;
        assert!(a_end <= b.base_addr() || b_end <= a.base_addr());
    }

    #[test]
    fn addr_of_is_linear() {
        let b: DeviceBuffer<u64> = DeviceBuffer::zeroed(16);
        assert_eq!(b.addr_of(0), b.base_addr());
        assert_eq!(b.addr_of(3), b.base_addr() + 24);
    }

    #[test]
    fn empty_buffer() {
        let b: DeviceBuffer<u8> = DeviceBuffer::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.size_bytes(), 0);
    }

    #[test]
    fn pool_accounts_and_releases() {
        let pool = Arc::new(MemPool::new(4096));
        assert_eq!(pool.free(), 4096);
        let a: DeviceBuffer<u8> = DeviceBuffer::zeroed_in(300, &pool).unwrap();
        // 300 B rounds up to the 512 B granule.
        assert_eq!(pool.used(), 512);
        assert_eq!(pool.free(), 4096 - 512);
        drop(a);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn pool_oom_is_typed() {
        let pool = Arc::new(MemPool::new(1024));
        let _a: DeviceBuffer<u8> = DeviceBuffer::zeroed_in(800, &pool).unwrap();
        let err = DeviceBuffer::<u8>::zeroed_in(800, &pool).unwrap_err();
        match err {
            GpuError::OutOfMemory {
                requested,
                free,
                capacity,
            } => {
                assert_eq!(requested, 1024);
                assert_eq!(free, 0);
                assert_eq!(capacity, 1024);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        // Failed reservation leaves accounting untouched.
        assert_eq!(pool.used(), 1024);
    }

    #[test]
    fn zero_len_alloc_still_reserves_a_granule() {
        let pool = Arc::new(MemPool::new(1024));
        let b: DeviceBuffer<u8> = DeviceBuffer::zeroed_in(0, &pool).unwrap();
        assert_eq!(pool.used(), 256);
        drop(b);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn from_host_in_tracks() {
        let pool = Arc::new(MemPool::new(1024));
        let host = vec![1u32, 2, 3];
        let b = DeviceBuffer::from_host_in(&host, &pool).unwrap();
        assert_eq!(b.peek(), host);
        assert_eq!(pool.used(), 256);
    }
}
