//! Device memory buffers.
//!
//! A [`DeviceBuffer`] owns its storage (a host `Vec` standing in for device
//! DRAM) plus a synthetic base address used by the coalescing analyzer.
//! Rust ownership gives us for free what CUDA programmers enforce by
//! convention: a buffer cannot be freed while a kernel borrows it, and
//! host code cannot read it without an explicit device-to-host copy.
//!
//! Allocations made through a device's fallible entry points
//! (`GpuDevice::try_alloc_zeroed` and friends) are charged against a
//! [`MemPool`] sized from `DeviceSpec::global_mem_bytes` (6 GB on the
//! paper's K20x) and release their reservation on `Drop` — so device
//! memory is bounded and OOM is a *typed* error, not an impossibility.
//! Direct `DeviceBuffer::zeroed`/`from_host` construction stays untracked
//! for plan setup and tests that do not model residency.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::GpuError;

/// Allocator for synthetic device addresses. Buffers get disjoint,
/// 256-byte-aligned address ranges so the transaction analyzer never
/// conflates accesses to different buffers.
static NEXT_ADDR: AtomicU64 = AtomicU64::new(0x1000);

pub(crate) fn alloc_addr(bytes: u64) -> u64 {
    let aligned = (bytes + 255) & !255;
    NEXT_ADDR.fetch_add(aligned.max(256), Ordering::Relaxed)
}

/// Device DRAM accounting: a capacity and the bytes currently reserved.
///
/// Shared (via `Arc`) between a `GpuDevice` and every tracked
/// [`DeviceBuffer`] it allocated; buffers release their reservation on
/// `Drop`, so `used()` always reflects live allocations only.
#[derive(Debug)]
pub struct MemPool {
    capacity: u64,
    used: AtomicU64,
    /// Successful reservations since creation (monotonic). Together with
    /// `release_ops` this makes "zero pool traffic per request after
    /// warmup" a testable invariant: a steady-state hot path must leave
    /// both counters unchanged across a request.
    alloc_ops: AtomicU64,
    /// Reservation releases since creation (monotonic).
    release_ops: AtomicU64,
}

impl MemPool {
    /// A pool of `capacity` bytes (from `DeviceSpec::global_mem_bytes`).
    pub fn new(capacity: u64) -> Self {
        MemPool {
            capacity,
            used: AtomicU64::new(0),
            alloc_ops: AtomicU64::new(0),
            release_ops: AtomicU64::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved by live tracked buffers.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used())
    }

    /// Reserves `bytes` (rounded up to the 256-byte allocation granule),
    /// or reports a typed OOM without changing the accounting.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_reserve(&self, bytes: u64) -> Result<u64, GpuError> {
        let granule = ((bytes + 255) & !255).max(256);
        // CAS loop: never lets `used` exceed `capacity`, even under
        // concurrent allocation from several serve workers.
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(granule);
            if new > self.capacity {
                return Err(GpuError::OutOfMemory {
                    requested: granule,
                    free: self.capacity.saturating_sub(cur),
                    capacity: self.capacity,
                });
            }
            match self
                .used
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.alloc_ops.fetch_add(1, Ordering::Relaxed);
                    return Ok(granule);
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Successful reservations since creation. Failed reservations (typed
    /// OOM) do not count: they changed no accounting.
    pub fn alloc_ops(&self) -> u64 {
        self.alloc_ops.load(Ordering::Relaxed)
    }

    /// Reservation releases since creation.
    pub fn release_ops(&self) -> u64 {
        self.release_ops.load(Ordering::Relaxed)
    }

    fn release(&self, granule: u64) {
        self.used.fetch_sub(granule, Ordering::Relaxed);
        self.release_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns a granule obtained from [`MemPool::try_reserve`]. For
    /// callers holding raw reservations (the fleet router's predicted
    /// working sets) rather than a [`DeviceBuffer`], whose drop releases
    /// automatically.
    pub fn release_reservation(&self, granule: u64) {
        self.release(granule);
    }
}

/// A typed allocation in simulated device memory.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    base_addr: u64,
    /// Present on buffers allocated through a device's tracked `try_*`
    /// APIs: the pool to credit on drop and the reserved granule size.
    reservation: Option<(Arc<MemPool>, u64)>,
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        if let Some((pool, granule)) = self.reservation.take() {
            pool.release(granule);
        }
    }
}

impl<T: Copy + Default> DeviceBuffer<T> {
    /// Allocates a zero/default-initialised buffer of `len` elements.
    ///
    /// Untracked: no capacity check, no pool accounting. Device-resident
    /// working memory should go through `GpuDevice::try_alloc_zeroed`.
    pub fn zeroed(len: usize) -> Self {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        DeviceBuffer {
            data: vec![T::default(); len],
            base_addr: alloc_addr(bytes),
            reservation: None,
        }
    }

    /// Allocates a zeroed buffer charged against `pool`, failing with a
    /// typed [`GpuError::OutOfMemory`] when the device is full.
    pub fn zeroed_in(len: usize, pool: &Arc<MemPool>) -> Result<Self, GpuError> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let granule = pool.try_reserve(bytes)?;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
            base_addr: alloc_addr(bytes),
            reservation: Some((Arc::clone(pool), granule)),
        })
    }
}

impl<T: Copy> DeviceBuffer<T> {
    /// Allocates a buffer holding a copy of `host` (the data movement cost
    /// is charged by [`crate::device::GpuDevice::htod`], which calls this).
    ///
    /// Untracked; see [`DeviceBuffer::zeroed`] for the distinction.
    pub fn from_host(host: &[T]) -> Self {
        let bytes = std::mem::size_of_val(host) as u64;
        DeviceBuffer {
            data: host.to_vec(),
            base_addr: alloc_addr(bytes),
            reservation: None,
        }
    }

    /// Like [`DeviceBuffer::from_host`] but charged against `pool`.
    pub fn from_host_in(host: &[T], pool: &Arc<MemPool>) -> Result<Self, GpuError> {
        let bytes = std::mem::size_of_val(host) as u64;
        let granule = pool.try_reserve(bytes)?;
        Ok(DeviceBuffer {
            data: host.to_vec(),
            base_addr: alloc_addr(bytes),
            reservation: Some((Arc::clone(pool), granule)),
        })
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<T>() * self.data.len()
    }

    /// Synthetic device base address (for the transaction analyzer).
    #[inline]
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Byte address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base_addr + (i * std::mem::size_of::<T>()) as u64
    }

    /// Read-only view for kernels (access it through
    /// [`crate::gmem::Gmem`] so traffic is accounted).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view — used by the executor for `launch_map` outputs; not
    /// normally touched by user code.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies device contents back to a fresh host vector *without* going
    /// through the device (test/debug helper; benchmark code should use
    /// [`crate::device::GpuDevice::dtoh`] so PCIe time is charged).
    pub fn peek(&self) -> Vec<T> {
        self.data.clone()
    }
}

impl<T> AsRef<DeviceBuffer<T>> for DeviceBuffer<T> {
    fn as_ref(&self) -> &DeviceBuffer<T> {
        self
    }
}

/// Snapshot of a [`BufferPool`]'s recycling behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Acquisitions satisfied from the free list — no `MemPool` traffic,
    /// no allocation fault gate.
    pub reuse_hits: u64,
    /// Acquisitions that fell through to a fresh tracked allocation.
    pub fresh_misses: u64,
}

#[derive(Debug)]
struct PoolShared<T> {
    /// Idle buffers keyed by exact element count. Acquisition pops the
    /// most recently returned buffer of that length, so the free-list
    /// state is a pure function of the acquire/release call sequence —
    /// never of thread timing (callers serialize per pool handle).
    free: Mutex<HashMap<usize, Vec<DeviceBuffer<T>>>>,
    reuse_hits: AtomicU64,
    fresh_misses: AtomicU64,
}

/// A recycling pool of *tracked* device buffers, keyed by exact element
/// count.
///
/// This is the arena primitive behind allocation-free steady-state
/// serving: the first acquisition of each shape allocates through the
/// device's fallible entry points (charged against the [`MemPool`],
/// subject to the allocation fault gate), and every buffer returns to
/// the pool on [`PooledBuffer`] drop instead of releasing its
/// reservation. A warmed pool therefore satisfies a steady-state
/// workload with **zero** `MemPool` traffic — the invariant the serve
/// layer's zero-allocation test pins via [`MemPool::alloc_ops`].
///
/// Reuse hits roll *no* allocation fault gate: pooling models exactly
/// the removal of per-request `cudaMalloc`, which is where injected OOM
/// lives. Fault-decision sequences stay deterministic because the serve
/// layer resets pools at group boundaries, making each group's
/// hit/miss pattern a pure function of the group itself.
#[derive(Debug)]
pub struct BufferPool<T> {
    shared: Arc<PoolShared<T>>,
}

impl<T> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        BufferPool {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BufferPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(HashMap::new()),
                reuse_hits: AtomicU64::new(0),
                fresh_misses: AtomicU64::new(0),
            }),
        }
    }

    fn take(&self, len: usize) -> Option<DeviceBuffer<T>> {
        self.shared.free.lock().get_mut(&len).and_then(Vec::pop)
    }

    fn wrap(&self, buf: DeviceBuffer<T>) -> PooledBuffer<T> {
        PooledBuffer {
            inner: Some(buf),
            home: Arc::clone(&self.shared),
        }
    }

    /// Adopts an already-allocated tracked buffer into the pool's
    /// recycling discipline (it will return to the free list on drop).
    pub fn adopt(&self, buf: DeviceBuffer<T>) -> PooledBuffer<T> {
        self.wrap(buf)
    }

    /// Drops every idle buffer — their `MemPool` reservations are
    /// released — leaving the hit/miss counters intact. The serve layer
    /// calls this at group boundaries so pool state never leaks across
    /// groups (which would make fault ordinals depend on sharding).
    pub fn clear(&self) {
        self.shared.free.lock().clear();
    }

    /// Number of idle buffers currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.shared.free.lock().values().map(Vec::len).sum()
    }

    /// Hit/miss counters since creation.
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            reuse_hits: self.shared.reuse_hits.load(Ordering::Relaxed),
            fresh_misses: self.shared.fresh_misses.load(Ordering::Relaxed),
        }
    }

    fn count_hit(&self) {
        self.shared.reuse_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fall-through to a fresh allocation. Exposed so device
    /// helpers that allocate on the pool's behalf keep the counters
    /// truthful.
    pub(crate) fn count_miss(&self) {
        self.shared.fresh_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Reuses an idle buffer of exactly `len` elements, zero-filled, or
    /// reports `None` so the caller can allocate through the device. A
    /// hit touches no `MemPool` accounting and rolls no fault gate.
    pub fn reuse_zeroed(&self, len: usize) -> Option<PooledBuffer<T>>
    where
        T: Copy + Default,
    {
        let mut buf = self.take(len)?;
        self.count_hit();
        buf.as_mut_slice().fill(T::default());
        Some(self.wrap(buf))
    }

    /// Reuses an idle buffer of exactly `host.len()` elements,
    /// overwritten with `host`'s contents, or reports `None`. A hit
    /// touches no `MemPool` accounting and rolls no fault gate.
    pub fn reuse_resident(&self, host: &[T]) -> Option<PooledBuffer<T>>
    where
        T: Copy,
    {
        let mut buf = self.take(host.len())?;
        self.count_hit();
        buf.as_mut_slice().copy_from_slice(host);
        Some(self.wrap(buf))
    }
}

/// A tracked device buffer on loan from a [`BufferPool`]: derefs to
/// [`DeviceBuffer`] and returns to the pool's free list on drop (its
/// `MemPool` reservation stays alive for the next acquisition).
#[derive(Debug)]
pub struct PooledBuffer<T> {
    /// `Some` until drop. The option exists only so `Drop` can move the
    /// buffer back into the free list.
    inner: Option<DeviceBuffer<T>>,
    home: Arc<PoolShared<T>>,
}

impl<T> Deref for PooledBuffer<T> {
    type Target = DeviceBuffer<T>;

    fn deref(&self) -> &DeviceBuffer<T> {
        self.inner.as_ref().expect("pooled buffer present until drop")
    }
}

impl<T> DerefMut for PooledBuffer<T> {
    fn deref_mut(&mut self) -> &mut DeviceBuffer<T> {
        self.inner.as_mut().expect("pooled buffer present until drop")
    }
}

impl<T> AsRef<DeviceBuffer<T>> for PooledBuffer<T> {
    fn as_ref(&self) -> &DeviceBuffer<T> {
        self
    }
}

impl<T> Drop for PooledBuffer<T> {
    fn drop(&mut self) {
        if let Some(buf) = self.inner.take() {
            let len = buf.data.len();
            self.home.free.lock().entry(len).or_default().push(buf);
        }
    }
}

/// Snapshot of a [`StandbySlabs`]' failover traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandbyStats {
    /// Total slots reserved at build.
    pub slots: usize,
    /// Slots currently on loan.
    pub in_use: usize,
    /// Successful acquisitions (free-list pops; no `MemPool` traffic).
    pub acquires: u64,
    /// Slot returns.
    pub releases: u64,
    /// Acquisition attempts that found the free list empty.
    pub exhausted: u64,
    /// High-water mark of simultaneously loaned slots.
    pub peak_in_use: u64,
}

/// Fixed-slot standby reservation for fleet failover, in the style of
/// wasmtime's pooling allocator: every slot's device memory is reserved
/// from the member's [`MemPool`] **when the fleet is built**, and a
/// failover acquires a slot by popping an index off a free list —
/// no `MemPool` traffic, no allocation fault gate, no hot-path
/// allocation of any kind. If the free list is empty the acquisition
/// fails loudly (`None`) and the caller falls back to the CPU tier;
/// standby capacity is a provisioning decision, never an emergency
/// allocation.
#[derive(Debug)]
pub struct StandbySlabs {
    pool: Arc<MemPool>,
    /// Granule actually reserved per slot (256-byte aligned request).
    slot_granule: u64,
    slots: usize,
    /// LIFO free list of slot indices. The list state is a pure function
    /// of the acquire/release call sequence (the fleet coordinator
    /// serializes calls in gid order), so which slot a failover lands on
    /// is deterministic.
    free: Mutex<Vec<usize>>,
    acquires: AtomicU64,
    releases: AtomicU64,
    exhausted: AtomicU64,
    peak_in_use: AtomicU64,
}

impl StandbySlabs {
    /// Reserves `slots` standby slabs of `slot_bytes` each against
    /// `pool`, or reports a typed OOM (after releasing any partial
    /// reservation) when the member cannot hold its standby budget.
    pub fn new(pool: &Arc<MemPool>, slots: usize, slot_bytes: u64) -> Result<Self, GpuError> {
        let mut reserved = Vec::with_capacity(slots);
        for _ in 0..slots {
            match pool.try_reserve(slot_bytes) {
                Ok(granule) => reserved.push(granule),
                Err(e) => {
                    for granule in reserved {
                        pool.release(granule);
                    }
                    return Err(e);
                }
            }
        }
        let slot_granule = reserved.first().copied().unwrap_or(0);
        // Free list starts as [slots-1, …, 0] so the first acquisition
        // takes slot 0 — a fixed, documented order.
        let free: Vec<usize> = (0..slots).rev().collect();
        Ok(StandbySlabs {
            pool: Arc::clone(pool),
            slot_granule,
            slots,
            free: Mutex::new(free),
            acquires: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            peak_in_use: AtomicU64::new(0),
        })
    }

    /// Acquires a standby slot — a free-list pop, no allocation. `None`
    /// when every slot is on loan (counted in [`StandbyStats::exhausted`]).
    pub fn acquire(&self) -> Option<usize> {
        let mut free = self.free.lock();
        match free.pop() {
            Some(slot) => {
                self.acquires.fetch_add(1, Ordering::Relaxed);
                let in_use = (self.slots - free.len()) as u64;
                self.peak_in_use.fetch_max(in_use, Ordering::Relaxed);
                Some(slot)
            }
            None => {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns a slot to the free list.
    ///
    /// # Panics
    /// When `slot` is out of range or already free — both indicate a
    /// bookkeeping bug in the caller, not a runtime condition.
    pub fn release(&self, slot: usize) {
        assert!(slot < self.slots, "standby slot {slot} out of range");
        let mut free = self.free.lock();
        assert!(
            !free.contains(&slot),
            "standby slot {slot} released twice"
        );
        free.push(slot);
        self.releases.fetch_add(1, Ordering::Relaxed);
    }

    /// Traffic counters since build.
    pub fn stats(&self) -> StandbyStats {
        StandbyStats {
            slots: self.slots,
            in_use: self.slots - self.free.lock().len(),
            acquires: self.acquires.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            peak_in_use: self.peak_in_use.load(Ordering::Relaxed),
        }
    }
}

impl Drop for StandbySlabs {
    fn drop(&mut self) {
        for _ in 0..self.slots {
            self.pool.release(self.slot_granule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_buffer() {
        let b: DeviceBuffer<f64> = DeviceBuffer::zeroed(100);
        assert_eq!(b.len(), 100);
        assert!(!b.is_empty());
        assert_eq!(b.size_bytes(), 800);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_host_copies() {
        let host = vec![1u32, 2, 3];
        let b = DeviceBuffer::from_host(&host);
        assert_eq!(b.peek(), host);
    }

    #[test]
    fn distinct_buffers_do_not_overlap() {
        let a: DeviceBuffer<f64> = DeviceBuffer::zeroed(64);
        let b: DeviceBuffer<f64> = DeviceBuffer::zeroed(64);
        let a_end = a.base_addr() + a.size_bytes() as u64;
        let b_end = b.base_addr() + b.size_bytes() as u64;
        assert!(a_end <= b.base_addr() || b_end <= a.base_addr());
    }

    #[test]
    fn addr_of_is_linear() {
        let b: DeviceBuffer<u64> = DeviceBuffer::zeroed(16);
        assert_eq!(b.addr_of(0), b.base_addr());
        assert_eq!(b.addr_of(3), b.base_addr() + 24);
    }

    #[test]
    fn empty_buffer() {
        let b: DeviceBuffer<u8> = DeviceBuffer::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.size_bytes(), 0);
    }

    #[test]
    fn pool_accounts_and_releases() {
        let pool = Arc::new(MemPool::new(4096));
        assert_eq!(pool.free(), 4096);
        let a: DeviceBuffer<u8> = DeviceBuffer::zeroed_in(300, &pool).unwrap();
        // 300 B rounds up to the 512 B granule.
        assert_eq!(pool.used(), 512);
        assert_eq!(pool.free(), 4096 - 512);
        drop(a);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn pool_oom_is_typed() {
        let pool = Arc::new(MemPool::new(1024));
        let _a: DeviceBuffer<u8> = DeviceBuffer::zeroed_in(800, &pool).unwrap();
        let err = DeviceBuffer::<u8>::zeroed_in(800, &pool).unwrap_err();
        match err {
            GpuError::OutOfMemory {
                requested,
                free,
                capacity,
            } => {
                assert_eq!(requested, 1024);
                assert_eq!(free, 0);
                assert_eq!(capacity, 1024);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        // Failed reservation leaves accounting untouched.
        assert_eq!(pool.used(), 1024);
    }

    #[test]
    fn zero_len_alloc_still_reserves_a_granule() {
        let pool = Arc::new(MemPool::new(1024));
        let b: DeviceBuffer<u8> = DeviceBuffer::zeroed_in(0, &pool).unwrap();
        assert_eq!(pool.used(), 256);
        drop(b);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn from_host_in_tracks() {
        let pool = Arc::new(MemPool::new(1024));
        let host = vec![1u32, 2, 3];
        let b = DeviceBuffer::from_host_in(&host, &pool).unwrap();
        assert_eq!(b.peek(), host);
        assert_eq!(pool.used(), 256);
    }

    #[test]
    fn mem_pool_counts_alloc_and_release_ops() {
        let pool = Arc::new(MemPool::new(4096));
        assert_eq!((pool.alloc_ops(), pool.release_ops()), (0, 0));
        let a: DeviceBuffer<u8> = DeviceBuffer::zeroed_in(100, &pool).unwrap();
        let b: DeviceBuffer<u8> = DeviceBuffer::zeroed_in(100, &pool).unwrap();
        assert_eq!((pool.alloc_ops(), pool.release_ops()), (2, 0));
        drop(a);
        assert_eq!((pool.alloc_ops(), pool.release_ops()), (2, 1));
        // A failed reservation counts nothing.
        assert!(DeviceBuffer::<u8>::zeroed_in(8192, &pool).is_err());
        assert_eq!((pool.alloc_ops(), pool.release_ops()), (2, 1));
        drop(b);
        assert_eq!((pool.alloc_ops(), pool.release_ops()), (2, 2));
    }

    #[test]
    fn buffer_pool_recycles_without_mem_pool_traffic() {
        let mem = Arc::new(MemPool::new(4096));
        let pool: BufferPool<f64> = BufferPool::new();
        // Miss: allocate through the tracked path, then adopt.
        assert!(pool.reuse_zeroed(8).is_none());
        pool.count_miss();
        let buf = pool.adopt(DeviceBuffer::zeroed_in(8, &mem).unwrap());
        let alloc_before = mem.alloc_ops();
        drop(buf); // returns to the free list — reservation stays alive
        assert_eq!(mem.release_ops(), 0);
        assert_eq!(pool.idle(), 1);
        // Hit: same length, zero-filled, no MemPool traffic.
        let mut again = pool.reuse_zeroed(8).expect("free-list hit");
        assert_eq!(mem.alloc_ops(), alloc_before);
        assert!(again.as_slice().iter().all(|&x| x == 0.0));
        again.as_mut_slice()[0] = 7.0;
        drop(again);
        // Wrong length misses; `reuse_resident` overwrites stale data.
        assert!(pool.reuse_zeroed(16).is_none());
        let host = [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let res = pool.reuse_resident(&host).expect("free-list hit");
        assert_eq!(res.as_slice(), &host);
        drop(res);
        assert_eq!(
            pool.stats(),
            BufferPoolStats {
                reuse_hits: 2,
                fresh_misses: 1,
            }
        );
        // clear() finally releases the reservations.
        pool.clear();
        assert_eq!(pool.idle(), 0);
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.release_ops(), 1);
    }

    #[test]
    fn standby_slabs_reserve_at_build_and_acquire_without_traffic() {
        let mem = Arc::new(MemPool::new(8192));
        let slabs = StandbySlabs::new(&mem, 3, 1024).unwrap();
        // All standby memory is reserved up front.
        assert_eq!(mem.used(), 3 * 1024);
        let alloc_at_build = mem.alloc_ops();
        assert_eq!(alloc_at_build, 3);
        // Acquisition order is fixed (slot 0 first) and touches no pool.
        assert_eq!(slabs.acquire(), Some(0));
        assert_eq!(slabs.acquire(), Some(1));
        assert_eq!(slabs.acquire(), Some(2));
        assert_eq!(slabs.acquire(), None, "exhausted fleet fails loudly");
        assert_eq!(mem.alloc_ops(), alloc_at_build);
        assert_eq!(mem.release_ops(), 0);
        slabs.release(1);
        assert_eq!(slabs.acquire(), Some(1), "LIFO reuse of returned slots");
        let stats = slabs.stats();
        assert_eq!(stats.slots, 3);
        assert_eq!(stats.in_use, 3);
        assert_eq!(stats.acquires, 4);
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.peak_in_use, 3);
        // Dropping the slabs returns the reservation to the pool.
        drop(slabs);
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.release_ops(), 3);
    }

    #[test]
    fn standby_slabs_oom_is_typed_and_leak_free() {
        let mem = Arc::new(MemPool::new(2048));
        let err = StandbySlabs::new(&mem, 3, 1024).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        // The partial reservation was rolled back.
        assert_eq!(mem.used(), 0);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn standby_double_release_panics() {
        let mem = Arc::new(MemPool::new(8192));
        let slabs = StandbySlabs::new(&mem, 2, 256).unwrap();
        let s = slabs.acquire().unwrap();
        slabs.release(s);
        slabs.release(s);
    }
}
