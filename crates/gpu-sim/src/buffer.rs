//! Device memory buffers.
//!
//! A [`DeviceBuffer`] owns its storage (a host `Vec` standing in for device
//! DRAM) plus a synthetic base address used by the coalescing analyzer.
//! Rust ownership gives us for free what CUDA programmers enforce by
//! convention: a buffer cannot be freed while a kernel borrows it, and
//! host code cannot read it without an explicit device-to-host copy.

use std::sync::atomic::{AtomicU64, Ordering};

/// Allocator for synthetic device addresses. Buffers get disjoint,
/// 256-byte-aligned address ranges so the transaction analyzer never
/// conflates accesses to different buffers.
static NEXT_ADDR: AtomicU64 = AtomicU64::new(0x1000);

pub(crate) fn alloc_addr(bytes: u64) -> u64 {
    let aligned = (bytes + 255) & !255;
    NEXT_ADDR.fetch_add(aligned.max(256), Ordering::Relaxed)
}

/// A typed allocation in simulated device memory.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    base_addr: u64,
}

impl<T: Copy + Default> DeviceBuffer<T> {
    /// Allocates a zero/default-initialised buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        DeviceBuffer {
            data: vec![T::default(); len],
            base_addr: alloc_addr(bytes),
        }
    }
}

impl<T: Copy> DeviceBuffer<T> {
    /// Allocates a buffer holding a copy of `host` (the data movement cost
    /// is charged by [`crate::device::GpuDevice::htod`], which calls this).
    pub fn from_host(host: &[T]) -> Self {
        let bytes = std::mem::size_of_val(host) as u64;
        DeviceBuffer {
            data: host.to_vec(),
            base_addr: alloc_addr(bytes),
        }
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<T>() * self.data.len()
    }

    /// Synthetic device base address (for the transaction analyzer).
    #[inline]
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Byte address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base_addr + (i * std::mem::size_of::<T>()) as u64
    }

    /// Read-only view for kernels (access it through
    /// [`crate::gmem::Gmem`] so traffic is accounted).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view — used by the executor for `launch_map` outputs; not
    /// normally touched by user code.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies device contents back to a fresh host vector *without* going
    /// through the device (test/debug helper; benchmark code should use
    /// [`crate::device::GpuDevice::dtoh`] so PCIe time is charged).
    pub fn peek(&self) -> Vec<T> {
        self.data.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_buffer() {
        let b: DeviceBuffer<f64> = DeviceBuffer::zeroed(100);
        assert_eq!(b.len(), 100);
        assert!(!b.is_empty());
        assert_eq!(b.size_bytes(), 800);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_host_copies() {
        let host = vec![1u32, 2, 3];
        let b = DeviceBuffer::from_host(&host);
        assert_eq!(b.peek(), host);
    }

    #[test]
    fn distinct_buffers_do_not_overlap() {
        let a: DeviceBuffer<f64> = DeviceBuffer::zeroed(64);
        let b: DeviceBuffer<f64> = DeviceBuffer::zeroed(64);
        let a_end = a.base_addr() + a.size_bytes() as u64;
        let b_end = b.base_addr() + b.size_bytes() as u64;
        assert!(a_end <= b.base_addr() || b_end <= a.base_addr());
    }

    #[test]
    fn addr_of_is_linear() {
        let b: DeviceBuffer<u64> = DeviceBuffer::zeroed(16);
        assert_eq!(b.addr_of(0), b.base_addr());
        assert_eq!(b.addr_of(3), b.base_addr() + 24);
    }

    #[test]
    fn empty_buffer() {
        let b: DeviceBuffer<u8> = DeviceBuffer::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.size_bytes(), 0);
    }
}
