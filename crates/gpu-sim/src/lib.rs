//! # `gpu-sim` — a CUDA-like execution model in safe Rust
//!
//! The cusFFT paper targets an NVIDIA Tesla K20x. This crate is the
//! substitution for that hardware (see DESIGN.md): kernels written against
//! a CUDA-shaped API (`grid/block/thread`, device buffers, explicit
//! host↔device transfers, streams, atomics) execute *functionally* on CPU
//! threads, while a deterministic analytic cost model — fed by per-warp
//! memory-access traces — produces the simulated device time.
//!
//! The cost model is sensitive to exactly the properties the paper's
//! optimisations manipulate:
//!
//! * **coalescing** — per-warp transaction counting ([`trace`]);
//! * **occupancy & latency chains** — Little's-law latency term
//!   ([`cost`]), which penalises the under-occupied, serially-dependent
//!   baseline loops;
//! * **atomic contention** — per-address serialisation depth ([`atomic`]);
//! * **stream overlap** — an event-driven schedule with fair device
//!   sharing and a concurrent-kernel cap ([`timeline`]).
//!
//! Nothing in the model is fitted to the paper's numbers; the device
//! parameters come from Table I and public Kepler documentation.

pub mod atomic;
pub mod breaker;
pub mod buffer;
pub mod cost;
pub mod device;
pub mod error;
pub mod fault;
pub mod gmem;
pub mod launch;
pub mod metrics;
pub mod occupancy;
pub mod spec;
pub mod timeline;
pub mod trace;

pub use atomic::{DevAtomicCplx, DevAtomicF64, DevAtomicU32};
pub use breaker::{
    BreakerConfig, BreakerDecision, BreakerState, BreakerTransition, CircuitBreaker,
};
pub use buffer::{
    BufferPool, BufferPoolStats, DeviceBuffer, MemPool, PooledBuffer, StandbySlabs, StandbyStats,
};
pub use cost::{kernel_cost, transfer_time, KernelCost};
pub use device::{GpuDevice, LaunchRecord, DEFAULT_STREAM};
pub use error::{GpuError, TransferDir};
pub use fault::{fault_roll, CrashPlan, FaultClass, FaultConfig, FaultRates, SdcTarget};
pub use gmem::Gmem;
pub use launch::{LaunchConfig, ThreadCtx};
pub use metrics::KernelStats;
pub use occupancy::{occupancy, suggest_block_size, Occupancy};
pub use spec::{CpuSpec, DeviceSpec};
pub use timeline::{
    concurrency_profile, merge_op_groups, schedule, ConcurrencyProfile, Engine, Op, Schedule,
    StreamId, StreamOccupancy,
};
