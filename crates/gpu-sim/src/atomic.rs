//! Device atomics: the simulator's `atomicAdd` family.
//!
//! Three array types cover the paper's kernels:
//!
//! * [`DevAtomicU32`] — vote counters (`score[]` in Algorithm 4) and the
//!   append cursors (`num_hits`, the fast-selection output cursor).
//! * [`DevAtomicF64`] — scalar accumulators.
//! * [`DevAtomicCplx`] — complex accumulation via two f64 CAS loops, the
//!   GPU-histogram bucket update of the *baseline* permutation/filter
//!   kernel (the optimized loop-partition kernel needs no atomics at all,
//!   which is precisely the paper's point).
//!
//! All operations are sequentially-consistent-enough for the algorithms
//! here (we only need atomicity, not ordering); contention statistics are
//! derived from the traced addresses by the executor.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use fft::Cplx;

use crate::buffer::alloc_addr;
use crate::gmem::Gmem;

/// An array of atomically-updatable `u32` cells in device memory.
pub struct DevAtomicU32 {
    cells: Vec<AtomicU32>,
    base_addr: u64,
}

impl DevAtomicU32 {
    /// Allocates `len` zero-initialised cells.
    pub fn zeroed(len: usize) -> Self {
        DevAtomicU32 {
            cells: (0..len).map(|_| AtomicU32::new(0)).collect(),
            base_addr: alloc_addr((len * 4) as u64),
        }
    }

    /// Cell count.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when there are no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// `atomicAdd(&cells[i], v)` — returns the previous value.
    #[inline]
    pub fn fetch_add(&self, gm: &mut Gmem<'_>, i: usize, v: u32) -> u32 {
        gm.note_atomic(self.base_addr + (i * 4) as u64, 4);
        self.cells[i].fetch_add(v, Ordering::Relaxed)
    }

    /// Plain load (still a global read; traced as atomic traffic since it
    /// shares the same path on Kepler).
    #[inline]
    pub fn load(&self, gm: &mut Gmem<'_>, i: usize) -> u32 {
        gm.note_atomic(self.base_addr + (i * 4) as u64, 4);
        self.cells[i].load(Ordering::Relaxed)
    }

    /// Atomic store — used for cursor-claimed scatter writes
    /// (`out[atomicAdd(&count,1)] = value`), the idiom of the location
    /// and fast-selection kernels.
    #[inline]
    pub fn store(&self, gm: &mut Gmem<'_>, i: usize, v: u32) {
        gm.note_atomic(self.base_addr + (i * 4) as u64, 4);
        self.cells[i].store(v, Ordering::Relaxed)
    }

    /// Host-side read of every cell (no device traffic charged).
    pub fn snapshot(&self) -> Vec<u32> {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Host-side reset of every cell to zero.
    pub fn clear(&self) {
        for c in &self.cells {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// An array of atomically-updatable `f64` cells (CAS-loop `atomicAdd`,
/// exactly how pre-Pascal CUDA implements double atomics).
pub struct DevAtomicF64 {
    cells: Vec<AtomicU64>,
    base_addr: u64,
}

impl DevAtomicF64 {
    /// Allocates `len` zero-initialised cells.
    pub fn zeroed(len: usize) -> Self {
        DevAtomicF64 {
            cells: (0..len).map(|_| AtomicU64::new(0.0f64.to_bits())).collect(),
            base_addr: alloc_addr((len * 8) as u64),
        }
    }

    /// Cell count.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when there are no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// `atomicAdd(&cells[i], v)` via compare-and-swap.
    pub fn fetch_add(&self, gm: &mut Gmem<'_>, i: usize, v: f64) {
        gm.note_atomic(self.base_addr + (i * 8) as u64, 8);
        let cell = &self.cells[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Host-side read of every cell.
    pub fn snapshot(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .collect()
    }
}

/// An array of atomically-updatable complex cells: interleaved re/im f64
/// CAS loops. One `fetch_add` counts as a single 16-byte atomic for the
/// contention model (the two component RMWs serialise on the same line).
pub struct DevAtomicCplx {
    re: Vec<AtomicU64>,
    im: Vec<AtomicU64>,
    base_addr: u64,
}

impl DevAtomicCplx {
    /// Allocates `len` zero-initialised complex cells.
    pub fn zeroed(len: usize) -> Self {
        let zero = 0.0f64.to_bits();
        DevAtomicCplx {
            re: (0..len).map(|_| AtomicU64::new(zero)).collect(),
            im: (0..len).map(|_| AtomicU64::new(zero)).collect(),
            base_addr: alloc_addr((len * 16) as u64),
        }
    }

    /// Cell count.
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// True when there are no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// `atomicAdd(&cells[i], v)` on both components.
    pub fn fetch_add(&self, gm: &mut Gmem<'_>, i: usize, v: Cplx) {
        gm.note_atomic(self.base_addr + (i * 16) as u64, 16);
        add_bits(&self.re[i], v.re);
        add_bits(&self.im[i], v.im);
    }

    /// Shared-memory-style atomic add: functional accumulation with no
    /// DRAM trace (used to model per-block sub-histograms, whose traffic
    /// stays on-chip).
    pub fn fetch_add_untraced(&self, i: usize, v: Cplx) {
        add_bits(&self.re[i], v.re);
        add_bits(&self.im[i], v.im);
    }

    /// Untraced load of one cell (shared-memory read in the merge phase).
    pub fn load_untraced(&self, i: usize) -> Cplx {
        Cplx::new(
            f64::from_bits(self.re[i].load(Ordering::Relaxed)),
            f64::from_bits(self.im[i].load(Ordering::Relaxed)),
        )
    }

    /// Host-side read of every cell.
    pub fn snapshot(&self) -> Vec<Cplx> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(r, i)| {
                Cplx::new(
                    f64::from_bits(r.load(Ordering::Relaxed)),
                    f64::from_bits(i.load(Ordering::Relaxed)),
                )
            })
            .collect()
    }

    /// Host-side reset to zero.
    pub fn clear(&self) {
        let zero = 0.0f64.to_bits();
        for c in self.re.iter().chain(&self.im) {
            c.store(zero, Ordering::Relaxed);
        }
    }
}

fn add_bits(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_fetch_add_accumulates() {
        let a = DevAtomicU32::zeroed(4);
        let mut gm = Gmem::untraced();
        assert_eq!(a.fetch_add(&mut gm, 1, 5), 0);
        assert_eq!(a.fetch_add(&mut gm, 1, 3), 5);
        assert_eq!(a.load(&mut gm, 1), 8);
        assert_eq!(a.snapshot(), vec![0, 8, 0, 0]);
        a.clear();
        assert_eq!(a.snapshot(), vec![0; 4]);
    }

    #[test]
    fn f64_fetch_add_accumulates() {
        let a = DevAtomicF64::zeroed(2);
        let mut gm = Gmem::untraced();
        a.fetch_add(&mut gm, 0, 1.5);
        a.fetch_add(&mut gm, 0, 2.25);
        let s = a.snapshot();
        assert!((s[0] - 3.75).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn cplx_fetch_add_accumulates() {
        let a = DevAtomicCplx::zeroed(3);
        let mut gm = Gmem::untraced();
        a.fetch_add(&mut gm, 2, Cplx::new(1.0, -2.0));
        a.fetch_add(&mut gm, 2, Cplx::new(0.5, 0.5));
        let s = a.snapshot();
        assert!(s[2].dist(Cplx::new(1.5, -1.5)) < 1e-12);
        assert_eq!(s[0], Cplx::new(0.0, 0.0));
        a.clear();
        assert!(a.snapshot()[2].abs() == 0.0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        use rayon::prelude::*;
        let a = DevAtomicF64::zeroed(1);
        (0..1000usize).into_par_iter().for_each(|_| {
            let mut gm = Gmem::untraced();
            a.fetch_add(&mut gm, 0, 1.0);
        });
        assert_eq!(a.snapshot()[0], 1000.0);
    }

    #[test]
    fn concurrent_u32_adds() {
        use rayon::prelude::*;
        let a = DevAtomicU32::zeroed(8);
        (0..4096usize).into_par_iter().for_each(|i| {
            let mut gm = Gmem::untraced();
            a.fetch_add(&mut gm, i % 8, 1);
        });
        assert!(a.snapshot().iter().all(|&c| c == 512));
    }

    #[test]
    fn traced_atomics_record_kind() {
        use crate::trace::{AccessKind, ThreadTrace};
        let a = DevAtomicU32::zeroed(2);
        let mut tr = ThreadTrace::default();
        {
            let mut gm = Gmem::traced(&mut tr);
            a.fetch_add(&mut gm, 0, 1);
        }
        assert_eq!(tr.accesses.len(), 1);
        assert_eq!(tr.accesses[0].kind, AccessKind::Atomic);
    }

    #[test]
    fn lens_and_empty() {
        assert_eq!(DevAtomicU32::zeroed(5).len(), 5);
        assert!(DevAtomicU32::zeroed(0).is_empty());
        assert_eq!(DevAtomicF64::zeroed(5).len(), 5);
        assert!(DevAtomicF64::zeroed(0).is_empty());
        assert_eq!(DevAtomicCplx::zeroed(5).len(), 5);
        assert!(DevAtomicCplx::zeroed(0).is_empty());
    }
}
