//! Device specifications — the hardware parameters that drive the analytic
//! cost model. The presets mirror Table I of the paper (Tesla K20x) plus a
//! couple of neighbouring Kepler parts for sensitivity studies, and Table II
//! (the Sandy Bridge CPU test-bench) for the CPU-side model.

use serde::{Deserialize, Serialize};

/// Parameters of a simulated CUDA device.
///
/// Every field participates in the cost model in `crate::cost`; none is
/// decorative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. "Tesla K20x".
    pub name: String,
    /// CUDA compute capability, e.g. 3.5.
    pub compute_capability: f32,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Single-precision CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Shared memory / L1 per SM, bytes (64 KB on Kepler).
    pub shared_mem_per_sm: usize,
    /// Read-only data cache per SM, bytes (48 KB on Kepler).
    pub readonly_cache_per_sm: usize,
    /// Device DRAM size in bytes.
    pub global_mem_bytes: usize,
    /// L2 cache size in bytes (1.5 MB on GK110).
    pub l2_bytes: usize,
    /// Peak global memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Achievable fraction of peak bandwidth for streaming kernels.
    pub mem_efficiency: f64,
    /// Global memory latency in nanoseconds (Kepler ≈ 230 cycles ≈ 300 ns
    /// including queueing).
    pub mem_latency_ns: f64,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident warps per SM (64 on Kepler).
    pub max_warps_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum kernels executing concurrently (32 on GK110).
    pub max_concurrent_kernels: u32,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Host↔device (PCIe) bandwidth, bytes/second.
    pub pcie_bandwidth: f64,
    /// Fixed per-transfer PCIe latency in microseconds.
    pub pcie_latency_us: f64,
    /// Nanoseconds to retire one atomic RMW when serialised on an address.
    pub atomic_ns: f64,
    /// Ratio of double-precision to single-precision throughput (1/3 on
    /// GK110 Tesla parts).
    pub fp64_ratio: f64,
    /// Memory transaction (cache line) size in bytes for coalesced access.
    pub transaction_bytes: usize,
    /// Transaction size for scattered (non-coalesced) access: Kepler issues
    /// 32-byte segments when L1 is bypassed.
    pub scatter_segment_bytes: usize,
}

impl DeviceSpec {
    /// NVIDIA Tesla K20x — the paper's test-bench (Table I): 14 SMs,
    /// 2688 cores, 732 MHz, 6 GB, 250 GB/s.
    pub fn tesla_k20x() -> Self {
        DeviceSpec {
            name: "Tesla K20x".into(),
            compute_capability: 3.5,
            sm_count: 14,
            cores_per_sm: 192,
            clock_ghz: 0.732,
            shared_mem_per_sm: 64 * 1024,
            readonly_cache_per_sm: 48 * 1024,
            global_mem_bytes: 6 * 1024 * 1024 * 1024,
            l2_bytes: 1536 * 1024,
            mem_bandwidth: 250.0e9,
            mem_efficiency: 0.75,
            mem_latency_ns: 320.0,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_threads_per_block: 1024,
            max_concurrent_kernels: 32,
            launch_overhead_us: 5.0,
            pcie_bandwidth: 6.0e9,
            pcie_latency_us: 10.0,
            atomic_ns: 6.0,
            fp64_ratio: 1.0 / 3.0,
            transaction_bytes: 128,
            scatter_segment_bytes: 32,
        }
    }

    /// NVIDIA Tesla K40 — a slightly larger Kepler used for sensitivity
    /// checks (15 SMs, 288 GB/s).
    pub fn tesla_k40() -> Self {
        DeviceSpec {
            name: "Tesla K40".into(),
            sm_count: 15,
            clock_ghz: 0.745,
            global_mem_bytes: 12 * 1024 * 1024 * 1024,
            mem_bandwidth: 288.0e9,
            ..Self::tesla_k20x()
        }
    }

    /// NVIDIA Quadro K2000 — a slow/cheap Kepler (GK107) used as the
    /// budget tier of heterogeneous fleet studies: 2 SMX, 384 cores,
    /// 954 MHz, 2 GB, 64 GB/s.
    pub fn quadro_k2000() -> Self {
        DeviceSpec {
            name: "Quadro K2000".into(),
            compute_capability: 3.0,
            sm_count: 2,
            clock_ghz: 0.954,
            global_mem_bytes: 2 * 1024 * 1024 * 1024,
            l2_bytes: 256 * 1024,
            mem_bandwidth: 64.0e9,
            max_concurrent_kernels: 16,
            fp64_ratio: 1.0 / 24.0,
            ..Self::tesla_k20x()
        }
    }

    /// A deliberately tiny device for unit tests: small enough that
    /// occupancy limits and concurrency caps are hit by toy kernels.
    pub fn test_tiny() -> Self {
        DeviceSpec {
            name: "TestTiny".into(),
            compute_capability: 3.5,
            sm_count: 2,
            cores_per_sm: 32,
            clock_ghz: 1.0,
            shared_mem_per_sm: 16 * 1024,
            readonly_cache_per_sm: 8 * 1024,
            global_mem_bytes: 64 * 1024 * 1024,
            l2_bytes: 256 * 1024,
            mem_bandwidth: 10.0e9,
            mem_efficiency: 1.0,
            mem_latency_ns: 100.0,
            warp_size: 4,
            max_warps_per_sm: 8,
            max_threads_per_block: 64,
            max_concurrent_kernels: 4,
            launch_overhead_us: 1.0,
            pcie_bandwidth: 1.0e9,
            pcie_latency_us: 1.0,
            atomic_ns: 10.0,
            fp64_ratio: 0.5,
            transaction_bytes: 64,
            scatter_segment_bytes: 16,
        }
    }

    /// Peak double-precision FLOP rate (fused multiply-add counted as two).
    pub fn peak_fp64_flops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9 * 2.0
            * self.fp64_ratio
    }

    /// Effective streaming bandwidth (peak × efficiency).
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.mem_efficiency
    }

    /// Maximum warps resident device-wide.
    pub fn max_resident_warps(&self) -> u64 {
        self.sm_count as u64 * self.max_warps_per_sm as u64
    }

    /// Renders the spec as the paper's Table I row.
    pub fn table_row(&self) -> String {
        format!(
            "{} | CC {:.1} | {} cores / {} SMs | {:.0} MHz | {} KB shared | {} GB | {:.0} GB/s",
            self.name,
            self.compute_capability,
            self.sm_count * self.cores_per_sm,
            self.sm_count,
            self.clock_ghz * 1000.0,
            self.shared_mem_per_sm / 1024,
            self.global_mem_bytes / (1024 * 1024 * 1024),
            self.mem_bandwidth / 1e9
        )
    }
}

/// Parameters of the CPU test-bench (paper Table II) used to convert
/// measured CPU work into modelled Sandy Bridge times where needed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: String,
    /// Microarchitecture label.
    pub architecture: String,
    /// Physical cores.
    pub cores: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Last-level cache in bytes.
    pub llc_bytes: usize,
    /// DRAM size in bytes.
    pub dram_bytes: usize,
    /// Sustained memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Double-precision FLOPs per core per cycle (AVX: 8 on Sandy Bridge).
    pub flops_per_cycle: f64,
}

impl CpuSpec {
    /// Intel Xeon E5-2640 (Sandy Bridge) — the paper's CPU test-bench:
    /// 6 cores, 2.5 GHz, 15 MB L3, 64 GB DRAM.
    pub fn xeon_e5_2640() -> Self {
        CpuSpec {
            name: "Intel Xeon E5-2640".into(),
            architecture: "Sandy Bridge".into(),
            cores: 6,
            clock_ghz: 2.5,
            llc_bytes: 15 * 1024 * 1024,
            dram_bytes: 64 * 1024 * 1024 * 1024,
            mem_bandwidth: 42.6e9,
            flops_per_cycle: 8.0,
        }
    }

    /// Peak double-precision FLOP rate across all cores.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9 * self.flops_per_cycle
    }

    /// Renders the spec as the paper's Table II row.
    pub fn table_row(&self) -> String {
        format!(
            "{} | {} | {} cores | {:.2} GHz | {} MB L3 | {} GB DRAM",
            self.name,
            self.architecture,
            self.cores,
            self.clock_ghz,
            self.llc_bytes / (1024 * 1024),
            self.dram_bytes / (1024 * 1024 * 1024)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20x_matches_table_one() {
        let s = DeviceSpec::tesla_k20x();
        assert_eq!(s.sm_count, 14);
        assert_eq!(s.sm_count * s.cores_per_sm, 2688);
        assert!((s.clock_ghz - 0.732).abs() < 1e-9);
        assert_eq!(s.global_mem_bytes, 6 * 1024 * 1024 * 1024);
        assert!((s.mem_bandwidth - 250.0e9).abs() < 1.0);
        assert_eq!(s.shared_mem_per_sm, 64 * 1024);
        assert_eq!(s.max_concurrent_kernels, 32);
    }

    #[test]
    fn k20x_peak_rates_are_sane() {
        let s = DeviceSpec::tesla_k20x();
        // ~1.31 TFLOP/s double precision on K20x.
        let tflops = s.peak_fp64_flops() / 1e12;
        assert!((1.0..1.6).contains(&tflops), "got {tflops} TFLOP/s");
        assert!(s.effective_bandwidth() < s.mem_bandwidth);
        assert_eq!(s.max_resident_warps(), 14 * 64);
    }

    #[test]
    fn k40_is_bigger_than_k20x() {
        let a = DeviceSpec::tesla_k20x();
        let b = DeviceSpec::tesla_k40();
        assert!(b.sm_count > a.sm_count);
        assert!(b.mem_bandwidth > a.mem_bandwidth);
        assert_eq!(b.warp_size, a.warp_size);
    }

    #[test]
    fn k2000_is_the_budget_tier() {
        let cheap = DeviceSpec::quadro_k2000();
        let k20x = DeviceSpec::tesla_k20x();
        assert!(cheap.peak_fp64_flops() < k20x.peak_fp64_flops() / 4.0);
        assert!(cheap.mem_bandwidth < k20x.mem_bandwidth);
        assert!(cheap.global_mem_bytes < k20x.global_mem_bytes);
        assert_eq!(cheap.warp_size, k20x.warp_size);
    }

    #[test]
    fn table_rows_render() {
        assert!(DeviceSpec::tesla_k20x().table_row().contains("2688 cores"));
        assert!(CpuSpec::xeon_e5_2640().table_row().contains("Sandy Bridge"));
    }

    #[test]
    fn cpu_spec_matches_table_two() {
        let c = CpuSpec::xeon_e5_2640();
        assert_eq!(c.cores, 6);
        assert!((c.clock_ghz - 2.5).abs() < 1e-9);
        assert_eq!(c.llc_bytes, 15 * 1024 * 1024);
        assert!(c.peak_flops() > 1e11);
    }

    #[test]
    fn spec_debug_renders() {
        let d = format!("{:?}", DeviceSpec::tesla_k20x());
        assert!(d.contains("K20x"));
    }
}
