//! Deterministic fault injection.
//!
//! A [`FaultConfig`] installed on a [`crate::device::GpuDevice`] makes the
//! simulator inject the failure modes of the paper's K20x test-bench
//! (device OOM against the 6 GB capacity, PCIe transfer errors, kernel
//! launch failures and watchdog timeouts, ECC-detected corruption) as
//! **typed errors** from the device's `try_*` entry points.
//!
//! Determinism is the whole design: whether op number `i` of fault scope
//! `s` faults is a *pure function* of `(seed, s, i, fault class)` — a
//! splitmix64 hash compared against the class's rate. No wall clock, no
//! OS randomness, no dependence on host-thread scheduling. Identical
//! `(workload, fault seed)` therefore replays an identical fault
//! timeline at any `CUSFFT_HOST_THREADS` or serve-worker width, which is
//! what lets `tests/fault_injection.rs` pin recovery behaviour
//! bit-for-bit.
//!
//! **Scopes** decouple fault decisions from physical devices: the serving
//! layer executes request group `g` under fault scope `g` regardless of
//! which worker (and hence which private device) runs it, so the set of
//! injected faults — and every recovery decision downstream of it — is
//! invariant to the worker count.
//!
//! Every injected fault is recorded as an op on the simulated timeline
//! (label `fault:<kind>:<what>`), charging the work the failure wasted:
//! a failed transfer occupied the copy engine for its full duration, a
//! timed-out kernel held the device for the watchdog window, a failed
//! launch burned its launch overhead. Faults are therefore *observable*
//! in makespans and profiler reports, not silent control flow.

/// The operation classes faults attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Tracked device allocation (`try_alloc_zeroed`, `try_resident`,
    /// the allocation half of `try_htod`).
    Alloc,
    /// Host→device copy.
    H2d,
    /// Device→host copy.
    D2h,
    /// Kernel launch (map/foreach/modelled device op).
    Launch,
    /// Kernel watchdog timeout.
    Timeout,
    /// ECC-detected corruption on a device→host read.
    Ecc,
    /// Silent data corruption: a device→host read *succeeds* but one
    /// element of the returned payload has a high bit flipped. Unlike
    /// every other class this is not a typed error — the caller sees
    /// `Ok` with wrong data, and only a result-integrity check (the
    /// serving layer's sampled residual check) can catch it.
    Sdc,
    /// Whole-device loss: the device goes dark mid-epoch (XID-style
    /// bus drop / firmware hang). Unlike the per-op classes above this
    /// is never rolled by [`FaultState::decide`] on the op path — the
    /// fleet layer rolls it directly via [`fault_roll`] at epoch
    /// granularity with the member's device scope, so enabling it can
    /// never shift the per-op fault timeline of existing workloads.
    DeviceLoss,
}

impl FaultClass {
    /// Every fault class, in salt order — the enumeration axis chaos
    /// schedules sweep their per-class rate grid over.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::Alloc,
        FaultClass::H2d,
        FaultClass::D2h,
        FaultClass::Launch,
        FaultClass::Timeout,
        FaultClass::Ecc,
        FaultClass::Sdc,
        FaultClass::DeviceLoss,
    ];

    /// Stable per-class salt for the decision hash.
    fn salt(self) -> u64 {
        match self {
            FaultClass::Alloc => 0x01,
            FaultClass::H2d => 0x02,
            FaultClass::D2h => 0x03,
            FaultClass::Launch => 0x04,
            FaultClass::Timeout => 0x05,
            FaultClass::Ecc => 0x06,
            FaultClass::Sdc => 0x07,
            FaultClass::DeviceLoss => 0x08,
        }
    }

    /// Short label used in timeline op names (`fault:<label>:…`).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Alloc => "oom",
            FaultClass::H2d => "htod",
            FaultClass::D2h => "dtoh",
            FaultClass::Launch => "launch",
            FaultClass::Timeout => "timeout",
            FaultClass::Ecc => "ecc",
            FaultClass::Sdc => "sdc",
            FaultClass::DeviceLoss => "device_loss",
        }
    }
}

/// Injection rates per fault class, plus the seed that makes the plan a
/// pure function.
///
/// A rate of `0.0` disables the class, `1.0` makes every applicable op
/// fail (a *persistent* device failure — the serving layer's cue to
/// degrade to the CPU path). Small rates model transient faults that
/// bounded retry rides out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault plan. Same seed → same fault timeline, always.
    pub seed: u64,
    /// Device allocation failures (on top of real capacity exhaustion).
    pub oom_rate: f64,
    /// Host→device transfer failures.
    pub h2d_rate: f64,
    /// Device→host transfer failures.
    pub d2h_rate: f64,
    /// Kernel launch failures (fail before any block executes).
    pub launch_rate: f64,
    /// Kernel watchdog timeouts.
    pub timeout_rate: f64,
    /// ECC-detected corruption on device→host reads.
    pub ecc_rate: f64,
    /// Silent data corruption on device→host reads: the transfer
    /// succeeds but one element of the payload comes back with a high
    /// bit flipped. Off by default (including in [`FaultConfig::uniform`]
    /// / [`FaultConfig::persistent`]) — opt in with
    /// [`FaultConfig::with_sdc`].
    pub sdc_rate: f64,
    /// Whole-device loss per scheduling epoch. Off by default (including
    /// in [`FaultConfig::uniform`] / [`FaultConfig::persistent`]) — opt
    /// in with [`FaultConfig::with_device_loss`]. Rolled by the fleet
    /// layer per `(device scope, epoch)`, never on the op path, so
    /// enabling it does not shift per-op fault decisions.
    pub device_loss_rate: f64,
    /// Simulated seconds a timed-out kernel holds the device before the
    /// watchdog kills it (charged on the timeline).
    pub timeout_s: f64,
}

/// A full per-class rate vector — the *explicit schedule* form of a
/// fault plan. [`FaultConfig::uniform`]/[`FaultConfig::persistent`]
/// cover the common presets; a chaos explorer instead enumerates rate
/// vectors directly and turns each into a plan with
/// [`FaultConfig::from_rates`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Device allocation failures.
    pub oom: f64,
    /// Host→device transfer failures.
    pub h2d: f64,
    /// Device→host transfer failures.
    pub d2h: f64,
    /// Kernel launch failures.
    pub launch: f64,
    /// Kernel watchdog timeouts.
    pub timeout: f64,
    /// ECC-detected corruption.
    pub ecc: f64,
    /// Silent data corruption (payload bit flips, no typed error).
    pub sdc: f64,
    /// Whole-device loss per scheduling epoch (fleet-level).
    pub device_loss: f64,
}

impl FaultRates {
    /// All classes off.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Every *typed-error* class at `rate` (SDC and device loss stay
    /// off, mirroring [`FaultConfig::uniform`]).
    pub fn uniform(rate: f64) -> Self {
        FaultRates {
            oom: rate,
            h2d: rate,
            d2h: rate,
            launch: rate,
            timeout: rate,
            ecc: rate,
            sdc: 0.0,
            device_loss: 0.0,
        }
    }

    /// A one-hot vector: only `class` fires, at `rate`.
    pub fn one_hot(class: FaultClass, rate: f64) -> Self {
        let mut r = Self::zero();
        r.set(class, rate);
        r
    }

    /// Rate for one class.
    pub fn get(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::Alloc => self.oom,
            FaultClass::H2d => self.h2d,
            FaultClass::D2h => self.d2h,
            FaultClass::Launch => self.launch,
            FaultClass::Timeout => self.timeout,
            FaultClass::Ecc => self.ecc,
            FaultClass::Sdc => self.sdc,
            FaultClass::DeviceLoss => self.device_loss,
        }
    }

    /// Sets the rate for one class.
    pub fn set(&mut self, class: FaultClass, rate: f64) {
        match class {
            FaultClass::Alloc => self.oom = rate,
            FaultClass::H2d => self.h2d = rate,
            FaultClass::D2h => self.d2h = rate,
            FaultClass::Launch => self.launch = rate,
            FaultClass::Timeout => self.timeout = rate,
            FaultClass::Ecc => self.ecc = rate,
            FaultClass::Sdc => self.sdc = rate,
            FaultClass::DeviceLoss => self.device_loss = rate,
        }
    }

    /// Whether every class is off.
    pub fn is_zero(&self) -> bool {
        FaultClass::ALL.iter().all(|&c| self.get(c) == 0.0)
    }
}

/// Deterministic host-crash plan — the "crash hook" crash-consistency
/// tests arm. The journaled serving layer polls [`CrashPlan::fires_at`]
/// at every epoch boundary and kills the run (discarding the journal's
/// unflushed tail, exactly as a power loss would) when the epoch
/// matches. Purely declarative, so a chaos schedule can name an exact
/// kill point and replay it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrashPlan {
    /// Epoch index at which the host dies; `None` never crashes.
    pub at_epoch: Option<u64>,
}

impl CrashPlan {
    /// A plan that kills the run at epoch `e`.
    pub fn at_epoch(e: u64) -> Self {
        CrashPlan { at_epoch: Some(e) }
    }

    /// A plan that never fires.
    pub fn never() -> Self {
        Self::default()
    }

    /// Whether the host dies at `epoch`.
    #[must_use = "ignoring the crash decision defeats the crash plan"]
    pub fn fires_at(&self, epoch: u64) -> bool {
        self.at_epoch == Some(epoch)
    }
}

impl FaultConfig {
    /// A fault plan from an explicit per-class rate vector — the
    /// constructor chaos schedules use, bypassing the presets.
    pub fn from_rates(seed: u64, rates: FaultRates) -> Self {
        FaultConfig {
            seed,
            oom_rate: rates.oom,
            h2d_rate: rates.h2d,
            d2h_rate: rates.d2h,
            launch_rate: rates.launch,
            timeout_rate: rates.timeout,
            ecc_rate: rates.ecc,
            sdc_rate: rates.sdc,
            device_loss_rate: rates.device_loss,
            timeout_s: 1e-3,
        }
    }

    /// This plan's rate vector, round-trippable through
    /// [`FaultConfig::from_rates`].
    pub fn rates(&self) -> FaultRates {
        FaultRates {
            oom: self.oom_rate,
            h2d: self.h2d_rate,
            d2h: self.d2h_rate,
            launch: self.launch_rate,
            timeout: self.timeout_rate,
            ecc: self.ecc_rate,
            sdc: self.sdc_rate,
            device_loss: self.device_loss_rate,
        }
    }

    /// Uniform transient faults: every class fires at `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            oom_rate: rate,
            h2d_rate: rate,
            d2h_rate: rate,
            launch_rate: rate,
            timeout_rate: rate,
            ecc_rate: rate,
            sdc_rate: 0.0,
            device_loss_rate: 0.0,
            timeout_s: 1e-3,
        }
    }

    /// Enables silent-data-corruption injection at `rate`. Kept out of
    /// [`FaultConfig::uniform`] because SDC changes *payloads*, not
    /// control flow: workloads without an integrity check downstream
    /// would silently produce wrong answers rather than exercise
    /// recovery.
    pub fn with_sdc(mut self, rate: f64) -> Self {
        self.sdc_rate = rate;
        self
    }

    /// Enables whole-device loss at `rate` per scheduling epoch. Kept
    /// out of [`FaultConfig::uniform`] because device loss is a fleet-
    /// level event: only the fleet router can do anything about it
    /// (failover), and single-device workloads enabling it would simply
    /// dead-end.
    pub fn with_device_loss(mut self, rate: f64) -> Self {
        self.device_loss_rate = rate;
        self
    }

    /// A persistently broken device: every operation faults. Retry can
    /// never succeed; only CPU fallback completes requests.
    pub fn persistent(seed: u64) -> Self {
        Self::uniform(seed, 1.0)
    }

    /// Rate for one class.
    pub fn rate(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::Alloc => self.oom_rate,
            FaultClass::H2d => self.h2d_rate,
            FaultClass::D2h => self.d2h_rate,
            FaultClass::Launch => self.launch_rate,
            FaultClass::Timeout => self.timeout_rate,
            FaultClass::Ecc => self.ecc_rate,
            FaultClass::Sdc => self.sdc_rate,
            FaultClass::DeviceLoss => self.device_loss_rate,
        }
    }
}

/// splitmix64 — tiny, well-mixed, and already the idiom the vendored
/// `rand` uses for seeding.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The decision function: uniform in `[0, 1)` as a pure function of
/// `(seed, scope, ordinal, class)`.
pub fn fault_roll(seed: u64, scope: u64, ordinal: u64, class: FaultClass) -> f64 {
    let h = splitmix64(seed ^ splitmix64(scope ^ splitmix64(ordinal ^ (class.salt() << 56))));
    // 53 mantissa bits → exact double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Entropy accompanying a fault decision — the corruption site for SDC
/// (element index, bit choice). Salted differently from every decision
/// roll so it is independent of *whether* the fault fired.
fn corruption_entropy(seed: u64, scope: u64, ordinal: u64) -> u64 {
    splitmix64(seed ^ splitmix64(scope ^ splitmix64(ordinal ^ (0x5D << 56))))
}

/// Payload types a device→host transfer can return, with their silent-
/// data-corruption behaviour. Integer payloads (bucket indices,
/// permutation tables, vote counters) are declared immune: flipping a
/// bit of an index produces loud downstream failures (out-of-range
/// hits), not the *silent* wrong-answer mode this fault class models —
/// floating-point spectra are where SDC hides.
pub trait SdcTarget: Sized {
    /// Whether SDC injection applies to this payload type.
    const SUSCEPTIBLE: bool = false;
    /// Flips a high-order bit chosen by `entropy`. Only called on
    /// susceptible types.
    fn corrupt(&mut self, _entropy: u64) {}
}

macro_rules! sdc_immune {
    ($($t:ty),* $(,)?) => { $(impl SdcTarget for $t {})* };
}
sdc_immune!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Flips one of the nine highest bits (top mantissa bits, exponent,
/// sign) of an `f64`, so the corrupted value differs from the original
/// by at least ~half its magnitude — the "stuck DRAM cell in the result
/// buffer" failure mode, not a rounding-level perturbation.
fn flip_high_bit(v: f64, entropy: u64) -> f64 {
    let bit = 55 + (entropy % 9) as u32;
    f64::from_bits(v.to_bits() ^ (1u64 << bit))
}

impl SdcTarget for f64 {
    const SUSCEPTIBLE: bool = true;
    fn corrupt(&mut self, entropy: u64) {
        *self = flip_high_bit(*self, entropy);
    }
}

impl SdcTarget for fft::cplx::Cplx {
    const SUSCEPTIBLE: bool = true;
    fn corrupt(&mut self, entropy: u64) {
        if entropy & (1 << 16) == 0 {
            self.re = flip_high_bit(self.re, entropy >> 17);
        } else {
            self.im = flip_high_bit(self.im, entropy >> 17);
        }
    }
}

/// Mutable per-device injection state: the config plus the current scope
/// and the op ordinal within it. Lives inside the device's state mutex so
/// ordinals are assigned in op-enqueue order.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) config: FaultConfig,
    scope: u64,
    ordinal: u64,
    injected: u64,
}

impl FaultState {
    pub(crate) fn new(config: FaultConfig) -> Self {
        FaultState {
            config,
            scope: 0,
            ordinal: 0,
            injected: 0,
        }
    }

    /// Enters fault scope `scope` and restarts the op ordinal, so the
    /// decisions taken inside the scope depend only on the scope id and
    /// the op sequence within it — not on what ran before on this device.
    pub(crate) fn set_scope(&mut self, scope: u64) {
        self.scope = scope;
        self.ordinal = 0;
    }

    /// Takes the decision for the next device op. `classes` lists the
    /// fault classes applicable to the op in priority order; the first
    /// one whose roll comes in under its rate fires. Exactly one ordinal
    /// is consumed whether or not a fault fires — adding or removing a
    /// class from the list therefore never shifts later decisions. The
    /// returned entropy locates the corruption for SDC faults and is
    /// itself a pure function of `(seed, scope, ordinal)`.
    pub(crate) fn decide(&mut self, classes: &[FaultClass]) -> Option<(FaultClass, u64)> {
        let ordinal = self.ordinal;
        self.ordinal += 1;
        for &class in classes {
            let rate = self.config.rate(class);
            if rate > 0.0 && fault_roll(self.config.seed, self.scope, ordinal, class) < rate {
                self.injected += 1;
                let entropy = corruption_entropy(self.config.seed, self.scope, ordinal);
                return Some((class, entropy));
            }
        }
        None
    }

    /// Total faults injected since the plan was installed.
    pub(crate) fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_round_trip_through_from_rates() {
        let mut rates = FaultRates::zero();
        for (i, &c) in FaultClass::ALL.iter().enumerate() {
            rates.set(c, 0.1 * (i + 1) as f64);
        }
        let cfg = FaultConfig::from_rates(9, rates);
        assert_eq!(cfg.rates(), rates);
        for &c in &FaultClass::ALL {
            assert_eq!(cfg.rate(c), rates.get(c));
        }
        assert!(!rates.is_zero());
        assert!(FaultRates::zero().is_zero());
        let hot = FaultRates::one_hot(FaultClass::Launch, 0.5);
        assert_eq!(hot.get(FaultClass::Launch), 0.5);
        assert_eq!(hot.get(FaultClass::Timeout), 0.0);
        // uniform() leaves the payload/fleet classes off, like the preset.
        assert_eq!(FaultRates::uniform(0.2).sdc, 0.0);
        assert_eq!(FaultRates::uniform(0.2).device_loss, 0.0);
    }

    #[test]
    fn crash_plan_fires_exactly_at_its_epoch() {
        assert!(!CrashPlan::never().fires_at(0));
        let p = CrashPlan::at_epoch(3);
        assert!(!p.fires_at(2));
        assert!(p.fires_at(3));
        assert!(!p.fires_at(4));
    }

    #[test]
    fn roll_is_a_pure_function() {
        for (seed, scope, ord) in [(0u64, 0u64, 0u64), (1, 2, 3), (u64::MAX, 7, 99)] {
            let a = fault_roll(seed, scope, ord, FaultClass::Launch);
            let b = fault_roll(seed, scope, ord, FaultClass::Launch);
            assert_eq!(a.to_bits(), b.to_bits());
            assert!((0.0..1.0).contains(&a));
        }
    }

    #[test]
    fn classes_roll_independently() {
        // Same coordinates, different classes → different rolls (salted).
        let a = fault_roll(42, 0, 0, FaultClass::Launch);
        let b = fault_roll(42, 0, 0, FaultClass::Timeout);
        assert_ne!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn rates_are_respected_statistically() {
        let cfg = FaultConfig::uniform(7, 0.25);
        let mut st = FaultState::new(cfg);
        let mut fired = 0;
        let trials = 4000;
        for _ in 0..trials {
            if st.decide(&[FaultClass::Launch]).is_some() {
                fired += 1;
            }
        }
        let frac = fired as f64 / trials as f64;
        assert!(
            (0.2..0.3).contains(&frac),
            "25% rate produced {frac} over {trials} trials"
        );
        assert_eq!(st.injected(), fired);
    }

    #[test]
    fn persistent_config_always_fires() {
        let mut st = FaultState::new(FaultConfig::persistent(3));
        for _ in 0..100 {
            assert!(st.decide(&[FaultClass::Launch, FaultClass::Timeout]).is_some());
        }
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut st = FaultState::new(FaultConfig::uniform(3, 0.0));
        for _ in 0..1000 {
            assert_eq!(st.decide(&[FaultClass::Alloc, FaultClass::Ecc]), None);
        }
        assert_eq!(st.injected(), 0);
    }

    #[test]
    fn sdc_is_opt_in_and_independent() {
        // uniform()/persistent() leave SDC off — PR 3's bit-identity
        // tests rely on that.
        assert_eq!(FaultConfig::uniform(1, 0.5).sdc_rate, 0.0);
        assert_eq!(FaultConfig::persistent(1).sdc_rate, 0.0);
        let cfg = FaultConfig::uniform(1, 0.0).with_sdc(1.0);
        let mut st = FaultState::new(cfg);
        // SDC only fires when listed as applicable.
        assert_eq!(st.decide(&[FaultClass::D2h, FaultClass::Ecc]), None);
        let hit = st.decide(&[FaultClass::D2h, FaultClass::Ecc, FaultClass::Sdc]);
        assert_eq!(hit.map(|(c, _)| c), Some(FaultClass::Sdc));
    }

    #[test]
    fn device_loss_is_opt_in_and_off_the_op_path() {
        // uniform()/persistent() leave device loss off, and enabling it
        // never shifts op-path decisions because decide() never lists it.
        assert_eq!(FaultConfig::uniform(1, 0.5).device_loss_rate, 0.0);
        assert_eq!(FaultConfig::persistent(1).device_loss_rate, 0.0);
        let cfg = FaultConfig::uniform(1, 0.3);
        let mut a = FaultState::new(cfg);
        let mut b = FaultState::new(cfg.with_device_loss(1.0));
        for _ in 0..200 {
            assert_eq!(
                a.decide(&[FaultClass::Launch, FaultClass::Timeout]),
                b.decide(&[FaultClass::Launch, FaultClass::Timeout])
            );
        }
        // The fleet rolls it directly; the roll is pure and class-salted.
        assert_eq!(FaultClass::DeviceLoss.label(), "device_loss");
        let r = fault_roll(7, 42, 0, FaultClass::DeviceLoss);
        assert_eq!(r.to_bits(), fault_roll(7, 42, 0, FaultClass::DeviceLoss).to_bits());
        assert_ne!(
            r.to_bits(),
            fault_roll(7, 42, 0, FaultClass::Timeout).to_bits()
        );
    }

    #[test]
    fn listing_sdc_never_shifts_other_decisions() {
        // One ordinal per decide() regardless of the class list, and
        // per-class salted rolls: adding Sdc to an op's class list must
        // not change what the other classes do.
        let cfg = FaultConfig::uniform(9, 0.3);
        let mut a = FaultState::new(cfg);
        let mut b = FaultState::new(cfg.with_sdc(0.0));
        for _ in 0..200 {
            let ra = a.decide(&[FaultClass::D2h, FaultClass::Ecc]);
            let rb = b.decide(&[FaultClass::D2h, FaultClass::Ecc, FaultClass::Sdc]);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn corruption_flips_a_high_bit() {
        // A high-bit flip moves the value by at least half its magnitude
        // (possibly to NaN/Inf when the exponent tops out) — never a
        // rounding-level nudge. NaN deltas count as (very) corrupted.
        for e in 0..64u64 {
            let mut v = 1.25f64;
            v.corrupt(e);
            let dv = (v - 1.25).abs();
            assert!(dv.is_nan() || dv >= 0.5, "entropy {e} gave weak flip: {v}");
            let mut c = fft::cplx::Cplx::new(1.0, -1.0);
            c.corrupt(e);
            let dc = c.dist(fft::cplx::Cplx::new(1.0, -1.0));
            assert!(dc.is_nan() || dc >= 0.5);
        }
    }

    #[test]
    fn scope_reset_replays_the_same_decisions() {
        let cfg = FaultConfig::uniform(11, 0.3);
        let take = |st: &mut FaultState| -> Vec<Option<(FaultClass, u64)>> {
            (0..50).map(|_| st.decide(&[FaultClass::Launch])).collect()
        };
        let mut a = FaultState::new(cfg);
        a.set_scope(5);
        let first = take(&mut a);
        // Different history before re-entering the scope must not matter.
        let mut b = FaultState::new(cfg);
        b.set_scope(9);
        let _ = take(&mut b);
        b.set_scope(5);
        let second = take(&mut b);
        assert_eq!(first, second);
    }

    #[test]
    fn scopes_decouple() {
        let cfg = FaultConfig::uniform(11, 0.5);
        let mut a = FaultState::new(cfg);
        a.set_scope(0);
        let ra: Vec<_> = (0..64).map(|_| a.decide(&[FaultClass::Launch])).collect();
        let mut b = FaultState::new(cfg);
        b.set_scope(1);
        let rb: Vec<_> = (0..64).map(|_| b.decide(&[FaultClass::Launch])).collect();
        assert_ne!(ra, rb, "distinct scopes should see distinct fault timelines");
    }

    #[test]
    fn priority_order_picks_first_firing_class() {
        // With rate 1.0 everywhere, the first listed class wins.
        let mut st = FaultState::new(FaultConfig::persistent(0));
        assert_eq!(
            st.decide(&[FaultClass::Timeout, FaultClass::Launch])
                .map(|(c, _)| c),
            Some(FaultClass::Timeout)
        );
        assert_eq!(
            st.decide(&[FaultClass::Launch, FaultClass::Timeout])
                .map(|(c, _)| c),
            Some(FaultClass::Launch)
        );
    }
}
