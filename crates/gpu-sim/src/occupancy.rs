//! Occupancy calculator — the launch-configuration advisor CUDA exposes
//! as `cudaOccupancyMaxPotentialBlockSize`, rebuilt on the same limits the
//! cost model uses (warp slots, blocks-per-SM cap, shared memory).

use crate::launch::LaunchConfig;
use crate::spec::DeviceSpec;

/// Kepler's resident-block cap per SM.
const MAX_BLOCKS_PER_SM: u32 = 16;

/// Occupancy of one launch configuration on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident warps per SM under all limits.
    pub warps_per_sm: u32,
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Fraction of the SM's warp slots occupied (0..=1).
    pub fraction: f64,
    /// The limit that bound the configuration.
    pub limited_by: Limit,
}

/// Which resource capped the occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limit {
    /// Warp slots (64/SM on Kepler).
    WarpSlots,
    /// The 16-blocks-per-SM cap.
    BlockCount,
    /// Shared memory per SM.
    SharedMemory,
}

/// Computes the occupancy of `cfg` on `spec`.
pub fn occupancy(spec: &DeviceSpec, cfg: LaunchConfig) -> Occupancy {
    let warps_per_block = cfg.block_dim.div_ceil(spec.warp_size);
    let by_warps = spec.max_warps_per_sm / warps_per_block.max(1);
    let by_blocks = MAX_BLOCKS_PER_SM;
    let by_shared = if cfg.shared_mem_bytes > 0 {
        (spec.shared_mem_per_sm / cfg.shared_mem_bytes as usize) as u32
    } else {
        u32::MAX
    };
    let blocks = by_warps.min(by_blocks).min(by_shared);
    let limited_by = if blocks == by_shared && cfg.shared_mem_bytes > 0 {
        Limit::SharedMemory
    } else if blocks == by_warps {
        Limit::WarpSlots
    } else {
        Limit::BlockCount
    };
    let warps = (blocks * warps_per_block).min(spec.max_warps_per_sm);
    Occupancy {
        warps_per_sm: warps,
        blocks_per_sm: blocks,
        fraction: warps as f64 / spec.max_warps_per_sm as f64,
        limited_by,
    }
}

/// Suggests the block size (from the usual power-of-two menu) that
/// maximises occupancy for a kernel with the given per-block shared
/// memory; ties break toward larger blocks (fewer launches).
pub fn suggest_block_size(spec: &DeviceSpec, shared_mem_bytes: u32) -> u32 {
    let mut best = (0.0f64, 64u32);
    for &bd in &[64u32, 128, 192, 256, 512, 1024] {
        if bd > spec.max_threads_per_block {
            continue;
        }
        let cfg = LaunchConfig::new(1, bd).with_shared_mem(shared_mem_bytes);
        let occ = occupancy(spec, cfg);
        if occ.fraction >= best.0 {
            best = (occ.fraction, bd);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_occupancy_at_256_threads() {
        let spec = DeviceSpec::tesla_k20x();
        let occ = occupancy(&spec, LaunchConfig::new(1024, 256));
        assert_eq!(occ.warps_per_sm, 64, "8 blocks × 8 warps");
        assert_eq!(occ.blocks_per_sm, 8);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
        assert_eq!(occ.limited_by, Limit::WarpSlots);
    }

    #[test]
    fn tiny_blocks_hit_the_block_cap() {
        let spec = DeviceSpec::tesla_k20x();
        // 32-thread blocks: 16 blocks × 1 warp = 16 warps, block-capped.
        let occ = occupancy(&spec, LaunchConfig::new(1024, 32));
        assert_eq!(occ.blocks_per_sm, 16);
        assert_eq!(occ.warps_per_sm, 16);
        assert_eq!(occ.limited_by, Limit::BlockCount);
        assert!(occ.fraction < 0.3);
    }

    #[test]
    fn shared_memory_throttles() {
        let spec = DeviceSpec::tesla_k20x();
        let cfg = LaunchConfig::new(1024, 256).with_shared_mem(32 * 1024);
        let occ = occupancy(&spec, cfg);
        assert_eq!(occ.blocks_per_sm, 2, "64 KB / 32 KB");
        assert_eq!(occ.limited_by, Limit::SharedMemory);
    }

    #[test]
    fn advisor_prefers_large_blocks_without_shared_mem() {
        let spec = DeviceSpec::tesla_k20x();
        let bd = suggest_block_size(&spec, 0);
        let occ = occupancy(&spec, LaunchConfig::new(1, bd));
        assert!((occ.fraction - 1.0).abs() < 1e-12);
        assert!(bd >= 256, "large blocks preferred, got {bd}");
    }

    #[test]
    fn advisor_adapts_to_shared_memory() {
        let spec = DeviceSpec::tesla_k20x();
        // Huge per-block shared memory: occupancy is shared-limited no
        // matter the block size, so the advisor picks the largest block
        // (most warps per block for the few blocks that fit).
        let bd = suggest_block_size(&spec, 30 * 1024);
        assert_eq!(bd, 1024);
    }

    #[test]
    fn occupancy_matches_cost_model_resident_warps() {
        use crate::cost::resident_warps;
        use crate::metrics::KernelStats;
        let spec = DeviceSpec::tesla_k20x();
        let cfg = LaunchConfig::for_elements(1 << 20, 256);
        let occ = occupancy(&spec, cfg);
        let stats = KernelStats {
            warps: cfg.total_warps(spec.warp_size),
            block_dim: cfg.block_dim,
            grid_dim: cfg.grid_dim,
            ..Default::default()
        };
        let rw = resident_warps(&spec, &stats);
        assert_eq!(
            rw as u32,
            occ.warps_per_sm * spec.sm_count,
            "cost model and occupancy calculator must agree"
        );
    }
}
