//! Aggregation of per-thread traces into kernel-level statistics.
//!
//! The executor samples a subset of blocks, traces every access those
//! blocks make, and calls [`aggregate`] to turn the traces into a
//! [`KernelStats`] — extrapolating by the sampling factor. `KernelStats`
//! is the sole input (besides the [`crate::spec::DeviceSpec`]) to the cost
//! model, so everything the simulator "believes" about a kernel is
//! inspectable here.

use std::collections::HashMap;

use crate::launch::LaunchConfig;
use crate::trace::{warp_transactions, AccessKind, ThreadTrace};

/// Per-slot warp instruction: the kind (first seen) and lane addresses.
type SlotAccesses = (Option<AccessKind>, Vec<(u64, u32)>);

/// Per-launch statistics, extrapolated from the sampled blocks.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Kernel name (for reports).
    pub name: String,
    /// Total threads launched.
    pub threads: u64,
    /// Total warps launched.
    pub warps: u64,
    /// Warps actually traced.
    pub sampled_warps: u64,
    /// Double-precision flops (extrapolated).
    pub flops: f64,
    /// DRAM traffic in bytes (extrapolated, after coalescing analysis).
    pub dram_bytes: f64,
    /// DRAM transactions (extrapolated).
    pub transactions: f64,
    /// Total memory instructions (extrapolated).
    pub mem_ops: f64,
    /// Mean serial-dependence chain length per thread (weighted; an
    /// accumulator-chained load contributes 1/UNROLL).
    pub chain_len: f64,
    /// Mean memory ops per thread.
    pub ops_per_thread: f64,
    /// Atomic operations (extrapolated).
    pub atomic_ops: f64,
    /// Estimated worst per-address atomic multiplicity (extrapolated) —
    /// the serialisation depth the cost model charges.
    pub atomic_max_conflict: f64,
    /// Launch geometry.
    pub block_dim: u32,
    /// Launch geometry.
    pub grid_dim: u32,
    /// Dynamic shared memory per block.
    pub shared_mem_bytes: u32,
}

impl KernelStats {
    /// Memory-level parallelism: independent requests a warp keeps in
    /// flight, derived from ops-per-thread vs. chain length. A kernel
    /// with no serial dependence at all (pure gather/scatter) runs at the
    /// hardware maximum — the warp retires its load and the scheduler
    /// rotates, so outstanding requests are bounded by MSHRs, not by the
    /// kernel.
    pub fn mlp(&self) -> f64 {
        const MAX_MLP: f64 = 8.0;
        if self.ops_per_thread <= 0.0 {
            return 1.0;
        }
        if self.chain_len < 0.5 {
            return MAX_MLP;
        }
        (self.ops_per_thread / self.chain_len).clamp(1.0, MAX_MLP)
    }
}

/// Builds kernel statistics from the traces of the sampled blocks.
///
/// `block_traces` holds, for each sampled block, the traces of all its
/// threads in thread order. `sample_scale = grid_dim / sampled_blocks`
/// extrapolates sampled quantities to the full launch.
pub fn aggregate(
    name: &str,
    cfg: LaunchConfig,
    warp_size: u32,
    block_traces: &[Vec<ThreadTrace>],
    sample_scale: f64,
) -> KernelStats {
    let mut flops = 0u64;
    let mut bytes = 0u64;
    let mut txns = 0u64;
    let mut mem_ops = 0u64;
    let mut chain_sum = 0.0f64;
    let mut sampled_threads = 0u64;
    let mut sampled_warps = 0u64;
    let mut atomic_ops = 0u64;
    let mut atomic_hist: HashMap<u64, u64> = HashMap::new();

    for traces in block_traces {
        sampled_threads += traces.len() as u64;
        for warp in traces.chunks(warp_size as usize) {
            sampled_warps += 1;
            // Group this warp's accesses by slot to form warp instructions.
            let max_slot = warp
                .iter()
                .flat_map(|t| t.accesses.iter().map(|a| a.slot))
                .max()
                .map(|s| s as usize + 1)
                .unwrap_or(0);
            let mut per_slot: Vec<SlotAccesses> = vec![(None, Vec::new()); max_slot];
            for t in warp {
                flops += t.flops;
                chain_sum += t.chain_len as f64;
                for a in &t.accesses {
                    match a.kind {
                        // L2-resident traffic: no DRAM transactions and no
                        // MSHR pressure.
                        AccessKind::CachedRead | AccessKind::CachedWrite => continue,
                        AccessKind::Atomic => {
                            mem_ops += 1;
                            atomic_ops += 1;
                            *atomic_hist.entry(a.addr).or_insert(0) += 1;
                        }
                        _ => mem_ops += 1,
                    }
                    let slot = &mut per_slot[a.slot as usize];
                    slot.0.get_or_insert(a.kind);
                    slot.1.push((a.addr, a.bytes));
                }
            }
            for (kind, addrs) in &per_slot {
                if addrs.is_empty() {
                    continue;
                }
                let policy = kind.unwrap_or(AccessKind::Read).policy();
                let t = warp_transactions(addrs, 128, 32, policy);
                txns += t.transactions;
                bytes += t.bytes;
            }
        }
    }

    let max_conflict = atomic_hist.values().copied().max().unwrap_or(0);
    let threads = cfg.total_threads();
    let warps = cfg.total_warps(warp_size);
    let ops_per_thread = if sampled_threads > 0 {
        mem_ops as f64 / sampled_threads as f64
    } else {
        0.0
    };
    let chain_len = if sampled_threads > 0 {
        chain_sum / sampled_threads as f64
    } else {
        0.0
    };

    KernelStats {
        name: name.to_string(),
        threads,
        warps,
        sampled_warps,
        flops: flops as f64 * sample_scale,
        dram_bytes: bytes as f64 * sample_scale,
        transactions: txns as f64 * sample_scale,
        mem_ops: mem_ops as f64 * sample_scale,
        chain_len,
        ops_per_thread,
        atomic_ops: atomic_ops as f64 * sample_scale,
        atomic_max_conflict: max_conflict as f64 * sample_scale,
        block_dim: cfg.block_dim,
        grid_dim: cfg.grid_dim,
        shared_mem_bytes: cfg.shared_mem_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AccessKind;

    fn mk_trace(accesses: &[(u64, AccessKind)]) -> ThreadTrace {
        let mut t = ThreadTrace::default();
        for &(addr, kind) in accesses {
            t.record(addr, 16, kind);
        }
        t
    }

    #[test]
    fn coalesced_block_counts_few_transactions() {
        // 32 threads each load element tid (16 B) — one warp, 4×128 B lines.
        let cfg = LaunchConfig::new(1, 32);
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| mk_trace(&[(i as u64 * 16, AccessKind::Read)]))
            .collect();
        let s = aggregate("k", cfg, 32, &[traces], 1.0);
        assert_eq!(s.transactions as u64, 4);
        assert_eq!(s.dram_bytes as u64, 512);
        assert_eq!(s.mem_ops as u64, 32);
        assert!((s.mlp() - 8.0).abs() < 1e-9, "chain-free kernel runs at max MLP");
    }

    #[test]
    fn scattered_default_path_fetches_full_lines() {
        let cfg = LaunchConfig::new(1, 32);
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| mk_trace(&[(i as u64 * 100_000, AccessKind::Read)]))
            .collect();
        let s = aggregate("k", cfg, 32, &[traces], 1.0);
        assert_eq!(s.transactions as u64, 32);
        assert_eq!(s.dram_bytes as u64, 32 * 128, "default path: 128 B lines");
    }

    #[test]
    fn scattered_readonly_path_uses_segments() {
        let cfg = LaunchConfig::new(1, 32);
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| mk_trace(&[(i as u64 * 100_000, AccessKind::ReadOnly)]))
            .collect();
        let s = aggregate("k", cfg, 32, &[traces], 1.0);
        assert_eq!(s.transactions as u64, 32);
        assert_eq!(s.dram_bytes as u64, 32 * 32, "__ldg path: 32 B segments");
    }

    #[test]
    fn cached_scratch_traffic_is_free() {
        let cfg = LaunchConfig::new(1, 32);
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| mk_trace(&[(i as u64 * 16, AccessKind::CachedRead)]))
            .collect();
        let s = aggregate("k", cfg, 32, &[traces], 1.0);
        assert_eq!(s.transactions as u64, 0);
        assert_eq!(s.dram_bytes as u64, 0);
        assert_eq!(s.mem_ops as u64, 0);
    }

    #[test]
    fn sample_scale_extrapolates() {
        let cfg = LaunchConfig::new(10, 32); // 10 blocks, 1 sampled
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| {
                let mut t = mk_trace(&[(i as u64 * 16, AccessKind::Read)]);
                t.add_flops(10);
                t
            })
            .collect();
        let s = aggregate("k", cfg, 32, &[traces], 10.0);
        assert_eq!(s.flops as u64, 3200);
        assert_eq!(s.transactions as u64, 40);
        assert_eq!(s.threads, 320);
        assert_eq!(s.warps, 10);
        assert_eq!(s.sampled_warps, 1);
    }

    #[test]
    fn atomic_conflicts_tracked() {
        let cfg = LaunchConfig::new(1, 32);
        // All 32 threads hit the same atomic address; 16 hit another.
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| {
                let mut t = ThreadTrace::default();
                t.record(0, 4, AccessKind::Atomic);
                if i < 16 {
                    t.record(64, 4, AccessKind::Atomic);
                }
                t
            })
            .collect();
        let s = aggregate("k", cfg, 32, &[traces], 1.0);
        assert_eq!(s.atomic_ops as u64, 48);
        assert_eq!(s.atomic_max_conflict as u64, 32);
    }

    #[test]
    fn chain_length_reduces_mlp() {
        let cfg = LaunchConfig::new(1, 32);
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|_| {
                let mut t = ThreadTrace::default();
                for j in 0..8u64 {
                    t.record(j * 4096, 16, AccessKind::ReadDependent);
                }
                t
            })
            .collect();
        let s = aggregate("k", cfg, 32, &[traces], 1.0);
        assert!((s.chain_len - 8.0).abs() < 1e-9);
        assert!((s.mlp() - 1.0).abs() < 1e-9, "fully chained → mlp 1");
    }

    #[test]
    fn independent_ops_raise_mlp() {
        let cfg = LaunchConfig::new(1, 32);
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|_| {
                let mut t = ThreadTrace::default();
                for j in 0..8u64 {
                    t.record(j * 4096, 16, AccessKind::Read);
                }
                t
            })
            .collect();
        let s = aggregate("k", cfg, 32, &[traces], 1.0);
        assert!((s.mlp() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_traces_are_safe() {
        let cfg = LaunchConfig::new(1, 32);
        let s = aggregate("k", cfg, 32, &[], 1.0);
        assert_eq!(s.transactions, 0.0);
        assert_eq!(s.mlp(), 1.0);
    }
}
