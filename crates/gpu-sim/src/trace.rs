//! Memory-access tracing and per-warp coalescing analysis.
//!
//! Kernels access global memory through [`crate::gmem::Gmem`], which (for
//! sampled warps) records one [`Access`] per load/store. After a block
//! finishes, the executor groups the accesses of each warp by *slot* — the
//! per-thread instruction sequence number — and asks [`warp_transactions`]
//! how many DRAM transactions that warp instruction costs. This is the same
//! accounting a real profiler (`gld_transactions`) performs, and it is what
//! gives the simulator its sensitivity to the paper's coalescing
//! optimisations.

use serde::{Deserialize, Serialize};

/// What kind of memory operation an access was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Plain global load, independent of previous loads (address known
    /// up-front — e.g. after the paper's *index mapping* rewrite).
    Read,
    /// Global load whose address depends on the previous load's result
    /// (a pointer-chase / recurrence — e.g. `index = (index + ai) % n`).
    /// These form a latency chain the cost model cannot overlap.
    ReadDependent,
    /// Read-only-cache load (`__ldg`): charged like a read but assumed to
    /// hit the 48 KB read-only path, so it does not join the latency chain
    /// and does not occupy DRAM MSHRs (excluded from the MLP calculation).
    ReadOnly,
    /// L2-resident producer-consumer read: data written by an immediately
    /// preceding kernel in the same stream whose working set fits in L2
    /// (the async-layout staging buffers). Free of DRAM traffic.
    CachedRead,
    /// Plain global store.
    Write,
    /// Store to an L2-resident scratch buffer that is consumed and
    /// discarded before eviction. Free of DRAM traffic.
    CachedWrite,
    /// Atomic read-modify-write.
    Atomic,
}

impl AccessKind {
    /// True for operations that extend the per-thread dependency chain.
    #[inline]
    pub fn is_dependent(self) -> bool {
        matches!(self, AccessKind::ReadDependent)
    }

    /// The transaction policy this access kind is serviced under.
    #[inline]
    pub fn policy(self) -> TxnPolicy {
        match self {
            AccessKind::Read | AccessKind::ReadDependent => TxnPolicy::CachedLine,
            _ => TxnPolicy::Segmented,
        }
    }
}

/// One recorded memory access by one thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Access {
    /// Per-thread instruction sequence number; lanes of a warp executing
    /// the same code see the same slot for the same source-level access.
    pub slot: u32,
    /// Byte address (buffer base ⊕ offset — the executor assigns disjoint
    /// synthetic base addresses per buffer).
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u32,
    /// Operation kind.
    pub kind: AccessKind,
}

/// The trace of a single (sampled) thread.
#[derive(Debug, Default, Clone)]
pub struct ThreadTrace {
    /// Recorded accesses in program order.
    pub accesses: Vec<Access>,
    /// Double-precision flops this thread reported.
    pub flops: u64,
    /// Weighted serial-dependence chain length. A fully dependent load
    /// contributes 1.0; an accumulator-chained load contributes `1/UNROLL`
    /// (the compiler can software-pipeline a modest unroll factor).
    pub chain_len: f32,
    next_slot: u32,
}

/// Overlap factor assumed for accumulator-chained loops
/// (`acc += a[i]*b[i]` with a per-iteration 64-bit mul/mod address
/// computation): on the in-order SMX such loops sustain ~1 outstanding
/// load per warp — the compiler cannot software-pipeline past the
/// accumulator and the address arithmetic. This is precisely the
/// inefficiency the paper's data-layout transformation removes.
pub const ACC_UNROLL: f32 = 1.0;

impl ThreadTrace {
    /// Records an access, assigning the next slot number.
    #[inline]
    pub fn record(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        let slot = self.next_slot;
        self.next_slot += 1;
        if kind.is_dependent() {
            self.chain_len += 1.0;
        }
        self.accesses.push(Access {
            slot,
            addr,
            bytes,
            kind,
        });
    }

    /// Records a load that feeds a serial accumulator: independent address
    /// (so it coalesces like a plain read) but partially chained execution.
    #[inline]
    pub fn record_acc(&mut self, addr: u64, bytes: u32) {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.chain_len += 1.0 / ACC_UNROLL;
        self.accesses.push(Access {
            slot,
            addr,
            bytes,
            kind: AccessKind::Read,
        });
    }

    /// Adds to the flop count.
    #[inline]
    pub fn add_flops(&mut self, n: u64) {
        self.flops += n;
    }
}

/// Result of coalescing analysis for one warp-level instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpTxn {
    /// Number of DRAM transactions issued.
    pub transactions: u64,
    /// Bytes of DRAM traffic generated.
    pub bytes: u64,
}

/// How a warp memory instruction is serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnPolicy {
    /// Default load path: whole `transaction_bytes`-wide cache lines are
    /// fetched per distinct line touched. Scattered access through this
    /// path suffers the full 128-byte amplification — the memory
    /// behaviour of the paper's *baseline* kernels.
    CachedLine,
    /// Read-only (`__ldg`) / store / atomic path: the hardware issues
    /// fine-grained `scatter_segment_bytes` segments when that moves less
    /// data (Kepler emits 32 B segments when L1 is bypassed).
    Segmented,
}

/// Computes the transactions one warp instruction generates, given the
/// addresses (and access width) of the participating lanes and the
/// service policy.
///
/// A fully coalesced warp touching 512 contiguous bytes costs 4×128 B
/// under either policy; a fully scattered warp of 16 B accesses costs
/// 32×128 B via [`TxnPolicy::CachedLine`] but only 32×32 B via
/// [`TxnPolicy::Segmented`].
pub fn warp_transactions(
    addrs: &[(u64, u32)],
    transaction_bytes: usize,
    scatter_segment_bytes: usize,
    policy: TxnPolicy,
) -> WarpTxn {
    if addrs.is_empty() {
        return WarpTxn {
            transactions: 0,
            bytes: 0,
        };
    }
    let lines = distinct_segments(addrs, transaction_bytes as u64);
    let line_bytes = lines * transaction_bytes as u64;
    if policy == TxnPolicy::CachedLine {
        return WarpTxn {
            transactions: lines,
            bytes: line_bytes,
        };
    }
    let segs = distinct_segments(addrs, scatter_segment_bytes as u64);
    let seg_bytes = segs * scatter_segment_bytes as u64;
    if line_bytes <= seg_bytes {
        WarpTxn {
            transactions: lines,
            bytes: line_bytes,
        }
    } else {
        WarpTxn {
            transactions: segs,
            bytes: seg_bytes,
        }
    }
}

/// Counts the distinct aligned segments of width `seg` touched by the given
/// `(addr, bytes)` accesses.
fn distinct_segments(addrs: &[(u64, u32)], seg: u64) -> u64 {
    let mut ids: Vec<u64> = Vec::with_capacity(addrs.len() * 2);
    for &(a, b) in addrs {
        let first = a / seg;
        let last = (a + b.max(1) as u64 - 1) / seg;
        for s in first..=last {
            ids.push(s);
        }
    }
    ids.sort_unstable();
    ids.dedup();
    ids.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_warp_uses_full_lines() {
        // 32 lanes × 16-byte complex, contiguous: 512 bytes = 4 lines.
        let addrs: Vec<(u64, u32)> = (0..32).map(|i| (i * 16, 16)).collect();
        let t = warp_transactions(&addrs, 128, 32, TxnPolicy::Segmented);
        assert_eq!(t.transactions, 4);
        assert_eq!(t.bytes, 512);
    }

    #[test]
    fn scattered_warp_uses_segments() {
        // 32 lanes reading 16 bytes each, 1 MB apart: 32 segments of 32 B.
        let addrs: Vec<(u64, u32)> = (0..32).map(|i| (i * 1_048_576, 16)).collect();
        let t = warp_transactions(&addrs, 128, 32, TxnPolicy::Segmented);
        assert_eq!(t.transactions, 32);
        assert_eq!(t.bytes, 32 * 32);
    }

    #[test]
    fn scattered_traffic_exceeds_coalesced() {
        let coalesced: Vec<(u64, u32)> = (0..32).map(|i| (i * 16, 16)).collect();
        let scattered: Vec<(u64, u32)> = (0..32).map(|i| (i * 4096, 16)).collect();
        let a = warp_transactions(&coalesced, 128, 32, TxnPolicy::Segmented);
        let b = warp_transactions(&scattered, 128, 32, TxnPolicy::Segmented);
        assert!(b.bytes == 2 * a.bytes, "32×32 B vs 4×128 B");
        assert!(b.transactions > a.transactions);
    }

    #[test]
    fn broadcast_is_one_transaction() {
        let addrs: Vec<(u64, u32)> = (0..32).map(|_| (4096, 8)).collect();
        let t = warp_transactions(&addrs, 128, 32, TxnPolicy::Segmented);
        assert_eq!(t.transactions, 1);
        assert_eq!(t.bytes, 32);
    }

    #[test]
    fn access_straddling_boundary_counts_both_segments() {
        // A 16-byte access starting 8 bytes before a 32 B boundary.
        let addrs = [(24u64, 16u32)];
        let t = warp_transactions(&addrs, 128, 32, TxnPolicy::Segmented);
        // 1 line of 128 B vs 2 segments of 32 B = 64 B: segments win.
        assert_eq!(t.bytes, 64);
        assert_eq!(t.transactions, 2);
    }

    #[test]
    fn empty_warp_is_free() {
        let t = warp_transactions(&[], 128, 32, TxnPolicy::Segmented);
        assert_eq!(t.transactions, 0);
        assert_eq!(t.bytes, 0);
    }

    #[test]
    fn strided_access_partial_coalescing() {
        // stride 64 bytes: 32 lanes touch 16 lines of 128 B, or 32 segments.
        let addrs: Vec<(u64, u32)> = (0..32).map(|i| (i * 64, 16)).collect();
        let t = warp_transactions(&addrs, 128, 32, TxnPolicy::Segmented);
        // 16 lines × 128 = 2048 vs 32 segs × 32 = 1024 → segments.
        assert_eq!(t.bytes, 1024);
    }

    #[test]
    fn thread_trace_slots_and_chain() {
        let mut tr = ThreadTrace::default();
        tr.record(0, 16, AccessKind::Read);
        tr.record(128, 16, AccessKind::ReadDependent);
        tr.record(256, 16, AccessKind::ReadDependent);
        tr.add_flops(10);
        assert_eq!(tr.accesses.len(), 3);
        assert_eq!(tr.accesses[0].slot, 0);
        assert_eq!(tr.accesses[2].slot, 2);
        assert_eq!(tr.chain_len, 2.0);
        assert_eq!(tr.flops, 10);
    }

    #[test]
    fn accumulator_load_partially_chains() {
        let mut tr = ThreadTrace::default();
        for i in 0..8u64 {
            tr.record_acc(i * 64, 16);
        }
        assert_eq!(tr.accesses.len(), 8);
        assert!((tr.chain_len - 8.0 / ACC_UNROLL).abs() < 1e-6);
        assert!(tr.accesses.iter().all(|a| a.kind == AccessKind::Read));
    }

    #[test]
    fn dependent_kind_flag() {
        assert!(AccessKind::ReadDependent.is_dependent());
        assert!(!AccessKind::Read.is_dependent());
        assert!(!AccessKind::ReadOnly.is_dependent());
        assert!(!AccessKind::Write.is_dependent());
    }
}
