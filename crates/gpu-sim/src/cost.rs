//! The analytic kernel cost model.
//!
//! A kernel's duration is the maximum of three resource times plus fixed
//! overheads — the standard roofline extended with a latency (Little's
//! law) term and an atomic-serialisation term:
//!
//! * **bandwidth**: `dram_bytes / effective_bandwidth`
//! * **latency**: `transactions × mem_latency / in_flight`, where
//!   `in_flight = resident_warps × MLP`. This is what punishes
//!   under-occupied kernels (e.g. Algorithm 2 launches only `B ≈ 4k`
//!   threads on a device that wants ~29k resident) and serial dependence
//!   chains (the pre-index-mapping recurrence) — exactly the effects the
//!   paper's optimisations target.
//! * **compute**: `flops / peak`, degraded at low occupancy where ALU
//!   latency cannot be hidden.
//! * **atomics**: the worst per-address serialisation depth times the
//!   per-RMW retire time (the contention cost the loop-partition kernel
//!   eliminates).
//!
//! Everything is deterministic: same kernel, same stats, same time.

use crate::metrics::KernelStats;
use crate::spec::DeviceSpec;

/// Warps per SM needed to hide ALU latency on Kepler-class cores.
const WARPS_FOR_ALU: f64 = 16.0;

/// Breakdown of a kernel's modelled duration, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Bandwidth-limited time.
    pub t_bandwidth: f64,
    /// Latency-limited time (Little's law).
    pub t_latency: f64,
    /// Compute-limited time (occupancy-degraded).
    pub t_compute: f64,
    /// Atomic serialisation time.
    pub t_atomic: f64,
    /// Fixed launch overhead.
    pub t_launch: f64,
    /// Total modelled duration.
    pub total: f64,
}

/// Resident warps once occupancy limits (warp slots, shared memory,
/// blocks-per-SM) are applied.
pub fn resident_warps(spec: &DeviceSpec, stats: &KernelStats) -> f64 {
    let warps_per_block = stats.block_dim.div_ceil(spec.warp_size) as f64;
    let mut blocks_per_sm = (spec.max_warps_per_sm as f64 / warps_per_block).floor().max(1.0);
    // Kepler caps resident blocks per SM at 16.
    blocks_per_sm = blocks_per_sm.min(16.0);
    if stats.shared_mem_bytes > 0 {
        let by_shared = (spec.shared_mem_per_sm as f64 / stats.shared_mem_bytes as f64).floor();
        blocks_per_sm = blocks_per_sm.min(by_shared.max(1.0));
    }
    let per_sm_warps = (blocks_per_sm * warps_per_block).min(spec.max_warps_per_sm as f64);
    let device_capacity = per_sm_warps * spec.sm_count as f64;
    (stats.warps as f64).min(device_capacity).max(1.0)
}

/// Computes the modelled duration of one kernel launch.
pub fn kernel_cost(spec: &DeviceSpec, stats: &KernelStats) -> KernelCost {
    let resident = resident_warps(spec, stats);

    let t_bandwidth = stats.dram_bytes / spec.effective_bandwidth();

    let in_flight = resident * stats.mlp();
    let t_latency = if stats.transactions > 0.0 {
        stats.transactions * (spec.mem_latency_ns * 1e-9) / in_flight
    } else {
        0.0
    };

    let occupancy_util =
        (resident / (spec.sm_count as f64 * WARPS_FOR_ALU)).clamp(1e-6, 1.0);
    let t_compute = if stats.flops > 0.0 {
        stats.flops / spec.peak_fp64_flops() / occupancy_util
    } else {
        0.0
    };

    // Atomics serialise per address (worst-case conflict depth) and are
    // additionally bounded by aggregate L2 atomic throughput (~32 banks).
    const ATOMIC_BANKS: f64 = 32.0;
    let t_atomic = stats.atomic_max_conflict * spec.atomic_ns * 1e-9
        + stats.atomic_ops * spec.atomic_ns * 1e-9 / ATOMIC_BANKS;

    let t_launch = spec.launch_overhead_us * 1e-6;
    let total = t_launch + t_bandwidth.max(t_latency).max(t_compute) + t_atomic;
    KernelCost {
        t_bandwidth,
        t_latency,
        t_compute,
        t_atomic,
        t_launch,
        total,
    }
}

/// PCIe transfer time for `bytes` in one direction.
pub fn transfer_time(spec: &DeviceSpec, bytes: usize) -> f64 {
    spec.pcie_latency_us * 1e-6 + bytes as f64 / spec.pcie_bandwidth
}

/// Dominant resource of a kernel, for profiler reports.
pub fn bound_by(cost: &KernelCost) -> &'static str {
    let m = cost.t_bandwidth.max(cost.t_latency).max(cost.t_compute);
    if cost.t_atomic > m {
        "atomic"
    } else if m == cost.t_bandwidth {
        "bandwidth"
    } else if m == cost.t_latency {
        "latency"
    } else {
        "compute"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchConfig;

    fn stats(threads: u64, block_dim: u32) -> KernelStats {
        let cfg = LaunchConfig::for_elements(threads as usize, block_dim);
        KernelStats {
            name: "t".into(),
            threads: cfg.total_threads(),
            warps: cfg.total_warps(32),
            sampled_warps: 1,
            block_dim,
            grid_dim: cfg.grid_dim,
            ..Default::default()
        }
    }

    #[test]
    fn bandwidth_bound_kernel() {
        let spec = DeviceSpec::tesla_k20x();
        let mut s = stats(1 << 20, 256);
        s.dram_bytes = 1e9; // 1 GB of traffic
        s.transactions = 1e9 / 128.0;
        s.mem_ops = 1e9 / 16.0;
        s.ops_per_thread = s.mem_ops / s.threads as f64;
        let c = kernel_cost(&spec, &s);
        // 1 GB / 187.5 GB/s ≈ 5.3 ms
        assert!((c.t_bandwidth - 1e9 / 187.5e9).abs() / c.t_bandwidth < 1e-9);
        assert!(c.total >= c.t_bandwidth);
        assert_eq!(bound_by(&c), "bandwidth");
    }

    #[test]
    fn low_occupancy_is_latency_bound() {
        let spec = DeviceSpec::tesla_k20x();
        // 4096 threads, each doing 128 scattered dependent loads.
        let mut s = stats(4096, 256);
        s.transactions = 4096.0 * 128.0;
        s.mem_ops = s.transactions;
        s.dram_bytes = s.transactions * 32.0;
        s.ops_per_thread = 128.0;
        s.chain_len = 128.0;
        let c = kernel_cost(&spec, &s);
        assert!(
            c.t_latency > c.t_bandwidth,
            "under-occupied chained kernel must be latency bound: {c:?}"
        );
        assert_eq!(bound_by(&c), "latency");
    }

    #[test]
    fn full_occupancy_same_traffic_is_faster() {
        let spec = DeviceSpec::tesla_k20x();
        let total_txns = 4096.0 * 128.0;
        // Same total transactions, spread over many independent threads.
        let mut wide = stats(4096 * 128, 256);
        wide.transactions = total_txns;
        wide.mem_ops = total_txns;
        wide.dram_bytes = total_txns * 32.0;
        wide.ops_per_thread = 1.0;

        let mut narrow = stats(4096, 256);
        narrow.transactions = total_txns;
        narrow.mem_ops = total_txns;
        narrow.dram_bytes = total_txns * 32.0;
        narrow.ops_per_thread = 128.0;
        narrow.chain_len = 128.0;

        let cw = kernel_cost(&spec, &wide);
        let cn = kernel_cost(&spec, &narrow);
        assert!(
            cw.total < cn.total / 4.0,
            "wide {:.3e} should be ≫ faster than narrow {:.3e}",
            cw.total,
            cn.total
        );
    }

    #[test]
    fn atomic_contention_adds_serial_time() {
        let spec = DeviceSpec::tesla_k20x();
        let mut s = stats(1 << 16, 256);
        s.atomic_ops = 65536.0;
        s.atomic_max_conflict = 65536.0; // all threads on one address
        let c = kernel_cost(&spec, &s);
        let expected = 65536.0 * 6e-9 + 65536.0 * 6e-9 / 32.0;
        assert!((c.t_atomic - expected).abs() < 1e-12);
        assert_eq!(bound_by(&c), "atomic");
    }

    #[test]
    fn compute_bound_kernel() {
        let spec = DeviceSpec::tesla_k20x();
        let mut s = stats(1 << 22, 256);
        s.flops = 1e12;
        let c = kernel_cost(&spec, &s);
        assert!(c.t_compute > c.t_bandwidth);
        assert_eq!(bound_by(&c), "compute");
        // 1e12 flops at ~1.3 TF/s ≈ 0.76 s.
        assert!((0.1..10.0).contains(&c.t_compute));
    }

    #[test]
    fn low_occupancy_degrades_compute() {
        let spec = DeviceSpec::tesla_k20x();
        let mut few = stats(1024, 256);
        few.flops = 1e9;
        let mut many = stats(1 << 20, 256);
        many.flops = 1e9;
        let cf = kernel_cost(&spec, &few);
        let cm = kernel_cost(&spec, &many);
        assert!(cf.t_compute > cm.t_compute);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let spec = DeviceSpec::tesla_k20x();
        let mut s = stats(1 << 20, 256);
        let baseline = resident_warps(&spec, &s);
        s.shared_mem_bytes = 32 * 1024; // 2 blocks per SM max
        let limited = resident_warps(&spec, &s);
        assert!(limited < baseline);
        assert_eq!(limited, 2.0 * 8.0 * 14.0); // 2 blocks × 8 warps × 14 SMs
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let spec = DeviceSpec::tesla_k20x();
        let t1 = transfer_time(&spec, 6_000_000);
        let t2 = transfer_time(&spec, 12_000_000);
        // Slope check net of fixed latency.
        let fixed = transfer_time(&spec, 0);
        assert!(((t2 - fixed) - 2.0 * (t1 - fixed)).abs() < 1e-12);
        assert!((fixed - 10e-6).abs() < 1e-12);
    }

    #[test]
    fn launch_overhead_always_charged() {
        let spec = DeviceSpec::tesla_k20x();
        let s = stats(32, 32);
        let c = kernel_cost(&spec, &s);
        assert!(c.total >= 4.9e-6);
    }

    #[test]
    fn cost_is_deterministic() {
        let spec = DeviceSpec::tesla_k20x();
        let mut s = stats(1 << 18, 256);
        s.dram_bytes = 12345678.0;
        s.transactions = 9999.0;
        s.flops = 1e8;
        assert_eq!(kernel_cost(&spec, &s), kernel_cost(&spec, &s));
    }
}
