//! Typed, recoverable device errors.
//!
//! Real GPU services fail in well-characterised ways — allocation failure
//! against the K20x's 6 GB, PCIe transfer errors, kernel launch failures
//! and watchdog timeouts, ECC-detected memory corruption. Every fallible
//! device entry point (`GpuDevice::try_*`) reports one of these variants
//! instead of panicking, so callers can retry, evict the failing request,
//! or degrade to a CPU path (see `cusfft::serve`).

/// Direction of a host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host → device (`cudaMemcpyHostToDevice`).
    HostToDevice,
    /// Device → host (`cudaMemcpyDeviceToHost`).
    DeviceToHost,
}

impl std::fmt::Display for TransferDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferDir::HostToDevice => write!(f, "htod"),
            TransferDir::DeviceToHost => write!(f, "dtoh"),
        }
    }
}

/// A recoverable device-side failure.
///
/// Variants map onto the CUDA error classes a production service must
/// survive (`cudaErrorMemoryAllocation`, transfer failures,
/// `cudaErrorLaunchFailure` / `cudaErrorLaunchTimeout`, and detected
/// double-bit ECC errors). All of them are injectable through
/// [`crate::fault::FaultConfig`]; `OutOfMemory` can also occur for real
/// when tracked allocations exceed [`crate::spec::DeviceSpec::global_mem_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// Device DRAM exhausted: a tracked allocation did not fit.
    OutOfMemory {
        /// Bytes the allocation asked for (256-byte aligned).
        requested: u64,
        /// Bytes free at the time of the request.
        free: u64,
        /// Total device capacity (`DeviceSpec::global_mem_bytes`).
        capacity: u64,
    },
    /// A host↔device copy failed after occupying the copy engine.
    TransferFailure {
        /// Which direction the copy was going.
        dir: TransferDir,
        /// Payload size.
        bytes: usize,
    },
    /// A kernel failed at launch (no blocks executed, only the launch
    /// overhead was charged).
    LaunchFailure {
        /// Kernel label.
        kernel: String,
    },
    /// A kernel hit the watchdog: the timeout window was charged on the
    /// timeline and the launch produced no results.
    LaunchTimeout {
        /// Kernel label.
        kernel: String,
        /// Simulated seconds the watchdog waited before killing it.
        waited_s: f64,
    },
    /// ECC detected an uncorrectable error in the data a device→host copy
    /// read. Transient by nature — the device retires the page and a
    /// retry re-reads clean data.
    EccCorruption {
        /// Size of the affected buffer.
        buffer_bytes: usize,
    },
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                free,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {free} B free \
                 of {capacity} B"
            ),
            GpuError::TransferFailure { dir, bytes } => {
                write!(f, "{dir} transfer of {bytes} B failed")
            }
            GpuError::LaunchFailure { kernel } => write!(f, "kernel '{kernel}' failed to launch"),
            GpuError::LaunchTimeout { kernel, waited_s } => {
                write!(f, "kernel '{kernel}' timed out after {waited_s:.3e} s")
            }
            GpuError::EccCorruption { buffer_bytes } => {
                write!(f, "ECC uncorrectable error in {buffer_bytes} B buffer")
            }
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GpuError::OutOfMemory {
            requested: 1024,
            free: 512,
            capacity: 2048,
        };
        let s = e.to_string();
        assert!(s.contains("1024") && s.contains("512") && s.contains("2048"));

        let e = GpuError::TransferFailure {
            dir: TransferDir::DeviceToHost,
            bytes: 64,
        };
        assert!(e.to_string().contains("dtoh"));

        let e = GpuError::LaunchTimeout {
            kernel: "remap".into(),
            waited_s: 0.1,
        };
        assert!(e.to_string().contains("remap"));

        let e = GpuError::EccCorruption { buffer_bytes: 128 };
        assert!(e.to_string().contains("ECC"));

        let e = GpuError::LaunchFailure {
            kernel: "locate".into(),
        };
        assert!(e.to_string().contains("locate"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = GpuError::LaunchFailure { kernel: "k".into() };
        let b = GpuError::LaunchFailure { kernel: "k".into() };
        assert_eq!(a, b);
        assert_ne!(
            a,
            GpuError::LaunchTimeout {
                kernel: "k".into(),
                waited_s: 0.0
            }
        );
    }
}
