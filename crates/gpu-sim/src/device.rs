//! The simulated device: kernel launches, transfers, streams, and the
//! simulated clock.
//!
//! Kernels execute *functionally* on the host — thread-block chunks run
//! concurrently on the shared work-stealing pool behind the vendored
//! `rayon` (sized by `CUSFFT_HOST_THREADS`; `=1` is the sequential
//! path) — while a sampled subset of blocks is traced for the cost
//! model. Two launch shapes cover every kernel in the paper:
//!
//! * [`GpuDevice::launch_map`] — thread `tid` computes `out[tid] = f(tid)`.
//!   Safe scatter-free writes; the pool splits the output into disjoint
//!   per-block chunks.
//! * [`GpuDevice::launch_foreach`] — threads read global memory and update
//!   [`crate::atomic`] arrays; no plain writes. This is the histogram /
//!   voting shape.
//!
//! # Determinism under host parallelism
//!
//! Results and the analytic cost timeline are **bit-identical across
//! pool sizes** (and to sequential execution) by construction:
//!
//! * blocks write disjoint output chunks or go through the atomic cells;
//! * trace sampling is keyed on `block_idx` (`block_idx % sample_every`),
//!   not on which thread ran the block;
//! * `par_*` collects block traces positionally, so `finish_launch`
//!   aggregates them in block order no matter the completion order;
//! * every launch appends exactly one [`Op`] under the state lock after
//!   all blocks finish, so op order is the enqueue order.
//!
//! Every launch and transfer appends an [`Op`] with its modelled duration
//! to the timeline; [`GpuDevice::elapsed`] replays the stream schedule and
//! returns the simulated makespan.

//!
//! # Faults
//!
//! Every fallible entry point (`try_*`) consults the device's installed
//! [`FaultConfig`] (if any) *before* doing the work: a failed launch
//! executes no blocks and a failed transfer moves no data, so retrying
//! after a fault never double-applies side effects (atomics included).
//! Injected faults are recorded as timeline ops (`fault:<kind>:<name>`)
//! charging the time the failure wasted. Tracked allocations are charged
//! against a [`MemPool`] sized from `DeviceSpec::global_mem_bytes`, so
//! OOM can also happen for real. The infallible legacy entry points
//! (`htod`, `launch_map`, …) delegate to the `try_*` forms and are valid
//! only on devices without a fault plan and within memory capacity —
//! they document that invariant in their `expect` messages.

use std::sync::Arc;

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::buffer::{BufferPool, DeviceBuffer, MemPool, PooledBuffer};
use crate::cost::{bound_by, kernel_cost, transfer_time, KernelCost};
use crate::error::{GpuError, TransferDir};
use crate::fault::{FaultClass, FaultConfig, FaultState, SdcTarget};
use crate::gmem::Gmem;
use crate::launch::{LaunchConfig, ThreadCtx};
use crate::metrics::{aggregate, KernelStats};
use crate::spec::DeviceSpec;
use crate::timeline::{schedule, Engine, Op, StreamId};
use crate::trace::ThreadTrace;

/// Upper bound on traced threads per launch — keeps tracing overhead flat
/// regardless of problem size.
const MAX_SAMPLED_THREADS: u64 = 1 << 14;

/// One completed launch (or transfer), for profiler reports.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    /// Kernel or transfer label.
    pub name: String,
    /// Aggregated statistics (empty for transfers).
    pub stats: KernelStats,
    /// Modelled cost breakdown.
    pub cost: KernelCost,
    /// Stream the op ran on.
    pub stream: StreamId,
    /// Dominant resource ("bandwidth" / "latency" / "compute" / "atomic" /
    /// "pcie").
    pub bound: &'static str,
}

/// The default stream.
pub const DEFAULT_STREAM: StreamId = StreamId(0);

/// A recorded event: completion of everything enqueued on a stream at
/// record time (CUDA `cudaEventRecord`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(usize);

struct DeviceState {
    ops: Vec<Op>,
    records: Vec<LaunchRecord>,
    next_stream: u32,
    /// Recorded events: the op id each event marks (None when the stream
    /// was empty at record time — an already-satisfied event).
    events: Vec<Option<usize>>,
    /// Event waits registered per stream, attached to that stream's next
    /// enqueued op (CUDA `cudaStreamWaitEvent`).
    pending_waits: Vec<(StreamId, usize)>,
    /// Installed fault plan, if any. Lives under the state lock so fault
    /// ordinals are consumed in op-enqueue order.
    fault: Option<FaultState>,
    /// Fault-domain salt XOR-ed into every scope passed to
    /// [`GpuDevice::set_fault_scope`]. 0 = no salt. The fleet layer sets
    /// a per-member salt in the high bits (≥ 44, disjoint from the
    /// serving layer's group/retry scope layout) so the same group rolls
    /// an independent fault timeline on each device it lands on.
    fault_scope_salt: u64,
    /// Current attribution tag stamped onto every enqueued op (see
    /// [`Op::tag`]). 0 = untagged.
    op_tag: u64,
}

/// A simulated CUDA device.
pub struct GpuDevice {
    spec: DeviceSpec,
    /// Device DRAM accounting for tracked allocations.
    pool: Arc<MemPool>,
    state: Mutex<DeviceState>,
}

impl GpuDevice {
    /// Creates a device with the given spec.
    pub fn new(spec: DeviceSpec) -> Self {
        let pool = Arc::new(MemPool::new(spec.global_mem_bytes as u64));
        GpuDevice {
            spec,
            pool,
            state: Mutex::new(DeviceState {
                ops: Vec::new(),
                records: Vec::new(),
                next_stream: 1,
                events: Vec::new(),
                pending_waits: Vec::new(),
                fault: None,
                fault_scope_salt: 0,
                op_tag: 0,
            }),
        }
    }

    /// Creates the paper's test-bench device (Tesla K20x).
    pub fn k20x() -> Self {
        Self::new(DeviceSpec::tesla_k20x())
    }

    /// Creates a device with `config`'s fault plan pre-installed (`None`
    /// provisions a clean device). The serving layer's execution backends
    /// route every device they construct through this, so provisioning
    /// has a single audited entry point.
    pub fn with_fault_plan(spec: DeviceSpec, config: Option<FaultConfig>) -> Self {
        let device = Self::new(spec);
        if let Some(fc) = config {
            device.install_fault_plan(fc);
        }
        device
    }

    /// Device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Installs a deterministic fault plan: subsequent `try_*` calls roll
    /// against it. Replaces any previous plan and resets its counters.
    pub fn install_fault_plan(&self, config: FaultConfig) {
        self.state.lock().fault = Some(FaultState::new(config));
    }

    /// Removes the fault plan; `try_*` calls stop faulting.
    pub fn clear_fault_plan(&self) {
        self.state.lock().fault = None;
    }

    /// Enters fault scope `scope` (see `crate::fault`): fault decisions
    /// become a pure function of `(seed, scope, op ordinal within the
    /// scope)`, independent of what ran on this device before. No-op
    /// without an installed plan.
    pub fn set_fault_scope(&self, scope: u64) {
        let mut st = self.state.lock();
        let salt = st.fault_scope_salt;
        if let Some(f) = st.fault.as_mut() {
            f.set_scope(scope ^ salt);
        }
    }

    /// Installs a fault-domain salt XOR-ed into every subsequent
    /// [`GpuDevice::set_fault_scope`] call (and applied to the current
    /// scope immediately). The fleet layer gives each member a salt in
    /// the high scope bits so identical workloads roll independent fault
    /// timelines per device — that is what makes fleet members distinct
    /// *fault domains* rather than replicas that all fail together.
    pub fn set_fault_scope_salt(&self, salt: u64) {
        let mut st = self.state.lock();
        st.fault_scope_salt = salt;
        if let Some(f) = st.fault.as_mut() {
            f.set_scope(salt);
        }
    }

    /// Number of faults injected since the plan was installed.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().fault.as_ref().map_or(0, |f| f.injected())
    }

    /// Sets the attribution tag stamped onto every subsequently enqueued
    /// op (see [`Op::tag`]). The simulator never interprets the value;
    /// telemetry layers use it to attach ops to spans. Pass 0 to clear.
    pub fn set_op_tag(&self, tag: u64) {
        self.state.lock().op_tag = tag;
    }

    /// Whether result-integrity checks should run against this device:
    /// true when an installed fault plan can silently corrupt
    /// device→host payloads. Pipelines gate their (non-free) residual
    /// checks on this so fault-free timelines stay bit-identical to the
    /// pre-SDC model.
    pub fn sdc_checks_enabled(&self) -> bool {
        self.state
            .lock()
            .fault
            .as_ref()
            .is_some_and(|f| f.config.sdc_rate > 0.0)
    }

    /// Total device memory (`DeviceSpec::global_mem_bytes`).
    pub fn capacity_bytes(&self) -> u64 {
        self.pool.capacity()
    }

    /// Bytes reserved by live tracked allocations.
    pub fn used_bytes(&self) -> u64 {
        self.pool.used()
    }

    /// Bytes available to tracked allocations.
    pub fn free_bytes(&self) -> u64 {
        self.pool.free()
    }

    /// Successful `MemPool` reservations since device creation
    /// (monotonic). The delta across a request is the per-request
    /// allocation traffic — zero in a warmed steady state.
    pub fn pool_alloc_ops(&self) -> u64 {
        self.pool.alloc_ops()
    }

    /// `MemPool` reservation releases since device creation (monotonic).
    pub fn pool_release_ops(&self) -> u64 {
        self.pool.release_ops()
    }

    /// Creates a new stream.
    pub fn create_stream(&self) -> StreamId {
        let mut st = self.state.lock();
        let id = st.next_stream;
        st.next_stream += 1;
        StreamId(id)
    }

    /// Records an event on `stream`: it fires when everything enqueued on
    /// the stream so far has completed (`cudaEventRecord`).
    pub fn record_event(&self, stream: StreamId) -> EventId {
        let mut st = self.state.lock();
        let last = st.ops.iter().rev().find(|o| o.stream == stream).map(|o| o.id);
        st.events.push(last);
        EventId(st.events.len() - 1)
    }

    /// Makes the *next* operation enqueued on `stream` wait for `event`
    /// (`cudaStreamWaitEvent`).
    pub fn stream_wait_event(&self, stream: StreamId, event: EventId) {
        let mut st = self.state.lock();
        if let Some(Some(op_id)) = st.events.get(event.0).copied() {
            st.pending_waits.push((stream, op_id));
        }
        // An event recorded on an empty stream is already satisfied.
    }

    fn take_waits(st: &mut DeviceState, stream: StreamId) -> Vec<usize> {
        let mut deps = Vec::new();
        st.pending_waits.retain(|&(s, d)| {
            if s == stream {
                deps.push(d);
                false
            } else {
                true
            }
        });
        deps
    }

    /// Rolls the fault decision for the next device op; must be called
    /// with the state lock held so ordinals follow op-enqueue order. The
    /// trailing `u64` is deterministic corruption entropy (used by the
    /// SDC class to pick the corrupted element and bit).
    fn decide_fault(
        st: &mut DeviceState,
        classes: &[FaultClass],
    ) -> Option<(FaultClass, FaultConfig, u64)> {
        let f = st.fault.as_mut()?;
        let cfg = f.config;
        f.decide(classes).map(|(c, entropy)| (c, cfg, entropy))
    }

    /// Records an injected fault as a timeline op charging the time the
    /// failure wasted (`fault:<kind>:<what>`).
    fn push_fault_op(
        st: &mut DeviceState,
        class: FaultClass,
        what: &str,
        engine: Engine,
        duration: f64,
        stream: StreamId,
    ) {
        let id = st.ops.len();
        let label = format!("fault:{}:{what}", class.label());
        let mut op = Op::new(id, stream, engine, duration, label.clone());
        op.wait_for = Self::take_waits(st, stream);
        op.tag = st.op_tag;
        st.ops.push(op);
        st.records.push(LaunchRecord {
            name: label,
            stats: KernelStats::default(),
            cost: KernelCost {
                total: duration,
                ..Default::default()
            },
            stream,
            bound: "fault",
        });
    }

    /// Host→device copy; charges PCIe time on `stream`. The allocation is
    /// tracked against device capacity; the copy can fault (injected OOM
    /// or transfer failure). A failed transfer still occupied the copy
    /// engine for its full duration (recorded as a `fault:` op) but moved
    /// no data.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_htod<T: Copy>(
        &self,
        host: &[T],
        stream: StreamId,
    ) -> Result<DeviceBuffer<T>, GpuError> {
        let bytes = std::mem::size_of_val(host);
        {
            let mut st = self.state.lock();
            match Self::decide_fault(&mut st, &[FaultClass::Alloc, FaultClass::H2d]) {
                Some((FaultClass::Alloc, ..)) => {
                    Self::push_fault_op(&mut st, FaultClass::Alloc, "htod", Engine::Pcie, 0.0, stream);
                    return Err(GpuError::OutOfMemory {
                        requested: bytes as u64,
                        free: self.pool.free(),
                        capacity: self.pool.capacity(),
                    });
                }
                Some((FaultClass::H2d, ..)) => {
                    let dur = transfer_time(&self.spec, bytes);
                    Self::push_fault_op(&mut st, FaultClass::H2d, "htod", Engine::Pcie, dur, stream);
                    return Err(GpuError::TransferFailure {
                        dir: TransferDir::HostToDevice,
                        bytes,
                    });
                }
                _ => {}
            }
        }
        let buf = DeviceBuffer::from_host_in(host, &self.pool)?;
        self.push_transfer("htod", buf.size_bytes(), stream);
        Ok(buf)
    }

    /// Host→device copy; charges PCIe time on `stream`.
    ///
    /// Invariant: valid only on a device without a fault plan and within
    /// memory capacity — serving-path code uses [`GpuDevice::try_htod`].
    pub fn htod<T: Copy>(&self, host: &[T], stream: StreamId) -> DeviceBuffer<T> {
        self.try_htod(host, stream)
            .expect("htod on a fault-free device within capacity")
    }

    /// Allocates a zeroed device buffer, tracked against device capacity
    /// (cudaMalloc+cudaMemset; modelled as time-free, matching the
    /// paper's timing which excludes allocation — but no longer
    /// *capacity*-free). Fails with a typed OOM when the device is full
    /// or an OOM fault is injected.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_alloc_zeroed<T: Copy + Default>(
        &self,
        len: usize,
        stream: StreamId,
    ) -> Result<DeviceBuffer<T>, GpuError> {
        {
            let mut st = self.state.lock();
            if let Some((FaultClass::Alloc, ..)) = Self::decide_fault(&mut st, &[FaultClass::Alloc])
            {
                Self::push_fault_op(&mut st, FaultClass::Alloc, "alloc", Engine::Device, 0.0, stream);
                return Err(GpuError::OutOfMemory {
                    requested: (len * std::mem::size_of::<T>()) as u64,
                    free: self.pool.free(),
                    capacity: self.pool.capacity(),
                });
            }
        }
        DeviceBuffer::zeroed_in(len, &self.pool)
    }

    /// Allocates a zeroed device buffer.
    ///
    /// Invariant: valid only on a device without a fault plan and within
    /// memory capacity — serving-path code uses
    /// [`GpuDevice::try_alloc_zeroed`].
    pub fn alloc_zeroed<T: Copy + Default>(&self, len: usize) -> DeviceBuffer<T> {
        self.try_alloc_zeroed(len, DEFAULT_STREAM)
            .expect("alloc on a fault-free device within capacity")
    }

    /// Makes `host` resident on the device as a tracked allocation
    /// *without* charging PCIe time — for data whose staging cost is
    /// accounted elsewhere (e.g. a serving request's signal, pinned once
    /// per batch). Subject to capacity and injected OOM.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_resident<T: Copy>(
        &self,
        host: &[T],
        stream: StreamId,
    ) -> Result<DeviceBuffer<T>, GpuError> {
        {
            let mut st = self.state.lock();
            if let Some((FaultClass::Alloc, ..)) = Self::decide_fault(&mut st, &[FaultClass::Alloc])
            {
                Self::push_fault_op(&mut st, FaultClass::Alloc, "resident", Engine::Device, 0.0, stream);
                return Err(GpuError::OutOfMemory {
                    requested: std::mem::size_of_val(host) as u64,
                    free: self.pool.free(),
                    capacity: self.pool.capacity(),
                });
            }
        }
        DeviceBuffer::from_host_in(host, &self.pool)
    }

    /// Pool-recycling variant of [`GpuDevice::try_alloc_zeroed`]: reuses
    /// an idle buffer from `pool` when one of exactly `len` elements is
    /// parked — no `MemPool` traffic and **no allocation fault gate**,
    /// since pooling models the removal of per-request `cudaMalloc` —
    /// falling back to a fresh tracked allocation otherwise.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_alloc_zeroed_pooled<T: Copy + Default>(
        &self,
        pool: &BufferPool<T>,
        len: usize,
        stream: StreamId,
    ) -> Result<PooledBuffer<T>, GpuError> {
        if let Some(buf) = pool.reuse_zeroed(len) {
            return Ok(buf);
        }
        pool.count_miss();
        Ok(pool.adopt(self.try_alloc_zeroed(len, stream)?))
    }

    /// Pool-recycling variant of [`GpuDevice::try_resident`]: reuses an
    /// idle buffer of exactly `host.len()` elements (overwritten with
    /// `host`, no `MemPool` traffic, no fault gate), falling back to a
    /// fresh tracked resident allocation. Like `try_resident`, no PCIe
    /// time is charged — staging cost is accounted by the caller (see
    /// [`GpuDevice::try_charge_htod`] for batched staging).
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_resident_pooled<T: Copy>(
        &self,
        pool: &BufferPool<T>,
        host: &[T],
        stream: StreamId,
    ) -> Result<PooledBuffer<T>, GpuError> {
        if let Some(buf) = pool.reuse_resident(host) {
            return Ok(buf);
        }
        pool.count_miss();
        Ok(pool.adopt(self.try_resident(host, stream)?))
    }

    /// Charges one aggregated host→device staging transfer of `bytes` on
    /// `stream` without materialising a buffer — the batched-transfer
    /// counterpart of the per-buffer paths: a serve group stages all its
    /// members' signals as **one** PCIe op (one `H2d` fault gate for the
    /// whole group) and the buffers themselves are made resident via
    /// [`GpuDevice::try_resident_pooled`], which charges nothing. A
    /// failed transfer still occupied the copy engine for its full
    /// duration but moved no data.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_charge_htod(
        &self,
        label: &str,
        bytes: usize,
        stream: StreamId,
    ) -> Result<(), GpuError> {
        {
            let mut st = self.state.lock();
            if let Some((FaultClass::H2d, ..)) = Self::decide_fault(&mut st, &[FaultClass::H2d]) {
                let dur = transfer_time(&self.spec, bytes);
                Self::push_fault_op(&mut st, FaultClass::H2d, label, Engine::Pcie, dur, stream);
                return Err(GpuError::TransferFailure {
                    dir: TransferDir::HostToDevice,
                    bytes,
                });
            }
        }
        self.push_transfer(label, bytes, stream);
        Ok(())
    }

    /// Device→host copy; charges PCIe time on `stream`. Can fault with a
    /// transfer failure or a detected-uncorrectable ECC error (both
    /// transient: the copy engine time is charged, no data is returned,
    /// and a retry rolls a fresh decision), or — for susceptible payload
    /// types, when `sdc_rate > 0` — *succeed* with one element of the
    /// returned copy silently corrupted (a zero-duration
    /// `fault:sdc:dtoh` marker op records the injection on the timeline;
    /// the device-side buffer stays intact, so a retry after detection
    /// re-reads clean data under a fresh decision).
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_dtoh<T: Copy + SdcTarget>(
        &self,
        buf: &DeviceBuffer<T>,
        stream: StreamId,
    ) -> Result<Vec<T>, GpuError> {
        let bytes = buf.size_bytes();
        let classes: &[FaultClass] = if T::SUSCEPTIBLE {
            &[FaultClass::D2h, FaultClass::Ecc, FaultClass::Sdc]
        } else {
            &[FaultClass::D2h, FaultClass::Ecc]
        };
        {
            let mut st = self.state.lock();
            match Self::decide_fault(&mut st, classes) {
                Some((FaultClass::D2h, ..)) => {
                    let dur = transfer_time(&self.spec, bytes);
                    Self::push_fault_op(&mut st, FaultClass::D2h, "dtoh", Engine::Pcie, dur, stream);
                    return Err(GpuError::TransferFailure {
                        dir: TransferDir::DeviceToHost,
                        bytes,
                    });
                }
                Some((FaultClass::Ecc, ..)) => {
                    let dur = transfer_time(&self.spec, bytes);
                    Self::push_fault_op(&mut st, FaultClass::Ecc, "dtoh", Engine::Pcie, dur, stream);
                    return Err(GpuError::EccCorruption { buffer_bytes: bytes });
                }
                Some((FaultClass::Sdc, _, entropy)) => {
                    Self::push_fault_op(&mut st, FaultClass::Sdc, "dtoh", Engine::Host, 0.0, stream);
                    drop(st);
                    self.push_transfer("dtoh", bytes, stream);
                    let mut data = buf.peek();
                    if !data.is_empty() {
                        let idx = (entropy as usize) % data.len();
                        data[idx].corrupt(entropy >> 8);
                    }
                    return Ok(data);
                }
                _ => {}
            }
        }
        self.push_transfer("dtoh", bytes, stream);
        Ok(buf.peek())
    }

    /// Grouped device→host copy: one aggregated PCIe transfer record
    /// for the concatenated payload, with fault and corruption
    /// decisions rolled **per constituent buffer**. Batching result
    /// transfers must not launder fault exposure — corruption odds
    /// follow the payloads moved, not the number of `cudaMemcpy` calls
    /// that move them — so each constituent rolls the same
    /// `[D2h, Ecc, (Sdc)]` gates it would roll as a standalone
    /// transfer. A hard fault on any constituent fails the whole
    /// grouped transfer (charged at the aggregate's PCIe duration); an
    /// SDC decision corrupts one element of that constituent's
    /// returned copy only, leaving device-side data intact for retry.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_dtoh_group<T: Copy + SdcTarget>(
        &self,
        bufs: &[&DeviceBuffer<T>],
        stream: StreamId,
    ) -> Result<Vec<Vec<T>>, GpuError> {
        let total_bytes: usize = bufs.iter().map(|b| b.size_bytes()).sum();
        let classes: &[FaultClass] = if T::SUSCEPTIBLE {
            &[FaultClass::D2h, FaultClass::Ecc, FaultClass::Sdc]
        } else {
            &[FaultClass::D2h, FaultClass::Ecc]
        };
        let mut out: Vec<Vec<T>> = Vec::with_capacity(bufs.len());
        {
            let mut st = self.state.lock();
            for buf in bufs {
                match Self::decide_fault(&mut st, classes) {
                    Some((FaultClass::D2h, ..)) => {
                        let dur = transfer_time(&self.spec, total_bytes);
                        Self::push_fault_op(
                            &mut st,
                            FaultClass::D2h,
                            "dtoh_group",
                            Engine::Pcie,
                            dur,
                            stream,
                        );
                        return Err(GpuError::TransferFailure {
                            dir: TransferDir::DeviceToHost,
                            bytes: total_bytes,
                        });
                    }
                    Some((FaultClass::Ecc, ..)) => {
                        let dur = transfer_time(&self.spec, total_bytes);
                        Self::push_fault_op(
                            &mut st,
                            FaultClass::Ecc,
                            "dtoh_group",
                            Engine::Pcie,
                            dur,
                            stream,
                        );
                        return Err(GpuError::EccCorruption {
                            buffer_bytes: total_bytes,
                        });
                    }
                    Some((FaultClass::Sdc, _, entropy)) => {
                        Self::push_fault_op(
                            &mut st,
                            FaultClass::Sdc,
                            "dtoh_group",
                            Engine::Host,
                            0.0,
                            stream,
                        );
                        let mut data = buf.peek();
                        if !data.is_empty() {
                            let idx = (entropy as usize) % data.len();
                            data[idx].corrupt(entropy >> 8);
                        }
                        out.push(data);
                    }
                    _ => out.push(buf.peek()),
                }
            }
        }
        self.push_transfer("dtoh_group", total_bytes, stream);
        Ok(out)
    }

    /// Device→host copy; charges PCIe time on `stream`.
    ///
    /// Invariant: valid only on a device without a fault plan —
    /// serving-path code uses [`GpuDevice::try_dtoh`].
    pub fn dtoh<T: Copy + SdcTarget>(&self, buf: &DeviceBuffer<T>, stream: StreamId) -> Vec<T> {
        self.try_dtoh(buf, stream)
            .expect("dtoh on a fault-free device")
    }

    fn push_transfer(&self, label: &str, bytes: usize, stream: StreamId) {
        let dur = transfer_time(&self.spec, bytes);
        let mut st = self.state.lock();
        let id = st.ops.len();
        let mut op = Op::new(id, stream, Engine::Pcie, dur, label.to_string());
        op.wait_for = Self::take_waits(&mut st, stream);
        op.tag = st.op_tag;
        st.ops.push(op);
        st.records.push(LaunchRecord {
            name: format!("{label} ({bytes} B)"),
            stats: KernelStats::default(),
            cost: KernelCost {
                total: dur,
                ..Default::default()
            },
            stream,
            bound: "pcie",
        });
    }

    /// Rolls the launch-fault gate for a kernel named `name`: on a fault,
    /// records the wasted time (launch overhead for a failed launch, the
    /// watchdog window for a timeout) and reports the typed error — the
    /// kernel must then execute **no** blocks, so retries never
    /// double-apply side effects.
    fn launch_fault_gate(&self, name: &str, stream: StreamId) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        match Self::decide_fault(&mut st, &[FaultClass::Launch, FaultClass::Timeout]) {
            Some((FaultClass::Launch, ..)) => {
                let dur = self.spec.launch_overhead_us * 1e-6;
                Self::push_fault_op(&mut st, FaultClass::Launch, name, Engine::Device, dur, stream);
                Err(GpuError::LaunchFailure {
                    kernel: name.to_string(),
                })
            }
            Some((FaultClass::Timeout, cfg, _)) => {
                Self::push_fault_op(
                    &mut st,
                    FaultClass::Timeout,
                    name,
                    Engine::Device,
                    cfg.timeout_s,
                    stream,
                );
                Err(GpuError::LaunchTimeout {
                    kernel: name.to_string(),
                    waited_s: cfg.timeout_s,
                })
            }
            _ => Ok(()),
        }
    }

    /// Charges an externally-modelled device operation (used by the cuFFT
    /// model, whose internals we do not trace kernel-by-kernel). Subject
    /// to the same launch faults as a traced kernel.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_charge_device_op(
        &self,
        label: &str,
        duration: f64,
        stream: StreamId,
    ) -> Result<(), GpuError> {
        self.launch_fault_gate(label, stream)?;
        let mut st = self.state.lock();
        let id = st.ops.len();
        let mut op = Op::new(id, stream, Engine::Device, duration, label.to_string());
        op.wait_for = Self::take_waits(&mut st, stream);
        op.tag = st.op_tag;
        st.ops.push(op);
        st.records.push(LaunchRecord {
            name: label.to_string(),
            stats: KernelStats::default(),
            cost: KernelCost {
                total: duration,
                ..Default::default()
            },
            stream,
            bound: "modelled",
        });
        Ok(())
    }

    /// Charges an externally-modelled device operation.
    ///
    /// Invariant: valid only on a device without a fault plan —
    /// serving-path code uses [`GpuDevice::try_charge_device_op`].
    pub fn charge_device_op(&self, label: &str, duration: f64, stream: StreamId) {
        self.try_charge_device_op(label, duration, stream)
            .expect("modelled op on a fault-free device");
    }

    /// Charges a host-side wait (retry backoff, watchdog recovery) on
    /// `stream`. Host ops occupy only their own stream — no device share,
    /// no kernel slot, no copy engine — and never fault.
    pub fn charge_host_op(&self, label: &str, duration: f64, stream: StreamId) {
        let mut st = self.state.lock();
        let id = st.ops.len();
        let mut op = Op::new(id, stream, Engine::Host, duration, label.to_string());
        op.wait_for = Self::take_waits(&mut st, stream);
        op.tag = st.op_tag;
        st.ops.push(op);
        st.records.push(LaunchRecord {
            name: label.to_string(),
            stats: KernelStats::default(),
            cost: KernelCost {
                total: duration,
                ..Default::default()
            },
            stream,
            bound: "host",
        });
    }

    /// Launches a map kernel: thread `tid` computes `out[tid] = f(ctx, gm)`
    /// for `tid < out.len()`. The grid must cover the output. On an
    /// injected launch fault no block executes and `out` is untouched.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_launch_map<T, F>(
        &self,
        name: &str,
        cfg: LaunchConfig,
        stream: StreamId,
        out: &mut DeviceBuffer<T>,
        f: F,
    ) -> Result<(), GpuError>
    where
        T: Copy + Send + Sync,
        F: Fn(ThreadCtx, &mut Gmem<'_>) -> T + Sync,
    {
        self.launch_fault_gate(name, stream)?;
        self.launch_map_inner(name, cfg, stream, out, f, false);
        Ok(())
    }

    /// Launches a map kernel.
    ///
    /// Invariant: valid only on a device without a fault plan —
    /// serving-path code uses [`GpuDevice::try_launch_map`].
    pub fn launch_map<T, F>(
        &self,
        name: &str,
        cfg: LaunchConfig,
        stream: StreamId,
        out: &mut DeviceBuffer<T>,
        f: F,
    ) where
        T: Copy + Send + Sync,
        F: Fn(ThreadCtx, &mut Gmem<'_>) -> T + Sync,
    {
        self.try_launch_map(name, cfg, stream, out, f)
            .expect("launch on a fault-free device");
    }

    /// Like [`GpuDevice::try_launch_map`], but the output is an
    /// L2-resident scratch buffer consumed by the next kernel on the
    /// stream before it can be evicted: the stores are not charged as DRAM
    /// traffic. The caller must ensure `out` fits in L2
    /// ([`crate::spec::DeviceSpec::l2_bytes`]).
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_launch_map_scratch<T, F>(
        &self,
        name: &str,
        cfg: LaunchConfig,
        stream: StreamId,
        out: &mut DeviceBuffer<T>,
        f: F,
    ) -> Result<(), GpuError>
    where
        T: Copy + Send + Sync,
        F: Fn(ThreadCtx, &mut Gmem<'_>) -> T + Sync,
    {
        assert!(
            out.size_bytes() <= self.spec.l2_bytes,
            "scratch buffer ({} B) exceeds L2 ({} B)",
            out.size_bytes(),
            self.spec.l2_bytes
        );
        self.launch_fault_gate(name, stream)?;
        self.launch_map_inner(name, cfg, stream, out, f, true);
        Ok(())
    }

    /// Launches a scratch-output map kernel.
    ///
    /// Invariant: valid only on a device without a fault plan —
    /// serving-path code uses [`GpuDevice::try_launch_map_scratch`].
    pub fn launch_map_scratch<T, F>(
        &self,
        name: &str,
        cfg: LaunchConfig,
        stream: StreamId,
        out: &mut DeviceBuffer<T>,
        f: F,
    ) where
        T: Copy + Send + Sync,
        F: Fn(ThreadCtx, &mut Gmem<'_>) -> T + Sync,
    {
        self.try_launch_map_scratch(name, cfg, stream, out, f)
            .expect("launch on a fault-free device");
    }

    fn launch_map_inner<T, F>(
        &self,
        name: &str,
        cfg: LaunchConfig,
        stream: StreamId,
        out: &mut DeviceBuffer<T>,
        f: F,
        cached_store: bool,
    ) where
        T: Copy + Send + Sync,
        F: Fn(ThreadCtx, &mut Gmem<'_>) -> T + Sync,
    {
        assert!(
            cfg.total_threads() >= out.len() as u64,
            "grid ({} threads) does not cover output ({} elements)",
            cfg.total_threads(),
            out.len()
        );
        let block_dim = cfg.block_dim as usize;
        let sample_every = sample_every(cfg);
        let out_base = out.base_addr();
        let elem = std::mem::size_of::<T>();

        // Blocks execute concurrently on the host pool as disjoint output
        // chunks; traces are collected positionally (by `block_idx`, never
        // completion order), so `finish_launch` sees the same input as a
        // sequential run. The traced/untraced decision is hoisted out of
        // the per-thread loop: the ~(1 − 1/sample_every) of blocks that
        // are never sampled take a fast path with one reusable stateless
        // gateway and no trace or store-note bookkeeping.
        let block_traces: Vec<Vec<ThreadTrace>> = out
            .as_mut_slice()
            .par_chunks_mut(block_dim)
            .enumerate()
            .filter_map(|(block_idx, chunk)| {
                if block_idx % sample_every == 0 {
                    let mut traces = vec![ThreadTrace::default(); chunk.len()];
                    for (t, slot) in chunk.iter_mut().enumerate() {
                        let ctx = ThreadCtx {
                            block_idx: block_idx as u32,
                            thread_idx: t as u32,
                            block_dim: cfg.block_dim,
                            grid_dim: cfg.grid_dim,
                        };
                        let tid = ctx.global_id();
                        let mut gm = Gmem::traced(&mut traces[t]);
                        let v = f(ctx, &mut gm);
                        gm.note_store(out_base + (tid * elem) as u64, elem as u32, cached_store);
                        *slot = v;
                    }
                    Some(traces)
                } else {
                    // Fast path: `note_store` is a no-op without a trace,
                    // so only the functional store remains.
                    let mut gm = Gmem::untraced();
                    for (t, slot) in chunk.iter_mut().enumerate() {
                        let ctx = ThreadCtx {
                            block_idx: block_idx as u32,
                            thread_idx: t as u32,
                            block_dim: cfg.block_dim,
                            grid_dim: cfg.grid_dim,
                        };
                        *slot = f(ctx, &mut gm);
                    }
                    None
                }
            })
            .collect();

        self.finish_launch(name, cfg, stream, block_traces, sample_every);
    }

    /// Launches a side-effect kernel: every thread runs `f(ctx, gm)`;
    /// writes go through [`crate::atomic`] arrays captured by the closure.
    /// On an injected launch fault no block executes, so the atomics the
    /// closure captures are untouched — a retry starts from clean state.
    #[must_use = "this operation can fault; the error carries the recovery cue"]
    pub fn try_launch_foreach<F>(
        &self,
        name: &str,
        cfg: LaunchConfig,
        stream: StreamId,
        f: F,
    ) -> Result<(), GpuError>
    where
        F: Fn(ThreadCtx, &mut Gmem<'_>) + Sync,
    {
        self.launch_fault_gate(name, stream)?;
        self.launch_foreach_inner(name, cfg, stream, f);
        Ok(())
    }

    /// Launches a side-effect kernel.
    ///
    /// Invariant: valid only on a device without a fault plan —
    /// serving-path code uses [`GpuDevice::try_launch_foreach`].
    pub fn launch_foreach<F>(&self, name: &str, cfg: LaunchConfig, stream: StreamId, f: F)
    where
        F: Fn(ThreadCtx, &mut Gmem<'_>) + Sync,
    {
        self.try_launch_foreach(name, cfg, stream, f)
            .expect("launch on a fault-free device");
    }

    fn launch_foreach_inner<F>(&self, name: &str, cfg: LaunchConfig, stream: StreamId, f: F)
    where
        F: Fn(ThreadCtx, &mut Gmem<'_>) + Sync,
    {
        let sample_every = sample_every(cfg);
        // Blocks run concurrently on the host pool; side effects go
        // through the lock-free `crate::atomic` cells, and the sampled
        // traces are collected in block order (see `launch_map_inner` for
        // the hoisted traced/untraced fast path).
        let block_traces: Vec<Vec<ThreadTrace>> = (0..cfg.grid_dim as usize)
            .into_par_iter()
            .filter_map(|block_idx| {
                if block_idx % sample_every == 0 {
                    let mut traces = vec![ThreadTrace::default(); cfg.block_dim as usize];
                    for (t, trace) in traces.iter_mut().enumerate() {
                        let ctx = ThreadCtx {
                            block_idx: block_idx as u32,
                            thread_idx: t as u32,
                            block_dim: cfg.block_dim,
                            grid_dim: cfg.grid_dim,
                        };
                        let mut gm = Gmem::traced(trace);
                        f(ctx, &mut gm);
                    }
                    Some(traces)
                } else {
                    let mut gm = Gmem::untraced();
                    for t in 0..cfg.block_dim as usize {
                        let ctx = ThreadCtx {
                            block_idx: block_idx as u32,
                            thread_idx: t as u32,
                            block_dim: cfg.block_dim,
                            grid_dim: cfg.grid_dim,
                        };
                        f(ctx, &mut gm);
                    }
                    None
                }
            })
            .collect();

        self.finish_launch(name, cfg, stream, block_traces, sample_every);
    }

    fn finish_launch(
        &self,
        name: &str,
        cfg: LaunchConfig,
        stream: StreamId,
        block_traces: Vec<Vec<ThreadTrace>>,
        sample_every: usize,
    ) {
        let sampled_blocks = block_traces.len().max(1);
        let scale = cfg.grid_dim as f64 / sampled_blocks as f64;
        let _ = sample_every;
        let stats = aggregate(name, cfg, self.spec.warp_size, &block_traces, scale);
        let cost = kernel_cost(&self.spec, &stats);
        let mut st = self.state.lock();
        let id = st.ops.len();
        let mut op = Op::new(id, stream, Engine::Device, cost.total, name.to_string());
        op.wait_for = Self::take_waits(&mut st, stream);
        op.tag = st.op_tag;
        st.ops.push(op);
        let bound = bound_by(&cost);
        st.records.push(LaunchRecord {
            name: name.to_string(),
            stats,
            cost,
            stream,
            bound,
        });
    }

    /// Replays the stream schedule and returns the simulated elapsed time
    /// (seconds) of everything since the last [`GpuDevice::reset_clock`].
    pub fn elapsed(&self) -> f64 {
        let st = self.state.lock();
        schedule(&st.ops, self.spec.max_concurrent_kernels).makespan
    }

    /// Clears all recorded operations (the simulated clock returns to 0).
    pub fn reset_clock(&self) {
        let mut st = self.state.lock();
        st.ops.clear();
        st.records.clear();
        st.events.clear();
        st.pending_waits.clear();
    }

    /// Snapshot of all launch records since the last reset.
    pub fn records(&self) -> Vec<LaunchRecord> {
        self.state.lock().records.clone()
    }

    /// Snapshot of the raw timeline ops since the last reset — the input
    /// to [`crate::timeline::merge_op_groups`] when several private
    /// devices' recordings are combined into one serving timeline.
    pub fn ops(&self) -> Vec<Op> {
        self.state.lock().ops.clone()
    }

    /// Sum of modelled durations grouped by kernel name — the profiler view
    /// used to regenerate the paper's Figure 2.
    pub fn time_by_kernel(&self) -> Vec<(String, f64)> {
        let st = self.state.lock();
        let mut acc: Vec<(String, f64)> = Vec::new();
        for r in &st.records {
            match acc.iter_mut().find(|(n, _)| *n == r.name) {
                Some((_, t)) => *t += r.cost.total,
                None => acc.push((r.name.clone(), r.cost.total)),
            }
        }
        acc
    }

    /// Renders a per-kernel profile table.
    pub fn profile_report(&self) -> String {
        let st = self.state.lock();
        let mut s = String::from(
            "kernel                           | time(ms) | bound     | txns       | bytes      | warps\n",
        );
        for r in &st.records {
            s.push_str(&format!(
                "{:<32} | {:>8.4} | {:<9} | {:>10.0} | {:>10.0} | {:>6}\n",
                r.name,
                r.cost.total * 1e3,
                r.bound,
                r.stats.transactions,
                r.stats.dram_bytes,
                r.stats.warps
            ));
        }
        s
    }
}

/// Picks the block-sampling stride so that at most [`MAX_SAMPLED_THREADS`]
/// threads are traced.
fn sample_every(cfg: LaunchConfig) -> usize {
    let max_blocks = (MAX_SAMPLED_THREADS / cfg.block_dim as u64).max(1);
    (cfg.grid_dim as u64).div_ceil(max_blocks).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::DevAtomicU32;
    use crate::spec::DeviceSpec;
    use fft::Cplx;

    #[test]
    fn map_kernel_computes_correct_values() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        let input = dev.htod(&(0..1000u64).collect::<Vec<_>>(), DEFAULT_STREAM);
        let mut out: DeviceBuffer<u64> = dev.alloc_zeroed(1000);
        let cfg = LaunchConfig::for_elements(1000, 64);
        dev.launch_map("square", cfg, DEFAULT_STREAM, &mut out, |ctx, gm| {
            let v = gm.ld(&input, ctx.global_id());
            v * v
        });
        let host = dev.dtoh(&out, DEFAULT_STREAM);
        for (i, v) in host.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn foreach_kernel_with_atomics() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        let hist = DevAtomicU32::zeroed(16);
        let cfg = LaunchConfig::for_elements(4096, 64);
        dev.launch_foreach("hist", cfg, DEFAULT_STREAM, |ctx, gm| {
            hist.fetch_add(gm, ctx.global_id() % 16, 1);
        });
        assert!(hist.snapshot().iter().all(|&c| c == 256));
    }

    #[test]
    fn elapsed_grows_with_work_and_resets() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        assert_eq!(dev.elapsed(), 0.0);
        let data: Vec<f64> = vec![1.0; 4096];
        let input = dev.htod(&data, DEFAULT_STREAM);
        let mut out: DeviceBuffer<f64> = dev.alloc_zeroed(4096);
        dev.launch_map(
            "copy",
            LaunchConfig::for_elements(4096, 64),
            DEFAULT_STREAM,
            &mut out,
            |ctx, gm| gm.ld(&input, ctx.global_id()),
        );
        let t1 = dev.elapsed();
        assert!(t1 > 0.0);
        dev.launch_map(
            "copy2",
            LaunchConfig::for_elements(4096, 64),
            DEFAULT_STREAM,
            &mut out,
            |ctx, gm| gm.ld(&input, ctx.global_id()),
        );
        assert!(dev.elapsed() > t1);
        dev.reset_clock();
        assert_eq!(dev.elapsed(), 0.0);
        assert!(dev.records().is_empty());
    }

    #[test]
    fn scattered_kernel_costs_more_than_coalesced() {
        let dev = GpuDevice::new(DeviceSpec::tesla_k20x());
        let n = 1usize << 20;
        let data: Vec<f64> = vec![1.0; n];
        let input = DeviceBuffer::from_host(&data); // skip transfer charge
        let cfg = LaunchConfig::for_elements(n, 256);

        let mut out: DeviceBuffer<f64> = dev.alloc_zeroed(n);
        dev.launch_map("coalesced", cfg, DEFAULT_STREAM, &mut out, |ctx, gm| {
            gm.ld(&input, ctx.global_id())
        });
        let t_coal = dev.elapsed();
        dev.reset_clock();

        // 8-byte elements scattered into distinct 32 B segments: 4×
        // read-traffic amplification (8 B useful per 32 B segment).
        let stride = 999_983; // prime, co-prime with n → full scatter
        dev.launch_map("scattered", cfg, DEFAULT_STREAM, &mut out, |ctx, gm| {
            gm.ld(&input, (ctx.global_id() * stride) % n)
        });
        let t_scat = dev.elapsed();
        assert!(
            t_scat > 1.5 * t_coal,
            "scatter {t_scat:.2e} should cost well over coalesced {t_coal:.2e}"
        );
    }

    #[test]
    fn streams_overlap_transfers_with_kernels() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        let s1 = dev.create_stream();
        let s2 = dev.create_stream();
        assert_ne!(s1, s2);
        // Large transfer on s1, kernel on s2: makespan ≈ max, not sum.
        let big: Vec<f64> = vec![0.0; 1 << 16];
        let _buf = dev.htod(&big, s1);
        dev.charge_device_op("k", transfer_time(dev.spec(), 8 << 16), s2);
        let serial: f64 = dev
            .records()
            .iter()
            .map(|r| r.cost.total)
            .sum();
        assert!(dev.elapsed() < serial * 0.75);
    }

    #[test]
    fn profiler_report_contains_kernels() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        let mut out: DeviceBuffer<u32> = dev.alloc_zeroed(128);
        dev.launch_map(
            "mykernel",
            LaunchConfig::for_elements(128, 32),
            DEFAULT_STREAM,
            &mut out,
            |ctx, _| ctx.global_id() as u32,
        );
        let report = dev.profile_report();
        assert!(report.contains("mykernel"));
        let by_kernel = dev.time_by_kernel();
        assert_eq!(by_kernel.len(), 1);
        assert!(by_kernel[0].1 > 0.0);
    }

    #[test]
    fn sampling_still_estimates_full_traffic() {
        // Launch with far more threads than MAX_SAMPLED_THREADS and check
        // extrapolated bytes ≈ ideal.
        let dev = GpuDevice::new(DeviceSpec::tesla_k20x());
        let n = 1usize << 18;
        let data: Vec<Cplx> = vec![Cplx::new(0.0, 0.0); n];
        let input = DeviceBuffer::from_host(&data);
        let mut out: DeviceBuffer<Cplx> = dev.alloc_zeroed(n);
        dev.launch_map(
            "stream",
            LaunchConfig::for_elements(n, 256),
            DEFAULT_STREAM,
            &mut out,
            |ctx, gm| gm.ld(&input, ctx.global_id()),
        );
        let rec = &dev.records()[0];
        let ideal = (n * 32) as f64; // 16 B read + 16 B write per element
        let ratio = rec.stats.dram_bytes / ideal;
        assert!(
            (0.9..1.1).contains(&ratio),
            "extrapolated traffic off by {ratio}"
        );
        assert!(rec.stats.sampled_warps < rec.stats.warps);
    }

    #[test]
    fn tracked_allocations_respect_capacity() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny()); // 64 MiB
        assert_eq!(dev.capacity_bytes(), 64 * 1024 * 1024);
        assert_eq!(dev.used_bytes(), 0);
        let a: DeviceBuffer<u8> = dev
            .try_alloc_zeroed(48 * 1024 * 1024, DEFAULT_STREAM)
            .unwrap();
        assert_eq!(dev.used_bytes(), 48 * 1024 * 1024);
        let err = dev
            .try_alloc_zeroed::<u8>(32 * 1024 * 1024, DEFAULT_STREAM)
            .unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        drop(a);
        assert_eq!(dev.used_bytes(), 0);
        assert!(dev
            .try_alloc_zeroed::<u8>(32 * 1024 * 1024, DEFAULT_STREAM)
            .is_ok());
    }

    #[test]
    fn htod_allocation_is_tracked_and_released() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        let host = vec![0u8; 1024];
        let buf = dev.try_htod(&host, DEFAULT_STREAM).unwrap();
        assert_eq!(dev.used_bytes(), 1024);
        drop(buf);
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn persistent_faults_fail_every_op_and_record_them() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        dev.install_fault_plan(FaultConfig::persistent(42));
        let host = vec![0f64; 256];
        assert!(dev.try_htod(&host, DEFAULT_STREAM).is_err());
        let mut out: DeviceBuffer<f64> = DeviceBuffer::zeroed(256);
        let err = dev
            .try_launch_map(
                "k",
                LaunchConfig::for_elements(256, 64),
                DEFAULT_STREAM,
                &mut out,
                |_, _| 1.0,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            GpuError::LaunchFailure { .. } | GpuError::LaunchTimeout { .. }
        ));
        // The failed launch executed no blocks.
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
        assert!(dev.try_dtoh(&out, DEFAULT_STREAM).is_err());
        assert!(dev.faults_injected() >= 3);
        // Every fault left an op on the timeline.
        let fault_ops = dev
            .ops()
            .iter()
            .filter(|o| o.label.starts_with("fault:"))
            .count();
        assert_eq!(fault_ops as u64, dev.faults_injected());
        // And the device works again once the plan is removed.
        dev.clear_fault_plan();
        assert!(dev.try_htod(&host, DEFAULT_STREAM).is_ok());
        assert_eq!(dev.faults_injected(), 0);
    }

    #[test]
    fn fault_decisions_replay_per_scope() {
        let run = |dev: &GpuDevice| -> Vec<bool> {
            dev.set_fault_scope(3);
            let host = vec![0u32; 64];
            (0..32)
                .map(|_| dev.try_htod(&host, DEFAULT_STREAM).is_err())
                .collect()
        };
        let mk = || {
            let dev = GpuDevice::new(DeviceSpec::test_tiny());
            dev.install_fault_plan(FaultConfig::uniform(9, 0.3));
            dev
        };
        let a = mk();
        let b = mk();
        // Different history on b before entering the scope.
        b.set_fault_scope(77);
        let _ = b.try_htod(&[0u32; 8], DEFAULT_STREAM);
        assert_eq!(run(&a), run(&b), "scope decisions must not depend on history");
    }

    #[test]
    fn scope_salt_makes_devices_distinct_fault_domains() {
        let run = |salt: u64| -> Vec<bool> {
            let dev = GpuDevice::new(DeviceSpec::test_tiny());
            dev.install_fault_plan(FaultConfig::uniform(9, 0.5));
            dev.set_fault_scope_salt(salt);
            dev.set_fault_scope(3);
            let host = vec![0u32; 64];
            (0..32)
                .map(|_| dev.try_htod(&host, DEFAULT_STREAM).is_err())
                .collect()
        };
        assert_eq!(run(0), run(0), "unsalted decisions replay");
        assert_eq!(run(1 << 44), run(1 << 44), "salted decisions replay");
        assert_ne!(
            run(1 << 44),
            run(2 << 44),
            "distinct salts must roll independent fault timelines"
        );
        // Salt 0 is the identity: legacy single-device behaviour intact.
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        dev.install_fault_plan(FaultConfig::uniform(9, 0.5));
        dev.set_fault_scope(3);
        let host = vec![0u32; 64];
        let unsalted: Vec<bool> = (0..32)
            .map(|_| dev.try_htod(&host, DEFAULT_STREAM).is_err())
            .collect();
        assert_eq!(unsalted, run(0));
    }

    #[test]
    fn host_ops_do_not_slow_the_device() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        dev.charge_device_op("k", 1e-3, DEFAULT_STREAM);
        let t_kernel = dev.elapsed();
        let s2 = dev.create_stream();
        dev.charge_host_op("backoff", 0.5e-3, s2);
        // The concurrent host wait neither extends nor dilutes the kernel.
        assert!((dev.elapsed() - t_kernel).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "does not cover output")]
    fn undersized_grid_panics() {
        let dev = GpuDevice::new(DeviceSpec::test_tiny());
        let mut out: DeviceBuffer<u32> = dev.alloc_zeroed(1000);
        dev.launch_map(
            "bad",
            LaunchConfig::new(1, 32),
            DEFAULT_STREAM,
            &mut out,
            |_, _| 0,
        );
    }
}
