//! Launch geometry: grids, blocks, and the CUDA-style thread hierarchy.

use serde::{Deserialize, Serialize};

/// A 1-D launch configuration (the sparse-FFT kernels are all 1-D; 2-D/3-D
/// grids add nothing to the model and are omitted deliberately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// Dynamic shared memory per block in bytes (affects occupancy).
    pub shared_mem_bytes: u32,
}

impl LaunchConfig {
    /// Builds a config with explicit grid and block sizes.
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        assert!(grid_dim > 0, "grid_dim must be positive");
        assert!(block_dim > 0, "block_dim must be positive");
        LaunchConfig {
            grid_dim,
            block_dim,
            shared_mem_bytes: 0,
        }
    }

    /// One thread per element: picks `grid = ceil(n / block)`, the idiom
    /// every CUDA kernel in the paper uses.
    pub fn for_elements(n: usize, block_dim: u32) -> Self {
        assert!(block_dim > 0, "block_dim must be positive");
        let grid = n.div_ceil(block_dim as usize).max(1);
        assert!(grid <= u32::MAX as usize, "grid too large");
        LaunchConfig::new(grid as u32, block_dim)
    }

    /// Attaches a dynamic shared-memory request.
    pub fn with_shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Total threads launched.
    #[inline]
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }

    /// Total warps launched given a warp size.
    #[inline]
    pub fn total_warps(&self, warp_size: u32) -> u64 {
        let warps_per_block = self.block_dim.div_ceil(warp_size) as u64;
        self.grid_dim as u64 * warps_per_block
    }
}

/// Per-thread identity handed to kernel bodies — the simulator's equivalent
/// of `blockIdx`/`threadIdx`/`blockDim`/`gridDim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Index of this thread's block within the grid.
    pub block_idx: u32,
    /// Index of this thread within its block.
    pub thread_idx: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// Blocks in the grid.
    pub grid_dim: u32,
}

impl ThreadCtx {
    /// Global linear thread id: `blockIdx * blockDim + threadIdx`.
    #[inline]
    pub fn global_id(&self) -> usize {
        self.block_idx as usize * self.block_dim as usize + self.thread_idx as usize
    }

    /// The warp this thread belongs to (global numbering).
    #[inline]
    pub fn warp_id(&self, warp_size: u32) -> u64 {
        self.global_id() as u64 / warp_size as u64
    }

    /// Lane index within the warp.
    #[inline]
    pub fn lane(&self, warp_size: u32) -> u32 {
        self.thread_idx % warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_elements_rounds_up() {
        let cfg = LaunchConfig::for_elements(1000, 256);
        assert_eq!(cfg.grid_dim, 4);
        assert_eq!(cfg.block_dim, 256);
        assert_eq!(cfg.total_threads(), 1024);
    }

    #[test]
    fn for_elements_exact_fit() {
        let cfg = LaunchConfig::for_elements(512, 256);
        assert_eq!(cfg.grid_dim, 2);
    }

    #[test]
    fn for_elements_zero_gives_one_block() {
        let cfg = LaunchConfig::for_elements(0, 128);
        assert_eq!(cfg.grid_dim, 1);
    }

    #[test]
    #[should_panic(expected = "block_dim must be positive")]
    fn zero_block_dim_panics() {
        LaunchConfig::new(1, 0);
    }

    #[test]
    fn warp_counting() {
        let cfg = LaunchConfig::new(3, 100);
        // ceil(100/32)=4 warps per block, 3 blocks.
        assert_eq!(cfg.total_warps(32), 12);
    }

    #[test]
    fn thread_ctx_identity() {
        let ctx = ThreadCtx {
            block_idx: 2,
            thread_idx: 37,
            block_dim: 128,
            grid_dim: 4,
        };
        assert_eq!(ctx.global_id(), 2 * 128 + 37);
        assert_eq!(ctx.lane(32), 5);
        assert_eq!(ctx.warp_id(32), (2 * 128 + 37) as u64 / 32);
    }

    #[test]
    fn shared_mem_builder() {
        let cfg = LaunchConfig::new(1, 32).with_shared_mem(4096);
        assert_eq!(cfg.shared_mem_bytes, 4096);
    }
}
