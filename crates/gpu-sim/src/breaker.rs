//! Per-device circuit breaker.
//!
//! A Closed/Open/HalfOpen state machine over *group observations*: the
//! serving layer executes request groups in epochs, asks the breaker to
//! [`CircuitBreaker::admit`] each global group index before the epoch
//! runs, and feeds back one [`CircuitBreaker::observe`] per executed
//! group afterwards. While Closed, a sliding window of the last
//! `window` observations is kept; when `trip_faults` of them saw
//! injected faults the breaker opens and subsequent groups are
//! short-circuited (the serving layer sends them straight to the CPU
//! path instead of burning device time on a request that will only come
//! back through retry + fallback anyway). After `cooldown`
//! short-circuited admissions the breaker half-opens and lets exactly
//! one probe group through: a clean probe closes the breaker (window
//! cleared — the device is presumed recovered), a faulted probe re-opens
//! it for another full cooldown.
//!
//! Determinism: the breaker is driven *only* by global group indices and
//! fault tallies, both of which are worker-count- and pool-width-
//! invariant (fault decisions hash the group-scoped ordinal, see
//! [`crate::fault`]). Admissions and observations happen in global group
//! order on the coordinator thread, never concurrently, so the decision
//! sequence — and the [`BreakerTransition`] log — replays bit-for-bit
//! regardless of how the admitted groups are scheduled across workers.

use std::collections::VecDeque;

/// Breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding window length, in observed groups, used while Closed.
    pub window: usize,
    /// Number of faulted groups within the window that trips the
    /// breaker open.
    pub trip_faults: usize,
    /// Number of admissions short-circuited while Open before the
    /// breaker half-opens and probes the device again.
    pub cooldown: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            trip_faults: 4,
            cooldown: 4,
        }
    }
}

/// Breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every group is admitted to the device.
    Closed,
    /// Tripped: groups are short-circuited past the device.
    Open,
    /// Probing: exactly one group is admitted to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Label used in timeline op names (`breaker:<label>`).
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What the breaker says about one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Run the group on the device.
    Admit,
    /// Run the group on the device as the HalfOpen probe.
    Probe,
    /// Do not touch the device; the caller degrades the group.
    ShortCircuit,
}

/// One recorded state transition, keyed by the global group index whose
/// admission or observation caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Global group index at the transition.
    pub gid: usize,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// The state machine. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    window: VecDeque<bool>,
    cooldown_left: usize,
    probe: Option<usize>,
    transitions: Vec<BreakerTransition>,
    trips: u64,
}

impl CircuitBreaker {
    /// Creates a Closed breaker. `trip_faults` must be in
    /// `1..=window` and `cooldown` at least 1.
    pub fn new(config: BreakerConfig) -> Self {
        assert!(config.window >= 1, "breaker window must be >= 1");
        assert!(
            (1..=config.window).contains(&config.trip_faults),
            "trip_faults must be in 1..=window"
        );
        assert!(config.cooldown >= 1, "cooldown must be >= 1");
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            window: VecDeque::with_capacity(config.window),
            cooldown_left: 0,
            probe: None,
            transitions: Vec::new(),
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Every transition so far, in decision order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Times the breaker has tripped open (including failed probes).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    fn transition(&mut self, gid: usize, to: BreakerState) {
        self.transitions.push(BreakerTransition {
            gid,
            from: self.state,
            to,
        });
        self.state = to;
    }

    /// Decides whether group `gid` may run on the device. Must be called
    /// in global group order.
    pub fn admit(&mut self, gid: usize) -> BreakerDecision {
        match self.state {
            BreakerState::Closed => BreakerDecision::Admit,
            BreakerState::Open => {
                if self.cooldown_left == 0 {
                    self.transition(gid, BreakerState::HalfOpen);
                    self.probe = Some(gid);
                    BreakerDecision::Probe
                } else {
                    self.cooldown_left -= 1;
                    BreakerDecision::ShortCircuit
                }
            }
            BreakerState::HalfOpen => {
                // The probe's verdict hasn't come back yet (it runs in
                // the same epoch); don't pile more groups onto a device
                // still under suspicion.
                if self.probe.is_none() {
                    self.probe = Some(gid);
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::ShortCircuit
                }
            }
        }
    }

    /// Reports whether executed group `gid` saw injected faults. Must be
    /// called in global group order, only for groups that actually ran
    /// on the device (Admit or Probe).
    pub fn observe(&mut self, gid: usize, faulted: bool) {
        match self.state {
            BreakerState::HalfOpen if self.probe == Some(gid) => {
                self.probe = None;
                if faulted {
                    self.trips += 1;
                    self.cooldown_left = self.config.cooldown;
                    self.transition(gid, BreakerState::Open);
                } else {
                    // Recovered: forget the faulty history.
                    self.window.clear();
                    self.transition(gid, BreakerState::Closed);
                }
            }
            BreakerState::Closed => {
                self.window.push_back(faulted);
                while self.window.len() > self.config.window {
                    self.window.pop_front();
                }
                let faults = self.window.iter().filter(|&&f| f).count();
                if faults >= self.config.trip_faults {
                    self.trips += 1;
                    self.cooldown_left = self.config.cooldown;
                    self.transition(gid, BreakerState::Open);
                }
            }
            // Observations from groups admitted before a mid-epoch trip
            // land here; the breaker already made up its mind.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: usize, trip_faults: usize, cooldown: usize) -> BreakerConfig {
        BreakerConfig {
            window,
            trip_faults,
            cooldown,
        }
    }

    #[test]
    fn trips_at_exactly_the_threshold() {
        let mut b = CircuitBreaker::new(cfg(4, 3, 2));
        b.admit(0);
        b.observe(0, true);
        b.admit(1);
        b.observe(1, true);
        assert_eq!(b.state(), BreakerState::Closed, "2 faults < trip_faults=3");
        b.admit(2);
        b.observe(2, true);
        assert_eq!(b.state(), BreakerState::Open, "3rd fault trips");
        assert_eq!(b.trips(), 1);
        assert_eq!(
            b.transitions(),
            &[BreakerTransition {
                gid: 2,
                from: BreakerState::Closed,
                to: BreakerState::Open
            }]
        );
    }

    #[test]
    fn window_slides_old_faults_out() {
        let mut b = CircuitBreaker::new(cfg(3, 2, 1));
        // fault, clean, clean, fault: the window [clean, clean, fault]
        // never holds 2 faults.
        for (g, f) in [(0, true), (1, false), (2, false), (3, true)] {
            assert_eq!(b.admit(g), BreakerDecision::Admit);
            b.observe(g, f);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // One more fault → window [fault, fault, …tail] trips.
        b.admit(4);
        b.observe(4, true);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_short_circuits_exactly_cooldown_admissions_then_probes() {
        let mut b = CircuitBreaker::new(cfg(2, 1, 3));
        b.admit(0);
        b.observe(0, true);
        assert_eq!(b.state(), BreakerState::Open);
        for g in 1..=3 {
            assert_eq!(b.admit(g), BreakerDecision::ShortCircuit, "gid {g}");
        }
        assert_eq!(b.admit(4), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Further admissions while the probe is outstanding stay off the
        // device.
        assert_eq!(b.admit(5), BreakerDecision::ShortCircuit);
    }

    #[test]
    fn clean_probe_closes_and_clears_history() {
        let mut b = CircuitBreaker::new(cfg(2, 2, 1));
        for g in 0..2 {
            b.admit(g);
            b.observe(g, true);
        }
        assert_eq!(b.state(), BreakerState::Open);
        b.admit(2); // short-circuit (cooldown)
        assert_eq!(b.admit(3), BreakerDecision::Probe);
        b.observe(3, false);
        assert_eq!(b.state(), BreakerState::Closed);
        // History was cleared: one new fault is not enough to re-trip.
        b.admit(4);
        b.observe(4, true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn faulted_probe_reopens_with_full_cooldown() {
        let mut b = CircuitBreaker::new(cfg(1, 1, 2));
        b.admit(0);
        b.observe(0, true);
        b.admit(1); // cooldown 2 → short-circuit
        b.admit(2); // short-circuit
        assert_eq!(b.admit(3), BreakerDecision::Probe);
        b.observe(3, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // Full cooldown again before the next probe.
        assert_eq!(b.admit(4), BreakerDecision::ShortCircuit);
        assert_eq!(b.admit(5), BreakerDecision::ShortCircuit);
        assert_eq!(b.admit(6), BreakerDecision::Probe);
    }

    #[test]
    fn full_cycle_transition_log() {
        let mut b = CircuitBreaker::new(cfg(1, 1, 1));
        b.admit(0);
        b.observe(0, true); // Closed → Open
        b.admit(1); // short-circuit
        b.admit(2); // Open → HalfOpen, probe
        b.observe(2, false); // HalfOpen → Closed
        let states: Vec<_> = b.transitions().iter().map(|t| (t.gid, t.to)).collect();
        assert_eq!(
            states,
            vec![
                (0, BreakerState::Open),
                (2, BreakerState::HalfOpen),
                (2, BreakerState::Closed)
            ]
        );
    }
}
