//! The stream timeline: turns a list of per-stream operations with modelled
//! durations into a device schedule with overlap and resource sharing.
//!
//! Semantics (mirroring CUDA):
//!
//! * operations on one stream execute in enqueue order;
//! * operations on different streams may overlap;
//! * at most `max_concurrent_kernels` kernels run at once (GK110: 32);
//! * concurrently running *device* operations share the device evenly —
//!   two overlapped memory-bound kernels make no aggregate progress gain,
//!   which keeps the async-layout experiment honest: its win must come
//!   from hiding *latency/under-occupancy*, not from imaginary bandwidth;
//! * PCIe transfers use the copy engines and overlap device work freely,
//!   sharing only with other transfers.
//!
//! The schedule is computed by a deterministic event-driven simulation
//! over "work remaining" quantities.
//!
//! Host-side parallelism never leaks in: launches record ops in enqueue
//! order regardless of how many pool threads executed their blocks (see
//! `crate::device` for the contract), [`merge_op_groups`] interleaves
//! per-worker recordings by position rather than wall-clock arrival, and
//! the scheduler itself is a pure function of the op list. A timeline is
//! therefore bit-identical across `CUSFFT_HOST_THREADS` settings.

use serde::{Deserialize, Serialize};

/// Identifies a stream. Stream 0 is the default stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u32);

/// Which engine an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// SMs + DRAM: kernels.
    Device,
    /// Copy engine: host↔device transfers.
    Pcie,
    /// Host-side waits (retry backoff, watchdog recovery): occupy only
    /// their own stream — no device share, no kernel-concurrency slot, no
    /// copy engine. Any number may run concurrently.
    Host,
}

/// An operation enqueued on a stream.
#[derive(Debug, Clone)]
pub struct Op {
    /// Monotonic id (enqueue order, used for FIFO arbitration).
    pub id: usize,
    /// Stream the op belongs to.
    pub stream: StreamId,
    /// Engine class.
    pub engine: Engine,
    /// Exclusive-use duration in seconds (from the cost model).
    pub duration: f64,
    /// Label for reports.
    pub label: String,
    /// Cross-stream dependencies (CUDA events): op ids that must complete
    /// before this op may start.
    pub wait_for: Vec<usize>,
    /// Opaque attribution tag stamped by the enqueuing layer (0 = untagged).
    /// The simulator never interprets it; telemetry consumers decode it to
    /// attach ops to spans. Survives [`merge_op_groups`] untouched.
    pub tag: u64,
}

impl Op {
    /// Convenience constructor with no cross-stream dependencies.
    pub fn new(id: usize, stream: StreamId, engine: Engine, duration: f64, label: String) -> Self {
        Op {
            id,
            stream,
            engine,
            duration,
            label,
            wait_for: Vec::new(),
            tag: 0,
        }
    }
}

/// Scheduled times for one op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSchedule {
    /// Start time (seconds from timeline origin).
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Full schedule: per-op times plus the makespan.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Times indexed like the input ops.
    pub ops: Vec<OpSchedule>,
    /// Completion time of the last op.
    pub makespan: f64,
}

/// Computes the schedule for `ops` given the device's kernel-concurrency
/// cap. `ops` must be sorted by `id` (enqueue order) — they are, because
/// the device appends as it launches.
pub fn schedule(ops: &[Op], max_concurrent_kernels: u32) -> Schedule {
    let n = ops.len();
    let mut remaining: Vec<f64> = ops.iter().map(|o| o.duration.max(0.0)).collect();
    let mut sched = vec![
        OpSchedule {
            start: f64::NAN,
            end: f64::NAN,
        };
        n
    ];
    let mut done = vec![false; n];
    let mut t = 0.0f64;
    let mut n_done = 0;

    while n_done < n {
        // Head-of-line op per stream: the earliest unfinished op of each
        // stream is eligible — provided its event dependencies are done.
        // A head blocked on an event still blocks everything behind it
        // (stream FIFO order).
        let mut seen_stream: Vec<StreamId> = Vec::new();
        let mut eligible: Vec<usize> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if done[i] {
                continue;
            }
            if seen_stream.contains(&op.stream) {
                continue;
            }
            seen_stream.push(op.stream);
            if op.wait_for.iter().all(|&d| done.get(d).copied().unwrap_or(true)) {
                eligible.push(i);
            }
        }
        if eligible.is_empty() {
            // All heads are event-blocked on ops that are themselves
            // behind those heads — a deadlock the device API prevents;
            // fail loudly rather than spin.
            panic!("timeline deadlock: circular event dependencies");
        }

        // FIFO cap on concurrent kernels; the copy engine is strictly
        // serial (one transfer at a time, in enqueue order), matching the
        // single DMA engine per direction on real parts.
        let mut active: Vec<usize> = Vec::new();
        let mut kernels = 0u32;
        let mut copy_engine_busy = false;
        for &i in &eligible {
            match ops[i].engine {
                Engine::Device => {
                    if kernels < max_concurrent_kernels {
                        kernels += 1;
                        active.push(i);
                    }
                }
                Engine::Pcie => {
                    if !copy_engine_busy {
                        copy_engine_busy = true;
                        active.push(i);
                    }
                }
                // Host waits contend for nothing.
                Engine::Host => active.push(i),
            }
        }
        debug_assert!(!active.is_empty(), "deadlock in timeline scheduling");

        let device_share = active
            .iter()
            .filter(|&&i| ops[i].engine == Engine::Device)
            .count()
            .max(1) as f64;
        // Copy engine is exclusive: at most one active transfer.
        let pcie_share = 1.0;

        // Progress rate of each active op and time to next completion.
        let mut dt = f64::INFINITY;
        for &i in &active {
            if sched[i].start.is_nan() {
                sched[i].start = t;
            }
            let share = match ops[i].engine {
                Engine::Device => device_share,
                Engine::Pcie => pcie_share,
                Engine::Host => 1.0,
            };
            let finish_in = remaining[i] * share;
            if finish_in < dt {
                dt = finish_in;
            }
        }
        // Zero-duration ops complete instantly; dt may be 0, which is fine.
        for &i in &active {
            let share = match ops[i].engine {
                Engine::Device => device_share,
                Engine::Pcie => pcie_share,
                Engine::Host => 1.0,
            };
            remaining[i] -= dt / share;
            if remaining[i] <= 1e-18 {
                remaining[i] = 0.0;
                done[i] = true;
                n_done += 1;
                sched[i].end = t + dt;
            }
        }
        t += dt;
    }

    Schedule {
        makespan: t,
        ops: sched,
    }
}

/// Deterministically merges per-worker op lists into one timeline.
///
/// Each group is the ops one worker (or request context) recorded on its
/// own private device: ids contiguous from 0, streams numbered locally.
/// The merge
///
/// * remaps every `(group, local stream)` to a globally unique stream, so
///   two workers' default streams do not serialise against each other;
/// * renumbers op ids in a round-robin interleave of the groups (all the
///   groups' first ops, then all their second ops, …), modelling
///   concurrent submission fairly and — crucially — *independently of
///   host-thread scheduling*, so a multi-threaded serving run always
///   produces the same merged timeline;
/// * rewrites `wait_for` event dependencies to the renumbered ids.
pub fn merge_op_groups(groups: &[Vec<Op>]) -> Vec<Op> {
    use std::collections::HashMap;

    // Round-robin interleave: (local id, group index) lexicographic.
    let mut slots: Vec<(usize, usize)> = Vec::new();
    for (g, ops) in groups.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            debug_assert_eq!(op.id, i, "group ops must have contiguous local ids");
            slots.push((i, g));
        }
    }
    slots.sort_unstable();

    // New id for each (group, local id).
    let mut id_map: Vec<HashMap<usize, usize>> = vec![HashMap::new(); groups.len()];
    for (new_id, &(local, g)) in slots.iter().enumerate() {
        id_map[g].insert(local, new_id);
    }

    let mut stream_map: HashMap<(usize, StreamId), StreamId> = HashMap::new();
    let mut next_stream = 0u32;
    let mut merged = Vec::with_capacity(slots.len());
    for &(local, g) in &slots {
        let src = &groups[g][local];
        let stream = *stream_map.entry((g, src.stream)).or_insert_with(|| {
            let s = StreamId(next_stream);
            next_stream += 1;
            s
        });
        let mut op = src.clone();
        op.id = id_map[g][&local];
        op.stream = stream;
        op.wait_for = src.wait_for.iter().map(|d| id_map[g][d]).collect();
        merged.push(op);
    }
    merged
}

/// Busy accounting for one stream of a computed [`Schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOccupancy {
    /// The stream.
    pub stream: StreamId,
    /// Ops that ran on it.
    pub ops: usize,
    /// Total time the stream had an op in flight (its ops never overlap
    /// each other, so this is a plain interval sum).
    pub busy: f64,
    /// `busy / makespan` (0 when the makespan is 0).
    pub utilisation: f64,
}

/// Cross-stream concurrency profile of a schedule — the quantitative
/// version of the paper's Fig. 4 overlap picture.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencyProfile {
    /// Completion time of the last op.
    pub makespan: f64,
    /// Per-stream busy accounting, ordered by stream id.
    pub per_stream: Vec<StreamOccupancy>,
    /// Maximum number of streams simultaneously occupied.
    pub max_concurrent_streams: usize,
    /// Time-averaged number of occupied streams over the makespan.
    pub avg_concurrent_streams: f64,
}

/// Computes per-stream occupancy and cross-stream concurrency for a
/// schedule. `ops` and `sched.ops` must be index-aligned (as returned by
/// [`schedule`]).
pub fn concurrency_profile(ops: &[Op], sched: &Schedule) -> ConcurrencyProfile {
    assert_eq!(ops.len(), sched.ops.len(), "ops/schedule mismatch");

    let mut per_stream: Vec<StreamOccupancy> = Vec::new();
    for (op, os) in ops.iter().zip(&sched.ops) {
        let entry = match per_stream.iter_mut().find(|s| s.stream == op.stream) {
            Some(e) => e,
            None => {
                per_stream.push(StreamOccupancy {
                    stream: op.stream,
                    ops: 0,
                    busy: 0.0,
                    utilisation: 0.0,
                });
                // Invariant: the push above guarantees a last element.
                per_stream.last_mut().unwrap()
            }
        };
        entry.ops += 1;
        entry.busy += os.end - os.start;
    }
    per_stream.sort_by_key(|s| s.stream.0);
    for s in &mut per_stream {
        s.utilisation = if sched.makespan > 0.0 {
            s.busy / sched.makespan
        } else {
            0.0
        };
    }

    // Sweep start/end events, counting per-stream open-op depth so a
    // stream occupied by consecutive touching ops counts once. All deltas
    // at one instant are applied before concurrency is sampled, so an op
    // starting exactly when another ends (same or different stream) is
    // not counted as overlap.
    let mut events: Vec<(f64, i32, StreamId)> = Vec::new();
    for (op, os) in ops.iter().zip(&sched.ops) {
        events.push((os.start, 1, op.stream));
        events.push((os.end, -1, op.stream));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut depth: Vec<(StreamId, i32)> = Vec::new();
    let mut occupied = 0usize;
    let mut max_concurrent = 0usize;
    let mut weighted = 0.0f64;
    let mut last_t = 0.0f64;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        weighted += occupied as f64 * (t - last_t);
        last_t = t;
        while i < events.len() && events[i].0 == t {
            let (_, delta, stream) = events[i];
            i += 1;
            let d = match depth.iter_mut().find(|(s, _)| *s == stream) {
                Some((_, d)) => d,
                None => {
                    depth.push((stream, 0));
                    // Invariant: the push above guarantees a last element.
                    &mut depth.last_mut().unwrap().1
                }
            };
            let was = *d;
            *d += delta;
            if was == 0 && *d > 0 {
                occupied += 1;
            } else if was > 0 && *d == 0 {
                occupied -= 1;
            }
        }
        max_concurrent = max_concurrent.max(occupied);
    }

    ConcurrencyProfile {
        makespan: sched.makespan,
        per_stream,
        max_concurrent_streams: max_concurrent,
        avg_concurrent_streams: if sched.makespan > 0.0 {
            weighted / sched.makespan
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: usize, stream: u32, engine: Engine, duration: f64) -> Op {
        Op::new(id, StreamId(stream), engine, duration, format!("op{id}"))
    }

    #[test]
    fn event_dependency_delays_cross_stream_op() {
        // op1 on stream 1 waits for op0 on stream 0.
        let mut o1 = op(1, 1, Engine::Device, 1.0);
        o1.wait_for = vec![0];
        let ops = vec![op(0, 0, Engine::Device, 2.0), o1];
        let s = schedule(&ops, 32);
        assert!((s.ops[1].start - 2.0).abs() < 1e-12, "waits for the event");
        assert!((s.makespan - 3.0).abs() < 1e-12);
    }

    #[test]
    fn satisfied_event_changes_nothing() {
        let mut o1 = op(1, 0, Engine::Device, 1.0);
        o1.wait_for = vec![0]; // same stream: already ordered
        let ops = vec![op(0, 0, Engine::Device, 1.0), o1];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_stream_serialises() {
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 0, Engine::Device, 2.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 3.0).abs() < 1e-12);
        assert!((s.ops[0].end - 1.0).abs() < 1e-12);
        assert!((s.ops[1].start - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_memory_kernels_share_the_device() {
        // Two 1-second kernels on different streams: each runs at half
        // rate while both active → both finish at t=2. No free lunch.
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 1, Engine::Device, 1.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 2.0).abs() < 1e-12);
        assert!((s.ops[0].start).abs() < 1e-12);
        assert!((s.ops[1].start).abs() < 1e-12);
    }

    #[test]
    fn transfer_overlaps_kernel_for_free() {
        let ops = vec![
            op(0, 0, Engine::Device, 2.0),
            op(1, 1, Engine::Pcie, 2.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 2.0).abs() < 1e-12, "full overlap expected");
    }

    #[test]
    fn unequal_kernels_release_share_when_done() {
        // 1 s and 3 s kernels: both at half rate until the short one
        // finishes at t=2 (having done 1 s of work); the long one then has
        // 2 s left at full rate → ends at 4.
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 1, Engine::Device, 3.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.ops[0].end - 2.0).abs() < 1e-12);
        assert!((s.ops[1].end - 4.0).abs() < 1e-12);
        assert!((s.makespan - 4.0).abs() < 1e-12);
    }

    #[test]
    fn concurrency_cap_queues_kernels() {
        // Cap of 1: three 1-second kernels on three streams serialise.
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 1, Engine::Device, 1.0),
            op(2, 2, Engine::Device, 1.0),
        ];
        let s = schedule(&ops, 1);
        assert!((s.makespan - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stream_order_respected_across_engines() {
        // stream 0: transfer then kernel — kernel must wait for transfer.
        let ops = vec![
            op(0, 0, Engine::Pcie, 1.0),
            op(1, 0, Engine::Device, 1.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.ops[1].start - 1.0).abs() < 1e-12);
        assert!((s.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_chunks_overlap_copy_and_compute() {
        // Classic two-stage pipeline: per chunk, transfer (0.5 s) then
        // kernel (0.5 s), chunks on alternating streams. With overlap the
        // makespan approaches 0.5·(chunks+1) rather than 1.0·chunks.
        let mut ops = Vec::new();
        let chunks = 4;
        for c in 0..chunks {
            ops.push(op(2 * c, c as u32, Engine::Pcie, 0.5));
            ops.push(op(2 * c + 1, c as u32, Engine::Device, 0.5));
        }
        let s = schedule(&ops, 32);
        assert!(
            s.makespan < 0.5 * chunks as f64 * 2.0 - 0.4,
            "pipelining should beat serial: {}",
            s.makespan
        );
    }

    #[test]
    fn host_ops_contend_for_nothing() {
        // A host backoff wait overlaps a capped kernel queue freely and
        // takes no kernel slot: with cap 1, two kernels serialise (2 s)
        // while the 2 s host wait runs alongside.
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 1, Engine::Device, 1.0),
            op(2, 2, Engine::Host, 2.0),
        ];
        let s = schedule(&ops, 1);
        assert!((s.makespan - 2.0).abs() < 1e-12);
        assert!((s.ops[2].start).abs() < 1e-12, "host op starts immediately");
        // And host ops do not dilute the device share: one kernel plus one
        // host wait → kernel runs at full rate.
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 1, Engine::Host, 0.5),
        ];
        let s = schedule(&ops, 32);
        assert!((s.ops[0].end - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_ops_complete() {
        let ops = vec![op(0, 0, Engine::Device, 0.0), op(1, 0, Engine::Device, 1.0)];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 1.0).abs() < 1e-12);
        assert_eq!(s.ops[0].end, 0.0);
    }

    #[test]
    fn empty_schedule() {
        let s = schedule(&[], 32);
        assert_eq!(s.makespan, 0.0);
        assert!(s.ops.is_empty());
    }

    #[test]
    fn merge_remaps_streams_to_disjoint_ids() {
        // Two workers, each with two serial ops on their local stream 0.
        let worker = |dur: f64| {
            vec![
                op(0, 0, Engine::Device, dur),
                op(1, 0, Engine::Device, dur),
            ]
        };
        let merged = merge_op_groups(&[worker(1.0), worker(1.0)]);
        assert_eq!(merged.len(), 4);
        let streams: std::collections::HashSet<u32> =
            merged.iter().map(|o| o.stream.0).collect();
        assert_eq!(streams.len(), 2, "one global stream per worker");
        // Ids are contiguous and sorted.
        for (i, o) in merged.iter().enumerate() {
            assert_eq!(o.id, i);
        }
        // Fair-share semantics: 4×1 s of device work on 2 streams → both
        // pairs finish at t=4 (no free lunch), but each stream stays busy
        // the whole time — genuine overlap, not serialisation (which
        // would also be 4 s here but with idle tails on each stream).
        let s = schedule(&merged, 32);
        let prof = concurrency_profile(&merged, &s);
        assert_eq!(prof.max_concurrent_streams, 2);
        assert!((prof.makespan - 4.0).abs() < 1e-12);
        assert!((prof.avg_concurrent_streams - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_rewrites_wait_for() {
        let mut g0 = vec![op(0, 0, Engine::Device, 1.0), op(1, 1, Engine::Device, 1.0)];
        g0[1].wait_for = vec![0];
        let g1 = vec![op(0, 0, Engine::Device, 1.0)];
        let merged = merge_op_groups(&[g0, g1]);
        // Round-robin order: g0#0, g1#0, g0#1.
        assert_eq!(merged[2].wait_for, vec![0], "dependency follows renumbering");
        let s = schedule(&merged, 32);
        // g0#1 cannot start before g0#0 ends.
        assert!(s.ops[2].start >= s.ops[0].end - 1e-12);
    }

    #[test]
    fn merge_is_independent_of_group_completion_order() {
        // The merge must depend only on group *index*, never on which
        // worker finished first — callers pass groups in worker order.
        let a = vec![op(0, 0, Engine::Device, 1.0)];
        let b = vec![op(0, 0, Engine::Pcie, 2.0)];
        let m1 = merge_op_groups(&[a.clone(), b.clone()]);
        let m2 = merge_op_groups(&[a, b]);
        assert_eq!(m1.len(), m2.len());
        for (x, y) in m1.iter().zip(&m2) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.stream, y.stream);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn profile_counts_serial_ops_once() {
        // Back-to-back ops on one stream: never 2 concurrent streams.
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 0, Engine::Device, 1.0),
        ];
        let s = schedule(&ops, 32);
        let prof = concurrency_profile(&ops, &s);
        assert_eq!(prof.max_concurrent_streams, 1);
        assert_eq!(prof.per_stream.len(), 1);
        assert!((prof.per_stream[0].busy - 2.0).abs() < 1e-12);
        assert!((prof.per_stream[0].utilisation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profile_sees_transfer_compute_overlap() {
        let ops = vec![
            op(0, 0, Engine::Device, 2.0),
            op(1, 1, Engine::Pcie, 2.0),
        ];
        let s = schedule(&ops, 32);
        let prof = concurrency_profile(&ops, &s);
        assert_eq!(prof.max_concurrent_streams, 2);
        assert!((prof.avg_concurrent_streams - 2.0).abs() < 1e-9);
        assert_eq!(prof.per_stream.len(), 2);
    }

    #[test]
    fn profile_empty() {
        let s = schedule(&[], 32);
        let prof = concurrency_profile(&[], &s);
        assert_eq!(prof.max_concurrent_streams, 0);
        assert_eq!(prof.avg_concurrent_streams, 0.0);
        assert!(prof.per_stream.is_empty());
    }
}
