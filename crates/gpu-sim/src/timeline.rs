//! The stream timeline: turns a list of per-stream operations with modelled
//! durations into a device schedule with overlap and resource sharing.
//!
//! Semantics (mirroring CUDA):
//!
//! * operations on one stream execute in enqueue order;
//! * operations on different streams may overlap;
//! * at most `max_concurrent_kernels` kernels run at once (GK110: 32);
//! * concurrently running *device* operations share the device evenly —
//!   two overlapped memory-bound kernels make no aggregate progress gain,
//!   which keeps the async-layout experiment honest: its win must come
//!   from hiding *latency/under-occupancy*, not from imaginary bandwidth;
//! * PCIe transfers use the copy engines and overlap device work freely,
//!   sharing only with other transfers.
//!
//! The schedule is computed by a deterministic event-driven simulation
//! over "work remaining" quantities.

use serde::{Deserialize, Serialize};

/// Identifies a stream. Stream 0 is the default stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u32);

/// Which engine an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// SMs + DRAM: kernels.
    Device,
    /// Copy engine: host↔device transfers.
    Pcie,
}

/// An operation enqueued on a stream.
#[derive(Debug, Clone)]
pub struct Op {
    /// Monotonic id (enqueue order, used for FIFO arbitration).
    pub id: usize,
    /// Stream the op belongs to.
    pub stream: StreamId,
    /// Engine class.
    pub engine: Engine,
    /// Exclusive-use duration in seconds (from the cost model).
    pub duration: f64,
    /// Label for reports.
    pub label: String,
    /// Cross-stream dependencies (CUDA events): op ids that must complete
    /// before this op may start.
    pub wait_for: Vec<usize>,
}

impl Op {
    /// Convenience constructor with no cross-stream dependencies.
    pub fn new(id: usize, stream: StreamId, engine: Engine, duration: f64, label: String) -> Self {
        Op {
            id,
            stream,
            engine,
            duration,
            label,
            wait_for: Vec::new(),
        }
    }
}

/// Scheduled times for one op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSchedule {
    /// Start time (seconds from timeline origin).
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Full schedule: per-op times plus the makespan.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Times indexed like the input ops.
    pub ops: Vec<OpSchedule>,
    /// Completion time of the last op.
    pub makespan: f64,
}

/// Computes the schedule for `ops` given the device's kernel-concurrency
/// cap. `ops` must be sorted by `id` (enqueue order) — they are, because
/// the device appends as it launches.
pub fn schedule(ops: &[Op], max_concurrent_kernels: u32) -> Schedule {
    let n = ops.len();
    let mut remaining: Vec<f64> = ops.iter().map(|o| o.duration.max(0.0)).collect();
    let mut sched = vec![
        OpSchedule {
            start: f64::NAN,
            end: f64::NAN,
        };
        n
    ];
    let mut done = vec![false; n];
    let mut t = 0.0f64;
    let mut n_done = 0;

    while n_done < n {
        // Head-of-line op per stream: the earliest unfinished op of each
        // stream is eligible — provided its event dependencies are done.
        // A head blocked on an event still blocks everything behind it
        // (stream FIFO order).
        let mut seen_stream: Vec<StreamId> = Vec::new();
        let mut eligible: Vec<usize> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if done[i] {
                continue;
            }
            if seen_stream.contains(&op.stream) {
                continue;
            }
            seen_stream.push(op.stream);
            if op.wait_for.iter().all(|&d| done.get(d).copied().unwrap_or(true)) {
                eligible.push(i);
            }
        }
        if eligible.is_empty() {
            // All heads are event-blocked on ops that are themselves
            // behind those heads — a deadlock the device API prevents;
            // fail loudly rather than spin.
            panic!("timeline deadlock: circular event dependencies");
        }

        // FIFO cap on concurrent kernels; the copy engine is strictly
        // serial (one transfer at a time, in enqueue order), matching the
        // single DMA engine per direction on real parts.
        let mut active: Vec<usize> = Vec::new();
        let mut kernels = 0u32;
        let mut copy_engine_busy = false;
        for &i in &eligible {
            match ops[i].engine {
                Engine::Device => {
                    if kernels < max_concurrent_kernels {
                        kernels += 1;
                        active.push(i);
                    }
                }
                Engine::Pcie => {
                    if !copy_engine_busy {
                        copy_engine_busy = true;
                        active.push(i);
                    }
                }
            }
        }
        debug_assert!(!active.is_empty(), "deadlock in timeline scheduling");

        let device_share = active
            .iter()
            .filter(|&&i| ops[i].engine == Engine::Device)
            .count()
            .max(1) as f64;
        // Copy engine is exclusive: at most one active transfer.
        let pcie_share = 1.0;

        // Progress rate of each active op and time to next completion.
        let mut dt = f64::INFINITY;
        for &i in &active {
            if sched[i].start.is_nan() {
                sched[i].start = t;
            }
            let share = match ops[i].engine {
                Engine::Device => device_share,
                Engine::Pcie => pcie_share,
            };
            let finish_in = remaining[i] * share;
            if finish_in < dt {
                dt = finish_in;
            }
        }
        // Zero-duration ops complete instantly; dt may be 0, which is fine.
        for &i in &active {
            let share = match ops[i].engine {
                Engine::Device => device_share,
                Engine::Pcie => pcie_share,
            };
            remaining[i] -= dt / share;
            if remaining[i] <= 1e-18 {
                remaining[i] = 0.0;
                done[i] = true;
                n_done += 1;
                sched[i].end = t + dt;
            }
        }
        t += dt;
    }

    Schedule {
        makespan: t,
        ops: sched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: usize, stream: u32, engine: Engine, duration: f64) -> Op {
        Op::new(id, StreamId(stream), engine, duration, format!("op{id}"))
    }

    #[test]
    fn event_dependency_delays_cross_stream_op() {
        // op1 on stream 1 waits for op0 on stream 0.
        let mut o1 = op(1, 1, Engine::Device, 1.0);
        o1.wait_for = vec![0];
        let ops = vec![op(0, 0, Engine::Device, 2.0), o1];
        let s = schedule(&ops, 32);
        assert!((s.ops[1].start - 2.0).abs() < 1e-12, "waits for the event");
        assert!((s.makespan - 3.0).abs() < 1e-12);
    }

    #[test]
    fn satisfied_event_changes_nothing() {
        let mut o1 = op(1, 0, Engine::Device, 1.0);
        o1.wait_for = vec![0]; // same stream: already ordered
        let ops = vec![op(0, 0, Engine::Device, 1.0), o1];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_stream_serialises() {
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 0, Engine::Device, 2.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 3.0).abs() < 1e-12);
        assert!((s.ops[0].end - 1.0).abs() < 1e-12);
        assert!((s.ops[1].start - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_memory_kernels_share_the_device() {
        // Two 1-second kernels on different streams: each runs at half
        // rate while both active → both finish at t=2. No free lunch.
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 1, Engine::Device, 1.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 2.0).abs() < 1e-12);
        assert!((s.ops[0].start).abs() < 1e-12);
        assert!((s.ops[1].start).abs() < 1e-12);
    }

    #[test]
    fn transfer_overlaps_kernel_for_free() {
        let ops = vec![
            op(0, 0, Engine::Device, 2.0),
            op(1, 1, Engine::Pcie, 2.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 2.0).abs() < 1e-12, "full overlap expected");
    }

    #[test]
    fn unequal_kernels_release_share_when_done() {
        // 1 s and 3 s kernels: both at half rate until the short one
        // finishes at t=2 (having done 1 s of work); the long one then has
        // 2 s left at full rate → ends at 4.
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 1, Engine::Device, 3.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.ops[0].end - 2.0).abs() < 1e-12);
        assert!((s.ops[1].end - 4.0).abs() < 1e-12);
        assert!((s.makespan - 4.0).abs() < 1e-12);
    }

    #[test]
    fn concurrency_cap_queues_kernels() {
        // Cap of 1: three 1-second kernels on three streams serialise.
        let ops = vec![
            op(0, 0, Engine::Device, 1.0),
            op(1, 1, Engine::Device, 1.0),
            op(2, 2, Engine::Device, 1.0),
        ];
        let s = schedule(&ops, 1);
        assert!((s.makespan - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stream_order_respected_across_engines() {
        // stream 0: transfer then kernel — kernel must wait for transfer.
        let ops = vec![
            op(0, 0, Engine::Pcie, 1.0),
            op(1, 0, Engine::Device, 1.0),
        ];
        let s = schedule(&ops, 32);
        assert!((s.ops[1].start - 1.0).abs() < 1e-12);
        assert!((s.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_chunks_overlap_copy_and_compute() {
        // Classic two-stage pipeline: per chunk, transfer (0.5 s) then
        // kernel (0.5 s), chunks on alternating streams. With overlap the
        // makespan approaches 0.5·(chunks+1) rather than 1.0·chunks.
        let mut ops = Vec::new();
        let chunks = 4;
        for c in 0..chunks {
            ops.push(op(2 * c, c as u32, Engine::Pcie, 0.5));
            ops.push(op(2 * c + 1, c as u32, Engine::Device, 0.5));
        }
        let s = schedule(&ops, 32);
        assert!(
            s.makespan < 0.5 * chunks as f64 * 2.0 - 0.4,
            "pipelining should beat serial: {}",
            s.makespan
        );
    }

    #[test]
    fn zero_duration_ops_complete() {
        let ops = vec![op(0, 0, Engine::Device, 0.0), op(1, 0, Engine::Device, 1.0)];
        let s = schedule(&ops, 32);
        assert!((s.makespan - 1.0).abs() < 1e-12);
        assert_eq!(s.ops[0].end, 0.0);
    }

    #[test]
    fn empty_schedule() {
        let s = schedule(&[], 32);
        assert_eq!(s.makespan, 0.0);
        assert!(s.ops.is_empty());
    }
}
