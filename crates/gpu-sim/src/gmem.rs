//! The global-memory access gateway handed to every kernel thread.
//!
//! Kernels never index device buffers directly; they go through [`Gmem`],
//! which (a) performs the actual load and (b) — for sampled warps — records
//! the address so the coalescing analyzer can charge transactions. For
//! unsampled threads the trace is `None` and the accessors compile down to
//! a bounds-checked slice read, keeping functional execution fast.

use crate::buffer::DeviceBuffer;
use crate::trace::{AccessKind, ThreadTrace};

/// Per-thread memory gateway. Created by the executor; one per thread.
pub struct Gmem<'a> {
    trace: Option<&'a mut ThreadTrace>,
}

impl<'a> Gmem<'a> {
    /// Gateway for an unsampled thread: no recording.
    #[inline]
    pub(crate) fn untraced() -> Self {
        Gmem { trace: None }
    }

    /// Gateway for a sampled thread: accesses are recorded into `trace`.
    #[inline]
    pub(crate) fn traced(trace: &'a mut ThreadTrace) -> Self {
        Gmem { trace: Some(trace) }
    }

    /// True when this thread's accesses are being recorded.
    #[inline]
    pub fn is_traced(&self) -> bool {
        self.trace.is_some()
    }

    #[inline]
    fn record(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.record(addr, bytes, kind);
        }
    }

    /// Global load with an address that is independent of prior loads
    /// (e.g. computed from the thread id by *index mapping*).
    #[inline]
    pub fn ld<T: Copy>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.record(buf.addr_of(i), std::mem::size_of::<T>() as u32, AccessKind::Read);
        buf.as_slice()[i]
    }

    /// Global load whose address depends on a previous load — a serial
    /// latency chain the hardware cannot overlap (the pattern the paper's
    /// index-mapping optimisation eliminates).
    #[inline]
    pub fn ld_dep<T: Copy>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.record(
            buf.addr_of(i),
            std::mem::size_of::<T>() as u32,
            AccessKind::ReadDependent,
        );
        buf.as_slice()[i]
    }

    /// Global load with an independent address whose *result* feeds a
    /// serial accumulator (`acc += signal[idx] * filter[i]`): coalesces
    /// like [`Gmem::ld`] but only partially overlaps in the latency model.
    #[inline]
    pub fn ld_acc<T: Copy>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.record_acc(buf.addr_of(i), std::mem::size_of::<T>() as u32);
        }
        buf.as_slice()[i]
    }

    /// Read-only-cache load (`__ldg`).
    #[inline]
    pub fn ld_ro<T: Copy>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.record(
            buf.addr_of(i),
            std::mem::size_of::<T>() as u32,
            AccessKind::ReadOnly,
        );
        buf.as_slice()[i]
    }

    /// L2-resident producer-consumer load: the buffer was written by an
    /// immediately preceding kernel on the same stream and fits in L2
    /// (the caller is responsible for that invariant — the async-layout
    /// code checks the chunk size against [`crate::spec::DeviceSpec::l2_bytes`]).
    #[inline]
    pub fn ld_cached<T: Copy>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.record(
            buf.addr_of(i),
            std::mem::size_of::<T>() as u32,
            AccessKind::CachedRead,
        );
        buf.as_slice()[i]
    }

    /// Records the store the executor performs on this thread's behalf
    /// (used by `launch_map` for `out[tid] = …`). `cached` marks stores to
    /// L2-resident scratch that is consumed before eviction.
    #[inline]
    pub(crate) fn note_store(&mut self, addr: u64, bytes: u32, cached: bool) {
        self.record(
            addr,
            bytes,
            if cached {
                AccessKind::CachedWrite
            } else {
                AccessKind::Write
            },
        );
    }

    /// Records an atomic RMW (called by the device atomic types).
    #[inline]
    pub(crate) fn note_atomic(&mut self, addr: u64, bytes: u32) {
        self.record(addr, bytes, AccessKind::Atomic);
    }

    /// Reports `n` double-precision floating-point operations.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.add_flops(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untraced_gateway_reads_without_recording() {
        let buf = DeviceBuffer::from_host(&[10u64, 20, 30]);
        let mut gm = Gmem::untraced();
        assert!(!gm.is_traced());
        assert_eq!(gm.ld(&buf, 1), 20);
        assert_eq!(gm.ld_dep(&buf, 2), 30);
        assert_eq!(gm.ld_ro(&buf, 0), 10);
        gm.flops(100); // no-op, must not panic
    }

    #[test]
    fn traced_gateway_records_accesses() {
        let buf = DeviceBuffer::from_host(&[1.0f64, 2.0, 3.0, 4.0]);
        let mut tr = ThreadTrace::default();
        {
            let mut gm = Gmem::traced(&mut tr);
            assert!(gm.is_traced());
            let _ = gm.ld(&buf, 0);
            let _ = gm.ld_dep(&buf, 2);
            let _ = gm.ld_ro(&buf, 3);
            gm.flops(7);
        }
        assert_eq!(tr.accesses.len(), 3);
        assert_eq!(tr.accesses[0].kind, AccessKind::Read);
        assert_eq!(tr.accesses[0].addr, buf.addr_of(0));
        assert_eq!(tr.accesses[1].kind, AccessKind::ReadDependent);
        assert_eq!(tr.accesses[1].addr, buf.addr_of(2));
        assert_eq!(tr.accesses[2].kind, AccessKind::ReadOnly);
        assert_eq!(tr.chain_len, 1.0);
        assert_eq!(tr.flops, 7);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_load_panics() {
        let buf = DeviceBuffer::from_host(&[1u8]);
        let mut gm = Gmem::untraced();
        let _ = gm.ld(&buf, 5);
    }
}
