//! Typed pipeline errors.
//!
//! [`CusFftError`] is what the fallible pipeline entry points
//! (`CusFft::try_execute`, the `prepare`/`run_batched_ffts`/`finish`
//! stages) and the serving layer report instead of panicking. Device
//! faults arrive as [`GpuError`]; the two non-device variants cover
//! malformed requests (rejected before touching the device) and panics
//! contained by the serving layer's `catch_unwind` boundary.

use gpu_sim::GpuError;

/// A typed, recoverable pipeline failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CusFftError {
    /// A device operation failed (allocation, transfer, launch, ECC).
    Gpu(GpuError),
    /// The request was malformed and never reached the device.
    BadRequest {
        /// Human-readable validation failure.
        reason: String,
    },
    /// A panic was caught at an isolation boundary (serve worker or
    /// request execution); only the affected requests fail.
    Panic {
        /// Where the panic was contained, plus its payload if it was a
        /// string.
        context: String,
    },
    /// The sampled residual check rejected a returned spectrum: a
    /// device→host payload was silently corrupted (SDC) — or, much more
    /// rarely, the recovery genuinely missed by more than the check's
    /// tolerance. Either way the result must not be served; the serving
    /// layer routes it into retry/CPU fallback like a device fault.
    SilentCorruption {
        /// Worst sampled time-domain deviation `max_j |x(t_j) − ŷ(t_j)|`.
        residual: f64,
        /// Detection threshold the residual exceeded.
        tolerance: f64,
    },
    /// The device's circuit breaker is open and CPU fallback is
    /// disabled: the request was short-circuited without touching the
    /// device.
    CircuitOpen,
    /// The request journal rejected a resume: the log is truncated,
    /// structurally corrupt, duplicates a terminal record, or was
    /// written for a different request batch (fingerprint mismatch).
    /// Resuming from it could violate exactly-once delivery, so nothing
    /// was re-executed.
    Journal {
        /// Human-readable diagnosis of the journal defect.
        reason: String,
    },
    /// An engine or fleet configuration was rejected at construction
    /// (zero workers, empty fleet, zero-capacity device spec, standby
    /// budget exceeding member memory, …). Nothing ran: the
    /// configuration never produced an engine.
    BadConfig {
        /// Human-readable validation failure.
        reason: String,
    },
}

impl CusFftError {
    /// Stable short class label used as a telemetry/audit dimension
    /// (one word per variant; the audit layer's terminal-cause strings
    /// are built from these).
    pub fn class_label(&self) -> &'static str {
        match self {
            CusFftError::Gpu(_) => "gpu",
            CusFftError::BadRequest { .. } => "bad_request",
            CusFftError::Panic { .. } => "panic",
            CusFftError::SilentCorruption { .. } => "sdc",
            CusFftError::CircuitOpen => "circuit_open",
            CusFftError::Journal { .. } => "journal",
            CusFftError::BadConfig { .. } => "config",
        }
    }
}

impl std::fmt::Display for CusFftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CusFftError::Gpu(e) => write!(f, "device error: {e}"),
            CusFftError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            CusFftError::Panic { context } => write!(f, "panic contained: {context}"),
            CusFftError::SilentCorruption {
                residual,
                tolerance,
            } => write!(
                f,
                "result-integrity check failed: sampled residual {residual:.3e} exceeds {tolerance:.3e}"
            ),
            CusFftError::CircuitOpen => {
                write!(f, "circuit breaker open: device path short-circuited")
            }
            CusFftError::Journal { reason } => write!(f, "journal error: {reason}"),
            CusFftError::BadConfig { reason } => write!(f, "bad config: {reason}"),
        }
    }
}

impl std::error::Error for CusFftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CusFftError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for CusFftError {
    fn from(e: GpuError) -> Self {
        CusFftError::Gpu(e)
    }
}

/// Renders a caught panic payload for [`CusFftError::Panic`].
pub(crate) fn panic_context(where_: &str, payload: &(dyn std::any::Any + Send)) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    };
    format!("{where_}: {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_errors_convert_and_chain() {
        let e: CusFftError = GpuError::LaunchFailure { kernel: "k".into() }.into();
        assert!(matches!(e, CusFftError::Gpu(_)));
        assert!(e.to_string().contains("device error"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn bad_request_displays_reason() {
        let e = CusFftError::BadRequest {
            reason: "signal length must match params.n".into(),
        };
        assert!(e.to_string().contains("length must match"));
    }

    #[test]
    fn bad_config_displays_reason() {
        let e = CusFftError::BadConfig {
            reason: "fleet has no members".into(),
        };
        assert_eq!(e.to_string(), "bad config: fleet has no members");
    }

    #[test]
    fn panic_context_extracts_strings() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom".to_string());
        let ctx = panic_context("worker 3", payload.as_ref());
        assert_eq!(ctx, "worker 3: boom");
        let payload: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert!(panic_context("w", payload.as_ref()).contains("non-string"));
    }
}
