//! `cusfft::serve` — a concurrent, fault-tolerant batch-serving layer
//! over the pipeline.
//!
//! A server receives many sparse-FFT requests over a handful of signal
//! geometries. Three mechanisms (mirroring what the paper's batching and
//! multi-stream sections do *within* one transform, lifted to the request
//! level) make that cheap:
//!
//! 1. **Plan caching** ([`PlanCache`]): one [`ExecutePlan`] per
//!    `(n, k, variant, qos, backend)`, shared across requests and
//!    worker threads.
//! 2. **Cross-request cuFFT batching**: all requests with the same plan
//!    are prepared together and their subsampled FFTs ride in a single
//!    batched cuFFT launch per bucket geometry
//!    ([`ExecutePlan::run_batched_ffts`]) — "compute cuFFT only once",
//!    amortised across requests as well as inner loops.
//! 3. **Sharded multi-stream dispatch**: geometry groups are dealt
//!    round-robin to worker threads, each owning a private stream family
//!    on the simulated device, so independent groups overlap on the
//!    simulated timeline exactly as concurrent streams overlap on real
//!    hardware (paper Fig. 4).
//!
//! Execution itself is pluggable: every request names a
//! [`BackendKind`], the engine resolves it through its
//! [`BackendRegistry`] (never constructing device pipelines or CPU
//! reference paths directly), and requests for different backends land
//! in different plan groups. See [`crate::backend`].
//!
//! ## Fault tolerance
//!
//! With a [`FaultConfig`] installed ([`ServeConfig::faults`]) the worker
//! devices inject deterministic faults (OOM, transfer failures, launch
//! failures/timeouts, detected ECC errors — see `gpu_sim::fault`), and
//! the engine recovers per request:
//!
//! * **Request isolation** — a request whose prepare/finish fails is
//!   evicted from its batch group; the group's surviving requests still
//!   share one batched cuFFT. A failed *batched* launch defers every
//!   survivor (no row was transformed, so re-preparing is safe).
//! * **Bounded retry** — evicted requests re-run individually, up to
//!   [`ServeConfig::max_retries`] attempts, each preceded by a
//!   deterministic exponential backoff charged to the timeline as a host
//!   op (which contends for no device resource).
//! * **Backend re-routing** — when retries are exhausted and
//!   [`ServeConfig::cpu_fallback`] is on, the request is re-routed to
//!   the [`SfftCpuBackend`] ([`ServePath::Cpu`],
//!   [`ServeResponse::backend`] = [`BackendKind::SfftCpu`]); otherwise
//!   it fails with a typed [`CusFftError`]. Degradation is ordinary
//!   backend selection, not a bolted-on special case.
//! * **Panic containment** — per-request work runs under `catch_unwind`,
//!   so a panicking request degrades like any fault; a lost worker thread
//!   fails over to the engine thread, which serves its requests on the
//!   CPU path.
//!
//! Determinism is load-bearing: outputs *and* the simulated timeline are
//! functions of `(requests, config)` alone — including the fault seed —
//! independent of OS thread scheduling and host pool width. Each worker
//! records its ops on a private device; the recordings are merged in
//! worker order with [`gpu_sim::merge_op_groups`], which interleaves
//! deterministically and remaps streams to disjoint global ids before the
//! event-driven scheduler runs. Fault decisions are scoped per *global
//! group index* (see [`scope_group`]/[`scope_retry`]), so per-request
//! outcomes and fault tallies are also invariant under the worker count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cusfft_telemetry::{fmt_f64, tag_batch, tag_fallback, tag_retry};
use fft::cplx::Cplx;
use gpu_sim::{
    concurrency_profile, merge_op_groups, schedule, ConcurrencyProfile, DeviceSpec, FaultConfig,
    GpuDevice,
};
use signal::Recovered;

use crate::backend::{
    home_device, worker_device, BackendKind, BackendRegistry, ExecutePlan, PreparedState,
    SfftCpuBackend,
};
use crate::error::CusFftError;
use crate::overload::{LatencyStats, OverloadTally};
use crate::pipeline::{ExecStreams, Variant};
use crate::plan_cache::{CacheStats, PlanCache, PlanKey, ServeQos};

/// One sparse-FFT request: a signal plus the geometry to serve it under.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Time-domain signal; its length is the `n` of the plan key.
    pub time: Vec<Cplx>,
    /// Expected sparsity.
    pub k: usize,
    /// Implementation tier.
    pub variant: Variant,
    /// Seed for the request's random permutations.
    pub seed: u64,
    /// Execution backend to serve this request on — a per-request QoS
    /// policy, resolved through the engine's [`BackendRegistry`].
    pub backend: BackendKind,
}

impl ServeRequest {
    /// A request on the default backend ([`BackendKind::GpuSim`]).
    pub fn new(time: Vec<Cplx>, k: usize, variant: Variant, seed: u64) -> Self {
        ServeRequest {
            time,
            k,
            variant,
            seed,
            backend: BackendKind::GpuSim,
        }
    }

    /// Routes the request to `backend`.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The cache key this request resolves to at full QoS. The overload
    /// path may re-key onto [`ServeQos::Degraded`] under queue pressure.
    pub fn plan_key(&self) -> PlanKey {
        PlanKey {
            n: self.time.len(),
            k: self.k,
            variant: self.variant,
            qos: ServeQos::Full,
            backend: self.backend,
        }
    }
}

/// Serving-engine settings.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads (each owns a private stream family). Must be ≥ 1.
    ///
    /// Workers are *orchestration* threads: the compute inside each
    /// request (block execution, batched FFT rows, CPU baselines) runs on
    /// the single process-wide host pool behind the vendored `rayon`
    /// (sized by `CUSFFT_HOST_THREADS`, default `num_cpus` capped at 16).
    /// `workers × pool threads` therefore never multiplies into
    /// oversubscription — all workers' parallel calls queue on the same
    /// pool — so `workers` should be sized for stream-overlap shape
    /// (number of independent geometry groups), not for host cores.
    pub workers: usize,
    /// LRU bound on the plan cache.
    pub cache_capacity: usize,
    /// Deterministic fault plan installed on every worker device; `None`
    /// serves fault-free.
    pub faults: Option<FaultConfig>,
    /// Individual retry attempts per evicted request before degrading.
    pub max_retries: u32,
    /// Re-route exhausted requests to the [`SfftCpuBackend`] instead of
    /// failing them.
    pub cpu_fallback: bool,
    /// Record the policy flight recorder ([`crate::audit`]): every
    /// serving-policy decision lands in [`ServeReport::audit`] as a
    /// causally-linked event, plus derived terminal causes and SLO
    /// burn-rate alerts. Off by default so unaudited reports (and their
    /// golden telemetry exports) are byte-identical to before.
    pub audit: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            cache_capacity: 8,
            faults: None,
            max_retries: 2,
            cpu_fallback: true,
            audit: false,
        }
    }
}

/// Which execution path produced a response. Orthogonal to
/// [`ServeResponse::backend`]: the path says *how the engine got there*
/// (first batch attempt, after retries, or fallback re-route), the
/// backend says *what executed*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServePath {
    /// First-attempt batch path on the request's own backend.
    Gpu,
    /// The request's own backend, after one or more individual retries.
    GpuRetry,
    /// Fallback re-route to the [`SfftCpuBackend`] after retries were
    /// exhausted (or a worker was lost).
    Cpu,
}

impl ServePath {
    /// Stable label used as a telemetry dimension.
    pub fn label(self) -> &'static str {
        match self {
            ServePath::Gpu => "gpu",
            ServePath::GpuRetry => "gpu_retry",
            ServePath::Cpu => "cpu",
        }
    }
}

/// Result for one request, in the order the requests were submitted.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Recovered `(frequency, coefficient)` pairs, sorted by frequency —
    /// bit-identical to `CusFft::execute` on the same `(signal, seed)`
    /// for the GPU paths.
    pub recovered: Recovered,
    /// Number of located frequencies before estimation.
    pub num_hits: usize,
    /// The path that produced this response.
    pub path: ServePath,
    /// The accuracy tier the request was served at ([`ServeQos::Full`]
    /// everywhere except the overload path's brownout mode).
    pub qos: ServeQos,
    /// The backend that actually executed the request — the request's
    /// own [`ServeRequest::backend`] on the GPU paths,
    /// [`BackendKind::SfftCpu`] after a fallback re-route.
    pub backend: BackendKind,
}

/// Terminal outcome of one request. Requests fail individually; one bad
/// request never takes down its batch. The rejection variants
/// ([`RequestOutcome::Shed`], [`RequestOutcome::DeadlineExceeded`]) only
/// arise on the overload path ([`ServeEngine::serve_overload`]), which
/// refuses work *before* it touches the device — distinguishable from
/// [`RequestOutcome::Failed`], which means recovery was attempted and
/// exhausted.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// The request completed; see [`ServeResponse::path`] for how.
    Done(ServeResponse),
    /// The request failed after exhausting recovery.
    Failed {
        /// The last error recovery saw.
        error: CusFftError,
        /// Individual retry attempts made before giving up (`0` when the
        /// request never reached execution, e.g. failed validation).
        after_attempts: u32,
    },
    /// Admission control rejected the request: the queue was full at its
    /// arrival time. The request never executed.
    Shed {
        /// Predicted queue depth at the request's arrival.
        queue_depth: usize,
    },
    /// Admission control rejected the request: it could not finish
    /// within its deadline even at the front of the predicted queue. The
    /// request never executed.
    DeadlineExceeded {
        /// Predicted completion latency (seconds after arrival).
        predicted: f64,
        /// The request's deadline (seconds after arrival).
        deadline: f64,
    },
}

impl RequestOutcome {
    /// The response, if the request completed.
    pub fn response(&self) -> Option<&ServeResponse> {
        match self {
            RequestOutcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// The error, if the request failed after attempting execution.
    pub fn error(&self) -> Option<&CusFftError> {
        match self {
            RequestOutcome::Failed { error, .. } => Some(error),
            _ => None,
        }
    }

    /// Whether admission control rejected the request before execution
    /// (shed or past-deadline).
    pub fn is_rejected(&self) -> bool {
        matches!(
            self,
            RequestOutcome::Shed { .. } | RequestOutcome::DeadlineExceeded { .. }
        )
    }
}

/// Fault/recovery counters for one [`ServeEngine::serve_batch`] call.
/// Deterministic: a function of `(requests, config)`, invariant under
/// the worker count and host pool width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Faults the devices injected (every class, every attempt).
    pub injected: u64,
    /// Individual retry attempts performed.
    pub retries: u64,
    /// Requests evicted from their batch group to the individual path.
    pub evictions: u64,
    /// Requests completed on the CPU fallback path.
    pub cpu_fallbacks: u64,
    /// Requests that terminally failed.
    pub failed: u64,
    /// Panics contained (per-request boundaries and lost workers).
    pub worker_panics: u64,
    /// Silent-data-corruption events caught by the sampled residual
    /// check (each one routed into retry/CPU recovery like a fault).
    pub sdc_detected: u64,
}

impl FaultTally {
    pub(crate) fn absorb(&mut self, other: &FaultTally) {
        self.injected += other.injected;
        self.retries += other.retries;
        self.evictions += other.evictions;
        self.cpu_fallbacks += other.cpu_fallbacks;
        self.failed += other.failed;
        self.worker_panics += other.worker_panics;
        self.sdc_detected += other.sdc_detected;
    }

    /// Counts a detected silent corruption when `e` is the residual
    /// check's rejection.
    fn note(&mut self, e: &CusFftError) {
        if matches!(e, CusFftError::SilentCorruption { .. }) {
            self.sdc_detected += 1;
        }
    }
}

/// The merged simulated timeline a serve call executed, kept on the
/// report so telemetry exporters can rebuild spans and traces without
/// re-running anything.
#[derive(Debug, Clone)]
pub struct ServeTimeline {
    /// Merged ops in deterministic merge order (see
    /// [`gpu_sim::merge_op_groups`]), attribution tags intact.
    pub ops: Vec<gpu_sim::Op>,
    /// The schedule computed over `ops`.
    pub sched: gpu_sim::Schedule,
}

impl Default for ServeTimeline {
    fn default() -> Self {
        ServeTimeline {
            ops: Vec::new(),
            sched: gpu_sim::Schedule {
                ops: Vec::new(),
                makespan: 0.0,
            },
        }
    }
}

/// Identity and disposition of one plan-key group, for telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupInfo {
    /// Global group index (the fault-scope base).
    pub gid: usize,
    /// Request indices served by this group, in submission order.
    pub indices: Vec<usize>,
    /// The plan key the group was served under (carries n, k, variant
    /// and the possibly-degraded QoS tier).
    pub key: PlanKey,
    /// Whether the breaker short-circuited the group (overload path).
    pub short_circuit: bool,
    /// Whether a speculative hedge duplicate ran (overload path).
    pub hedged: bool,
    /// Fleet member the group executed on (`None` outside the fleet
    /// path, and for fleet groups that were short-circuited to the CPU
    /// tier without touching any device). Indexes
    /// [`ServeReport::devices`].
    pub device: Option<usize>,
}

/// Deterministic simulated-latency summary for one (path, QoS) class,
/// computed from the telemetry histogram (overload path only — the plain
/// batch path has no arrival times).
#[derive(Debug, Clone, PartialEq)]
pub struct PathLatency {
    /// Execution path.
    pub path: ServePath,
    /// Accuracy tier.
    pub qos: ServeQos,
    /// Completed requests in this class.
    pub count: u64,
    /// Median latency (histogram nearest-rank, bucket upper bound).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// The underlying fixed-bucket histogram.
    pub hist: cusfft_telemetry::Histogram,
}

/// Modeled execution totals for one kernel (or transfer) name over a
/// serve call, rolled up from the workers' recordings. Per-transfer
/// byte suffixes are stripped (`"dtoh (512 B)"` folds into `"dtoh"`),
/// so every launch of one kernel aggregates under one row.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRollup {
    /// Kernel or transfer label.
    pub name: String,
    /// Launches/transfers recorded under this name.
    pub launches: u64,
    /// Summed modeled duration (seconds).
    pub time: f64,
    /// Summed modeled DRAM transactions (zero for transfers).
    pub transactions: f64,
    /// Summed modeled DRAM bytes.
    pub dram_bytes: f64,
}

/// Device memory-pool and arena traffic over a serve call. After the
/// warmup allocations of each group, steady-state requests should add
/// nothing to `alloc_ops` — the invariant the zero-allocation test
/// pins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolTally {
    /// Tracked `MemPool` allocations (fresh device reservations).
    pub alloc_ops: u64,
    /// Tracked `MemPool` releases.
    pub release_ops: u64,
    /// Arena acquisitions satisfied from a free list.
    pub reuse_hits: u64,
    /// Arena acquisitions that fell through to a fresh allocation.
    pub fresh_misses: u64,
}

impl PoolTally {
    pub(crate) fn absorb(&mut self, other: &PoolTally) {
        self.alloc_ops += other.alloc_ops;
        self.release_ops += other.release_ops;
        self.reuse_hits += other.reuse_hits;
        self.fresh_misses += other.fresh_misses;
    }
}

/// Kernel/pool telemetry one worker captured around a single
/// `run_group` call. Deltas, not cumulative counters, so merging is
/// order-insensitive for the integers and gid-ordered for the float
/// sums.
#[derive(Debug, Clone, Default)]
pub(crate) struct GroupTelemetry {
    pub(crate) gid: usize,
    pub(crate) kernels: Vec<KernelRollup>,
    pub(crate) pool: PoolTally,
    /// Worker-side policy decisions (evictions, retries, fallbacks)
    /// buffered for the audit log; empty unless [`ServeConfig::audit`].
    pub(crate) audit: Vec<crate::audit::GroupAuditEvent>,
}

/// Rolls a recording slice up by normalized kernel name, sorted by name
/// for a deterministic report layout. Accumulation follows record order,
/// so float sums are reproducible.
pub(crate) fn rollup_kernels(records: &[gpu_sim::LaunchRecord]) -> Vec<KernelRollup> {
    let mut map: std::collections::BTreeMap<String, KernelRollup> = std::collections::BTreeMap::new();
    for r in records {
        let name = r.name.split(" (").next().unwrap_or(&r.name);
        let e = map
            .entry(name.to_string())
            .or_insert_with(|| KernelRollup {
                name: name.to_string(),
                launches: 0,
                time: 0.0,
                transactions: 0.0,
                dram_bytes: 0.0,
            });
        e.launches += 1;
        e.time += r.cost.total;
        e.transactions += r.stats.transactions;
        e.dram_bytes += r.stats.dram_bytes;
    }
    map.into_values().collect()
}

/// Merges per-group rollups (callers pass them sorted by gid, making
/// the float accumulation order deterministic) into one name-sorted
/// report table.
pub(crate) fn merge_rollups(groups: &[GroupTelemetry]) -> Vec<KernelRollup> {
    let mut map: std::collections::BTreeMap<String, KernelRollup> = std::collections::BTreeMap::new();
    for g in groups {
        for k in &g.kernels {
            let e = map.entry(k.name.clone()).or_insert_with(|| KernelRollup {
                name: k.name.clone(),
                launches: 0,
                time: 0.0,
                transactions: 0.0,
                dram_bytes: 0.0,
            });
            e.launches += k.launches;
            e.time += k.time;
            e.transactions += k.transactions;
            e.dram_bytes += k.dram_bytes;
        }
    }
    map.into_values().collect()
}

/// Outcome of one [`ServeEngine::serve_batch`] call.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request outcomes, in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Simulated makespan of the merged multi-stream timeline (seconds).
    pub makespan: f64,
    /// Requests per simulated second (`0` for an empty batch).
    pub throughput: f64,
    /// Per-stream occupancy and concurrency over the merged timeline.
    pub concurrency: ConcurrencyProfile,
    /// Plan-cache counters after this batch.
    pub cache: CacheStats,
    /// Number of distinct plan groups the batch split into.
    pub groups: usize,
    /// Fault-injection and recovery counters for this batch.
    pub faults: FaultTally,
    /// Overload-control counters (all zero for [`ServeEngine::serve_batch`],
    /// which has no admission control).
    pub overload: OverloadTally,
    /// Simulated request-latency distribution (empty/zero for
    /// [`ServeEngine::serve_batch`], which has no arrival times).
    pub latency: LatencyStats,
    /// Circuit-breaker transitions, in decision order (empty for
    /// [`ServeEngine::serve_batch`]).
    pub breaker: Vec<gpu_sim::BreakerTransition>,
    /// The merged timeline this call executed, for telemetry export.
    pub timeline: ServeTimeline,
    /// Per-group identity/disposition, aligned with the span model.
    pub group_info: Vec<GroupInfo>,
    /// Per-(path, QoS) latency summaries (overload path only; empty for
    /// [`ServeEngine::serve_batch`]).
    pub path_latency: Vec<PathLatency>,
    /// Request arrival times in submission order (overload path only;
    /// empty for [`ServeEngine::serve_batch`]).
    pub arrivals: Vec<f64>,
    /// Per-kernel modeled execution totals, rolled up across all groups
    /// and sorted by kernel name.
    pub kernels: Vec<KernelRollup>,
    /// Device memory-pool and arena traffic summed over all groups.
    pub pool: PoolTally,
    /// Fleet routing/failover counters (all zero outside
    /// [`crate::fleet::DeviceFleet::serve`]).
    pub fleet: crate::fleet::FleetTally,
    /// Per-member fleet summaries, indexed by member id (empty outside
    /// the fleet path). [`GroupInfo::device`] indexes into this.
    pub devices: Vec<crate::fleet::FleetDeviceInfo>,
    /// Request-journal counters (`None` outside the journaled paths
    /// [`ServeEngine::serve_journaled`] / [`ServeEngine::resume_from`]).
    pub journal: Option<crate::journal::JournalTally>,
    /// The policy flight recorder's output (`None` unless
    /// [`ServeConfig::audit`] is on): the decision event log, derived
    /// terminal causes, and the SLO burn-rate report.
    pub audit: Option<Box<crate::audit::AuditReport>>,
}

impl ServeReport {
    /// The responses of all completed requests, in submission order
    /// (skipping failed ones).
    pub fn responses(&self) -> impl Iterator<Item = &ServeResponse> {
        self.outcomes.iter().filter_map(|o| o.response())
    }
}

/// A geometry group: every request index served by one plan.
pub(crate) struct Group {
    /// Global group index — the fault-scope base, so fault decisions are
    /// invariant under how groups are dealt to workers.
    pub(crate) gid: usize,
    pub(crate) plan: Arc<dyn ExecutePlan>,
    pub(crate) indices: Vec<usize>,
    /// Accuracy tier this group is served at (always [`ServeQos::Full`]
    /// on the plain batch path; the overload path's brownout re-keys
    /// pressured requests onto degraded plans).
    pub(crate) qos: ServeQos,
}

/// Base backoff before the first individual retry; doubles per attempt.
const RETRY_BACKOFF_BASE: f64 = 50e-6;

/// Fault scope of group `g`'s batch attempt. Scopes only need to be
/// distinct (the fault plan hashes them); bit 19 separates the batch
/// attempt from the retry scopes below, bit 18 separates a hedged
/// duplicate from its primary (a hedge is an independent run, not a
/// replay of the primary's faults).
pub(crate) fn scope_group(g: usize, hedged: bool) -> u64 {
    ((g as u64) << 20) | (u64::from(hedged) << 18)
}

/// Fault scope of retry `attempt` for the request at position `j` of
/// group `g` (fits j < 2^14, attempt < 16 — far beyond practical use).
pub(crate) fn scope_retry(g: usize, j: usize, attempt: u32, hedged: bool) -> u64 {
    ((g as u64) << 20) | (1 << 19) | (u64::from(hedged) << 18) | ((j as u64) << 4)
        | u64::from(attempt)
}

/// The concurrent serving engine: backend registry + plan cache +
/// sharded batch dispatch.
pub struct ServeEngine {
    pub(crate) spec: DeviceSpec,
    /// Device plans are built against. Plan buffers are host-backed and
    /// device-agnostic, so workers execute them on private devices.
    pub(crate) home: Arc<GpuDevice>,
    pub(crate) cache: PlanCache,
    pub(crate) config: ServeConfig,
    /// Execution backends, keyed by [`BackendKind`]. All plan builds and
    /// request pricing resolve through here.
    pub(crate) registry: BackendRegistry,
}

impl ServeEngine {
    /// Creates an engine simulating `spec` devices under `config`, with
    /// all stock backends registered. Rejects invalid configurations
    /// with a typed [`CusFftError::BadConfig`] instead of panicking.
    #[must_use = "the engine is returned, not installed; dropping it discards the construction"]
    pub fn new(spec: DeviceSpec, config: ServeConfig) -> Result<Self, CusFftError> {
        Self::with_registry(spec, config, BackendRegistry::with_defaults())
    }

    /// Creates an engine with an explicit backend registry — requests
    /// naming an unregistered [`BackendKind`] fail typed at admission.
    /// Rejects invalid configurations with [`CusFftError::BadConfig`].
    #[must_use = "the engine is returned, not installed; dropping it discards the construction"]
    pub fn with_registry(
        spec: DeviceSpec,
        config: ServeConfig,
        registry: BackendRegistry,
    ) -> Result<Self, CusFftError> {
        if config.workers < 1 {
            return Err(CusFftError::BadConfig {
                reason: "serve engine needs at least 1 worker".into(),
            });
        }
        if config.cache_capacity < 1 {
            return Err(CusFftError::BadConfig {
                reason: "plan cache capacity must be at least 1".into(),
            });
        }
        if spec.global_mem_bytes == 0 {
            return Err(CusFftError::BadConfig {
                reason: format!("device spec '{}' has zero memory capacity", spec.name),
            });
        }
        Ok(ServeEngine {
            home: home_device(&spec),
            spec,
            cache: PlanCache::new(config.cache_capacity),
            config,
            registry,
        })
    }

    /// The plan cache (counters persist across batches).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The engine's backend registry.
    pub fn registry(&self) -> &BackendRegistry {
        &self.registry
    }

    /// Serves a batch: groups requests by plan key, shards the groups
    /// across workers, and returns per-request outcomes (in submission
    /// order) plus the merged simulated timeline. Never panics on request
    /// content or injected faults — bad requests and exhausted failures
    /// come back as [`RequestOutcome::Failed`].
    pub fn serve_batch(&self, requests: &[ServeRequest]) -> ServeReport {
        let (groups, prefailed) = self.group_requests(requests);
        let num_groups = groups.len();
        // The flight recorder's batch-level root. The plain batch path
        // has no virtual clock, so group-scope events carry ts 0.0 and
        // terminals use the request index as a logical ordinal.
        let mut alog = if self.config.audit {
            let mut a = crate::audit::AuditLog::new();
            a.record(
                0.0,
                None,
                None,
                "batch_admitted",
                vec![
                    ("requests".into(), requests.len().to_string()),
                    ("groups".into(), num_groups.to_string()),
                ],
            );
            Some(a)
        } else {
            None
        };
        let workers = self.config.workers;
        let config = self.config;

        // Deal groups round-robin: worker w owns groups w, w+W, w+2W, …
        let mut shards: Vec<Vec<&Group>> = (0..workers).map(|_| Vec::new()).collect();
        for (g, group) in groups.iter().enumerate() {
            shards[g % workers].push(group);
        }

        // Aux streams per worker: enough for any plan in the batch.
        let aux = groups
            .iter()
            .map(|g| g.plan.num_streams())
            .max()
            .unwrap_or(0);

        // Each worker executes its groups on a private device, so op
        // recording needs no synchronisation and the merged timeline is
        // independent of thread interleaving. The workers themselves are
        // cheap std threads: their inner `par_*` compute shares the one
        // global host pool (see `ServeConfig::workers`), which also keeps
        // results deterministic — the pool's chunking is independent of
        // how many serve workers are in flight.
        let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    let spec = self.spec.clone();
                    scope.spawn(move || run_worker(spec, shard, requests, aux, &config))
                })
                .collect();
            handles
                .into_iter()
                .zip(&shards)
                .map(|(h, shard)| match h.join() {
                    Ok(out) => out,
                    // A worker died outside every catch_unwind boundary
                    // (should not happen — per-request work is contained).
                    // Its ops and fault counters are lost, but its
                    // requests are not: the engine thread serves them on
                    // the CPU path (or fails them typed).
                    Err(payload) => recover_worker_loss(shard, requests, &config, &*payload),
                })
                .collect()
        });

        // Merge per-worker recordings in worker order (deterministic),
        // then schedule the combined op set once.
        let op_groups: Vec<_> = worker_outputs.iter().map(|w| w.ops.clone()).collect();
        let merged = merge_op_groups(&op_groups);
        let sched = schedule(&merged, self.spec.max_concurrent_kernels);
        let concurrency = concurrency_profile(&merged, &sched);
        let makespan = concurrency.makespan;

        let mut faults = FaultTally::default();
        for w in &worker_outputs {
            faults.absorb(&w.tally);
        }

        let mut outcomes: Vec<Option<RequestOutcome>> =
            (0..requests.len()).map(|_| None).collect();
        let mut groups_tel: Vec<GroupTelemetry> = Vec::new();
        for w in worker_outputs {
            groups_tel.extend(w.groups_tel);
            for (idx, outcome) in w.results {
                outcomes[idx] = Some(outcome);
            }
        }
        // Global group order, not worker order, so the report's float
        // sums are invariant under the worker count.
        groups_tel.sort_by_key(|t| t.gid);
        let kernels = merge_rollups(&groups_tel);
        let mut pool = PoolTally::default();
        for t in &groups_tel {
            pool.absorb(&t.pool);
        }
        for (idx, err) in prefailed {
            if let Some(a) = alog.as_mut() {
                a.record(
                    0.0,
                    Some(idx),
                    None,
                    "invalid",
                    vec![("reason".into(), err.to_string())],
                );
            }
            faults.failed += 1;
            outcomes[idx] = Some(RequestOutcome::Failed {
                error: err,
                after_attempts: 0,
            });
        }
        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            // Invariant: every request is either pre-failed by validation
            // or assigned to exactly one group, and every group position
            // resolves (run_group returns an outcome per index; a lost
            // worker is recovered above).
            .map(|o| o.expect("every request resolves to exactly one outcome"))
            .collect();

        let throughput = if makespan > 0.0 {
            requests.len() as f64 / makespan
        } else {
            0.0
        };

        let group_info = groups
            .iter()
            .map(|g| GroupInfo {
                gid: g.gid,
                indices: g.indices.clone(),
                key: PlanKey {
                    qos: g.qos,
                    ..requests[g.indices[0]].plan_key()
                },
                short_circuit: false,
                hedged: false,
                device: None,
            })
            .collect();

        let audit = alog.map(|mut a| {
            let mut gid_of: Vec<Option<usize>> = vec![None; requests.len()];
            // gid order = audit fold order, so event ids are invariant
            // under the worker count (groups_tel is gid-sorted above).
            for g in &groups {
                a.record(
                    0.0,
                    None,
                    Some(g.gid),
                    "group_placed",
                    vec![
                        ("members".into(), g.indices.len().to_string()),
                        ("n".into(), requests[g.indices[0]].time.len().to_string()),
                        ("k".into(), requests[g.indices[0]].k.to_string()),
                        ("qos".into(), g.qos.label().into()),
                        ("backend".into(), g.plan.backend().label().into()),
                    ],
                );
                for &idx in &g.indices {
                    gid_of[idx] = Some(g.gid);
                }
                if let Some(t) = groups_tel.iter().find(|t| t.gid == g.gid) {
                    a.fold_group(0.0, g.gid, &t.audit);
                }
            }
            let ts_of: Vec<f64> = (0..requests.len()).map(|i| i as f64).collect();
            let lat_of: Vec<Option<f64>> = vec![None; requests.len()];
            crate::audit::finalize_audit(
                a,
                &outcomes,
                &gid_of,
                &ts_of,
                &lat_of,
                &crate::audit::SloConfig::default(),
            )
        });

        ServeReport {
            outcomes,
            makespan,
            throughput,
            concurrency,
            cache: self.cache.stats(),
            groups: num_groups,
            faults,
            overload: OverloadTally::default(),
            latency: LatencyStats::default(),
            breaker: Vec::new(),
            timeline: ServeTimeline { ops: merged, sched },
            group_info,
            path_latency: Vec::new(),
            arrivals: Vec::new(),
            kernels,
            pool,
            fleet: crate::fleet::FleetTally::default(),
            devices: Vec::new(),
            journal: None,
            audit,
        }
    }

    /// Resolves each request's plan through the cache and groups request
    /// indices by plan, in first-appearance order. Requests that fail
    /// validation (the geometry the plan constructor would reject) are
    /// returned separately as typed failures instead of panicking.
    pub(crate) fn group_requests(
        &self,
        requests: &[ServeRequest],
    ) -> (Vec<Group>, Vec<(usize, CusFftError)>) {
        let mut groups: Vec<Group> = Vec::new();
        let mut prefailed: Vec<(usize, CusFftError)> = Vec::new();
        let mut key_to_group: std::collections::HashMap<PlanKey, usize> =
            std::collections::HashMap::new();
        for (idx, req) in requests.iter().enumerate() {
            if let Err(e) = validate_request(req) {
                prefailed.push((idx, e));
                continue;
            }
            let key = req.plan_key();
            // Look up per request — cache counters reflect request
            // traffic, the signal a production cache sizes itself by.
            let Some(plan) = self.cache.get_or_build(&self.home, &self.registry, key) else {
                prefailed.push((
                    idx,
                    CusFftError::BadRequest {
                        reason: format!("backend {} is not registered", req.backend.label()),
                    },
                ));
                continue;
            };
            match key_to_group.get(&key) {
                Some(&g) => groups[g].indices.push(idx),
                None => {
                    key_to_group.insert(key, groups.len());
                    groups.push(Group {
                        gid: groups.len(),
                        plan,
                        indices: vec![idx],
                        qos: ServeQos::Full,
                    });
                }
            }
        }
        (groups, prefailed)
    }
}

/// Rejects geometries `SfftParams::tuned` would panic on, as typed
/// errors before any plan is built or device touched.
pub(crate) fn validate_request(req: &ServeRequest) -> Result<(), CusFftError> {
    let n = req.time.len();
    let bad = |reason: String| Err(CusFftError::BadRequest { reason });
    if n == 0 {
        return bad("signal must be non-empty".into());
    }
    if !n.is_power_of_two() || n < 512 {
        return bad(format!("signal length {n} must be a power of two ≥ 512"));
    }
    if req.k == 0 || req.k > n / 8 {
        return bad(format!("sparsity k={} out of 1..={}", req.k, n / 8));
    }
    Ok(())
}

pub(crate) struct WorkerOutput {
    /// `(request index, outcome)` pairs for every request this worker ran.
    pub(crate) results: Vec<(usize, RequestOutcome)>,
    /// The worker's private op recording.
    pub(crate) ops: Vec<gpu_sim::Op>,
    /// The worker's fault/recovery counters.
    pub(crate) tally: FaultTally,
    /// Per-group kernel/pool telemetry, in this worker's group order.
    pub(crate) groups_tel: Vec<GroupTelemetry>,
}

/// Executes `shard`'s groups serially on a private device: prepare every
/// request in a group, one cross-request batched cuFFT per side, then
/// finish each request — recovering from injected faults per request (see
/// the module docs). The stream family is created once so consecutive
/// groups on this worker genuinely serialise on it.
pub(crate) fn run_worker(
    spec: DeviceSpec,
    shard: &[&Group],
    requests: &[ServeRequest],
    aux: usize,
    cfg: &ServeConfig,
) -> WorkerOutput {
    let device = worker_device(&spec, cfg.faults.as_ref());
    let streams = ExecStreams::on_device_private(&device, aux);
    let mut tally = FaultTally::default();
    let mut results = Vec::new();
    let mut groups_tel = Vec::new();
    let mut rec_base = 0usize;
    for group in shard {
        let alloc0 = device.pool_alloc_ops();
        let release0 = device.pool_release_ops();
        let arena0 = streams.arena.stats();
        let mut group_audit = Vec::new();
        results.extend(run_group(
            &device,
            group,
            requests,
            &streams,
            cfg,
            &mut tally,
            false,
            &mut group_audit,
        ));
        // Everything recorded/charged since the previous group boundary
        // belongs to this group: run_group resets the arena on both
        // ends, so pool releases cannot leak across groups.
        let records = device.records();
        let arena1 = streams.arena.stats();
        groups_tel.push(GroupTelemetry {
            gid: group.gid,
            kernels: rollup_kernels(&records[rec_base..]),
            pool: PoolTally {
                alloc_ops: device.pool_alloc_ops() - alloc0,
                release_ops: device.pool_release_ops() - release0,
                reuse_hits: arena1.reuse_hits - arena0.reuse_hits,
                fresh_misses: arena1.fresh_misses - arena0.fresh_misses,
            },
            audit: group_audit,
        });
        rec_base = records.len();
    }
    tally.injected = device.faults_injected();
    WorkerOutput {
        results,
        ops: device.ops(),
        tally,
        groups_tel,
    }
}

/// Runs `f` inside a panic boundary, converting a panic into a typed
/// [`CusFftError::Panic`] so one request cannot take down its worker.
fn run_caught<T>(
    tally: &mut FaultTally,
    where_: &str,
    f: impl FnOnce() -> Result<T, CusFftError>,
) -> Result<T, CusFftError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            tally.worker_panics += 1;
            Err(CusFftError::Panic {
                context: crate::error::panic_context(where_, payload.as_ref()),
            })
        }
    }
}

/// One group under fault recovery: batch attempt, per-request eviction,
/// individual retries with backoff, CPU fallback. Returns an outcome for
/// every index in the group. `hedged` selects the hedge fault scopes so
/// a hedged duplicate rolls independent fault decisions from its
/// primary.
#[allow(clippy::too_many_arguments)] // worker-call plumbing, not an API
pub(crate) fn run_group(
    device: &GpuDevice,
    group: &Group,
    requests: &[ServeRequest],
    streams: &ExecStreams,
    cfg: &ServeConfig,
    tally: &mut FaultTally,
    hedged: bool,
    audit: &mut Vec<crate::audit::GroupAuditEvent>,
) -> Vec<(usize, RequestOutcome)> {
    use crate::audit::GroupAuditEvent;
    // Buffers a worker-side decision for the audit fold. Recording is
    // deferred (and gated) so the hot path stays allocation-free when
    // auditing is off and event ids stay worker-count invariant.
    let note = |audit: &mut Vec<GroupAuditEvent>,
                request: usize,
                kind: &'static str,
                attrs: Vec<(String, String)>| {
        if cfg.audit {
            audit.push(GroupAuditEvent {
                request: Some(request),
                kind,
                attrs,
            });
        }
    };
    let g = group.gid;
    let plan = &group.plan;
    let nreq = group.indices.len();
    let mut outcomes: Vec<Option<RequestOutcome>> = (0..nreq).map(|_| None).collect();
    let mut last_err: Vec<Option<CusFftError>> = (0..nreq).map(|_| None).collect();
    // Group positions deferred to the individual retry path.
    let mut individual: Vec<usize> = Vec::new();

    // Pool state must be a pure function of this group alone — never of
    // which worker ran it or what ran before on the same streams — so
    // the arena starts empty at every group boundary.
    streams.arena.reset();

    // Batch attempt. Every fault decision inside it rolls in the group's
    // own scope, so the sequence is invariant under worker placement.
    device.set_fault_scope(scope_group(g, hedged));
    device.set_op_tag(tag_batch(g, plan.backend().code(), hedged));

    // Pool warmup plus one aggregated H2D staging transfer for the
    // group's combined signal payload. Nothing request-specific has run
    // yet, so a failure is group-wide: every request is evicted to the
    // individual path (which rolls its own fault scopes).
    let mut staged = run_caught(tally, "warm", || plan.warm(device, streams, nreq));
    if staged.is_ok() {
        let bytes: usize = group
            .indices
            .iter()
            .map(|&idx| std::mem::size_of_val(requests[idx].time.as_slice()))
            .sum();
        staged = run_caught(tally, "stage", || {
            plan.stage_group(device, bytes, streams.main)
        });
    }

    let mut preps: Vec<Option<PreparedState>> = Vec::with_capacity(nreq);
    match staged {
        Err(e) => {
            tally.note(&e);
            for (j, slot) in last_err.iter_mut().enumerate().take(nreq) {
                tally.evictions += 1;
                note(
                    audit,
                    group.indices[j],
                    "evicted",
                    vec![
                        ("stage".into(), "stage".into()),
                        ("error".into(), e.class_label().into()),
                    ],
                );
                *slot = Some(e.clone());
                individual.push(j);
                preps.push(None);
            }
        }
        Ok(()) => {
            for (j, &idx) in group.indices.iter().enumerate() {
                let req = &requests[idx];
                let r = run_caught(tally, "prepare", || {
                    plan.prepare(device, &req.time, req.seed, streams)
                });
                match r {
                    Ok(p) => preps.push(Some(p)),
                    Err(e) => {
                        tally.evictions += 1;
                        tally.note(&e);
                        note(
                            audit,
                            idx,
                            "evicted",
                            vec![
                                ("stage".into(), "prepare".into()),
                                ("error".into(), e.class_label().into()),
                            ],
                        );
                        last_err[j] = Some(e);
                        individual.push(j);
                        preps.push(None);
                    }
                }
            }
        }
    }

    let survivors: Vec<usize> = (0..nreq).filter(|&j| preps[j].is_some()).collect();
    let mut batched_ok = true;
    if !survivors.is_empty() {
        let r = run_caught(tally, "batched cuFFT", || {
            let mut refs: Vec<&mut PreparedState> =
                preps.iter_mut().filter_map(|p| p.as_mut()).collect();
            plan.run_batched_ffts(device, &mut refs, streams.main)
        });
        if let Err(e) = r {
            // A failed batched launch transformed no row (and a failed
            // estimation batch poisons the half-transformed group), so
            // every survivor re-prepares from scratch individually.
            batched_ok = false;
            tally.note(&e);
            for &j in &survivors {
                tally.evictions += 1;
                note(
                    audit,
                    group.indices[j],
                    "evicted",
                    vec![
                        ("stage".into(), "batched_fft".into()),
                        ("error".into(), e.class_label().into()),
                    ],
                );
                last_err[j] = Some(e.clone());
                individual.push(j);
                preps[j] = None;
            }
        }
    }

    if batched_ok && !survivors.is_empty() {
        // One back-half pass over the whole surviving group, so the
        // backend can aggregate its result transfers (D2H) group-wide
        // instead of paying PCIe latency per request. A panic anywhere
        // in the pass evicts every survivor (the aggregated transfers
        // make per-request attribution of a panic ambiguous).
        let prep_refs: Vec<&PreparedState> = survivors
            .iter()
            .map(|&j| {
                preps[j]
                    .as_ref()
                    .expect("survivors hold their prepared state")
            })
            .collect();
        let finished = run_caught(tally, "finish", || {
            Ok(plan.finish_group(device, &prep_refs, streams))
        });
        match finished {
            Ok(rs) => {
                debug_assert_eq!(rs.len(), survivors.len());
                for (&j, r) in survivors.iter().zip(rs) {
                    match r {
                        Ok((recovered, num_hits)) => {
                            outcomes[j] = Some(RequestOutcome::Done(ServeResponse {
                                recovered,
                                num_hits,
                                path: ServePath::Gpu,
                                qos: group.qos,
                                backend: plan.backend(),
                            }));
                        }
                        Err(e) => {
                            tally.evictions += 1;
                            tally.note(&e);
                            note(
                                audit,
                                group.indices[j],
                                "evicted",
                                vec![
                                    ("stage".into(), "finish".into()),
                                    ("error".into(), e.class_label().into()),
                                ],
                            );
                            last_err[j] = Some(e);
                            individual.push(j);
                        }
                    }
                }
            }
            Err(e) => {
                for &j in &survivors {
                    tally.evictions += 1;
                    tally.note(&e);
                    note(
                        audit,
                        group.indices[j],
                        "evicted",
                        vec![
                            ("stage".into(), "finish".into()),
                            ("error".into(), e.class_label().into()),
                        ],
                    );
                    last_err[j] = Some(e.clone());
                    individual.push(j);
                }
            }
        }
    }

    // Individual path: bounded retries, then CPU fallback. Processed in
    // group-position order regardless of which stage evicted them.
    individual.sort_unstable();
    for &j in &individual {
        let req = &requests[group.indices[j]];
        let mut success: Option<ServeResponse> = None;
        for attempt in 1..=cfg.max_retries {
            tally.retries += 1;
            // Deterministic exponential backoff, visible on the timeline
            // but contending for no device resource.
            let backoff = RETRY_BACKOFF_BASE * (1u64 << (attempt - 1)) as f64;
            note(
                audit,
                group.indices[j],
                "retry_attempt",
                vec![
                    ("attempt".into(), attempt.to_string()),
                    ("backoff".into(), fmt_f64(backoff)),
                ],
            );
            device.set_op_tag(tag_retry(g, j, attempt, plan.backend().code(), hedged));
            device.charge_host_op("retry_backoff", backoff, streams.main);
            device.set_fault_scope(scope_retry(g, j, attempt, hedged));
            let r = run_caught(tally, "retry", || {
                let mut prep = plan.prepare(device, &req.time, req.seed, streams)?;
                plan.run_batched_ffts(device, &mut [&mut prep], streams.main)?;
                let (recovered, num_hits) = plan.finish(device, &prep, streams)?;
                Ok(ServeResponse {
                    recovered,
                    num_hits,
                    path: ServePath::GpuRetry,
                    qos: group.qos,
                    backend: plan.backend(),
                })
            });
            match r {
                Ok(resp) => {
                    success = Some(resp);
                    break;
                }
                Err(e) => {
                    tally.note(&e);
                    note(
                        audit,
                        group.indices[j],
                        "retry_failed",
                        vec![
                            ("attempt".into(), attempt.to_string()),
                            ("error".into(), e.class_label().into()),
                        ],
                    );
                    last_err[j] = Some(e);
                }
            }
        }
        outcomes[j] = Some(match success {
            Some(resp) => RequestOutcome::Done(resp),
            None if cfg.cpu_fallback => {
                tally.cpu_fallbacks += 1;
                note(
                    audit,
                    group.indices[j],
                    "cpu_fallback",
                    vec![("backend".into(), "sfft_cpu".into())],
                );
                // Zero-duration marker: the re-route is visible on the
                // timeline without inventing a device cost for CPU work.
                device.set_op_tag(tag_fallback(g, j, BackendKind::SfftCpu.code(), hedged));
                device.charge_host_op("cpu_fallback", 0.0, streams.main);
                // Straight to the backend's pure computation — never the
                // plan cache, which worker threads must not touch (its
                // counters are part of the determinism contract).
                let recovered = SfftCpuBackend::reference(plan.params(), &req.time, req.seed);
                RequestOutcome::Done(ServeResponse {
                    num_hits: recovered.len(),
                    recovered,
                    path: ServePath::Cpu,
                    qos: group.qos,
                    backend: BackendKind::SfftCpu,
                })
            }
            None => {
                tally.failed += 1;
                RequestOutcome::Failed {
                    error: last_err[j].take().unwrap_or(CusFftError::Panic {
                        context: "request failed without a recorded error".into(),
                    }),
                    after_attempts: cfg.max_retries,
                }
            }
        });
    }

    // Return every pooled buffer (dropping the prepared states) before
    // the end-of-group reset, so the `MemPool` releases land in this
    // group's telemetry window — not the next group's, which may run on
    // a different worker under a different sharding.
    drop(preps);
    streams.arena.reset();

    group
        .indices
        .iter()
        .zip(outcomes)
        // Invariant: every position either finished on the batch path or
        // was pushed to `individual`, which always writes an outcome.
        .map(|(&idx, o)| (idx, o.expect("every group position resolves")))
        .collect()
}

/// Engine-thread failover for a worker that died outside every
/// per-request panic boundary: serve its requests on the CPU path (or
/// fail them typed). Ops and device-side fault counters are lost with
/// the worker.
pub(crate) fn recover_worker_loss(
    shard: &[&Group],
    requests: &[ServeRequest],
    cfg: &ServeConfig,
    payload: &(dyn std::any::Any + Send),
) -> WorkerOutput {
    let context = crate::error::panic_context("serve worker", payload);
    let mut tally = FaultTally {
        worker_panics: 1,
        ..FaultTally::default()
    };
    let mut results = Vec::new();
    for group in shard {
        for &idx in &group.indices {
            let req = &requests[idx];
            let outcome = if cfg.cpu_fallback {
                tally.cpu_fallbacks += 1;
                let recovered =
                    SfftCpuBackend::reference(group.plan.params(), &req.time, req.seed);
                RequestOutcome::Done(ServeResponse {
                    num_hits: recovered.len(),
                    recovered,
                    path: ServePath::Cpu,
                    qos: group.qos,
                    backend: BackendKind::SfftCpu,
                })
            } else {
                tally.failed += 1;
                RequestOutcome::Failed {
                    error: CusFftError::Panic {
                        context: context.clone(),
                    },
                    after_attempts: 0,
                }
            };
            results.push((idx, outcome));
        }
    }
    WorkerOutput {
        results,
        ops: Vec::new(),
        tally,
        groups_tel: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::{MagnitudeModel, SparseSignal};

    fn request(n: usize, k: usize, variant: Variant, sig_seed: u64, seed: u64) -> ServeRequest {
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_seed);
        ServeRequest::new(s.time, k, variant, seed)
    }

    #[test]
    fn empty_batch_is_empty_report() {
        let engine = ServeEngine::new(DeviceSpec::tesla_k20x(), ServeConfig::default()).unwrap();
        let report = engine.serve_batch(&[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.groups, 0);
        assert_eq!(report.throughput, 0.0);
        assert_eq!(report.faults, FaultTally::default());
    }

    #[test]
    fn same_geometry_requests_share_one_plan_and_group() {
        let engine = ServeEngine::new(DeviceSpec::tesla_k20x(), ServeConfig::default()).unwrap();
        let reqs: Vec<ServeRequest> = (0..4)
            .map(|i| request(1 << 10, 4, Variant::Optimized, 10 + i, 100 + i))
            .collect();
        let report = engine.serve_batch(&reqs);
        assert_eq!(report.groups, 1);
        assert_eq!(report.outcomes.len(), 4);
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.response().is_some_and(|r| r.path == ServePath::Gpu)));
        let s = report.cache;
        assert_eq!(s.misses, 1, "one plan build");
        assert_eq!(s.hits, 3, "remaining requests hit the cache");
    }

    #[test]
    fn two_groups_on_two_workers_overlap_streams() {
        let engine = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 2,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        ).unwrap();
        let reqs = vec![
            request(1 << 10, 4, Variant::Optimized, 1, 11),
            request(1 << 11, 4, Variant::Optimized, 2, 22),
        ];
        let report = engine.serve_batch(&reqs);
        assert_eq!(report.groups, 2);
        assert!(
            report.concurrency.max_concurrent_streams >= 2,
            "two workers' streams should overlap, got {}",
            report.concurrency.max_concurrent_streams
        );
        assert!(report.makespan > 0.0);
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn fair_sharing_conserves_work_across_worker_counts() {
        // Concurrent kernels share the SMs evenly and transfers serialise
        // on the one copy engine, so sharding the batch across workers
        // overlaps streams without inventing aggregate bandwidth: the
        // two-worker makespan stays within a few percent of the serial
        // one (copy-engine contention may add small bubbles).
        let reqs = vec![
            request(1 << 10, 4, Variant::Optimized, 1, 11),
            request(1 << 11, 4, Variant::Optimized, 2, 22),
        ];
        let one = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 1,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        ).unwrap()
        .serve_batch(&reqs)
        .makespan;
        let two = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 2,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        ).unwrap()
        .serve_batch(&reqs)
        .makespan;
        assert!(
            two <= one * 1.10,
            "two workers ({two:.3e}s) should stay near the serial makespan ({one:.3e}s)"
        );
        assert!(
            two >= one * 0.40,
            "fair sharing cannot halve total work: {two:.3e}s vs {one:.3e}s"
        );
    }

    #[test]
    fn responses_are_in_submission_order() {
        let engine = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 3,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        ).unwrap();
        // Alternate geometries so consecutive requests land in different
        // groups (and hence workers).
        let reqs: Vec<ServeRequest> = (0..6)
            .map(|i| {
                let n = if i % 2 == 0 { 1 << 10 } else { 1 << 11 };
                request(n, 4, Variant::Optimized, i as u64, 7 * i as u64)
            })
            .collect();
        let report = engine.serve_batch(&reqs);
        let spec = DeviceSpec::tesla_k20x();
        let home = home_device(&spec);
        for (req, outcome) in reqs.iter().zip(&report.outcomes) {
            let plan = engine
                .registry()
                .get(req.backend)
                .unwrap()
                .build_plan(&home, req.plan_key());
            let direct = crate::backend::execute_direct(&*plan, &spec, &req.time, req.seed)
                .expect("fault-free direct execution");
            let resp = outcome.response().expect("fault-free batch completes");
            assert_eq!(resp.recovered, direct);
            assert_eq!(resp.backend, req.backend);
        }
    }

    #[test]
    fn invalid_requests_fail_typed_without_poisoning_the_batch() {
        let engine = ServeEngine::new(DeviceSpec::tesla_k20x(), ServeConfig::default()).unwrap();
        let reqs = vec![
            request(1 << 10, 4, Variant::Optimized, 1, 11),
            // Non-power-of-two length: the plan constructor would panic.
            ServeRequest::new(vec![fft::cplx::ZERO; 1000], 4, Variant::Optimized, 1),
            // k out of range for n.
            ServeRequest::new(vec![fft::cplx::ZERO; 1 << 10], 1 << 10, Variant::Optimized, 1),
        ];
        let report = engine.serve_batch(&reqs);
        assert!(report.outcomes[0].response().is_some());
        for bad in [1, 2] {
            match report.outcomes[bad].error() {
                Some(CusFftError::BadRequest { .. }) => {}
                other => panic!("expected BadRequest, got {other:?}"),
            }
        }
        assert_eq!(report.faults.failed, 2);
        assert_eq!(report.faults.worker_panics, 0, "rejected before any panic");
    }

    #[test]
    fn persistent_faults_degrade_every_request_to_cpu() {
        let engine = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                faults: Some(FaultConfig::persistent(3)),
                ..ServeConfig::default()
            },
        ).unwrap();
        let reqs: Vec<ServeRequest> = (0..4)
            .map(|i| request(1 << 10, 4, Variant::Optimized, i, 100 + i))
            .collect();
        let report = engine.serve_batch(&reqs);
        assert_eq!(report.outcomes.len(), 4);
        for outcome in &report.outcomes {
            let resp = outcome.response().expect("cpu fallback completes");
            assert_eq!(resp.path, ServePath::Cpu);
            assert_eq!(resp.backend, BackendKind::SfftCpu, "re-routed backend");
        }
        assert_eq!(report.faults.cpu_fallbacks, 4);
        assert_eq!(report.faults.evictions, 4);
        assert!(report.faults.retries > 0);
        assert!(report.faults.injected > 0);
        assert_eq!(report.faults.failed, 0);
    }

    #[test]
    fn persistent_faults_without_fallback_fail_typed() {
        let engine = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                faults: Some(FaultConfig::persistent(3)),
                cpu_fallback: false,
                ..ServeConfig::default()
            },
        ).unwrap();
        let reqs = vec![request(1 << 10, 4, Variant::Optimized, 1, 11)];
        let report = engine.serve_batch(&reqs);
        match report.outcomes[0].error() {
            Some(CusFftError::Gpu(_)) => {}
            other => panic!("expected a typed device error, got {other:?}"),
        }
        assert_eq!(report.faults.failed, 1);
        assert_eq!(report.faults.cpu_fallbacks, 0);
    }

    #[test]
    fn requests_route_to_their_named_backend() {
        let engine = ServeEngine::new(DeviceSpec::tesla_k20x(), ServeConfig::default()).unwrap();
        let reqs: Vec<ServeRequest> = BackendKind::all()
            .into_iter()
            .map(|b| request(1 << 10, 4, Variant::Optimized, 3, 17).with_backend(b))
            .collect();
        let report = engine.serve_batch(&reqs);
        // Same geometry, three backends: three groups, three plans.
        assert_eq!(report.groups, 3);
        for (req, outcome) in reqs.iter().zip(&report.outcomes) {
            let resp = outcome.response().expect("every backend serves clean");
            assert_eq!(resp.path, ServePath::Gpu);
            assert_eq!(resp.backend, req.backend);
        }
        for (info, req) in report.group_info.iter().zip(&reqs) {
            assert_eq!(info.key.backend, req.backend);
        }
    }

    #[test]
    fn unregistered_backend_fails_typed() {
        let mut registry = BackendRegistry::empty();
        registry.register(Arc::new(crate::backend::GpuSimBackend::default()));
        let engine = ServeEngine::with_registry(
            DeviceSpec::tesla_k20x(),
            ServeConfig::default(),
            registry,
        ).unwrap();
        let reqs = vec![
            request(1 << 10, 4, Variant::Optimized, 1, 11),
            request(1 << 10, 4, Variant::Optimized, 2, 12).with_backend(BackendKind::DenseFft),
        ];
        let report = engine.serve_batch(&reqs);
        assert!(report.outcomes[0].response().is_some());
        match report.outcomes[1].error() {
            Some(CusFftError::BadRequest { reason }) => {
                assert!(reason.contains("dense_fft"), "reason names the backend: {reason}");
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
        assert_eq!(report.faults.failed, 1);
    }
}
