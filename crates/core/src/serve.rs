//! `cusfft::serve` — a concurrent batch-serving layer over the pipeline.
//!
//! A server receives many sparse-FFT requests over a handful of signal
//! geometries. Three mechanisms (mirroring what the paper's batching and
//! multi-stream sections do *within* one transform, lifted to the request
//! level) make that cheap:
//!
//! 1. **Plan caching** ([`PlanCache`]): one [`CusFft`] per
//!    `(n, k, variant)`, shared across requests and worker threads.
//! 2. **Cross-request cuFFT batching**: all requests with the same plan
//!    are prepared together and their subsampled FFTs ride in a single
//!    batched cuFFT launch per bucket geometry
//!    ([`CusFft::run_batched_ffts`]) — "compute cuFFT only once",
//!    amortised across requests as well as inner loops.
//! 3. **Sharded multi-stream dispatch**: geometry groups are dealt
//!    round-robin to worker threads, each owning a private stream family
//!    on the simulated device, so independent groups overlap on the
//!    simulated timeline exactly as concurrent streams overlap on real
//!    hardware (paper Fig. 4).
//!
//! Determinism is load-bearing: outputs *and* the simulated timeline are
//! functions of `(requests, config)` alone, independent of OS thread
//! scheduling. Each worker records its ops on a private device; the
//! recordings are merged in worker order with
//! [`gpu_sim::merge_op_groups`], which interleaves deterministically and
//! remaps streams to disjoint global ids before the event-driven
//! scheduler runs.

use std::sync::Arc;

use fft::cplx::Cplx;
use gpu_sim::{
    concurrency_profile, merge_op_groups, schedule, ConcurrencyProfile, DeviceBuffer, DeviceSpec,
    GpuDevice,
};
use signal::Recovered;

use crate::pipeline::{CusFft, ExecStreams, PreparedRequest, Variant};
use crate::plan_cache::{CacheStats, PlanCache, PlanKey};

/// One sparse-FFT request: a signal plus the geometry to serve it under.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Time-domain signal; its length is the `n` of the plan key.
    pub time: Vec<Cplx>,
    /// Expected sparsity.
    pub k: usize,
    /// Implementation tier.
    pub variant: Variant,
    /// Seed for the request's random permutations.
    pub seed: u64,
}

impl ServeRequest {
    /// The cache key this request resolves to.
    pub fn plan_key(&self) -> PlanKey {
        PlanKey {
            n: self.time.len(),
            k: self.k,
            variant: self.variant,
        }
    }
}

/// Serving-engine settings.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads (each owns a private stream family). Must be ≥ 1.
    ///
    /// Workers are *orchestration* threads: the compute inside each
    /// request (block execution, batched FFT rows, CPU baselines) runs on
    /// the single process-wide host pool behind the vendored `rayon`
    /// (sized by `CUSFFT_HOST_THREADS`, default `num_cpus` capped at 16).
    /// `workers × pool threads` therefore never multiplies into
    /// oversubscription — all workers' parallel calls queue on the same
    /// pool — so `workers` should be sized for stream-overlap shape
    /// (number of independent geometry groups), not for host cores.
    pub workers: usize,
    /// LRU bound on the plan cache.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            cache_capacity: 8,
        }
    }
}

/// Result for one request, in the order the requests were submitted.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Recovered `(frequency, coefficient)` pairs, sorted by frequency —
    /// bit-identical to `CusFft::execute` on the same `(signal, seed)`.
    pub recovered: Recovered,
    /// Number of located frequencies before estimation.
    pub num_hits: usize,
}

/// Outcome of one [`ServeEngine::serve_batch`] call.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request results, in submission order.
    pub responses: Vec<ServeResponse>,
    /// Simulated makespan of the merged multi-stream timeline (seconds).
    pub makespan: f64,
    /// Requests per simulated second (`0` for an empty batch).
    pub throughput: f64,
    /// Per-stream occupancy and concurrency over the merged timeline.
    pub concurrency: ConcurrencyProfile,
    /// Plan-cache counters after this batch.
    pub cache: CacheStats,
    /// Number of distinct plan groups the batch split into.
    pub groups: usize,
}

/// A geometry group: every request index served by one plan.
struct Group {
    plan: Arc<CusFft>,
    indices: Vec<usize>,
}

/// The concurrent serving engine: plan cache + sharded batch dispatch.
pub struct ServeEngine {
    spec: DeviceSpec,
    /// Device plans are built against. Plan buffers are host-backed and
    /// device-agnostic, so workers execute them on private devices.
    home: Arc<GpuDevice>,
    cache: PlanCache,
    config: ServeConfig,
}

impl ServeEngine {
    /// Creates an engine simulating `spec` devices under `config`.
    pub fn new(spec: DeviceSpec, config: ServeConfig) -> Self {
        assert!(config.workers >= 1, "serve engine needs at least 1 worker");
        ServeEngine {
            home: Arc::new(GpuDevice::new(spec.clone())),
            spec,
            cache: PlanCache::new(config.cache_capacity),
            config,
        }
    }

    /// The plan cache (counters persist across batches).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Serves a batch: groups requests by plan key, shards the groups
    /// across workers, and returns per-request results (in submission
    /// order) plus the merged simulated timeline.
    pub fn serve_batch(&self, requests: &[ServeRequest]) -> ServeReport {
        let groups = self.group_requests(requests);
        let num_groups = groups.len();
        let workers = self.config.workers;

        // Deal groups round-robin: worker w owns groups w, w+W, w+2W, …
        let mut shards: Vec<Vec<&Group>> = (0..workers).map(|_| Vec::new()).collect();
        for (g, group) in groups.iter().enumerate() {
            shards[g % workers].push(group);
        }

        // Aux streams per worker: enough for any plan in the batch.
        let aux = groups
            .iter()
            .map(|g| g.plan.num_streams())
            .max()
            .unwrap_or(0);

        // Each worker executes its groups on a private device, so op
        // recording needs no synchronisation and the merged timeline is
        // independent of thread interleaving. The workers themselves are
        // cheap std threads: their inner `par_*` compute shares the one
        // global host pool (see `ServeConfig::workers`), which also keeps
        // results deterministic — the pool's chunking is independent of
        // how many serve workers are in flight.
        let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    let spec = self.spec.clone();
                    scope.spawn(move || run_worker(spec, shard, requests, aux))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect()
        });

        // Merge per-worker recordings in worker order (deterministic),
        // then schedule the combined op set once.
        let op_groups: Vec<_> = worker_outputs.iter().map(|w| w.ops.clone()).collect();
        let merged = merge_op_groups(&op_groups);
        let sched = schedule(&merged, self.spec.max_concurrent_kernels);
        let concurrency = concurrency_profile(&merged, &sched);
        let makespan = concurrency.makespan;

        let mut responses: Vec<Option<ServeResponse>> = (0..requests.len()).map(|_| None).collect();
        for w in worker_outputs {
            for (idx, resp) in w.results {
                responses[idx] = Some(resp);
            }
        }
        let responses: Vec<ServeResponse> = responses
            .into_iter()
            .map(|r| r.expect("every request is assigned to exactly one group"))
            .collect();

        let throughput = if makespan > 0.0 {
            requests.len() as f64 / makespan
        } else {
            0.0
        };

        ServeReport {
            responses,
            makespan,
            throughput,
            concurrency,
            cache: self.cache.stats(),
            groups: num_groups,
        }
    }

    /// Resolves each request's plan through the cache and groups request
    /// indices by plan, in first-appearance order.
    fn group_requests(&self, requests: &[ServeRequest]) -> Vec<Group> {
        let mut groups: Vec<Group> = Vec::new();
        let mut key_to_group: std::collections::HashMap<PlanKey, usize> =
            std::collections::HashMap::new();
        for (idx, req) in requests.iter().enumerate() {
            assert!(!req.time.is_empty(), "request signal must be non-empty");
            let key = req.plan_key();
            // Look up per request — cache counters reflect request
            // traffic, the signal a production cache sizes itself by.
            let plan = self.cache.get_or_build(&self.home, key);
            match key_to_group.get(&key) {
                Some(&g) => groups[g].indices.push(idx),
                None => {
                    key_to_group.insert(key, groups.len());
                    groups.push(Group {
                        plan,
                        indices: vec![idx],
                    });
                }
            }
        }
        groups
    }
}

struct WorkerOutput {
    /// `(request index, response)` pairs for every request this worker ran.
    results: Vec<(usize, ServeResponse)>,
    /// The worker's private op recording.
    ops: Vec<gpu_sim::Op>,
}

/// Executes `shard`'s groups serially on a private device: prepare every
/// request in a group, one cross-request batched cuFFT per side, then
/// finish each request. The stream family is created once so consecutive
/// groups on this worker genuinely serialise on it.
fn run_worker(
    spec: DeviceSpec,
    shard: &[&Group],
    requests: &[ServeRequest],
    aux: usize,
) -> WorkerOutput {
    let device = GpuDevice::new(spec);
    let streams = ExecStreams::on_device_private(&device, aux);
    let mut results = Vec::new();
    for group in shard {
        let plan = &group.plan;
        let signals: Vec<DeviceBuffer<Cplx>> = group
            .indices
            .iter()
            .map(|&idx| DeviceBuffer::from_host(&requests[idx].time))
            .collect();
        let mut preps: Vec<PreparedRequest> = group
            .indices
            .iter()
            .zip(&signals)
            .map(|(&idx, signal)| plan.prepare(&device, signal, requests[idx].seed, &streams))
            .collect();
        let mut prep_refs: Vec<&mut PreparedRequest> = preps.iter_mut().collect();
        plan.run_batched_ffts(&device, &mut prep_refs, streams.main);
        for (&idx, prep) in group.indices.iter().zip(&preps) {
            let (recovered, num_hits) = plan.finish(&device, prep, &streams);
            results.push((idx, ServeResponse {
                recovered,
                num_hits,
            }));
        }
    }
    WorkerOutput {
        results,
        ops: device.ops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::{MagnitudeModel, SparseSignal};

    fn request(n: usize, k: usize, variant: Variant, sig_seed: u64, seed: u64) -> ServeRequest {
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_seed);
        ServeRequest {
            time: s.time,
            k,
            variant,
            seed,
        }
    }

    #[test]
    fn empty_batch_is_empty_report() {
        let engine = ServeEngine::new(DeviceSpec::tesla_k20x(), ServeConfig::default());
        let report = engine.serve_batch(&[]);
        assert!(report.responses.is_empty());
        assert_eq!(report.groups, 0);
        assert_eq!(report.throughput, 0.0);
    }

    #[test]
    fn same_geometry_requests_share_one_plan_and_group() {
        let engine = ServeEngine::new(DeviceSpec::tesla_k20x(), ServeConfig::default());
        let reqs: Vec<ServeRequest> = (0..4)
            .map(|i| request(1 << 10, 4, Variant::Optimized, 10 + i, 100 + i))
            .collect();
        let report = engine.serve_batch(&reqs);
        assert_eq!(report.groups, 1);
        assert_eq!(report.responses.len(), 4);
        let s = report.cache;
        assert_eq!(s.misses, 1, "one plan build");
        assert_eq!(s.hits, 3, "remaining requests hit the cache");
    }

    #[test]
    fn two_groups_on_two_workers_overlap_streams() {
        let engine = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 2,
                cache_capacity: 8,
            },
        );
        let reqs = vec![
            request(1 << 10, 4, Variant::Optimized, 1, 11),
            request(1 << 11, 4, Variant::Optimized, 2, 22),
        ];
        let report = engine.serve_batch(&reqs);
        assert_eq!(report.groups, 2);
        assert!(
            report.concurrency.max_concurrent_streams >= 2,
            "two workers' streams should overlap, got {}",
            report.concurrency.max_concurrent_streams
        );
        assert!(report.makespan > 0.0);
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn fair_sharing_conserves_work_across_worker_counts() {
        // Concurrent kernels share the SMs evenly and transfers serialise
        // on the one copy engine, so sharding the batch across workers
        // overlaps streams without inventing aggregate bandwidth: the
        // two-worker makespan stays within a few percent of the serial
        // one (copy-engine contention may add small bubbles).
        let reqs = vec![
            request(1 << 10, 4, Variant::Optimized, 1, 11),
            request(1 << 11, 4, Variant::Optimized, 2, 22),
        ];
        let one = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 1,
                cache_capacity: 8,
            },
        )
        .serve_batch(&reqs)
        .makespan;
        let two = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 2,
                cache_capacity: 8,
            },
        )
        .serve_batch(&reqs)
        .makespan;
        assert!(
            two <= one * 1.10,
            "two workers ({two:.3e}s) should stay near the serial makespan ({one:.3e}s)"
        );
        assert!(
            two >= one * 0.40,
            "fair sharing cannot halve total work: {two:.3e}s vs {one:.3e}s"
        );
    }

    #[test]
    fn responses_are_in_submission_order() {
        let engine = ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers: 3,
                cache_capacity: 8,
            },
        );
        // Alternate geometries so consecutive requests land in different
        // groups (and hence workers).
        let reqs: Vec<ServeRequest> = (0..6)
            .map(|i| {
                let n = if i % 2 == 0 { 1 << 10 } else { 1 << 11 };
                request(n, 4, Variant::Optimized, i as u64, 7 * i as u64)
            })
            .collect();
        let report = engine.serve_batch(&reqs);
        for (req, resp) in reqs.iter().zip(&report.responses) {
            let plan = CusFft::new(
                Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x())),
                Arc::new(sfft_cpu::SfftParams::tuned(req.time.len(), req.k)),
                req.variant,
            );
            let direct = plan.execute(&req.time, req.seed);
            assert_eq!(resp.recovered, direct.recovered);
        }
    }
}
