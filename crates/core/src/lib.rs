//! # `cusfft` — the paper's contribution: a sparse FFT on the (simulated) GPU
//!
//! This crate implements cusFFT (Wang, Chandrasekaran, Chapman — IPDPS
//! 2016) against the CUDA-shaped execution model in `gpu-sim`:
//!
//! * [`perm_filter`] — Algorithms 1-2 (index mapping, loop partition) and
//!   the Section V asynchronous data-layout transformation;
//! * [`cufft`] — the batched/dense cuFFT stand-in with a Kepler cost model;
//! * [`cutoff`] — Algorithm 3 (Thrust sort&select) and Algorithm 6 (fast
//!   k-selection);
//! * [`locate`] — Algorithm 4 (reverse-hash voting);
//! * [`reconstruct`] — Algorithm 5 (median magnitude reconstruction);
//! * [`pipeline`] — the full [`CusFft`] plan with [`Variant::Baseline`]
//!   and [`Variant::Optimized`] tiers (the two cusFFT curves of Figure 5),
//!   plus an optional sFFT-v2 comb pre-filter ([`CusFft::with_comb`],
//!   kernels in [`comb`]);
//! * [`report`] — step-level timing breakdowns;
//! * [`plan_cache`] / [`serve`] — the concurrent serving layer: a keyed
//!   LRU plan cache and sharded multi-stream batch dispatch
//!   ([`ServeEngine`]), with cross-request cuFFT batching;
//! * [`overload`] — overload robustness for the serving layer:
//!   admission control with deadlines, brownout QoS, a per-device
//!   circuit breaker, straggler hedging and result-integrity
//!   verification ([`ServeEngine::serve_overload`]);
//! * [`observe`] — unified telemetry over a [`ServeReport`]: the
//!   structured span tree, the metrics registry, and Chrome/Perfetto
//!   trace export (built on the `cusfft-telemetry` crate);
//! * [`backend`] — pluggable execution backends behind a wasi-nn-style
//!   registry ([`BackendRegistry`]): the simulated-GPU pipeline, the
//!   CPU reference sFFT, and a dense-FFT oracle, all served through
//!   one [`Backend`]/[`ExecutePlan`] contract;
//! * [`fleet`] — heterogeneous device fleets over the serving layer:
//!   deterministic fault-domain routing, device-loss failover onto
//!   pre-reserved standby slabs, drain/recovery quarantine and
//!   capacity brownout ([`DeviceFleet`]);
//! * [`journal`] — crash-consistent serving: a write-ahead request
//!   journal with epoch checkpoints and exactly-once restart
//!   ([`ServeEngine::serve_journaled`] / [`ServeEngine::resume_from`]);
//! * [`audit`] — the policy flight recorder: every serving-policy
//!   decision as a causally-linked structured event, with
//!   [`explain`](audit::explain) decision chains, derived terminal
//!   causes, and multi-window SLO burn-rate alerting;
//! * [`chaos`] — a deterministic chaos explorer sweeping fault seeds,
//!   rate grids, host-crash epochs and fleet device loss, checking a
//!   reusable invariant suite and shrinking any violation to a minimal
//!   replayable schedule ([`explore`]).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use cusfft::{CusFft, Variant};
//! use gpu_sim::GpuDevice;
//! use sfft_cpu::SfftParams;
//! use signal::{MagnitudeModel, SparseSignal};
//!
//! let n = 1 << 12;
//! let k = 8;
//! let signal = SparseSignal::generate(n, k, MagnitudeModel::Unit, 1);
//! let plan = CusFft::new(
//!     Arc::new(GpuDevice::k20x()),
//!     Arc::new(SfftParams::tuned(n, k)),
//!     Variant::Optimized,
//! );
//! let out = plan.execute(&signal.time, 42);
//! assert!(signal.coords.iter().all(|&(f, _)|
//!     out.recovered.iter().any(|&(g, _)| g == f)));
//! println!("simulated device time: {:.3} ms", out.sim_time * 1e3);
//! ```

pub mod arena;
pub mod audit;
pub mod backend;
pub mod comb;
pub mod cufft;
pub mod cutoff;
pub mod chaos;
pub mod error;
pub mod fleet;
pub mod journal;
pub mod locate;
pub mod observe;
pub mod overload;
pub mod perm_filter;
pub mod pipeline;
pub mod plan_cache;
pub mod reconstruct;
pub mod report;
pub mod serve;

pub use arena::{ArenaStats, ExecArena};
pub use audit::{
    derive_cause, explain, is_root_kind, AuditLog, AuditReport, BurnWindow, DecisionChain,
    SloAlert, SloConfig, SloReport,
};
pub use backend::{
    execute_direct, Backend, BackendCaps, BackendKind, BackendRegistry, DenseFftBackend,
    ExecutePlan, GpuSimBackend, SfftCpuBackend,
};
pub use cufft::{batched_fft_device, batched_fft_rows, cufft_dense_baseline, cufft_model_time};
pub use error::CusFftError;
pub use chaos::{
    chaos_space, check_outcome_bijection, explore, shrink, ChaosOutcome, ChaosReport,
    ChaosSchedule, ChaosSpace, InvariantViolation,
};
pub use fleet::{DeviceFleet, FleetConfig, FleetDeviceInfo, FleetMemberConfig, FleetTally};
pub use journal::{
    batch_fingerprint, Journal, JournalOptions, JournalRecord, JournalRun, JournalStats,
    JournalTally, ServeCrash,
};
pub use overload::{nominal_service, LatencyStats, OverloadConfig, OverloadTally, TimedRequest};
pub use perm_filter::{choose_remap, chunk_plan, ChunkPlan, RemapChoice, RemapKind};
pub use pipeline::{
    residual_tolerance, CusFft, CusFftOutput, ExecStreams, HostPhaseWalls, Variant,
};
pub use plan_cache::{CacheStats, PlanCache, PlanKey, ServeQos};
pub use report::StepBreakdown;
pub use serve::{
    FaultTally, GroupInfo, KernelRollup, PathLatency, PoolTally, RequestOutcome, ServeConfig,
    ServeEngine, ServePath, ServeReport, ServeRequest, ServeResponse, ServeTimeline,
};
