//! `cusfft::audit` — the policy flight recorder.
//!
//! Every serving-policy decision — admission verdict, brownout re-key,
//! breaker transition, fleet placement, hedge, retry, failover, journal
//! checkpoint/resume — is recorded as a structured event in a
//! [`cusfft_telemetry::EventLog`], stamped with the simulated clock, the
//! request index and plan-group gid it belongs to, and a causal parent
//! link. The links form a forest rooted at admission events, so
//! [`explain`] can reconstruct the full decision chain behind any
//! outcome: "why was request 17 shed / degraded / routed to device 2?".
//!
//! On top of the log sit two derived layers:
//!
//! * **terminal causes** — a stable `class:detail` label per request
//!   (`shed:queue_full`, `degraded:brownout`, `failover:device_loss`,
//!   `done:gpu_retry`, …) derived from the outcome plus the kinds on its
//!   chain ([`derive_cause`]), exported as the `cause` dimension on
//!   `cusfft_served_total`;
//! * **SLO monitoring** — availability and latency objectives evaluated
//!   over sliding windows of the simulated clock with multi-window
//!   burn-rate alerts (fast/slow, Google-SRE style). Every fired alert
//!   carries the terminal-event ids that consumed the budget, so alerts
//!   are always attributable to audit events — an invariant the chaos
//!   suite checks.
//!
//! Determinism contract: the recorder only ever observes deterministic
//! coordinates (virtual-clock timestamps, gids, request indices, policy
//! measurements), events are appended in a deterministic order on every
//! serve path (coordinator decisions at decision points, worker-side
//! events folded in gid order), and ids are dense append ordinals — so
//! the rendered log, every [`DecisionChain`], and the SLO report are
//! byte-identical across worker counts, host-pool widths, and repeated
//! runs. Paths without a virtual clock (plain batch, journal) use `0.0`
//! for group-scope events and the request index as the terminal-event
//! ordinal, which keeps the same total order.

use std::collections::HashMap;
use std::fmt::Write as _;

use cusfft_telemetry::{fmt_f64, Event, EventLog};

use crate::error::CusFftError;
use crate::plan_cache::ServeQos;
use crate::serve::{RequestOutcome, ServePath, ServeReport};

/// Event kinds allowed to root a decision tree: the batch-level
/// admission marker plus the per-request admission verdicts. Everything
/// else must link (transitively) under one of these.
pub const ROOT_KINDS: [&str; 5] = [
    "batch_admitted",
    "admitted",
    "shed",
    "deadline_rejected",
    "invalid",
];

/// Whether `kind` is an admission root (see [`ROOT_KINDS`]).
pub fn is_root_kind(kind: &str) -> bool {
    ROOT_KINDS.contains(&kind)
}

/// One decision buffered inside a worker while it runs a group, folded
/// into the [`AuditLog`] later (in gid order) by the coordinating
/// thread. Buffering keeps recording off the workers' hot path and
/// makes the fold order — hence event ids — independent of which worker
/// ran the group.
#[derive(Debug, Clone)]
pub(crate) struct GroupAuditEvent {
    /// Request index the decision concerns, if request-scoped.
    pub(crate) request: Option<usize>,
    /// Event kind (snake_case, stable).
    pub(crate) kind: &'static str,
    /// Flat key/value payload.
    pub(crate) attrs: Vec<(String, String)>,
}

/// The flight recorder: an [`EventLog`] plus the causal-link state
/// needed to parent each new event deterministically.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    /// The underlying event log.
    pub events: EventLog,
    /// The batch-level admission root, if one was recorded.
    batch_root: Option<u64>,
    /// Per-request admission root (`admitted`/`shed`/…).
    admission: HashMap<usize, u64>,
    /// Most recent event carrying each request index.
    last_by_request: HashMap<usize, u64>,
    /// Most recent *group-scope* event (gid set, no request) per gid.
    last_group_by_gid: HashMap<usize, u64>,
}

impl AuditLog {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decision, resolving its causal parent from the
    /// recorder state: root kinds get no parent; otherwise the request's
    /// previous event, else the gid's previous group-scope event, else
    /// the batch root. Returns the new event id.
    pub fn record(
        &mut self,
        ts: f64,
        request: Option<usize>,
        gid: Option<usize>,
        kind: &'static str,
        attrs: Vec<(String, String)>,
    ) -> u64 {
        let parent = self.resolve_parent(request, gid, kind);
        self.record_linked(ts, request, gid, kind, attrs, parent)
    }

    /// Records one decision under an explicit parent (used where the
    /// causal link crosses scopes, e.g. a group placement linking to the
    /// admission of its first member).
    pub fn record_linked(
        &mut self,
        ts: f64,
        request: Option<usize>,
        gid: Option<usize>,
        kind: &'static str,
        attrs: Vec<(String, String)>,
        parent: Option<u64>,
    ) -> u64 {
        let id = self.events.push(parent, ts, request, gid, kind, attrs);
        if kind == "batch_admitted" {
            self.batch_root = Some(id);
        }
        if let Some(r) = request {
            if is_root_kind(kind) {
                self.admission.insert(r, id);
            }
            self.last_by_request.insert(r, id);
        } else if let Some(g) = gid {
            self.last_group_by_gid.insert(g, id);
        }
        id
    }

    /// The default parent for a new `(request, gid, kind)` event.
    fn resolve_parent(
        &self,
        request: Option<usize>,
        gid: Option<usize>,
        kind: &'static str,
    ) -> Option<u64> {
        if is_root_kind(kind) {
            return None;
        }
        request
            .and_then(|r| self.last_by_request.get(&r).copied())
            .or_else(|| gid.and_then(|g| self.last_group_by_gid.get(&g).copied()))
            .or(self.batch_root)
    }

    /// The admission-root event of `request`, if recorded.
    pub fn admission_of(&self, request: usize) -> Option<u64> {
        self.admission.get(&request).copied()
    }

    /// Folds decisions a worker buffered for group `gid` into the log at
    /// timestamp `ts` (the group's completion on the path's virtual
    /// clock, or `0.0` on clockless paths). Callers fold groups in gid
    /// order so event ids are worker-count invariant.
    pub(crate) fn fold_group(&mut self, ts: f64, gid: usize, buffered: &[GroupAuditEvent]) {
        for e in buffered {
            self.record(ts, e.request, Some(gid), e.kind, e.attrs.clone());
        }
    }
}

/// Collects the event ids of `request`'s decision chain: every event
/// carrying the request index, every group-scope event of its gid, and
/// all their ancestors — deduplicated, in id order.
fn chain_ids(log: &EventLog, request: usize, gid: Option<usize>) -> Vec<u64> {
    let mut include = vec![false; log.events.len()];
    for e in &log.events {
        if e.request == Some(request) || (gid.is_some() && e.gid == gid && e.request.is_none()) {
            include[e.id as usize] = true;
        }
    }
    for i in (0..log.events.len()).rev() {
        if include[i] {
            let mut cur = &log.events[i];
            while let Some(p) = cur.parent {
                include[p as usize] = true;
                cur = &log.events[p as usize];
            }
        }
    }
    (0..log.events.len() as u64)
        .filter(|&i| include[i as usize])
        .collect()
}

/// The full causal decision path behind one request's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionChain {
    /// The request the chain explains.
    pub request: usize,
    /// Chain events in id (append) order: admission root first,
    /// terminal verdict last.
    pub events: Vec<Event>,
}

impl DecisionChain {
    /// Renders the chain as deterministic text, one event per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "request {}: {} decision events",
            self.request,
            self.events.len()
        );
        for e in &self.events {
            out.push_str("  ");
            out.push_str(&e.to_text());
            out.push('\n');
        }
        out
    }

    /// Renders the chain as one deterministic JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\"request\": {}, \"chain\": [", self.request);
        for (i, e) in self.events.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&e.to_json());
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// Reconstructs the decision chain behind `request`'s outcome from the
/// report's audit log. Returns `None` when the report carries no audit
/// log ([`crate::serve::ServeConfig::audit`] off) or the index is out of
/// range. For audited reports every request has a chain, and every
/// chain is non-empty (at minimum an admission root and a terminal).
pub fn explain(report: &ServeReport, request: usize) -> Option<DecisionChain> {
    let audit = report.audit.as_deref()?;
    if request >= report.outcomes.len() {
        return None;
    }
    let gid = report
        .group_info
        .iter()
        .find(|g| g.indices.contains(&request))
        .map(|g| g.gid);
    let ids = chain_ids(&audit.log, request, gid);
    Some(DecisionChain {
        request,
        events: ids
            .iter()
            .map(|&i| audit.log.events[i as usize].clone())
            .collect(),
    })
}

/// Derives the stable terminal-cause label (`class:detail`) for one
/// outcome from the event kinds on its decision chain. Precedence, most
/// specific first: admission rejections, typed failures, then — for
/// completed requests — fleet CPU-tier service, fleet failover, breaker
/// short-circuit, brownout QoS, CPU fallback, retry, clean first-attempt.
pub fn derive_cause(outcome: &RequestOutcome, chain_kinds: &[&str]) -> String {
    let has = |k: &str| chain_kinds.contains(&k);
    match outcome {
        RequestOutcome::Shed { .. } => "shed:queue_full".into(),
        RequestOutcome::DeadlineExceeded { .. } => "shed:deadline".into(),
        RequestOutcome::Failed {
            error: CusFftError::BadRequest { .. },
            ..
        } => "rejected:invalid".into(),
        RequestOutcome::Failed { error, .. } => format!("failed:{}", error.class_label()),
        RequestOutcome::Done(resp) => {
            if has("cpu_tier") {
                "failover:cpu_tier".into()
            } else if has("failover") {
                "failover:device_loss".into()
            } else if has("short_circuit") {
                "degraded:short_circuit".into()
            } else if resp.qos == ServeQos::Degraded {
                "degraded:brownout".into()
            } else if resp.path == ServePath::Cpu {
                "done:cpu_fallback".into()
            } else if resp.path == ServePath::GpuRetry {
                "done:gpu_retry".into()
            } else {
                "done:gpu".into()
            }
        }
    }
}

/// One burn-rate alerting window pair, Google-SRE style: the alert
/// fires when the error-budget burn rate exceeds `threshold` over
/// *both* the long window (sustained burn) and the short window (still
/// burning now), and de-arms when the long-window burn drops back under.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnWindow {
    /// Stable window name (`fast`, `slow`).
    pub name: String,
    /// Long-window length as a fraction of the observed sample span.
    pub long_frac: f64,
    /// Short-window length as a fraction of the observed sample span.
    pub short_frac: f64,
    /// Burn-rate threshold (multiple of the steady budget-consumption
    /// rate) both windows must exceed.
    pub threshold: f64,
}

/// Service-level objectives evaluated over the simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Availability objective: fraction of requests that must complete
    /// (`Done`); sheds, deadline rejections and failures burn budget.
    pub availability_objective: f64,
    /// Latency objective: fraction of *latency-measured* completed
    /// requests that must finish within [`Self::latency_threshold`].
    pub latency_objective: f64,
    /// Latency threshold (simulated seconds).
    pub latency_threshold: f64,
    /// Burn-rate alert windows, evaluated independently per objective.
    pub windows: Vec<BurnWindow>,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            availability_objective: 0.99,
            latency_objective: 0.95,
            latency_threshold: 5e-3,
            windows: vec![
                BurnWindow {
                    name: "fast".into(),
                    long_frac: 0.25,
                    short_frac: 0.025,
                    threshold: 10.0,
                },
                BurnWindow {
                    name: "slow".into(),
                    long_frac: 1.0,
                    short_frac: 0.25,
                    threshold: 2.0,
                },
            ],
        }
    }
}

/// One terminal observation feeding the SLO monitor.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SloSample {
    /// Simulated terminal timestamp.
    pub(crate) ts: f64,
    /// The request's terminal audit-event id — what makes every alert
    /// attributable back to the log.
    pub(crate) event: u64,
    /// Whether the request completed (availability numerator).
    pub(crate) good: bool,
    /// Measured simulated latency, when the path has arrival times.
    pub(crate) latency: Option<f64>,
}

/// One fired burn-rate alert.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// Which objective fired (`availability` or `latency`).
    pub slo: String,
    /// Which [`BurnWindow`] fired.
    pub window: String,
    /// Simulated timestamp of the firing sample.
    pub ts: f64,
    /// Long-window burn rate at fire time.
    pub long_burn: f64,
    /// Short-window burn rate at fire time.
    pub short_burn: f64,
    /// The threshold both burns exceeded.
    pub threshold: f64,
    /// Terminal audit-event ids of the budget-burning samples inside
    /// the short window at fire time — non-empty by construction.
    pub contributing: Vec<u64>,
}

impl SloAlert {
    /// Renders the alert as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let ids: Vec<String> = self.contributing.iter().map(|i| i.to_string()).collect();
        format!(
            "{{\"slo\": \"{}\", \"window\": \"{}\", \"ts\": {}, \"long_burn\": {}, \"short_burn\": {}, \"threshold\": {}, \"contributing\": [{}]}}",
            self.slo,
            self.window,
            fmt_f64(self.ts),
            fmt_f64(self.long_burn),
            fmt_f64(self.short_burn),
            fmt_f64(self.threshold),
            ids.join(", ")
        )
    }
}

/// SLO attainment plus every fired burn-rate alert for one serve call.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The objectives this report was evaluated against.
    pub config: SloConfig,
    /// Requests observed.
    pub total: u64,
    /// Requests that completed (availability numerator).
    pub good_availability: u64,
    /// Completed requests with a measured latency.
    pub latency_measured: u64,
    /// Latency-measured requests within the threshold.
    pub good_latency: u64,
    /// Achieved availability (`1.0` for an empty batch).
    pub availability: f64,
    /// Achieved latency attainment (`1.0` with nothing measured).
    pub latency_attainment: f64,
    /// Fired alerts, in evaluation order (objective, then window, then
    /// simulated time).
    pub alerts: Vec<SloAlert>,
}

impl SloReport {
    /// Renders the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"objectives\": {{\"availability\": {}, \"latency\": {}, \"latency_threshold\": {}}},",
            fmt_f64(self.config.availability_objective),
            fmt_f64(self.config.latency_objective),
            fmt_f64(self.config.latency_threshold)
        );
        let _ = writeln!(
            out,
            "  \"totals\": {{\"requests\": {}, \"good_availability\": {}, \"latency_measured\": {}, \"good_latency\": {}}},",
            self.total, self.good_availability, self.latency_measured, self.good_latency
        );
        let _ = writeln!(
            out,
            "  \"attainment\": {{\"availability\": {}, \"latency\": {}}},",
            fmt_f64(self.availability),
            fmt_f64(self.latency_attainment)
        );
        out.push_str("  \"alerts\": [\n");
        for (i, a) in self.alerts.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&a.to_json());
            if i + 1 < self.alerts.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Evaluates the burn-rate windows over terminal samples (sorted by
/// `(ts, event)`), once per objective. Window lengths are fractions of
/// the observed sample span, so the math is independent of absolute
/// clock scale; a single-instant span fires nothing.
pub(crate) fn evaluate_slo(cfg: &SloConfig, samples: &[SloSample]) -> SloReport {
    let total = samples.len() as u64;
    let good_availability = samples.iter().filter(|s| s.good).count() as u64;
    let measured: Vec<&SloSample> = samples.iter().filter(|s| s.latency.is_some()).collect();
    let latency_measured = measured.len() as u64;
    let good_latency = measured
        .iter()
        .filter(|s| s.latency.unwrap_or(0.0) <= cfg.latency_threshold)
        .count() as u64;

    let ratio = |good: u64, tot: u64| if tot == 0 { 1.0 } else { good as f64 / tot as f64 };
    let mut report = SloReport {
        config: cfg.clone(),
        total,
        good_availability,
        latency_measured,
        good_latency,
        availability: ratio(good_availability, total),
        latency_attainment: ratio(good_latency, latency_measured),
        alerts: Vec::new(),
    };

    // (objective name, budget, population, bad predicate)
    type Objective<'a> = (&'a str, f64, Vec<&'a SloSample>, &'a dyn Fn(&SloSample) -> bool);
    let avail_bad = |s: &SloSample| !s.good;
    let lat_bad =
        |s: &SloSample| s.latency.map(|l| l > cfg.latency_threshold).unwrap_or(false);
    let objectives: [Objective; 2] = [
        (
            "availability",
            (1.0 - cfg.availability_objective).max(1e-9),
            samples.iter().collect(),
            &avail_bad,
        ),
        (
            "latency",
            (1.0 - cfg.latency_objective).max(1e-9),
            measured,
            &lat_bad,
        ),
    ];

    for (slo, budget, pop, bad) in objectives {
        if pop.len() < 2 {
            continue;
        }
        let span = pop[pop.len() - 1].ts - pop[0].ts;
        if span <= 0.0 {
            continue;
        }
        for w in &cfg.windows {
            let long_len = w.long_frac * span;
            let short_len = w.short_frac * span;
            let mut active = false;
            for s in &pop {
                let now = s.ts;
                let rate_in = |len: f64| {
                    let in_win: Vec<&&SloSample> =
                        pop.iter().filter(|x| x.ts >= now - len && x.ts <= now).collect();
                    if in_win.is_empty() {
                        0.0
                    } else {
                        in_win.iter().filter(|x| bad(x)).count() as f64 / in_win.len() as f64
                    }
                };
                let long_burn = rate_in(long_len) / budget;
                let short_burn = rate_in(short_len) / budget;
                if !active && long_burn >= w.threshold && short_burn >= w.threshold {
                    active = true;
                    let contributing: Vec<u64> = pop
                        .iter()
                        .filter(|x| x.ts >= now - short_len && x.ts <= now && bad(x))
                        .map(|x| x.event)
                        .collect();
                    report.alerts.push(SloAlert {
                        slo: slo.to_string(),
                        window: w.name.clone(),
                        ts: now,
                        long_burn,
                        short_burn,
                        threshold: w.threshold,
                        contributing,
                    });
                } else if active && long_burn < w.threshold {
                    active = false;
                }
            }
        }
    }
    report
}

/// The flight-recorder output attached to an audited [`ServeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// The full decision log.
    pub log: EventLog,
    /// Terminal-cause label per request, in submission order.
    pub causes: Vec<String>,
    /// SLO attainment and fired burn-rate alerts.
    pub slo: SloReport,
}

impl AuditReport {
    /// Validates the forest contract: every event roots (transitively)
    /// at an admission event.
    pub fn validate(&self) -> Result<(), String> {
        self.log.validate_forest(|e| is_root_kind(&e.name))
    }
}

/// Seals an [`AuditLog`] into the report form: derives each request's
/// terminal cause from its chain, appends the terminal events (in
/// submission order — the last events of the log), builds the SLO
/// samples from `(ts_of, lat_of)` and evaluates the burn-rate windows.
pub(crate) fn finalize_audit(
    mut audit: AuditLog,
    outcomes: &[RequestOutcome],
    gid_of: &[Option<usize>],
    ts_of: &[f64],
    lat_of: &[Option<f64>],
    slo_cfg: &SloConfig,
) -> Box<AuditReport> {
    let mut causes = Vec::with_capacity(outcomes.len());
    let mut samples = Vec::with_capacity(outcomes.len());
    for (r, o) in outcomes.iter().enumerate() {
        let cause = {
            let ids = chain_ids(&audit.events, r, gid_of[r]);
            let kinds: Vec<&str> = ids
                .iter()
                .map(|&i| audit.events.events[i as usize].name.as_str())
                .collect();
            derive_cause(o, &kinds)
        };
        let tid = audit.record(
            ts_of[r],
            Some(r),
            gid_of[r],
            "terminal",
            vec![
                ("outcome".into(), crate::observe::outcome_label(o).into()),
                ("cause".into(), cause.clone()),
            ],
        );
        samples.push(SloSample {
            ts: ts_of[r],
            event: tid,
            good: matches!(o, RequestOutcome::Done(_)),
            latency: lat_of[r],
        });
        causes.push(cause);
    }
    samples.sort_by(|a, b| {
        a.ts.partial_cmp(&b.ts)
            .expect("terminal timestamps are never NaN")
            .then(a.event.cmp(&b.event))
    });
    let slo = evaluate_slo(slo_cfg, &samples);
    Box::new(AuditReport {
        log: audit.events,
        causes,
        slo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::serve::ServeResponse;
    use signal::Recovered;

    fn done(path: ServePath, qos: ServeQos) -> RequestOutcome {
        RequestOutcome::Done(ServeResponse {
            recovered: Recovered::default(),
            num_hits: 0,
            path,
            qos,
            backend: BackendKind::GpuSim,
        })
    }

    #[test]
    fn record_parents_follow_request_then_gid_then_batch() {
        let mut log = AuditLog::new();
        let root = log.record(0.0, None, None, "batch_admitted", vec![]);
        let adm = log.record(0.0, Some(3), None, "admitted", vec![]);
        assert_eq!(log.events.events[adm as usize].parent, None);
        let placed = log.record(0.0, None, Some(0), "group_placed", vec![]);
        assert_eq!(log.events.events[placed as usize].parent, Some(root));
        // Request-scoped follow-up chains to the request's last event,
        // not the group's.
        let ev = log.record(1.0, Some(3), Some(0), "evicted", vec![]);
        assert_eq!(log.events.events[ev as usize].parent, Some(adm));
        // Group-scoped follow-up chains to the group's last group event.
        let tr = log.record(1.0, None, Some(0), "breaker_transition", vec![]);
        assert_eq!(log.events.events[tr as usize].parent, Some(placed));
        // A request with no history falls back through gid to the
        // latest group-scope event.
        let t = log.record(2.0, Some(9), Some(0), "terminal", vec![]);
        assert_eq!(log.events.events[t as usize].parent, Some(tr));
        log.events.validate_forest(|e| is_root_kind(&e.name)).unwrap();
        assert_eq!(log.admission_of(3), Some(adm));
    }

    #[test]
    fn derive_cause_precedence() {
        assert_eq!(
            derive_cause(&RequestOutcome::Shed { queue_depth: 4 }, &[]),
            "shed:queue_full"
        );
        assert_eq!(
            derive_cause(
                &RequestOutcome::DeadlineExceeded {
                    predicted: 1.0,
                    deadline: 0.5
                },
                &[]
            ),
            "shed:deadline"
        );
        assert_eq!(
            derive_cause(
                &RequestOutcome::Failed {
                    error: CusFftError::CircuitOpen,
                    after_attempts: 0
                },
                &[]
            ),
            "failed:circuit_open"
        );
        assert_eq!(
            derive_cause(
                &RequestOutcome::Failed {
                    error: CusFftError::BadRequest { reason: "r".into() },
                    after_attempts: 0
                },
                &[]
            ),
            "rejected:invalid"
        );
        let d = done(ServePath::Gpu, ServeQos::Full);
        assert_eq!(derive_cause(&d, &["admitted", "terminal"]), "done:gpu");
        assert_eq!(
            derive_cause(&d, &["admitted", "failover"]),
            "failover:device_loss"
        );
        assert_eq!(
            derive_cause(&d, &["failover", "cpu_tier"]),
            "failover:cpu_tier"
        );
        assert_eq!(
            derive_cause(&done(ServePath::Cpu, ServeQos::Full), &[]),
            "done:cpu_fallback"
        );
        assert_eq!(
            derive_cause(&done(ServePath::GpuRetry, ServeQos::Degraded), &[]),
            "degraded:brownout"
        );
        assert_eq!(
            derive_cause(&done(ServePath::Gpu, ServeQos::Full), &["short_circuit"]),
            "degraded:short_circuit"
        );
    }

    #[test]
    fn finalize_appends_terminals_and_derives_causes() {
        let mut log = AuditLog::new();
        log.record(0.0, Some(0), None, "admitted", vec![]);
        log.record(0.1, Some(1), None, "shed", vec![]);
        let outcomes = [done(ServePath::Gpu, ServeQos::Full), RequestOutcome::Shed {
            queue_depth: 7,
        }];
        let report = finalize_audit(
            log,
            &outcomes,
            &[None, None],
            &[0.5, 0.1],
            &[Some(0.5), None],
            &SloConfig::default(),
        );
        report.validate().unwrap();
        assert_eq!(report.causes, vec!["done:gpu", "shed:queue_full"]);
        assert_eq!(report.log.events.len(), 4);
        let terms: Vec<_> = report
            .log
            .events
            .iter()
            .filter(|e| e.name == "terminal")
            .collect();
        assert_eq!(terms.len(), 2);
        assert_eq!(report.slo.total, 2);
        assert_eq!(report.slo.good_availability, 1);
        assert_eq!(report.slo.latency_measured, 1);
    }

    #[test]
    fn burn_rate_alerts_fire_and_attribute() {
        // 20 samples over [0, 19]; the last quarter is all failures —
        // enough to push both windows of the availability objective
        // (budget 0.01) far past their thresholds.
        let samples: Vec<SloSample> = (0..20)
            .map(|i| SloSample {
                ts: i as f64,
                event: i as u64,
                good: i < 15,
                latency: Some(1e-3),
            })
            .collect();
        let report = evaluate_slo(&SloConfig::default(), &samples);
        assert!(!report.alerts.is_empty());
        for a in &report.alerts {
            assert!(!a.contributing.is_empty(), "alert {a:?} has no evidence");
            for id in &a.contributing {
                assert!(samples.iter().any(|s| s.event == *id && !s.good));
            }
        }
        // Deterministic rendering round-trips byte-identically.
        assert_eq!(report.to_json(), report.clone().to_json());
    }

    #[test]
    fn clean_slos_fire_nothing() {
        let samples: Vec<SloSample> = (0..10)
            .map(|i| SloSample {
                ts: i as f64,
                event: i as u64,
                good: true,
                latency: Some(1e-4),
            })
            .collect();
        let report = evaluate_slo(&SloConfig::default(), &samples);
        assert!(report.alerts.is_empty());
        assert_eq!(report.availability, 1.0);
        assert_eq!(report.latency_attainment, 1.0);
    }
}
