//! `cusfft::fleet` — heterogeneous device fleets with fault-domain
//! routing, device-loss failover, and drain/recovery.
//!
//! A [`DeviceFleet`] serves the same request batches as
//! [`ServeEngine::serve_batch`], but across a pool of simulated devices
//! with *different* [`DeviceSpec`]s (a K20x next to a big-memory K40
//! next to a budget Quadro). Each member carries its own capacity
//! accounting ([`gpu_sim::MemPool`]), its own circuit breaker, its own
//! fault domain (a per-member scope salt, so the same group rolls
//! independent fault timelines on different members), and a health
//! score fed by the [`FaultTally`] of every group it executes.
//!
//! ## Routing
//!
//! Placement is decided per group, in global group order, on the
//! coordinator thread, from deterministic quantities only:
//!
//! * the backend's analytic cost estimate *on that member's model
//!   device* ([`crate::backend::Backend::estimate_cost`] — a slow
//!   member prices the same group higher),
//! * the member's virtual queue depth (sum of costs already routed to
//!   it this call),
//! * capacity headroom (the member's `MemPool` must hold the group's
//!   predicted working set), and
//! * breaker state (Open members take at most a HalfOpen probe).
//!
//! The chosen member minimises `(queue + cost) × (2 − health)` with
//! ties to the lowest member id. Nothing in the key depends on worker
//! count, host pool width, or OS scheduling, so the [`ServeReport`] is
//! bit-identical across `workers` settings — the same contract the
//! single-device serving layers honour.
//!
//! ## Failure lifecycle
//!
//! * **Device loss** — a member whose fault plan enables
//!   [`gpu_sim::FaultClass::DeviceLoss`] rolls one loss decision per
//!   epoch (never on the op path, see `gpu_sim::fault`); a lost member
//!   goes dark for the rest of the call.
//! * **Failover** — groups routed to a member that just went dark are
//!   re-routed to the best healthy member using *standby slabs*
//!   ([`gpu_sim::StandbySlabs`]): fixed slots reserved from each
//!   member's pool at fleet build, wasmtime-pooling style, so the
//!   failover hot path performs no allocation — acquiring a slot is a
//!   free-list pop. With no healthy member (or no free slot) the group
//!   completes on the CPU tier instead; requests never fail because a
//!   device died.
//! * **Drain** — a member whose breaker trips
//!   [`FleetConfig::drain_after_trips`] times is quarantined: routed
//!   around and barred from probing for
//!   [`FleetConfig::drain_cooldown_epochs`] epochs, after which
//!   HalfOpen probes resume and a clean probe re-admits it.
//! * **Brownout** — when the aggregate modeled speed of healthy members
//!   falls below [`FleetConfig::brownout_capacity_fraction`] of the
//!   fleet total, the epoch's full-QoS groups are re-keyed onto
//!   [`ServeQos::Degraded`] plans, shedding accuracy margin instead of
//!   requests.
//!
//! The simulated makespan is the slowest member's virtual clock (or the
//! CPU lane's), *not* the merged timeline's schedule: the merged
//! timeline fair-shares one device's SMs across all streams and would
//! model N members as one device at 1/N speed. The merged ops are still
//! kept on the report for span/trace export.

use cusfft_telemetry::fmt_f64;
use gpu_sim::{
    concurrency_profile, fault_roll, merge_op_groups, schedule, BreakerConfig, BreakerDecision,
    CircuitBreaker, DeviceSpec, FaultClass, FaultConfig, GpuDevice, MemPool, Op, StandbySlabs,
    StandbyStats, DEFAULT_STREAM,
};
use std::sync::Arc;

use crate::audit::{finalize_audit, AuditLog, SloConfig};
use crate::backend::{
    worker_device, Backend, BackendKind, BackendRegistry, GpuSimBackend, SfftCpuBackend,
};
use crate::error::CusFftError;
use crate::overload::{
    path_latency_summary, recover_group_loss, run_group_on_device, GroupRun, LatencyStats,
    OverloadTally,
};
use crate::plan_cache::{PlanKey, ServeQos};
use crate::serve::{
    merge_rollups, FaultTally, GroupInfo, GroupTelemetry, PoolTally, RequestOutcome, ServeConfig,
    ServeEngine, ServePath, ServeReport, ServeRequest, ServeResponse, ServeTimeline,
};

/// One fleet member: a device spec plus an optional member-local fault
/// plan overriding [`ServeConfig::faults`] (this is how a test or
/// benchmark targets device loss at one member while the rest serve
/// clean).
#[derive(Debug, Clone)]
pub struct FleetMemberConfig {
    /// The member's device model.
    pub spec: DeviceSpec,
    /// Member-local fault plan; `None` inherits the engine's.
    pub faults: Option<FaultConfig>,
}

impl FleetMemberConfig {
    /// A member inheriting the engine's fault plan.
    pub fn new(spec: DeviceSpec) -> Self {
        FleetMemberConfig { spec, faults: None }
    }

    /// Overrides this member's fault plan.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Fleet topology and failure-lifecycle policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The members, in id order. Must be non-empty.
    pub members: Vec<FleetMemberConfig>,
    /// Per-member circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Groups per routing epoch (device-loss rolls happen at epoch
    /// granularity). Must be ≥ 1.
    pub epoch_groups: usize,
    /// Breaker trips after which a member is drained (quarantined).
    pub drain_after_trips: u64,
    /// Epochs a drained member sits out before HalfOpen probes resume.
    pub drain_cooldown_epochs: usize,
    /// Standby failover slots reserved per member at fleet build.
    pub standby_slots: usize,
    /// Bytes per standby slot.
    pub standby_slot_bytes: u64,
    /// Brownout trigger: when healthy modeled speed falls below this
    /// fraction of the fleet total, full-QoS groups degrade. In `0..=1`.
    pub brownout_capacity_fraction: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            members: Vec::new(),
            breaker: BreakerConfig::default(),
            epoch_groups: 4,
            drain_after_trips: 2,
            drain_cooldown_epochs: 2,
            standby_slots: 2,
            standby_slot_bytes: 8 << 20,
            brownout_capacity_fraction: 0.5,
        }
    }
}

impl FleetConfig {
    /// The paper's K20x next to a big-memory K40 and a budget Quadro
    /// K2000 — the heterogeneous pool the fleet benchmarks route over.
    pub fn heterogeneous() -> Self {
        FleetConfig {
            members: vec![
                FleetMemberConfig::new(DeviceSpec::tesla_k20x()),
                FleetMemberConfig::new(DeviceSpec::tesla_k40()),
                FleetMemberConfig::new(DeviceSpec::quadro_k2000()),
            ],
            ..FleetConfig::default()
        }
    }

    /// `n` identical K20x members.
    pub fn homogeneous(n: usize) -> Self {
        FleetConfig {
            members: (0..n)
                .map(|_| FleetMemberConfig::new(DeviceSpec::tesla_k20x()))
                .collect(),
            ..FleetConfig::default()
        }
    }
}

/// Fleet routing/failover counters for one [`DeviceFleet::serve`] call.
/// Deterministic: a function of `(requests, configs)` alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetTally {
    /// Groups placed on a fleet member by the router.
    pub routed_groups: u64,
    /// Groups re-routed off a member that went dark.
    pub failovers: u64,
    /// Whole-device losses rolled this call.
    pub device_losses: u64,
    /// Times a member entered drain quarantine.
    pub drains: u64,
    /// HalfOpen probe groups admitted to suspect members.
    pub drain_probes: u64,
    /// Groups re-keyed to [`ServeQos::Degraded`] by fleet brownout.
    pub brownout_groups: u64,
    /// Groups served on the CPU tier because no member could take them.
    pub cpu_served_groups: u64,
    /// Standby-slab acquisitions this call (failover placements).
    pub standby_acquires: u64,
    /// Failovers that found every standby slot of the target in use.
    pub standby_exhausted: u64,
}

/// Per-member summary on the [`ServeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDeviceInfo {
    /// Member id (index into [`FleetConfig::members`]).
    pub id: usize,
    /// The member's device-spec name (telemetry label `device=<id>/<spec>`).
    pub spec_name: String,
    /// Groups this member executed (including failover arrivals).
    pub groups: u64,
    /// Failover groups that landed here from a dark member.
    pub failovers_in: u64,
    /// Whether the member went dark during the call.
    pub lost: bool,
    /// Whether the member ended the call in drain quarantine.
    pub drained: bool,
    /// Times the member entered drain quarantine.
    pub drains: u64,
    /// Breaker trips over the call.
    pub trips: u64,
    /// Final health score in `0..=1` (EWMA of per-group fault severity).
    pub health: f64,
    /// The member's virtual-clock busy time (seconds).
    pub busy: f64,
}

/// A routed placement of one group on one member for the current epoch.
struct Placement {
    gid: usize,
    member: usize,
    /// `MemPool` reservation granule (primary placements).
    granule: Option<u64>,
    /// Standby-slab slot (failover placements — no pool traffic).
    slab_slot: Option<usize>,
    /// Whether this placement is the member's HalfOpen probe.
    probe: bool,
    /// Whether this placement arrived via failover.
    failover: bool,
}

/// Per-member fleet-salted fault scope: bits 44+ are disjoint from the
/// serving layer's per-group scope layout (`gid << 20`), so the same
/// group rolls independent fault timelines on different members.
fn member_salt(m: usize) -> u64 {
    ((m as u64) + 1) << 44
}

/// Abstract host operations per second the CPU emergency tier is
/// modeled at, in the *simulated* clock domain the member lanes run in.
/// The admission pricer's 1e9 ops/s (`SfftCpuBackend::estimate_cost`)
/// prices the planned, vectorised multi-core path in host wall seconds;
/// the emergency lane instead runs the scalar reference recovery,
/// serialised behind a single lane on cache-cold data, so it is modeled
/// latency-bound at 5e7 ops/s — slower than any fleet member, which is
/// why the tier is the last resort and not a routing candidate.
const CPU_TIER_OP_RATE: f64 = 5e7;

/// Modeled duration of one group's worth of requests on the CPU tier.
fn cpu_tier_cost(params: &sfft_cpu::SfftParams, requests: usize) -> f64 {
    params.host_work_estimate() / CPU_TIER_OP_RATE * requests as f64
}

/// Records member `m`'s breaker transitions that appeared since the
/// caller's last check as `breaker_transition` audit events, attributed
/// to the group whose admit/observe drove them.
fn audit_transitions(
    alog: &mut Option<AuditLog>,
    ts: f64,
    gid: Option<usize>,
    m: usize,
    breaker: &CircuitBreaker,
    seen: &mut usize,
) {
    let transitions = breaker.transitions();
    if let Some(a) = alog.as_mut() {
        for tr in &transitions[*seen..] {
            a.record(
                ts,
                None,
                gid,
                "breaker_transition",
                vec![
                    ("member".into(), m.to_string()),
                    ("from".into(), tr.from.label().into()),
                    ("to".into(), tr.to.label().into()),
                ],
            );
        }
    }
    *seen = transitions.len();
}

/// A heterogeneous pool of simulated devices behind one serving front.
///
/// Built from a [`FleetConfig`] plus the ordinary [`ServeConfig`] (whose
/// `workers`, retry and fallback policy apply per group execution). The
/// engine's plan cache and backend registry are shared fleet-wide; every
/// member gets its own capacity pool, standby slabs, breaker, health
/// score and fault domain.
pub struct DeviceFleet {
    engine: ServeEngine,
    fleet: FleetConfig,
    /// Per-member capacity accounting (reservations are routing state,
    /// not data: group working sets are predicted, reserved, released).
    pools: Vec<Arc<MemPool>>,
    /// Per-member standby failover slots, reserved at build.
    slabs: Vec<StandbySlabs>,
}

impl std::fmt::Debug for DeviceFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceFleet")
            .field("members", &self.fleet.members.len())
            .field("standby_slots", &self.fleet.standby_slots)
            .finish_non_exhaustive()
    }
}

impl DeviceFleet {
    /// Builds a fleet with all stock backends registered. Rejects
    /// invalid configurations with [`CusFftError::BadConfig`].
    #[must_use = "the engine is returned, not installed; dropping it discards the construction"]
    pub fn new(fleet: FleetConfig, serve: ServeConfig) -> Result<Self, CusFftError> {
        Self::with_registry(fleet, serve, BackendRegistry::with_defaults())
    }

    /// Builds a fleet with an explicit backend registry.
    #[must_use = "the engine is returned, not installed; dropping it discards the construction"]
    pub fn with_registry(
        fleet: FleetConfig,
        serve: ServeConfig,
        registry: BackendRegistry,
    ) -> Result<Self, CusFftError> {
        if fleet.members.is_empty() {
            return Err(CusFftError::BadConfig {
                reason: "fleet has no members".into(),
            });
        }
        if fleet.epoch_groups < 1 {
            return Err(CusFftError::BadConfig {
                reason: "fleet epoch_groups must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&fleet.brownout_capacity_fraction) {
            return Err(CusFftError::BadConfig {
                reason: format!(
                    "brownout_capacity_fraction {} outside 0..=1",
                    fleet.brownout_capacity_fraction
                ),
            });
        }
        for (m, member) in fleet.members.iter().enumerate() {
            if member.spec.global_mem_bytes == 0 {
                return Err(CusFftError::BadConfig {
                    reason: format!(
                        "fleet member {m} ('{}') has zero memory capacity",
                        member.spec.name
                    ),
                });
            }
        }
        let engine = ServeEngine::with_registry(fleet.members[0].spec.clone(), serve, registry)?;
        let pools: Vec<Arc<MemPool>> = fleet
            .members
            .iter()
            .map(|m| Arc::new(MemPool::new(m.spec.global_mem_bytes as u64)))
            .collect();
        let mut slabs = Vec::with_capacity(fleet.members.len());
        for (m, pool) in pools.iter().enumerate() {
            let slab = StandbySlabs::new(pool, fleet.standby_slots, fleet.standby_slot_bytes)
                .map_err(|e| CusFftError::BadConfig {
                    reason: format!(
                        "fleet member {m} ('{}') cannot hold its standby reservation: {e}",
                        fleet.members[m].spec.name
                    ),
                })?;
            slabs.push(slab);
        }
        Ok(DeviceFleet {
            engine,
            fleet,
            pools,
            slabs,
        })
    }

    /// The shared serving engine (plan cache, registry, serve config).
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// The fleet topology/policy.
    pub fn config(&self) -> &FleetConfig {
        &self.fleet
    }

    /// Per-member standby-slab counters (cumulative across calls).
    pub fn standby_stats(&self) -> Vec<StandbyStats> {
        self.slabs.iter().map(|s| s.stats()).collect()
    }

    /// Per-member `(alloc_ops, release_ops)` pool traffic (cumulative).
    pub fn pool_traffic(&self) -> Vec<(u64, u64)> {
        self.pools
            .iter()
            .map(|p| (p.alloc_ops(), p.release_ops()))
            .collect()
    }

    /// Serves a batch across the fleet. Outcomes come back in
    /// submission order; the report is bit-identical across
    /// [`ServeConfig::workers`] settings and host pool widths for a
    /// fixed `(requests, configs)`.
    pub fn serve(&self, requests: &[ServeRequest]) -> ServeReport {
        let cfg = self.engine.config;
        let nmembers = self.fleet.members.len();
        let specs: Vec<DeviceSpec> = self.fleet.members.iter().map(|m| m.spec.clone()).collect();
        // Member fault plans: the member override, else the engine's.
        let member_faults: Vec<Option<FaultConfig>> = self
            .fleet
            .members
            .iter()
            .map(|m| m.faults.or(cfg.faults))
            .collect();
        // The estimators only read the spec/model device; one per member
        // prices every group.
        let model_devs: Vec<GpuDevice> = specs.iter().map(|s| worker_device(s, None)).collect();
        // Control-plane markers (routing, loss, failover, drain) record
        // on their own device, in decision order.
        let control = worker_device(&specs[0], None);

        let (mut groups, prefailed) = self.engine.group_requests(requests);
        let mut outcomes: Vec<Option<RequestOutcome>> =
            (0..requests.len()).map(|_| None).collect();

        // Flight recorder: the batch root plus per-request invalid
        // verdicts up front; routing/lifecycle decisions stream in as
        // the coordinator makes them.
        let mut alog = if cfg.audit {
            let mut a = AuditLog::new();
            a.record(
                0.0,
                None,
                None,
                "batch_admitted",
                vec![
                    ("requests".into(), requests.len().to_string()),
                    ("groups".into(), groups.len().to_string()),
                    ("members".into(), nmembers.to_string()),
                ],
            );
            for (idx, err) in &prefailed {
                a.record(
                    0.0,
                    Some(*idx),
                    None,
                    "invalid",
                    vec![("reason".into(), err.to_string())],
                );
            }
            Some(a)
        } else {
            None
        };
        let mut seen_tr = vec![0usize; nmembers];
        let mut completion_of = vec![0.0f64; groups.len()];

        // Standby counters are cumulative on the slabs; snapshot for a
        // per-call tally.
        let slab_base: Vec<StandbyStats> = self.slabs.iter().map(|s| s.stats()).collect();

        // ---- Per-call member state (coordinator-only). ----------------
        let mut breakers: Vec<CircuitBreaker> = (0..nmembers)
            .map(|_| CircuitBreaker::new(self.fleet.breaker))
            .collect();
        let mut lost = vec![false; nmembers];
        let mut drained = vec![false; nmembers];
        let mut drain_cooldown = vec![0usize; nmembers];
        let mut trips_baseline = vec![0u64; nmembers];
        let mut health = vec![1.0f64; nmembers];
        // Routing horizon: modeled cost already placed on each member.
        let mut queue_clock = vec![0.0f64; nmembers];
        // Completion model: each member is its own lane; the CPU tier is
        // one more.
        let mut member_clock = vec![0.0f64; nmembers];
        let mut cpu_clock = 0.0f64;
        let mut member_groups = vec![0u64; nmembers];
        let mut member_failovers_in = vec![0u64; nmembers];
        let mut member_drains = vec![0u64; nmembers];
        let mut fleet_tally = FleetTally::default();
        let mut faults = FaultTally::default();
        let mut overload = OverloadTally::default();
        let mut final_member: Vec<Option<usize>> = vec![None; groups.len()];
        let mut cpu_short_circuit = vec![false; groups.len()];
        let mut tels: Vec<GroupTelemetry> = Vec::new();
        let mut op_groups: Vec<Vec<Op>> = Vec::new();
        let mut latencies: Vec<f64> = Vec::new();
        let mut class_samples: Vec<(ServePath, ServeQos, f64)> = Vec::new();

        // Modeled relative speed per member, for the brownout trigger.
        // Priced on the first group's geometry (any fixed yardstick
        // works — only the healthy/total ratio matters).
        let speed: Vec<f64> = if let Some(g0) = groups.first() {
            model_devs
                .iter()
                .zip(&specs)
                .map(|(dev, spec)| {
                    1.0 / GpuSimBackend::default()
                        .estimate_cost(dev, spec, g0.plan.params())
                        .max(1e-12)
                })
                .collect()
        } else {
            vec![1.0; nmembers]
        };
        let total_speed: f64 = speed.iter().sum();

        let gid_list: Vec<usize> = (0..groups.len()).collect();
        for (epoch_idx, epoch) in gid_list.chunks(self.fleet.epoch_groups).enumerate() {
            // Routing-phase decisions are stamped with the fleet's
            // virtual clock at epoch start (the slowest lane so far).
            let epoch_ts = member_clock.iter().copied().fold(cpu_clock, f64::max);
            // ---- Brownout check (before routing). ---------------------
            let healthy_speed: f64 = (0..nmembers)
                .filter(|&m| {
                    !lost[m] && !drained[m] && breakers[m].state() != gpu_sim::BreakerState::Open
                })
                .map(|m| speed[m])
                .sum();
            if healthy_speed < self.fleet.brownout_capacity_fraction * total_speed {
                let mut rekeyed = false;
                for &gid in epoch {
                    if groups[gid].qos == ServeQos::Full {
                        let key = PlanKey {
                            qos: ServeQos::Degraded,
                            ..requests[groups[gid].indices[0]].plan_key()
                        };
                        // Invariant: the group exists, so its backend is
                        // registered and the degraded key resolves.
                        let plan = self
                            .engine
                            .cache
                            .get_or_build(&self.engine.home, &self.engine.registry, key)
                            .expect("grouped requests resolve to registered backends");
                        groups[gid].plan = plan;
                        groups[gid].qos = ServeQos::Degraded;
                        fleet_tally.brownout_groups += 1;
                        rekeyed = true;
                        if let Some(a) = alog.as_mut() {
                            a.record(
                                epoch_ts,
                                None,
                                Some(gid),
                                "brownout",
                                vec![
                                    ("healthy_speed".into(), fmt_f64(healthy_speed)),
                                    ("total_speed".into(), fmt_f64(total_speed)),
                                    (
                                        "fraction".into(),
                                        fmt_f64(self.fleet.brownout_capacity_fraction),
                                    ),
                                ],
                            );
                        }
                    }
                }
                if rekeyed {
                    control.charge_host_op("fleet:brownout", 0.0, DEFAULT_STREAM);
                }
            }

            // ---- Route the epoch's groups, in gid order. --------------
            let mut placements: Vec<Placement> = Vec::with_capacity(epoch.len());
            let mut cpu_gids: Vec<usize> = Vec::new();
            for &gid in epoch {
                let group = &groups[gid];
                // Invariant: groups only exist for registered backends.
                let backend = self
                    .engine
                    .registry
                    .get(requests[group.indices[0]].backend)
                    .expect("grouped requests resolve to registered backends");
                let est: Vec<f64> = (0..nmembers)
                    .map(|m| {
                        backend.estimate_cost(&model_devs[m], &specs[m], group.plan.params())
                            * group.indices.len() as f64
                    })
                    .collect();
                let predicted_bytes =
                    (2 * group.plan.params().n * std::mem::size_of::<fft::cplx::Cplx>()) as u64
                        * group.indices.len() as u64;

                // Snapshot every candidate's routing inputs before any
                // reservation mutates them: the placement event carries
                // the full scored field, not just the winner.
                let mut cand_attrs: Vec<(String, String)> = Vec::new();
                if cfg.audit {
                    for m in 0..nmembers {
                        let state = if lost[m] {
                            "lost"
                        } else if drained[m] {
                            "drained"
                        } else {
                            breakers[m].state().label()
                        };
                        cand_attrs.push((format!("m{m}.est"), fmt_f64(est[m])));
                        cand_attrs.push((format!("m{m}.queue"), fmt_f64(queue_clock[m])));
                        cand_attrs.push((format!("m{m}.health"), fmt_f64(health[m])));
                        cand_attrs.push((
                            format!("m{m}.headroom"),
                            (self.pools[m].free() >= predicted_bytes).to_string(),
                        ));
                        cand_attrs.push((
                            format!("m{m}.score"),
                            fmt_f64((queue_clock[m] + est[m]) * (2.0 - health[m])),
                        ));
                        cand_attrs.push((format!("m{m}.state"), state.into()));
                    }
                }

                // Open breakers first: a suspect member takes at most
                // its HalfOpen probe (drain quarantine bars even that
                // until its cooldown elapses).
                let mut placed = false;
                for m in 0..nmembers {
                    if lost[m]
                        || breakers[m].state() != gpu_sim::BreakerState::Open
                        || (drained[m] && drain_cooldown[m] > 0)
                    {
                        continue;
                    }
                    let decision = breakers[m].admit(gid);
                    audit_transitions(
                        &mut alog,
                        epoch_ts,
                        Some(gid),
                        m,
                        &breakers[m],
                        &mut seen_tr[m],
                    );
                    match decision {
                        BreakerDecision::Probe => {
                            if let Ok(granule) = self.pools[m].try_reserve(predicted_bytes) {
                                fleet_tally.drain_probes += 1;
                                overload.breaker_probes += 1;
                                control.charge_host_op("breaker:probe", 0.0, DEFAULT_STREAM);
                                queue_clock[m] += est[m];
                                placements.push(Placement {
                                    gid,
                                    member: m,
                                    granule: Some(granule),
                                    slab_slot: None,
                                    probe: true,
                                    failover: false,
                                });
                                placed = true;
                            }
                            break;
                        }
                        // Cooldown ticked; the member stays dark to this
                        // group.
                        BreakerDecision::ShortCircuit => {}
                        BreakerDecision::Admit => {}
                    }
                    if placed {
                        break;
                    }
                }
                if placed {
                    if let Some(a) = alog.as_mut() {
                        let m = placements.last().map(|p| p.member).unwrap_or(0);
                        let mut attrs = cand_attrs;
                        attrs.push(("chosen".into(), format!("m{m}")));
                        attrs.push(("probe".into(), "true".into()));
                        a.record(epoch_ts, None, Some(gid), "router_placement", attrs);
                    }
                    fleet_tally.routed_groups += 1;
                    continue;
                }

                // Deterministic cost/queue/headroom/health argmin over
                // healthy members.
                let mut best: Option<(usize, f64)> = None;
                for m in 0..nmembers {
                    if lost[m]
                        || drained[m]
                        || breakers[m].state() != gpu_sim::BreakerState::Closed
                        || self.pools[m].free() < predicted_bytes
                    {
                        continue;
                    }
                    let score = (queue_clock[m] + est[m]) * (2.0 - health[m]);
                    let better = match best {
                        None => true,
                        // Strict less-than: ties go to the lowest id.
                        Some((_, s)) => score < s,
                    };
                    if better {
                        best = Some((m, score));
                    }
                }
                match best {
                    Some((m, _)) => {
                        breakers[m].admit(gid);
                        audit_transitions(
                            &mut alog,
                            epoch_ts,
                            Some(gid),
                            m,
                            &breakers[m],
                            &mut seen_tr[m],
                        );
                        if let Some(a) = alog.as_mut() {
                            let mut attrs = cand_attrs;
                            attrs.push(("chosen".into(), format!("m{m}")));
                            attrs.push(("probe".into(), "false".into()));
                            a.record(epoch_ts, None, Some(gid), "router_placement", attrs);
                        }
                        // Headroom was checked against free(); the
                        // reservation itself cannot race (coordinator
                        // only), so a failure here is a logic error.
                        let granule = self
                            .pools[m]
                            .try_reserve(predicted_bytes)
                            .expect("routing checked capacity headroom");
                        queue_clock[m] += est[m];
                        fleet_tally.routed_groups += 1;
                        placements.push(Placement {
                            gid,
                            member: m,
                            granule: Some(granule),
                            slab_slot: None,
                            probe: false,
                            failover: false,
                        });
                    }
                    None => {
                        if let Some(a) = alog.as_mut() {
                            let mut attrs = cand_attrs;
                            attrs.push(("chosen".into(), "cpu".into()));
                            attrs.push(("reason".into(), "no_eligible_member".into()));
                            a.record(epoch_ts, None, Some(gid), "router_placement", attrs);
                        }
                        cpu_gids.push(gid);
                    }
                }
            }

            // ---- Epoch-granular device loss + failover. ---------------
            // Loss decisions come from the public fault-roll hash at
            // (member scope, epoch ordinal) — pure, off the op path, and
            // independent of routing.
            for m in 0..nmembers {
                let Some(f) = &member_faults[m] else { continue };
                if lost[m] || f.device_loss_rate <= 0.0 {
                    continue;
                }
                if fault_roll(f.seed, member_salt(m), epoch_idx as u64, FaultClass::DeviceLoss)
                    < f.device_loss_rate
                {
                    lost[m] = true;
                    fleet_tally.device_losses += 1;
                    control.charge_host_op(
                        &format!("fault:device_loss:member{m}"),
                        0.0,
                        DEFAULT_STREAM,
                    );
                    if let Some(a) = alog.as_mut() {
                        a.record(
                            epoch_ts,
                            None,
                            None,
                            "device_loss",
                            vec![
                                ("member".into(), m.to_string()),
                                ("epoch".into(), epoch_idx.to_string()),
                            ],
                        );
                    }
                }
            }
            let mut evicted: Vec<usize> = Vec::new();
            for (i, p) in placements.iter().enumerate() {
                if lost[p.member] {
                    evicted.push(i);
                }
            }
            for i in evicted {
                let from = placements[i].member;
                let gid = placements[i].gid;
                // Release the dark member's reservation (its pool
                // survives the device for accounting purposes).
                if let Some(granule) = placements[i].granule.take() {
                    self.pools[from].release_reservation(granule);
                }
                let group = &groups[gid];
                let backend = self
                    .engine
                    .registry
                    .get(requests[group.indices[0]].backend)
                    .expect("grouped requests resolve to registered backends");
                // Failover target: best healthy member with a free
                // standby slot — no pool traffic on this path.
                let mut best: Option<(usize, f64)> = None;
                for m in 0..nmembers {
                    if lost[m]
                        || drained[m]
                        || breakers[m].state() != gpu_sim::BreakerState::Closed
                    {
                        continue;
                    }
                    let est = backend.estimate_cost(&model_devs[m], &specs[m], group.plan.params())
                        * group.indices.len() as f64;
                    let score = (queue_clock[m] + est) * (2.0 - health[m]);
                    let better = match best {
                        None => true,
                        Some((_, s)) => score < s,
                    };
                    if better {
                        best = Some((m, score));
                    }
                }
                let target = best.and_then(|(m, _)| self.slabs[m].acquire().map(|slot| (m, slot)));
                match target {
                    Some((m, slot)) => {
                        fleet_tally.failovers += 1;
                        member_failovers_in[m] += 1;
                        control.charge_host_op(
                            &format!("fleet:failover:m{from}:m{m}"),
                            0.0,
                            DEFAULT_STREAM,
                        );
                        if let Some(a) = alog.as_mut() {
                            a.record(
                                epoch_ts,
                                None,
                                Some(gid),
                                "failover",
                                vec![
                                    ("from".into(), format!("m{from}")),
                                    ("to".into(), format!("m{m}")),
                                    ("via".into(), "standby_slab".into()),
                                ],
                            );
                        }
                        breakers[m].admit(gid);
                        audit_transitions(
                            &mut alog,
                            epoch_ts,
                            Some(gid),
                            m,
                            &breakers[m],
                            &mut seen_tr[m],
                        );
                        let est =
                            backend.estimate_cost(&model_devs[m], &specs[m], group.plan.params())
                                * group.indices.len() as f64;
                        queue_clock[m] += est;
                        placements[i].member = m;
                        placements[i].slab_slot = Some(slot);
                        placements[i].probe = false;
                        placements[i].failover = true;
                    }
                    None => {
                        // No healthy member (or standby slots dry): the
                        // group still completes, on the CPU tier.
                        fleet_tally.failovers += 1;
                        control.charge_host_op(
                            &format!("fleet:failover:m{from}:cpu"),
                            0.0,
                            DEFAULT_STREAM,
                        );
                        if let Some(a) = alog.as_mut() {
                            a.record(
                                epoch_ts,
                                None,
                                Some(gid),
                                "failover",
                                vec![
                                    ("from".into(), format!("m{from}")),
                                    ("to".into(), "cpu".into()),
                                    ("via".into(), "no_healthy_member_or_slots".into()),
                                ],
                            );
                        }
                        placements[i].member = usize::MAX;
                        cpu_gids.push(placements[i].gid);
                    }
                }
            }
            placements.retain(|p| p.member != usize::MAX);
            cpu_gids.sort_unstable();

            // ---- Execute the wave (deterministic per group). ----------
            let live: Vec<(usize, usize)> =
                placements.iter().map(|p| (p.gid, p.member)).collect();
            let workers = cfg.workers.max(1).min(live.len().max(1));
            let mut shards: Vec<Vec<(usize, usize)>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, lm) in live.iter().enumerate() {
                shards[i % workers].push(*lm);
            }
            let groups_ref = &groups;
            let specs_ref = &specs;
            let member_faults_ref = &member_faults;
            let mut runs: Vec<GroupRun> = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        scope.spawn(move || {
                            shard
                                .iter()
                                .map(|&(gid, m)| {
                                    run_group_on_device(
                                        &specs_ref[m],
                                        member_faults_ref[m].as_ref(),
                                        member_salt(m),
                                        &cfg,
                                        &groups_ref[gid],
                                        requests,
                                        false,
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .zip(&shards)
                    .flat_map(|(h, shard)| match h.join() {
                        Ok(rs) => rs,
                        Err(payload) => shard
                            .iter()
                            .map(|&(gid, _)| {
                                recover_group_loss(&groups_ref[gid], requests, &cfg, &*payload)
                            })
                            .collect(),
                    })
                    .collect()
            });
            runs.sort_by_key(|r| r.gid);
            placements.sort_by_key(|p| p.gid);

            // ---- Observe, in gid order, on the coordinator. -----------
            for (run, p) in runs.into_iter().zip(&placements) {
                debug_assert_eq!(run.gid, p.gid);
                let m = p.member;
                breakers[m].observe(p.gid, run.faulted);
                let t = &run.tally;
                let severity = ((t.injected + t.retries + t.cpu_fallbacks + t.failed) as f64
                    / 8.0)
                    .min(1.0);
                health[m] = 0.75 * health[m] + 0.25 * (1.0 - severity);
                member_groups[m] += 1;
                member_clock[m] += run.duration;
                let completion = member_clock[m];
                completion_of[p.gid] = completion;
                // Worker-buffered decisions fold here, in gid order, so
                // event ids are worker-count invariant; the observe's
                // breaker transitions follow them.
                if let Some(a) = alog.as_mut() {
                    a.fold_group(completion, p.gid, &run.tel.audit);
                }
                audit_transitions(
                    &mut alog,
                    completion,
                    Some(p.gid),
                    m,
                    &breakers[m],
                    &mut seen_tr[m],
                );
                for (idx, outcome) in &run.results {
                    if let Some(resp) = outcome.response() {
                        latencies.push(completion);
                        class_samples.push((resp.path, resp.qos, completion));
                    }
                    outcomes[*idx] = Some(outcome.clone());
                }
                faults.absorb(&run.tally);
                final_member[p.gid] = Some(m);
                tels.push(run.tel);
                op_groups.push(run.ops);

                // Return routing resources.
                if let Some(granule) = p.granule {
                    self.pools[m].release_reservation(granule);
                }
                if let Some(slot) = p.slab_slot {
                    self.slabs[m].release(slot);
                }

                // Drain entry: the breaker tripped too often since the
                // member's last clean probe.
                if !drained[m]
                    && breakers[m].trips() - trips_baseline[m] >= self.fleet.drain_after_trips
                    && self.fleet.drain_after_trips > 0
                {
                    drained[m] = true;
                    drain_cooldown[m] = self.fleet.drain_cooldown_epochs;
                    fleet_tally.drains += 1;
                    member_drains[m] += 1;
                    control.charge_host_op(&format!("fleet:drain:m{m}"), 0.0, DEFAULT_STREAM);
                    if let Some(a) = alog.as_mut() {
                        a.record(
                            completion,
                            None,
                            Some(p.gid),
                            "drain",
                            vec![
                                ("member".into(), m.to_string()),
                                ("trips".into(), breakers[m].trips().to_string()),
                                (
                                    "cooldown_epochs".into(),
                                    self.fleet.drain_cooldown_epochs.to_string(),
                                ),
                            ],
                        );
                    }
                }
                // Probe resolution: a clean probe closed the breaker and
                // re-admits the member; a faulted probe re-opened it and
                // restarts the quarantine clock.
                if p.probe {
                    if let Some(a) = alog.as_mut() {
                        a.record(
                            completion,
                            None,
                            Some(p.gid),
                            "drain_probe",
                            vec![
                                ("member".into(), m.to_string()),
                                ("clean".into(), (!run.faulted).to_string()),
                            ],
                        );
                    }
                    if breakers[m].state() == gpu_sim::BreakerState::Closed {
                        trips_baseline[m] = breakers[m].trips();
                        if drained[m] {
                            drained[m] = false;
                            control
                                .charge_host_op(&format!("fleet:recover:m{m}"), 0.0, DEFAULT_STREAM);
                            if let Some(a) = alog.as_mut() {
                                a.record(
                                    completion,
                                    None,
                                    Some(p.gid),
                                    "recover",
                                    vec![("member".into(), m.to_string())],
                                );
                            }
                        }
                    } else if drained[m] {
                        drain_cooldown[m] = self.fleet.drain_cooldown_epochs;
                    }
                }
            }

            // ---- CPU tier, in gid order. ------------------------------
            for gid in cpu_gids {
                let group = &groups[gid];
                fleet_tally.cpu_served_groups += 1;
                cpu_short_circuit[gid] = true;
                let est = cpu_tier_cost(group.plan.params(), group.indices.len());
                control.charge_host_op(&format!("fleet:cpu_serve:g{gid}"), est, DEFAULT_STREAM);
                cpu_clock += est;
                let completion = cpu_clock;
                completion_of[gid] = completion;
                if let Some(a) = alog.as_mut() {
                    a.record(
                        completion,
                        None,
                        Some(gid),
                        "cpu_tier",
                        vec![
                            ("requests".into(), group.indices.len().to_string()),
                            ("est".into(), fmt_f64(est)),
                        ],
                    );
                }
                for &idx in &group.indices {
                    let req = &requests[idx];
                    faults.cpu_fallbacks += 1;
                    let recovered =
                        SfftCpuBackend::reference(group.plan.params(), &req.time, req.seed);
                    latencies.push(completion);
                    class_samples.push((ServePath::Cpu, group.qos, completion));
                    outcomes[idx] = Some(RequestOutcome::Done(ServeResponse {
                        num_hits: recovered.len(),
                        recovered,
                        path: ServePath::Cpu,
                        qos: group.qos,
                        backend: BackendKind::SfftCpu,
                    }));
                }
            }

            // ---- Epoch end: quarantine clocks tick. -------------------
            for m in 0..nmembers {
                if drained[m] && drain_cooldown[m] > 0 {
                    drain_cooldown[m] -= 1;
                }
            }
        }

        // Breaker transitions onto the control timeline, member order.
        let mut breaker_log: Vec<gpu_sim::BreakerTransition> = Vec::new();
        for b in &breakers {
            for tr in b.transitions() {
                control.charge_host_op(&format!("breaker:{}", tr.to.label()), 0.0, DEFAULT_STREAM);
            }
            breaker_log.extend_from_slice(b.transitions());
            overload.breaker_trips += b.trips();
        }

        // ---- Merge the timeline (telemetry only — the makespan below
        // comes from the per-member clocks; one merged schedule would
        // fair-share a single device's SMs across every member). -------
        let mut all_ops: Vec<Vec<Op>> = Vec::with_capacity(1 + op_groups.len());
        all_ops.push(control.ops());
        all_ops.extend(op_groups);
        let merged = merge_op_groups(&all_ops);
        let max_ck = specs
            .iter()
            .map(|s| s.max_concurrent_kernels)
            .max()
            .unwrap_or(1);
        let sched = schedule(&merged, max_ck);
        let concurrency = concurrency_profile(&merged, &sched);

        let makespan = member_clock
            .iter()
            .copied()
            .fold(cpu_clock, f64::max);

        // ---- Collect. -------------------------------------------------
        for (idx, err) in prefailed {
            faults.failed += 1;
            outcomes[idx] = Some(RequestOutcome::Failed {
                error: err,
                after_attempts: 0,
            });
        }
        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            // Invariant: every request is pre-failed, placed on a member,
            // or served on the CPU tier.
            .map(|o| o.expect("every request resolves to exactly one outcome"))
            .collect();
        let completed = outcomes.iter().filter(|o| o.response().is_some()).count();
        let throughput = if makespan > 0.0 {
            completed as f64 / makespan
        } else {
            0.0
        };

        tels.sort_by_key(|t| t.gid);
        let kernels = merge_rollups(&tels);
        let mut pool = PoolTally::default();
        for t in &tels {
            pool.absorb(&t.pool);
        }

        let slab_now: Vec<StandbyStats> = self.slabs.iter().map(|s| s.stats()).collect();
        for (now, base) in slab_now.iter().zip(&slab_base) {
            fleet_tally.standby_acquires += now.acquires - base.acquires;
            fleet_tally.standby_exhausted += now.exhausted - base.exhausted;
        }

        let devices: Vec<FleetDeviceInfo> = (0..nmembers)
            .map(|m| FleetDeviceInfo {
                id: m,
                spec_name: specs[m].name.clone(),
                groups: member_groups[m],
                failovers_in: member_failovers_in[m],
                lost: lost[m],
                drained: drained[m],
                drains: member_drains[m],
                trips: breakers[m].trips(),
                health: health[m],
                busy: member_clock[m],
            })
            .collect();

        let group_info: Vec<GroupInfo> = groups
            .iter()
            .map(|g| GroupInfo {
                gid: g.gid,
                indices: g.indices.clone(),
                key: PlanKey {
                    qos: g.qos,
                    ..requests[g.indices[0]].plan_key()
                },
                short_circuit: cpu_short_circuit[g.gid],
                hedged: false,
                device: final_member[g.gid],
            })
            .collect();

        let latency = LatencyStats::from_latencies(latencies);
        let path_latency = path_latency_summary(&class_samples);

        // Seal the flight recorder: terminals at each group's lane
        // completion (prefailed requests at 0.0), latency = completion
        // (the fleet path has no arrival process).
        let audit = alog.map(|a| {
            let mut gid_of: Vec<Option<usize>> = vec![None; requests.len()];
            for g in &groups {
                for &i in &g.indices {
                    gid_of[i] = Some(g.gid);
                }
            }
            let ts_of: Vec<f64> = (0..requests.len())
                .map(|r| gid_of[r].map(|g| completion_of[g]).unwrap_or(0.0))
                .collect();
            let lat_of: Vec<Option<f64>> = (0..requests.len())
                .map(|r| outcomes[r].response().map(|_| ts_of[r]))
                .collect();
            finalize_audit(a, &outcomes, &gid_of, &ts_of, &lat_of, &SloConfig::default())
        });

        ServeReport {
            outcomes,
            makespan,
            throughput,
            concurrency,
            cache: self.engine.cache.stats(),
            groups: groups.len(),
            faults,
            overload,
            latency,
            breaker: breaker_log,
            timeline: ServeTimeline { ops: merged, sched },
            group_info,
            path_latency,
            arrivals: Vec::new(),
            kernels,
            pool,
            fleet: fleet_tally,
            devices,
            journal: None,
            audit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Variant;
    use signal::{MagnitudeModel, SparseSignal};

    fn request(n: usize, k: usize, sig_seed: u64, seed: u64) -> ServeRequest {
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_seed);
        ServeRequest::new(s.time, k, Variant::Optimized, seed)
    }

    #[test]
    fn empty_fleet_is_rejected_typed() {
        let err = DeviceFleet::new(FleetConfig::default(), ServeConfig::default()).unwrap_err();
        assert!(matches!(err, CusFftError::BadConfig { ref reason } if reason.contains("no members")));
    }

    #[test]
    fn zero_capacity_member_is_rejected_typed() {
        let mut fleet = FleetConfig::homogeneous(2);
        fleet.members[1].spec.global_mem_bytes = 0;
        let err = DeviceFleet::new(fleet, ServeConfig::default()).unwrap_err();
        assert!(matches!(err, CusFftError::BadConfig { ref reason } if reason.contains("member 1")));
    }

    #[test]
    fn oversized_standby_budget_is_rejected_typed() {
        let mut fleet = FleetConfig::homogeneous(1);
        fleet.standby_slot_bytes = 64 << 30;
        let err = DeviceFleet::new(fleet, ServeConfig::default()).unwrap_err();
        assert!(
            matches!(err, CusFftError::BadConfig { ref reason } if reason.contains("standby")),
            "got {err:?}"
        );
    }

    #[test]
    fn zero_workers_is_rejected_through_the_engine() {
        let err = DeviceFleet::new(
            FleetConfig::homogeneous(1),
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CusFftError::BadConfig { .. }));
    }

    #[test]
    fn heterogeneous_fleet_serves_and_reports_members() {
        let fleet =
            DeviceFleet::new(FleetConfig::heterogeneous(), ServeConfig::default()).unwrap();
        let reqs: Vec<ServeRequest> = (0..6)
            .map(|i| {
                let n = if i % 2 == 0 { 1 << 10 } else { 1 << 11 };
                request(n, 4, i as u64, 100 + i as u64)
            })
            .collect();
        let report = fleet.serve(&reqs);
        assert_eq!(report.outcomes.len(), 6);
        assert!(report.outcomes.iter().all(|o| o.response().is_some()));
        assert_eq!(report.devices.len(), 3);
        assert_eq!(report.fleet.routed_groups, report.groups as u64);
        assert_eq!(report.fleet.device_losses, 0);
        assert!(report.makespan > 0.0);
        // Every group landed on some member and says which.
        for info in &report.group_info {
            let m = info.device.expect("fault-free fleet groups run on devices");
            assert!(m < 3);
        }
        // Routing reservations were all returned; the only outstanding
        // reservations are the standby slots held since build.
        let standby = fleet.config().standby_slots as u64;
        for (alloc, release) in fleet.pool_traffic() {
            assert_eq!(alloc, release + standby);
        }
    }

    #[test]
    fn fleet_report_is_invariant_under_worker_count() {
        let reqs: Vec<ServeRequest> = (0..8)
            .map(|i| {
                let n = if i % 2 == 0 { 1 << 10 } else { 1 << 11 };
                request(n, 4, i as u64, 7 * i as u64)
            })
            .collect();
        let serve_with = |workers: usize| {
            let mut fleet_cfg = FleetConfig::heterogeneous();
            fleet_cfg.members[0].faults =
                Some(FaultConfig::uniform(9, 0.2).with_device_loss(1.0));
            let fleet = DeviceFleet::new(
                fleet_cfg,
                ServeConfig {
                    workers,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            fleet.serve(&reqs)
        };
        let a = serve_with(1);
        let b = serve_with(4);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn certain_device_loss_fails_over_without_failing_requests() {
        let mut fleet_cfg = FleetConfig::homogeneous(2);
        // Member 0 goes dark at the first epoch; member 1 serves clean.
        fleet_cfg.members[0].faults = Some(FaultConfig::uniform(3, 0.0).with_device_loss(1.0));
        let fleet = DeviceFleet::new(fleet_cfg, ServeConfig::default()).unwrap();
        let reqs: Vec<ServeRequest> = (0..4)
            .map(|i| {
                let n = if i % 2 == 0 { 1 << 10 } else { 1 << 11 };
                request(n, 4, i as u64, 11 * i as u64)
            })
            .collect();
        let report = fleet.serve(&reqs);
        assert!(report.outcomes.iter().all(|o| o.response().is_some()));
        assert_eq!(report.fleet.device_losses, 1);
        assert!(report.devices[0].lost);
        assert!(!report.devices[1].lost);
        assert!(report.faults.failed == 0);
    }
}
