//! `cusfft::journal` — crash-consistent serving: a write-ahead request
//! journal plus checkpoint/restart for the [`ServeEngine`].
//!
//! The serving layer survives every *device*-side failure the simulator
//! can throw (faults, breakers, overload, fleet failover), but a crash
//! of the serving **host** itself would lose every in-flight request.
//! This module closes that gap, FoundationDB-style:
//!
//! * [`Journal`] — an append-only log of deterministic binary records:
//!   [`JournalRecord::Admitted`] (the batch fingerprint),
//!   [`JournalRecord::GroupStaged`] (a plan group entered execution),
//!   [`JournalRecord::Done`] (a request reached a terminal outcome) and
//!   [`JournalRecord::Checkpoint`] (an epoch boundary). Appends land in
//!   a volatile tail; only [`Journal::flush`] makes them durable, and a
//!   simulated power loss ([`Journal::crash`]) discards the tail —
//!   exactly the contract of an `fsync`-bounded write-ahead log.
//! * [`ServeEngine::serve_journaled`] — serves a batch in **epochs** of
//!   [`JournalOptions::epoch_groups`] plan groups. Each epoch's groups
//!   are sharded across the workers as usual; at the epoch boundary the
//!   engine checkpoints ([`ServeEngine::checkpoint`]): terminal
//!   outcomes are appended and the journal is flushed. An armed
//!   [`CrashPlan`] kills the run *after* executing its epoch but
//!   *before* the flush — the worst case, where real work is lost.
//! * [`ServeEngine::resume_from`] — restarts from a durable journal:
//!   validates the batch fingerprint, restores every journaled outcome
//!   verbatim, and re-executes only the groups the crash swallowed.
//!
//! **Exactly-once, bit-for-bit.** Fault scopes key on the *global group
//! index* (see [`crate::serve::scope_group`]), so a re-executed group
//! rolls the identical fault decisions the lost execution rolled, and
//! the resumed run's final outcome vector is **exactly equal** to the
//! uninterrupted run's — no request lost, none double-completed, no
//! response bit different. `tests/journal_recovery.rs` pins this for
//! every crash epoch across worker counts and fault seeds.

use std::collections::HashMap;

use fft::cplx::Cplx;
use gpu_sim::{concurrency_profile, merge_op_groups, schedule, CrashPlan};

use crate::audit::{finalize_audit, AuditLog, SloConfig};
use crate::backend::BackendKind;
use crate::error::CusFftError;
use crate::overload::{LatencyStats, OverloadTally};
use crate::plan_cache::{PlanKey, ServeQos};
use crate::serve::{
    merge_rollups, recover_worker_loss, run_worker, FaultTally, Group, GroupInfo, GroupTelemetry,
    PoolTally, RequestOutcome, ServeEngine, ServePath, ServeReport, ServeRequest, ServeResponse,
    ServeTimeline, WorkerOutput,
};

// ---------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------

/// Format magic: "cJn1" — version bumps change the last byte.
const MAGIC: [u8; 4] = *b"cJn1";

const TAG_ADMITTED: u8 = 1;
const TAG_GROUP_STAGED: u8 = 2;
const TAG_DONE: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;

/// One journal record. The binary layout is
/// `[tag: u8][len: u32 LE][payload: len bytes]`, with every scalar
/// little-endian and floats stored as raw IEEE-754 bits — decoding is
/// exact, never a parse-and-round.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// The batch was admitted: `count` requests whose content hashes to
    /// `fingerprint` (see [`batch_fingerprint`]). Always the first
    /// record; resume refuses a journal whose fingerprint does not
    /// match the offered batch.
    Admitted {
        /// Content hash of the full request batch.
        fingerprint: u64,
        /// Number of requests in the batch.
        count: u32,
    },
    /// Plan group `gid` entered execution in `epoch` with these request
    /// indices. Written before the group runs, so a crashed journal
    /// still names the work that was in flight.
    GroupStaged {
        /// Global group index (the fault-scope base).
        gid: u32,
        /// Epoch the group executed in.
        epoch: u32,
        /// Request indices the group serves, in submission order.
        indices: Vec<u32>,
    },
    /// Request `idx` reached a terminal outcome.
    Done {
        /// Request index in submission order.
        idx: u32,
        /// The full terminal outcome, bit-exact.
        outcome: RequestOutcome,
    },
    /// Epoch `epoch` completed and everything before this record was
    /// flushed durable.
    Checkpoint {
        /// The completed epoch index.
        epoch: u32,
    },
}

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn corrupt(what: &str) -> CusFftError {
        CusFftError::Journal {
            reason: format!("corrupt record: {what}"),
        }
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CusFftError> {
        if self.pos + n > self.buf.len() {
            return Err(Self::corrupt("truncated payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CusFftError> {
        Ok(self.bytes(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CusFftError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, CusFftError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Result<f64, CusFftError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, CusFftError> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| Self::corrupt("non-UTF-8 string"))
    }
    fn done(&self) -> Result<(), CusFftError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Self::corrupt("trailing bytes in payload"))
        }
    }
}

fn encode_gpu_error(e: &gpu_sim::GpuError, out: &mut Enc) {
    use gpu_sim::GpuError as G;
    match e {
        G::OutOfMemory {
            requested,
            free,
            capacity,
        } => {
            out.u8(0);
            out.u64(*requested);
            out.u64(*free);
            out.u64(*capacity);
        }
        G::TransferFailure { dir, bytes } => {
            out.u8(1);
            out.u8(match dir {
                gpu_sim::TransferDir::HostToDevice => 0,
                gpu_sim::TransferDir::DeviceToHost => 1,
            });
            out.u64(*bytes as u64);
        }
        G::LaunchFailure { kernel } => {
            out.u8(2);
            out.str(kernel);
        }
        G::LaunchTimeout { kernel, waited_s } => {
            out.u8(3);
            out.str(kernel);
            out.f64(*waited_s);
        }
        G::EccCorruption { buffer_bytes } => {
            out.u8(4);
            out.u64(*buffer_bytes as u64);
        }
    }
}

fn decode_gpu_error(d: &mut Dec) -> Result<gpu_sim::GpuError, CusFftError> {
    use gpu_sim::GpuError as G;
    Ok(match d.u8()? {
        0 => G::OutOfMemory {
            requested: d.u64()?,
            free: d.u64()?,
            capacity: d.u64()?,
        },
        1 => {
            let dir = match d.u8()? {
                0 => gpu_sim::TransferDir::HostToDevice,
                1 => gpu_sim::TransferDir::DeviceToHost,
                _ => return Err(Dec::corrupt("unknown transfer direction")),
            };
            G::TransferFailure {
                dir,
                bytes: d.u64()? as usize,
            }
        }
        2 => G::LaunchFailure { kernel: d.str()? },
        3 => G::LaunchTimeout {
            kernel: d.str()?,
            waited_s: d.f64()?,
        },
        4 => G::EccCorruption {
            buffer_bytes: d.u64()? as usize,
        },
        _ => return Err(Dec::corrupt("unknown device-error tag")),
    })
}

fn encode_error(e: &CusFftError, out: &mut Enc) {
    match e {
        CusFftError::Gpu(g) => {
            out.u8(0);
            encode_gpu_error(g, out);
        }
        CusFftError::BadRequest { reason } => {
            out.u8(1);
            out.str(reason);
        }
        CusFftError::Panic { context } => {
            out.u8(2);
            out.str(context);
        }
        CusFftError::SilentCorruption {
            residual,
            tolerance,
        } => {
            out.u8(3);
            out.f64(*residual);
            out.f64(*tolerance);
        }
        CusFftError::CircuitOpen => out.u8(4),
        CusFftError::BadConfig { reason } => {
            out.u8(5);
            out.str(reason);
        }
        CusFftError::Journal { reason } => {
            out.u8(6);
            out.str(reason);
        }
    }
}

fn decode_error(d: &mut Dec) -> Result<CusFftError, CusFftError> {
    Ok(match d.u8()? {
        0 => CusFftError::Gpu(decode_gpu_error(d)?),
        1 => CusFftError::BadRequest { reason: d.str()? },
        2 => CusFftError::Panic { context: d.str()? },
        3 => CusFftError::SilentCorruption {
            residual: d.f64()?,
            tolerance: d.f64()?,
        },
        4 => CusFftError::CircuitOpen,
        5 => CusFftError::BadConfig { reason: d.str()? },
        6 => CusFftError::Journal { reason: d.str()? },
        _ => return Err(Dec::corrupt("unknown error tag")),
    })
}

fn backend_from_code(code: u8) -> Result<BackendKind, CusFftError> {
    BackendKind::all()
        .into_iter()
        .find(|b| b.code() == code)
        .ok_or_else(|| Dec::corrupt("unknown backend code"))
}

fn encode_outcome(o: &RequestOutcome, out: &mut Enc) {
    match o {
        RequestOutcome::Done(r) => {
            out.u8(0);
            out.u8(match r.path {
                ServePath::Gpu => 0,
                ServePath::GpuRetry => 1,
                ServePath::Cpu => 2,
            });
            out.u8(match r.qos {
                ServeQos::Full => 0,
                ServeQos::Degraded => 1,
            });
            out.u8(r.backend.code());
            out.u64(r.num_hits as u64);
            out.u64(r.recovered.len() as u64);
            for &(f, c) in &r.recovered {
                out.u64(f as u64);
                out.f64(c.re);
                out.f64(c.im);
            }
        }
        RequestOutcome::Failed {
            error,
            after_attempts,
        } => {
            out.u8(1);
            out.u32(*after_attempts);
            encode_error(error, out);
        }
        RequestOutcome::Shed { queue_depth } => {
            out.u8(2);
            out.u64(*queue_depth as u64);
        }
        RequestOutcome::DeadlineExceeded {
            predicted,
            deadline,
        } => {
            out.u8(3);
            out.f64(*predicted);
            out.f64(*deadline);
        }
    }
}

fn decode_outcome(d: &mut Dec) -> Result<RequestOutcome, CusFftError> {
    Ok(match d.u8()? {
        0 => {
            let path = match d.u8()? {
                0 => ServePath::Gpu,
                1 => ServePath::GpuRetry,
                2 => ServePath::Cpu,
                _ => return Err(Dec::corrupt("unknown serve path")),
            };
            let qos = match d.u8()? {
                0 => ServeQos::Full,
                1 => ServeQos::Degraded,
                _ => return Err(Dec::corrupt("unknown QoS tier")),
            };
            let backend = backend_from_code(d.u8()?)?;
            let num_hits = d.u64()? as usize;
            let len = d.u64()? as usize;
            let mut recovered = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                let f = d.u64()? as usize;
                let re = d.f64()?;
                let im = d.f64()?;
                recovered.push((f, Cplx::new(re, im)));
            }
            RequestOutcome::Done(ServeResponse {
                recovered,
                num_hits,
                path,
                qos,
                backend,
            })
        }
        1 => {
            let after_attempts = d.u32()?;
            RequestOutcome::Failed {
                error: decode_error(d)?,
                after_attempts,
            }
        }
        2 => RequestOutcome::Shed {
            queue_depth: d.u64()? as usize,
        },
        3 => RequestOutcome::DeadlineExceeded {
            predicted: d.f64()?,
            deadline: d.f64()?,
        },
        _ => return Err(Dec::corrupt("unknown outcome tag")),
    })
}

impl JournalRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut payload = Enc(Vec::new());
        let tag = match self {
            JournalRecord::Admitted { fingerprint, count } => {
                payload.u64(*fingerprint);
                payload.u32(*count);
                TAG_ADMITTED
            }
            JournalRecord::GroupStaged {
                gid,
                epoch,
                indices,
            } => {
                payload.u32(*gid);
                payload.u32(*epoch);
                payload.u32(indices.len() as u32);
                for &i in indices {
                    payload.u32(i);
                }
                TAG_GROUP_STAGED
            }
            JournalRecord::Done { idx, outcome } => {
                payload.u32(*idx);
                encode_outcome(outcome, &mut payload);
                TAG_DONE
            }
            JournalRecord::Checkpoint { epoch } => {
                payload.u32(*epoch);
                TAG_CHECKPOINT
            }
        };
        buf.push(tag);
        buf.extend_from_slice(&(payload.0.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload.0);
    }

    fn decode(tag: u8, payload: &[u8]) -> Result<Self, CusFftError> {
        let mut d = Dec {
            buf: payload,
            pos: 0,
        };
        let rec = match tag {
            TAG_ADMITTED => JournalRecord::Admitted {
                fingerprint: d.u64()?,
                count: d.u32()?,
            },
            TAG_GROUP_STAGED => {
                let gid = d.u32()?;
                let epoch = d.u32()?;
                let len = d.u32()? as usize;
                let mut indices = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    indices.push(d.u32()?);
                }
                JournalRecord::GroupStaged {
                    gid,
                    epoch,
                    indices,
                }
            }
            TAG_DONE => JournalRecord::Done {
                idx: d.u32()?,
                outcome: decode_outcome(&mut d)?,
            },
            TAG_CHECKPOINT => JournalRecord::Checkpoint { epoch: d.u32()? },
            _ => return Err(Dec::corrupt("unknown record tag")),
        };
        d.done()?;
        Ok(rec)
    }
}

/// Content hash of a request batch — every field of every request,
/// signal samples included (exact bits). A journal is only resumable
/// against the byte-identical batch it was written for.
pub fn batch_fingerprint(requests: &[ServeRequest]) -> u64 {
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    let mut h = mix(0x6A75_726E_616C ^ requests.len() as u64); // "journal"
    for r in requests {
        h = mix(h ^ r.time.len() as u64);
        h = mix(h ^ r.k as u64);
        h = mix(h ^ r.seed);
        h = mix(h ^ match r.variant {
            crate::pipeline::Variant::Baseline => 0u64,
            crate::pipeline::Variant::Optimized => 1,
        });
        h = mix(h ^ u64::from(r.backend.code()));
        for c in &r.time {
            h = mix(h ^ c.re.to_bits());
            h = mix(h ^ c.im.to_bits());
        }
    }
    h
}

// ---------------------------------------------------------------------
// The journal
// ---------------------------------------------------------------------

/// Cumulative journal I/O counters (monotone over the journal's life).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended (durable or not).
    pub records_appended: u64,
    /// Flush calls that made appended bytes durable.
    pub flushes: u64,
    /// Bytes currently durable.
    pub durable_bytes: u64,
    /// Bytes appended but not yet flushed (lost if the host dies now).
    pub unflushed_bytes: u64,
}

/// An append-only write-ahead log with an explicit durability boundary.
///
/// Appends go to a volatile tail; [`Journal::flush`] moves the boundary
/// to the end (an `fsync`), and [`Journal::crash`] simulates a power
/// loss by discarding everything after the boundary. [`Journal::save`] /
/// [`Journal::load`] persist exactly the durable prefix to a real file,
/// so recovery can also cross processes.
#[derive(Debug, Clone)]
pub struct Journal {
    buf: Vec<u8>,
    durable: usize,
    records_appended: u64,
    flushes: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    /// An empty journal (header only, already durable).
    pub fn new() -> Self {
        Journal {
            buf: MAGIC.to_vec(),
            durable: MAGIC.len(),
            records_appended: 0,
            flushes: 0,
        }
    }

    /// Rebuilds a journal from previously saved bytes. The whole input
    /// is treated as durable (it came off stable storage).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CusFftError> {
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(CusFftError::Journal {
                reason: "bad magic: not a cusfft journal".into(),
            });
        }
        let j = Journal {
            buf: bytes.to_vec(),
            durable: bytes.len(),
            records_appended: 0,
            flushes: 0,
        };
        // Validate structure eagerly so a truncated file fails at load,
        // not mid-recovery.
        j.durable_records()?;
        Ok(j)
    }

    /// Loads a journal file written by [`Journal::save`].
    pub fn load(path: &std::path::Path) -> Result<Self, CusFftError> {
        let bytes = std::fs::read(path).map_err(|e| CusFftError::Journal {
            reason: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::from_bytes(&bytes)
    }

    /// Writes the **durable prefix** to `path` — unflushed records never
    /// reach stable storage, exactly as on a real host.
    pub fn save(&self, path: &std::path::Path) -> Result<(), CusFftError> {
        std::fs::write(path, &self.buf[..self.durable]).map_err(|e| CusFftError::Journal {
            reason: format!("cannot write {}: {e}", path.display()),
        })
    }

    /// Resets the journal and admits a new batch: the `Admitted` record
    /// is appended and immediately flushed (admission is durable before
    /// any work runs).
    pub fn begin(&mut self, fingerprint: u64, count: u32) {
        self.buf.truncate(MAGIC.len());
        self.durable = MAGIC.len();
        self.append(&JournalRecord::Admitted { fingerprint, count });
        self.flush();
    }

    /// Appends a record to the volatile tail.
    pub fn append(&mut self, rec: &JournalRecord) {
        rec.encode(&mut self.buf);
        self.records_appended += 1;
    }

    /// Makes every appended record durable (the `fsync`).
    pub fn flush(&mut self) {
        if self.durable < self.buf.len() {
            self.durable = self.buf.len();
            self.flushes += 1;
        }
    }

    /// Simulated power loss: the volatile tail is gone.
    pub fn crash(&mut self) {
        self.buf.truncate(self.durable);
    }

    /// Current I/O counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            records_appended: self.records_appended,
            flushes: self.flushes,
            durable_bytes: self.durable as u64,
            unflushed_bytes: (self.buf.len() - self.durable) as u64,
        }
    }

    /// Decodes the **durable prefix** — what recovery is allowed to see.
    /// Unflushed tail records are invisible by design.
    pub fn durable_records(&self) -> Result<Vec<JournalRecord>, CusFftError> {
        let buf = &self.buf[..self.durable];
        let mut records = Vec::new();
        let mut pos = MAGIC.len();
        while pos < buf.len() {
            if pos + 5 > buf.len() {
                return Err(CusFftError::Journal {
                    reason: "truncated record header".into(),
                });
            }
            let tag = buf[pos];
            let len =
                u32::from_le_bytes(buf[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
            pos += 5;
            if pos + len > buf.len() {
                return Err(CusFftError::Journal {
                    reason: "record length exceeds durable prefix".into(),
                });
            }
            records.push(JournalRecord::decode(tag, &buf[pos..pos + len])?);
            pos += len;
        }
        Ok(records)
    }
}

// ---------------------------------------------------------------------
// Journaled serving
// ---------------------------------------------------------------------

/// Settings for a journaled serve run.
#[derive(Debug, Clone, Copy)]
pub struct JournalOptions {
    /// Plan groups per epoch (checkpoint granularity). Values below 1
    /// are treated as 1.
    pub epoch_groups: usize,
    /// The armed crash hook; [`CrashPlan::never`] for a healthy run.
    pub crash: CrashPlan,
}

impl Default for JournalOptions {
    fn default() -> Self {
        JournalOptions {
            epoch_groups: 2,
            crash: CrashPlan::never(),
        }
    }
}

/// What a crashed journaled run leaves behind (besides the journal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeCrash {
    /// Epoch the host died in (its records were appended but never
    /// flushed, so recovery will re-execute it).
    pub epoch: u64,
    /// Terminal outcomes that were durable at the moment of the crash.
    pub durable_done: usize,
    /// Simulated makespan of everything the crashed process executed —
    /// including the lost epoch, whose work is wasted.
    pub wasted_makespan: f64,
}

/// Result of a journaled serve call: either a full report or the crash
/// descriptor of a run the armed [`CrashPlan`] killed.
#[derive(Debug)]
pub enum JournalRun {
    /// The run completed; the journal ends with a final checkpoint.
    Completed(Box<ServeReport>),
    /// The crash hook fired; resume with [`ServeEngine::resume_from`].
    Crashed(ServeCrash),
}

impl JournalRun {
    /// The report, if the run completed.
    pub fn into_report(self) -> Result<ServeReport, ServeCrash> {
        match self {
            JournalRun::Completed(r) => Ok(*r),
            JournalRun::Crashed(c) => Err(c),
        }
    }

    /// The crash descriptor, if the run crashed.
    pub fn crash(&self) -> Option<&ServeCrash> {
        match self {
            JournalRun::Crashed(c) => Some(c),
            JournalRun::Completed(_) => None,
        }
    }
}

/// Journal/recovery counters for one journaled serve call, carried on
/// [`ServeReport::journal`]. Deterministic like every other tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalTally {
    /// Records this run appended.
    pub records_appended: u64,
    /// Epoch checkpoints this run flushed.
    pub checkpoints: u64,
    /// Bytes durable when this run finished.
    pub durable_bytes: u64,
    /// Plan groups this run executed.
    pub groups_executed: u64,
    /// Plan groups whose outcomes were restored from the journal
    /// without re-execution (resume only).
    pub groups_recovered: u64,
    /// Requests whose outcomes were restored from the journal (resume
    /// only).
    pub requests_recovered: u64,
}

/// Accumulated execution state across epochs.
struct EpochAccum {
    op_groups: Vec<Vec<gpu_sim::Op>>,
    outcomes: Vec<(usize, RequestOutcome)>,
    tally: FaultTally,
    groups_tel: Vec<GroupTelemetry>,
    executed_groups: Vec<usize>,
}

impl EpochAccum {
    fn new() -> Self {
        EpochAccum {
            op_groups: Vec::new(),
            outcomes: Vec::new(),
            tally: FaultTally::default(),
            groups_tel: Vec::new(),
            executed_groups: Vec::new(),
        }
    }

    fn makespan(&self, max_concurrent: u32) -> f64 {
        let merged = merge_op_groups(&self.op_groups);
        schedule(&merged, max_concurrent).makespan
    }
}

impl ServeEngine {
    /// Appends the epoch's terminal outcomes and a checkpoint marker,
    /// then flushes — the durability point of the recovery protocol.
    /// `already_durable` lists request indices whose `Done` records are
    /// known durable (resume skips re-journaling them).
    pub fn checkpoint(
        &self,
        journal: &mut Journal,
        epoch: u64,
        outcomes: &[(usize, RequestOutcome)],
        already_durable: &dyn Fn(usize) -> bool,
    ) {
        let mut sorted: Vec<&(usize, RequestOutcome)> = outcomes.iter().collect();
        sorted.sort_by_key(|(idx, _)| *idx);
        for (idx, outcome) in sorted {
            if already_durable(*idx) {
                continue;
            }
            journal.append(&JournalRecord::Done {
                idx: *idx as u32,
                outcome: outcome.clone(),
            });
        }
        journal.append(&JournalRecord::Checkpoint {
            epoch: epoch as u32,
        });
        journal.flush();
    }

    /// Serves `requests` in checkpointed epochs, journaling every
    /// terminal outcome (see the module docs). The journal is reset for
    /// this batch. Returns [`JournalRun::Crashed`] when
    /// [`JournalOptions::crash`] fires — the journal then holds exactly
    /// the durable prefix a dead host would leave on disk, ready for
    /// [`ServeEngine::resume_from`].
    ///
    /// Outcomes of a completed journaled run are **exactly equal** to
    /// [`ServeEngine::serve_batch`] on the same requests: epochs change
    /// only the checkpoint cadence, never a fault scope.
    pub fn serve_journaled(
        &self,
        requests: &[ServeRequest],
        journal: &mut Journal,
        opts: &JournalOptions,
    ) -> JournalRun {
        journal.begin(batch_fingerprint(requests), requests.len() as u32);
        let stats0 = journal.stats();
        let (groups, prefailed) = self.group_requests(requests);

        let mut alog = if self.config.audit {
            let mut a = AuditLog::new();
            a.record(
                0.0,
                None,
                None,
                "batch_admitted",
                vec![
                    ("requests".into(), requests.len().to_string()),
                    ("groups".into(), groups.len().to_string()),
                    ("journaled".into(), "true".into()),
                ],
            );
            Some(a)
        } else {
            None
        };

        // Validation failures are terminal at admission: durable before
        // any device work.
        let mut tally = FaultTally::default();
        let mut prefailed_outcomes: Vec<(usize, RequestOutcome)> = Vec::new();
        for (idx, err) in prefailed {
            tally.failed += 1;
            if let Some(a) = alog.as_mut() {
                a.record(
                    0.0,
                    Some(idx),
                    None,
                    "invalid",
                    vec![("reason".into(), err.to_string())],
                );
            }
            prefailed_outcomes.push((
                idx,
                RequestOutcome::Failed {
                    error: err,
                    after_attempts: 0,
                },
            ));
        }
        for (idx, outcome) in &prefailed_outcomes {
            journal.append(&JournalRecord::Done {
                idx: *idx as u32,
                outcome: outcome.clone(),
            });
        }
        journal.flush();

        let group_refs: Vec<&Group> = groups.iter().collect();
        let mut accum = EpochAccum::new();
        accum.tally.absorb(&tally);
        accum.outcomes.extend(prefailed_outcomes);
        let run = self.run_epochs(
            requests,
            &groups,
            &group_refs,
            0,
            journal,
            opts,
            &mut accum,
            &|_| false,
            &mut alog,
        );

        match run {
            Err(epoch) => {
                journal.crash();
                JournalRun::Crashed(ServeCrash {
                    epoch,
                    durable_done: count_durable_done(journal),
                    wasted_makespan: accum.makespan(self.spec.max_concurrent_kernels),
                })
            }
            Ok(checkpoints) => {
                let stats1 = journal.stats();
                let journal_tally = JournalTally {
                    records_appended: stats1.records_appended - stats0.records_appended,
                    checkpoints,
                    durable_bytes: stats1.durable_bytes,
                    groups_executed: accum.executed_groups.len() as u64,
                    groups_recovered: 0,
                    requests_recovered: 0,
                };
                JournalRun::Completed(Box::new(self.assemble_report(
                    requests,
                    &groups,
                    accum,
                    journal_tally,
                    alog,
                )))
            }
        }
    }

    /// Restarts a journaled run from its durable journal: restores every
    /// journaled outcome verbatim and re-executes only the groups with
    /// missing outcomes — under their original global group indices, so
    /// the fault plan replays the exact decisions the lost execution
    /// saw. The final outcome vector is exactly equal to the
    /// uninterrupted run's (exactly-once: nothing lost, nothing
    /// double-completed).
    ///
    /// Fails typed ([`CusFftError::Journal`]) when the journal is
    /// corrupt, duplicates a terminal record, or was written for a
    /// different batch.
    pub fn resume_from(
        &self,
        requests: &[ServeRequest],
        journal: &mut Journal,
        opts: &JournalOptions,
    ) -> Result<JournalRun, CusFftError> {
        let records = journal.durable_records()?;
        let Some(JournalRecord::Admitted { fingerprint, count }) = records.first() else {
            return Err(CusFftError::Journal {
                reason: "journal does not start with an Admitted record".into(),
            });
        };
        if *count as usize != requests.len() || *fingerprint != batch_fingerprint(requests) {
            return Err(CusFftError::Journal {
                reason: format!(
                    "journal was written for a different batch \
                     (journal: {count} requests, fingerprint {fingerprint:#x})"
                ),
            });
        }

        let mut durable_done: HashMap<usize, RequestOutcome> = HashMap::new();
        let mut next_epoch = 0u64;
        for rec in &records[1..] {
            match rec {
                JournalRecord::Done { idx, outcome } => {
                    let idx = *idx as usize;
                    if idx >= requests.len() {
                        return Err(CusFftError::Journal {
                            reason: format!("Done record for out-of-range request {idx}"),
                        });
                    }
                    if durable_done.insert(idx, outcome.clone()).is_some() {
                        return Err(CusFftError::Journal {
                            reason: format!(
                                "duplicate terminal record for request {idx} — \
                                 resuming would double-complete it"
                            ),
                        });
                    }
                }
                JournalRecord::Checkpoint { epoch } => {
                    next_epoch = next_epoch.max(u64::from(*epoch) + 1);
                }
                JournalRecord::Admitted { .. } => {
                    return Err(CusFftError::Journal {
                        reason: "second Admitted record mid-journal".into(),
                    });
                }
                JournalRecord::GroupStaged { .. } => {}
            }
        }

        let stats0 = journal.stats();
        let (groups, prefailed) = self.group_requests(requests);

        let mut alog = if self.config.audit {
            let mut a = AuditLog::new();
            a.record(
                0.0,
                None,
                None,
                "batch_admitted",
                vec![
                    ("requests".into(), requests.len().to_string()),
                    ("groups".into(), groups.len().to_string()),
                    ("journaled".into(), "true".into()),
                    ("resumed".into(), "true".into()),
                ],
            );
            a.record(
                0.0,
                None,
                None,
                "resume",
                vec![
                    ("next_epoch".into(), next_epoch.to_string()),
                    ("durable_done".into(), durable_done.len().to_string()),
                ],
            );
            Some(a)
        } else {
            None
        };

        let mut accum = EpochAccum::new();
        let mut journal_tally = JournalTally::default();

        // Validation failures re-derive deterministically; journal them
        // if the original run's flush was lost.
        let mut fresh_prefail: Vec<(usize, RequestOutcome)> = Vec::new();
        for (idx, err) in prefailed {
            if let Some(outcome) = durable_done.get(&idx) {
                journal_tally.requests_recovered += 1;
                if let Some(a) = alog.as_mut() {
                    a.record(
                        0.0,
                        Some(idx),
                        None,
                        "recovered",
                        vec![("source".into(), "journal".into())],
                    );
                }
                accum.outcomes.push((idx, outcome.clone()));
            } else {
                accum.tally.failed += 1;
                if let Some(a) = alog.as_mut() {
                    a.record(
                        0.0,
                        Some(idx),
                        None,
                        "invalid",
                        vec![("reason".into(), err.to_string())],
                    );
                }
                let outcome = RequestOutcome::Failed {
                    error: err,
                    after_attempts: 0,
                };
                journal.append(&JournalRecord::Done {
                    idx: idx as u32,
                    outcome: outcome.clone(),
                });
                fresh_prefail.push((idx, outcome));
            }
        }
        if !fresh_prefail.is_empty() {
            journal.flush();
            accum.outcomes.extend(fresh_prefail);
        }

        // A group re-executes iff any of its outcomes is missing. A
        // partially journaled group re-runs whole — determinism makes
        // the recomputed outcomes bit-identical to the journaled ones,
        // so replacing them cannot double-complete anything.
        let mut pending: Vec<&Group> = Vec::new();
        for g in &groups {
            if g.indices.iter().all(|idx| durable_done.contains_key(idx)) {
                journal_tally.groups_recovered += 1;
                for idx in &g.indices {
                    journal_tally.requests_recovered += 1;
                    if let Some(a) = alog.as_mut() {
                        a.record(
                            0.0,
                            Some(*idx),
                            Some(g.gid),
                            "recovered",
                            vec![("source".into(), "journal".into())],
                        );
                    }
                    accum
                        .outcomes
                        .push((*idx, durable_done[idx].clone()));
                }
            } else {
                pending.push(g);
            }
        }

        let run = self.run_epochs(
            requests,
            &groups,
            &pending,
            next_epoch,
            journal,
            opts,
            &mut accum,
            &|idx| durable_done.contains_key(&idx),
            &mut alog,
        );

        match run {
            Err(epoch) => {
                journal.crash();
                Ok(JournalRun::Crashed(ServeCrash {
                    epoch,
                    durable_done: count_durable_done(journal),
                    wasted_makespan: accum.makespan(self.spec.max_concurrent_kernels),
                }))
            }
            Ok(checkpoints) => {
                let stats1 = journal.stats();
                journal_tally.records_appended =
                    stats1.records_appended - stats0.records_appended;
                journal_tally.checkpoints = checkpoints;
                journal_tally.durable_bytes = stats1.durable_bytes;
                journal_tally.groups_executed = accum.executed_groups.len() as u64;
                Ok(JournalRun::Completed(Box::new(self.assemble_report(
                    requests,
                    &groups,
                    accum,
                    journal_tally,
                    alog,
                ))))
            }
        }
    }

    /// The epoch loop shared by first runs and resumes: stage, execute,
    /// checkpoint — or die at the armed crash epoch (`Err(epoch)`; the
    /// caller truncates the journal). `all_groups` sizes the aux-stream
    /// family exactly like `serve_batch` does, so stream geometry (and
    /// with it every op sequence) is independent of which groups remain.
    #[allow(clippy::too_many_arguments)]
    fn run_epochs(
        &self,
        requests: &[ServeRequest],
        all_groups: &[Group],
        run_groups: &[&Group],
        start_epoch: u64,
        journal: &mut Journal,
        opts: &JournalOptions,
        accum: &mut EpochAccum,
        already_durable: &dyn Fn(usize) -> bool,
        alog: &mut Option<AuditLog>,
    ) -> Result<u64, u64> {
        let epoch_groups = opts.epoch_groups.max(1);
        let workers = self.config.workers;
        let config = self.config;
        let aux = all_groups
            .iter()
            .map(|g| g.plan.num_streams())
            .max()
            .unwrap_or(0);
        let mut checkpoints = 0u64;

        for (chunk_i, epoch_chunk) in run_groups.chunks(epoch_groups).enumerate() {
            let epoch = start_epoch + chunk_i as u64;
            for g in epoch_chunk {
                journal.append(&JournalRecord::GroupStaged {
                    gid: g.gid as u32,
                    epoch: epoch as u32,
                    indices: g.indices.iter().map(|&i| i as u32).collect(),
                });
            }

            let mut shards: Vec<Vec<&Group>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, g) in epoch_chunk.iter().enumerate() {
                shards[i % workers].push(*g);
            }
            let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        let spec = self.spec.clone();
                        scope.spawn(move || run_worker(spec, shard, requests, aux, &config))
                    })
                    .collect();
                handles
                    .into_iter()
                    .zip(&shards)
                    .map(|(h, shard)| match h.join() {
                        Ok(out) => out,
                        Err(payload) => {
                            recover_worker_loss(shard, requests, &config, &*payload)
                        }
                    })
                    .collect()
            });

            let mut epoch_outcomes: Vec<(usize, RequestOutcome)> = Vec::new();
            for w in worker_outputs {
                accum.op_groups.push(w.ops);
                accum.tally.absorb(&w.tally);
                accum.groups_tel.extend(w.groups_tel);
                epoch_outcomes.extend(w.results);
            }
            accum
                .executed_groups
                .extend(epoch_chunk.iter().map(|g| g.gid));

            if opts.crash.fires_at(epoch) {
                // The host dies before the epoch's flush: its Done
                // records were appended but never made durable. The
                // outcomes still join the in-memory accumulator so the
                // crash descriptor can price the wasted work.
                accum.outcomes.extend(epoch_outcomes);
                return Err(epoch);
            }

            self.checkpoint(journal, epoch, &epoch_outcomes, already_durable);
            checkpoints += 1;
            if let Some(a) = alog.as_mut() {
                a.record(
                    epoch as f64,
                    None,
                    None,
                    "checkpoint",
                    vec![
                        ("epoch".into(), epoch.to_string()),
                        ("durable_bytes".into(), journal.stats().durable_bytes.to_string()),
                    ],
                );
            }
            accum.outcomes.extend(epoch_outcomes);
        }

        // An empty tail (everything recovered, or an empty batch) still
        // gets a final checkpoint so the journal visibly terminates.
        if run_groups.is_empty() {
            self.checkpoint(journal, start_epoch, &[], already_durable);
            checkpoints += 1;
            if let Some(a) = alog.as_mut() {
                a.record(
                    start_epoch as f64,
                    None,
                    None,
                    "checkpoint",
                    vec![
                        ("epoch".into(), start_epoch.to_string()),
                        ("durable_bytes".into(), journal.stats().durable_bytes.to_string()),
                    ],
                );
            }
        }
        Ok(checkpoints)
    }

    /// Builds the final report from accumulated epoch state, mirroring
    /// `serve_batch`'s assembly (merge in deterministic order, schedule
    /// once, gid-ordered float sums).
    fn assemble_report(
        &self,
        requests: &[ServeRequest],
        groups: &[Group],
        accum: EpochAccum,
        journal_tally: JournalTally,
        alog: Option<AuditLog>,
    ) -> ServeReport {
        let EpochAccum {
            op_groups,
            outcomes: raw_outcomes,
            tally,
            mut groups_tel,
            executed_groups,
        } = accum;

        let merged = merge_op_groups(&op_groups);
        let sched = schedule(&merged, self.spec.max_concurrent_kernels);
        let concurrency = concurrency_profile(&merged, &sched);
        let makespan = concurrency.makespan;

        let mut outcomes: Vec<Option<RequestOutcome>> =
            (0..requests.len()).map(|_| None).collect();
        for (idx, outcome) in raw_outcomes {
            outcomes[idx] = Some(outcome);
        }
        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            // Invariant: every request is pre-failed, journaled, or
            // served by exactly one executed group.
            .map(|o| o.expect("every request resolves to exactly one outcome"))
            .collect();

        groups_tel.sort_by_key(|t| t.gid);
        let kernels = merge_rollups(&groups_tel);
        let mut pool = PoolTally::default();
        for t in &groups_tel {
            pool.absorb(&t.pool);
        }

        let executed: std::collections::HashSet<usize> = executed_groups.into_iter().collect();
        let group_info: Vec<GroupInfo> = groups
            .iter()
            .filter(|g| executed.contains(&g.gid))
            .map(|g| GroupInfo {
                gid: g.gid,
                indices: g.indices.clone(),
                key: PlanKey {
                    qos: g.qos,
                    ..requests[g.indices[0]].plan_key()
                },
                short_circuit: false,
                hedged: false,
                device: None,
            })
            .collect();

        let throughput = if makespan > 0.0 {
            requests.len() as f64 / makespan
        } else {
            0.0
        };

        // Seal the flight recorder: placements and worker-buffered
        // decisions fold in gid order (executed groups only — recovered
        // groups already recorded `recovered` events), terminals at the
        // request ordinal like the other clockless paths.
        let audit = alog.map(|mut a| {
            for g in groups.iter().filter(|g| executed.contains(&g.gid)) {
                a.record(
                    0.0,
                    None,
                    Some(g.gid),
                    "group_placed",
                    vec![
                        ("members".into(), g.indices.len().to_string()),
                        ("n".into(), requests[g.indices[0]].time.len().to_string()),
                        ("k".into(), requests[g.indices[0]].k.to_string()),
                        ("qos".into(), g.qos.label().into()),
                        ("backend".into(), g.plan.backend().label().into()),
                    ],
                );
                if let Some(t) = groups_tel.iter().find(|t| t.gid == g.gid) {
                    a.fold_group(0.0, g.gid, &t.audit);
                }
            }
            let mut gid_of: Vec<Option<usize>> = vec![None; requests.len()];
            for g in groups {
                for &i in &g.indices {
                    gid_of[i] = Some(g.gid);
                }
            }
            let ts_of: Vec<f64> = (0..requests.len()).map(|i| i as f64).collect();
            let lat_of: Vec<Option<f64>> = vec![None; requests.len()];
            finalize_audit(a, &outcomes, &gid_of, &ts_of, &lat_of, &SloConfig::default())
        });

        ServeReport {
            outcomes,
            makespan,
            throughput,
            concurrency,
            cache: self.cache.stats(),
            groups: groups.len(),
            faults: tally,
            overload: OverloadTally::default(),
            latency: LatencyStats::default(),
            breaker: Vec::new(),
            timeline: ServeTimeline { ops: merged, sched },
            group_info,
            path_latency: Vec::new(),
            arrivals: Vec::new(),
            kernels,
            pool,
            fleet: crate::fleet::FleetTally::default(),
            devices: Vec::new(),
            journal: Some(journal_tally),
            audit,
        }
    }
}

/// Counts durable `Done` records; the journal was validated by the
/// caller, so decode failures cannot occur here.
fn count_durable_done(journal: &Journal) -> usize {
    journal
        .durable_records()
        .map(|rs| {
            rs.iter()
                .filter(|r| matches!(r, JournalRecord::Done { .. }))
                .count()
        })
        .unwrap_or(0)
}

/// Convenience used by tests and the chaos harness: groups of a batch
/// under this engine's cache, for sizing crash-epoch sweeps.
pub fn plan_group_count(engine: &ServeEngine, requests: &[ServeRequest]) -> usize {
    let (groups, _) = engine.group_requests(requests);
    groups.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Variant;
    use crate::serve::ServeConfig;
    use gpu_sim::DeviceSpec;
    use signal::{MagnitudeModel, SparseSignal};

    fn request(n: usize, k: usize, sig_seed: u64, seed: u64) -> ServeRequest {
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, sig_seed);
        ServeRequest::new(s.time, k, Variant::Optimized, seed)
    }

    fn engine(workers: usize) -> ServeEngine {
        ServeEngine::new(
            DeviceSpec::tesla_k20x(),
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
        )
        .expect("valid config")
    }

    #[test]
    fn outcome_codec_round_trips_bit_exact() {
        let outcomes = vec![
            RequestOutcome::Done(ServeResponse {
                recovered: vec![(3, Cplx::new(1.5, -2.25)), (17, Cplx::new(-0.0, 1e-300))],
                num_hits: 2,
                path: ServePath::GpuRetry,
                qos: ServeQos::Degraded,
                backend: BackendKind::GpuSim,
            }),
            RequestOutcome::Failed {
                error: CusFftError::Gpu(gpu_sim::GpuError::LaunchTimeout {
                    kernel: "perm_filter".into(),
                    waited_s: 1e-3,
                }),
                after_attempts: 2,
            },
            RequestOutcome::Failed {
                error: CusFftError::SilentCorruption {
                    residual: 0.75,
                    tolerance: 1e-6,
                },
                after_attempts: 1,
            },
            RequestOutcome::Shed { queue_depth: 9 },
            RequestOutcome::DeadlineExceeded {
                predicted: 0.5,
                deadline: 0.25,
            },
        ];
        for o in &outcomes {
            let mut enc = Enc(Vec::new());
            encode_outcome(o, &mut enc);
            let mut d = Dec {
                buf: &enc.0,
                pos: 0,
            };
            let back = decode_outcome(&mut d).expect("decodes");
            d.done().expect("no trailing bytes");
            assert_eq!(&back, o);
        }
    }

    #[test]
    fn journal_crash_discards_the_unflushed_tail() {
        let mut j = Journal::new();
        j.begin(42, 3);
        let durable = j.stats().durable_bytes;
        j.append(&JournalRecord::Checkpoint { epoch: 0 });
        assert!(j.stats().unflushed_bytes > 0);
        j.crash();
        assert_eq!(j.stats().durable_bytes, durable);
        assert_eq!(j.stats().unflushed_bytes, 0);
        let recs = j.durable_records().expect("valid");
        assert_eq!(recs.len(), 1, "only the flushed Admitted record survives");
    }

    #[test]
    fn journal_round_trips_through_bytes() {
        let mut j = Journal::new();
        j.begin(7, 1);
        j.append(&JournalRecord::GroupStaged {
            gid: 0,
            epoch: 0,
            indices: vec![0],
        });
        j.flush();
        let bytes = j.buf.clone();
        let back = Journal::from_bytes(&bytes).expect("valid journal");
        assert_eq!(back.durable_records().unwrap(), j.durable_records().unwrap());

        assert!(matches!(
            Journal::from_bytes(b"nope"),
            Err(CusFftError::Journal { .. })
        ));
        // A truncated byte stream fails structurally at load.
        assert!(matches!(
            Journal::from_bytes(&bytes[..bytes.len() - 2]),
            Err(CusFftError::Journal { .. })
        ));
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let a = vec![request(1 << 10, 4, 1, 11)];
        let b = vec![request(1 << 10, 4, 1, 12)]; // different request seed
        let c = vec![request(1 << 10, 4, 2, 11)]; // different signal
        assert_eq!(batch_fingerprint(&a), batch_fingerprint(&a));
        assert_ne!(batch_fingerprint(&a), batch_fingerprint(&b));
        assert_ne!(batch_fingerprint(&a), batch_fingerprint(&c));
    }

    #[test]
    fn journaled_serve_equals_serve_batch() {
        let reqs: Vec<ServeRequest> = (0..5)
            .map(|i| request(1 << (10 + (i % 2)), 4, 100 + i as u64, 7 * i as u64))
            .collect();
        let plain = engine(2).serve_batch(&reqs);
        let mut journal = Journal::new();
        let journaled = engine(2)
            .serve_journaled(&reqs, &mut journal, &JournalOptions::default())
            .into_report()
            .expect("no crash armed");
        assert_eq!(plain.outcomes, journaled.outcomes);
        assert_eq!(plain.faults, journaled.faults);
        let jt = journaled.journal.expect("journaled runs carry the tally");
        assert!(jt.checkpoints >= 1);
        assert!(jt.durable_bytes > 0);
        assert_eq!(jt.groups_recovered, 0);
    }

    #[test]
    fn resume_refuses_a_different_batch() {
        let reqs = vec![request(1 << 10, 4, 1, 11)];
        let mut journal = Journal::new();
        let _ = engine(1).serve_journaled(&reqs, &mut journal, &JournalOptions::default());
        let other = vec![request(1 << 10, 4, 2, 11)];
        match engine(1).resume_from(&other, &mut journal, &JournalOptions::default()) {
            Err(CusFftError::Journal { reason }) => {
                assert!(reason.contains("different batch"), "{reason}");
            }
            other => panic!("expected a journal error, got {other:?}"),
        }
    }

    #[test]
    fn resume_of_a_completed_run_re_executes_nothing() {
        let reqs: Vec<ServeRequest> = (0..4)
            .map(|i| request(1 << 10, 4, 50 + i as u64, 3 * i as u64))
            .collect();
        let mut journal = Journal::new();
        let full = engine(2)
            .serve_journaled(&reqs, &mut journal, &JournalOptions::default())
            .into_report()
            .expect("completes");
        let resumed = engine(2)
            .resume_from(&reqs, &mut journal, &JournalOptions::default())
            .expect("valid journal")
            .into_report()
            .expect("completes");
        assert_eq!(full.outcomes, resumed.outcomes);
        let jt = resumed.journal.expect("tally");
        assert_eq!(jt.groups_executed, 0, "nothing left to run");
        assert_eq!(jt.requests_recovered, reqs.len() as u64);
        assert_eq!(resumed.makespan, 0.0, "no simulated work on resume");
    }
}
