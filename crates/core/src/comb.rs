//! GPU comb pre-filter (sFFT v2 on the device): subsample kernel +
//! M-point cuFFT + magnitude kernel + residue selection. Enabled on a
//! [`crate::CusFft`] plan via [`crate::CusFft::with_comb`].

use fft::cplx::Cplx;
use gpu_sim::{DeviceBuffer, GpuDevice, GpuError, LaunchConfig, StreamId};
use rand::Rng;
use sfft_cpu::CombParams;

use crate::cufft::batched_fft_device;
use crate::cutoff::magnitudes_device;

const BLOCK: u32 = 256;

/// Runs the comb passes on the device and returns the residue mask
/// (`mask[f % M]` true ⇒ frequency f stays a candidate). Consumes
/// `comb_loops` offset draws from `rng` — the same stream discipline as
/// `sfft_cpu::comb::comb_mask`, so CPU and GPU masks coincide per seed.
pub fn comb_mask_device<R: Rng>(
    device: &GpuDevice,
    signal: &DeviceBuffer<Cplx>,
    n: usize,
    k: usize,
    comb: &CombParams,
    rng: &mut R,
    stream: StreamId,
) -> Result<Vec<bool>, GpuError> {
    let m = comb.comb_size;
    assert!(m > 0 && n.is_multiple_of(m), "comb size {m} must divide n={n}");
    let stride = n / m;
    let mut score = vec![0.0f64; m];

    for _ in 0..comb.comb_loops {
        let tau = rng.gen_range(0..n);
        // Subsample kernel: y[i] = x[(τ + i·n/M) mod n]. The reads stride
        // by n/M — scattered, so they go through the read-only path.
        let mut sub: DeviceBuffer<Cplx> = device.try_alloc_zeroed(m, stream)?;
        let cfg = LaunchConfig::for_elements(m, BLOCK);
        device.try_launch_map("comb_subsample", cfg, stream, &mut sub, |ctx, gm| {
            let i = ctx.global_id();
            gm.ld_ro(signal, (tau + i * stride) % n)
        })?;
        // M-point FFT under the cuFFT model.
        batched_fft_device(device, std::slice::from_mut(&mut sub), m, stream, "cufft_comb")?;
        let mags = magnitudes_device(device, &sub, stream)?;
        for (s, v) in score.iter_mut().zip(mags.as_slice()) {
            *s = s.max(*v);
        }
    }

    let keep = (comb.keep_factor * k).min(m);
    let selected = kselect::quickselect_top_k(&score, keep);
    let mut mask = vec![false; m];
    for i in selected {
        mask[i] = true;
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DEFAULT_STREAM;
    use rand::SeedableRng;
    use signal::{MagnitudeModel, SparseSignal};

    #[test]
    fn device_mask_keeps_true_residues() {
        let n = 1 << 13;
        let k = 12;
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 3);
        let comb = CombParams::tuned(n, k);
        let device = GpuDevice::k20x();
        let signal = DeviceBuffer::from_host(&s.time);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mask = comb_mask_device(&device, &signal, n, k, &comb, &mut rng, DEFAULT_STREAM).unwrap();
        for &(f, _) in &s.coords {
            assert!(mask[f % comb.comb_size], "lost residue of f={f}");
        }
        let kept = mask.iter().filter(|&&b| b).count();
        assert!(kept <= comb.keep_factor * k + k);
        // The comb work was charged on the device clock.
        assert!(device.elapsed() > 0.0);
        let names: Vec<String> = device.records().iter().map(|r| r.name.clone()).collect();
        assert!(names.iter().any(|x| x.starts_with("comb_subsample")));
        assert!(names.iter().any(|x| x.starts_with("cufft_comb")));
    }

    #[test]
    fn device_mask_matches_cpu_mask_support() {
        let n = 1 << 12;
        let k = 8;
        let s = SparseSignal::generate(n, k, MagnitudeModel::Unit, 7);
        let comb = CombParams::tuned(n, k);
        let device = GpuDevice::k20x();
        let signal = DeviceBuffer::from_host(&s.time);
        let mut grng = rand::rngs::StdRng::seed_from_u64(9);
        let gpu_mask = comb_mask_device(&device, &signal, n, k, &comb, &mut grng, DEFAULT_STREAM).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let cpu_mask = sfft_cpu::comb::comb_mask(&s.time, k, &comb, &mut rng);
        // Same RNG stream → same offsets → identical masks.
        assert_eq!(gpu_mask, cpu_mask);
    }
}
