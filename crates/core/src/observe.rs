//! `cusfft::observe` — adapts a [`ServeReport`] into the
//! `cusfft-telemetry` types: a span tree over the merged timeline, a
//! metrics registry, and Chrome/Perfetto trace JSON.
//!
//! Everything here is a pure function of the report, which is itself a
//! deterministic function of `(requests, config, policy)` — so the
//! exported bytes inherit the serving layer's determinism contract and
//! are pinned as golden snapshots in CI.

use cusfft_telemetry::{
    build_span_tree, chrome_trace_annotated, fmt_f64, GroupMeta, Registry, RequestMeta, SpanTree,
    TraceAnnotation,
};

use crate::serve::{RequestOutcome, ServeReport};
use crate::Variant;

/// Stable outcome label used as a telemetry dimension.
pub fn outcome_label(o: &RequestOutcome) -> &'static str {
    match o {
        RequestOutcome::Done(_) => "done",
        RequestOutcome::Failed { .. } => "failed",
        RequestOutcome::Shed { .. } => "shed",
        RequestOutcome::DeadlineExceeded { .. } => "deadline_exceeded",
    }
}

/// Stable variant label used as a telemetry dimension.
pub fn variant_label(v: Variant) -> &'static str {
    match v {
        Variant::Baseline => "baseline",
        Variant::Optimized => "optimized",
    }
}

/// Builds the hierarchical span tree for a serve call: root → control /
/// per-group attempt sub-trees → per-op leaves, plus annotated request
/// spans. Covers every op of the merged timeline exactly once (pinned by
/// `tests/telemetry_spans.rs`).
pub fn span_tree(report: &ServeReport) -> SpanTree {
    let groups: Vec<GroupMeta> = report
        .group_info
        .iter()
        .map(|g| {
            let mut attrs = vec![
                ("n".to_string(), g.key.n.to_string()),
                ("k".to_string(), g.key.k.to_string()),
                (
                    "variant".to_string(),
                    variant_label(g.key.variant).to_string(),
                ),
                ("qos".to_string(), g.key.qos.label().to_string()),
                ("backend".to_string(), g.key.backend.label().to_string()),
            ];
            if g.short_circuit {
                attrs.push(("short_circuit".to_string(), "true".to_string()));
            }
            if g.hedged {
                attrs.push(("hedged".to_string(), "true".to_string()));
            }
            // Fleet reports say which member executed the group
            // (`device` is always None outside the fleet path, so
            // non-fleet span trees are byte-identical to before).
            if let Some(m) = g.device {
                attrs.push(("device".to_string(), m.to_string()));
            }
            GroupMeta {
                gid: g.gid,
                label: format!(
                    "group {} (n={}, k={}, {}, {}, {})",
                    g.gid,
                    g.key.n,
                    g.key.k,
                    variant_label(g.key.variant),
                    g.key.qos.label(),
                    g.key.backend.label()
                ),
                members: g.indices.clone(),
                attrs,
            }
        })
        .collect();

    let mut gid_of_request: Vec<Option<usize>> = vec![None; report.outcomes.len()];
    for g in &report.group_info {
        for &idx in &g.indices {
            gid_of_request[idx] = Some(g.gid);
        }
    }

    let requests: Vec<RequestMeta> = report
        .outcomes
        .iter()
        .enumerate()
        .map(|(index, o)| RequestMeta {
            index,
            outcome: outcome_label(o).to_string(),
            path: o.response().map(|r| r.path.label().to_string()),
            qos: o.response().map(|r| r.qos.label().to_string()),
            arrival: report.arrivals.get(index).copied(),
            gid: gid_of_request[index],
        })
        .collect();

    build_span_tree(
        &report.timeline.ops,
        &report.timeline.sched,
        &groups,
        &requests,
    )
}

/// Builds the metrics registry for a serve call: request/served-path
/// outcomes, plan-cache counters, fault tallies by class, breaker
/// activity, overload admission counters, stream occupancy, and the
/// per-(path, QoS) latency histograms.
pub fn metrics_registry(report: &ServeReport) -> Registry {
    let mut r = Registry::new();

    // Fleet reports label served requests with the member that executed
    // them (`<id>/<spec>`, or `cpu` for CPU-tier groups). Non-fleet
    // reports have no devices and keep the legacy label set, so their
    // exports stay byte-identical.
    let device_of_request: Vec<Option<String>> = if report.devices.is_empty() {
        vec![None; report.outcomes.len()]
    } else {
        let mut by_request = vec![None; report.outcomes.len()];
        for g in &report.group_info {
            let label = match g.device {
                Some(m) => format!("{}/{}", m, report.devices[m].spec_name),
                None => "cpu".to_string(),
            };
            for &idx in &g.indices {
                by_request[idx] = Some(label.clone());
            }
        }
        by_request
    };

    // Request outcomes and served paths.
    for (idx, o) in report.outcomes.iter().enumerate() {
        r.counter_add(
            "cusfft_requests_total",
            "Requests by terminal outcome",
            &[("outcome", outcome_label(o))],
            1,
        );
        if let Some(resp) = o.response() {
            let help = "Completed requests by execution path, QoS tier and backend";
            let mut labels = vec![
                ("path", resp.path.label()),
                ("qos", resp.qos.label()),
                ("backend", resp.backend.label()),
            ];
            // Audited reports carry the derived terminal cause; gating
            // on presence keeps unaudited exports byte-identical.
            if let Some(audit) = report.audit.as_deref() {
                labels.push(("cause", audit.causes[idx].as_str()));
            }
            if let Some(device) = &device_of_request[idx] {
                labels.push(("device", device));
            }
            r.counter_add("cusfft_served_total", help, &labels, 1);
        }
    }

    // Fleet routing/failover counters, gated on the fleet path so
    // non-fleet registries are unchanged.
    if !report.devices.is_empty() {
        let fl = &report.fleet;
        let fleet_help = "Fleet routing and failure-lifecycle events";
        for (kind, value) in [
            ("routed_group", fl.routed_groups),
            ("failover", fl.failovers),
            ("device_loss", fl.device_losses),
            ("drain", fl.drains),
            ("drain_probe", fl.drain_probes),
            ("brownout_group", fl.brownout_groups),
            ("cpu_served_group", fl.cpu_served_groups),
            ("standby_acquire", fl.standby_acquires),
            ("standby_exhausted", fl.standby_exhausted),
        ] {
            r.counter_add("cusfft_fleet_events_total", fleet_help, &[("kind", kind)], value);
        }
        for d in &report.devices {
            let device = format!("{}/{}", d.id, d.spec_name);
            let labels = [("device", device.as_str())];
            r.counter_add(
                "cusfft_fleet_device_groups_total",
                "Groups executed per fleet member",
                &labels,
                d.groups,
            );
            r.counter_add(
                "cusfft_fleet_device_failovers_in_total",
                "Failover groups absorbed per fleet member",
                &labels,
                d.failovers_in,
            );
            r.counter_add(
                "cusfft_fleet_device_trips_total",
                "Breaker trips per fleet member",
                &labels,
                d.trips,
            );
            r.gauge_set(
                "cusfft_fleet_device_health",
                "Fault-severity health score per fleet member (1 = clean)",
                &labels,
                d.health,
            );
            r.gauge_set(
                "cusfft_fleet_device_busy_seconds",
                "Virtual-clock busy time per fleet member",
                &labels,
                d.busy,
            );
            r.gauge_set(
                "cusfft_fleet_device_lost",
                "Whether the member went dark this call",
                &labels,
                if d.lost { 1.0 } else { 0.0 },
            );
            r.gauge_set(
                "cusfft_fleet_device_drained",
                "Whether the member ended the call quarantined",
                &labels,
                if d.drained { 1.0 } else { 0.0 },
            );
        }
    }

    // Journal/recovery counters, gated on the journaled paths so
    // non-journal registries (and their goldens) are unchanged.
    if let Some(j) = &report.journal {
        let journal_help = "Request-journal write-ahead log and recovery events";
        for (kind, value) in [
            ("record_appended", j.records_appended),
            ("checkpoint", j.checkpoints),
            ("group_executed", j.groups_executed),
            ("group_recovered", j.groups_recovered),
            ("request_recovered", j.requests_recovered),
        ] {
            r.counter_add(
                "cusfft_journal_events_total",
                journal_help,
                &[("kind", kind)],
                value,
            );
        }
        r.gauge_set(
            "cusfft_journal_durable_bytes",
            "Durable journal size after the call",
            &[],
            j.durable_bytes as f64,
        );
    }

    // Flight-recorder and SLO series, gated on the audit report so
    // unaudited registries (and their goldens) are unchanged.
    if let Some(audit) = report.audit.as_deref() {
        let mut by_kind: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for e in &audit.log.events {
            *by_kind.entry(e.name.as_str()).or_insert(0) += 1;
        }
        for (kind, count) in by_kind {
            r.counter_add(
                "cusfft_audit_events_total",
                "Flight-recorder decision events by kind",
                &[("kind", kind)],
                count,
            );
        }
        r.gauge_set(
            "cusfft_slo_availability",
            "Fraction of terminated requests that produced a response",
            &[],
            audit.slo.availability,
        );
        r.gauge_set(
            "cusfft_slo_latency_attainment",
            "Fraction of responses meeting the latency objective",
            &[],
            audit.slo.latency_attainment,
        );
        for alert in &audit.slo.alerts {
            r.counter_add(
                "cusfft_slo_alerts_total",
                "Multi-window burn-rate alerts fired",
                &[("slo", &alert.slo), ("window", &alert.window)],
                1,
            );
        }
    }

    // Plan cache.
    let cache_help = "Plan cache counters";
    r.counter_add("cusfft_plan_cache_hits_total", cache_help, &[], report.cache.hits);
    r.counter_add(
        "cusfft_plan_cache_misses_total",
        cache_help,
        &[],
        report.cache.misses,
    );
    r.counter_add(
        "cusfft_plan_cache_evictions_total",
        cache_help,
        &[],
        report.cache.evictions,
    );
    r.gauge_set(
        "cusfft_plan_cache_entries",
        "Plans resident in the cache",
        &[],
        report.cache.len as f64,
    );

    // Faults by class, counted off the timeline's injected-fault ops.
    for op in &report.timeline.ops {
        if let Some(rest) = op.label.strip_prefix("fault:") {
            let class = rest.split(':').next().unwrap_or("unknown");
            r.counter_add(
                "cusfft_faults_injected_total",
                "Injected faults by class, from the merged timeline",
                &[("class", class)],
                1,
            );
        }
    }

    // Recovery tallies.
    let rec_help = "Fault-recovery actions";
    let f = &report.faults;
    r.counter_add("cusfft_recovery_total", rec_help, &[("kind", "retry")], f.retries);
    r.counter_add(
        "cusfft_recovery_total",
        rec_help,
        &[("kind", "eviction")],
        f.evictions,
    );
    r.counter_add(
        "cusfft_recovery_total",
        rec_help,
        &[("kind", "cpu_fallback")],
        f.cpu_fallbacks,
    );
    r.counter_add(
        "cusfft_recovery_total",
        rec_help,
        &[("kind", "worker_panic")],
        f.worker_panics,
    );
    r.counter_add(
        "cusfft_sdc_detected_total",
        "Silent corruptions caught by the residual check",
        &[],
        f.sdc_detected,
    );

    // Breaker.
    for tr in &report.breaker {
        r.counter_add(
            "cusfft_breaker_transitions_total",
            "Circuit-breaker state transitions",
            &[("from", tr.from.label()), ("to", tr.to.label())],
            1,
        );
    }
    let ov = &report.overload;
    r.counter_add(
        "cusfft_breaker_trips_total",
        "Times the breaker tripped open",
        &[],
        ov.breaker_trips,
    );
    r.counter_add(
        "cusfft_breaker_probes_total",
        "HalfOpen probe groups admitted",
        &[],
        ov.breaker_probes,
    );
    r.counter_add(
        "cusfft_breaker_short_circuits_total",
        "Requests short-circuited past the device",
        &[],
        ov.breaker_short_circuits,
    );

    // Overload admission.
    let adm_help = "Admission decisions";
    r.counter_add("cusfft_admission_total", adm_help, &[("decision", "admitted")], ov.admitted);
    r.counter_add("cusfft_admission_total", adm_help, &[("decision", "shed")], ov.shed);
    r.counter_add(
        "cusfft_admission_total",
        adm_help,
        &[("decision", "deadline_exceeded")],
        ov.deadline_exceeded,
    );
    r.counter_add(
        "cusfft_degraded_total",
        "Requests served at brownout QoS",
        &[],
        ov.degraded,
    );
    r.counter_add("cusfft_hedges_total", "Straggler hedges launched", &[], ov.hedges);
    r.counter_add(
        "cusfft_hedge_wins_total",
        "Hedged duplicates that beat their primary",
        &[],
        ov.hedge_wins,
    );
    r.gauge_set(
        "cusfft_queue_depth_peak",
        "Highest predicted queue depth at any arrival",
        &[],
        ov.peak_queue_depth as f64,
    );

    // Timeline shape.
    r.gauge_set(
        "cusfft_makespan_seconds",
        "Simulated makespan of the merged timeline",
        &[],
        report.makespan,
    );
    r.gauge_set(
        "cusfft_throughput_rps",
        "Completed requests per simulated second",
        &[],
        report.throughput,
    );
    r.gauge_set(
        "cusfft_groups",
        "Plan-key groups the call split into",
        &[],
        report.groups as f64,
    );
    r.gauge_set(
        "cusfft_streams",
        "Streams in the merged timeline",
        &[],
        report.concurrency.per_stream.len() as f64,
    );
    r.gauge_set(
        "cusfft_max_concurrent_streams",
        "Maximum simultaneously occupied streams",
        &[],
        report.concurrency.max_concurrent_streams as f64,
    );
    r.gauge_set(
        "cusfft_avg_concurrent_streams",
        "Time-averaged occupied streams",
        &[],
        report.concurrency.avg_concurrent_streams,
    );
    for s in &report.concurrency.per_stream {
        let id = s.stream.0.to_string();
        r.gauge_set(
            "cusfft_stream_busy_seconds",
            "Per-stream busy time",
            &[("stream", &id)],
            s.busy,
        );
        r.gauge_set(
            "cusfft_stream_utilisation",
            "Per-stream busy fraction of the makespan",
            &[("stream", &id)],
            s.utilisation,
        );
    }

    // Per-kernel modeled execution totals.
    for kr in &report.kernels {
        r.counter_add(
            "cusfft_kernel_launches_total",
            "Kernel/transfer launches by name",
            &[("kernel", &kr.name)],
            kr.launches,
        );
        r.gauge_set(
            "cusfft_kernel_transactions_total",
            "Summed modeled DRAM transactions by kernel",
            &[("kernel", &kr.name)],
            kr.transactions,
        );
        r.gauge_set(
            "cusfft_kernel_dram_bytes_total",
            "Summed modeled DRAM bytes by kernel",
            &[("kernel", &kr.name)],
            kr.dram_bytes,
        );
    }

    // Device memory-pool and arena traffic. In steady state the alloc
    // counter stays at each group's warmup cost; per-request traffic is
    // pure reuse.
    let pool_help = "Tracked MemPool operations";
    r.counter_add(
        "cusfft_pool_ops_total",
        pool_help,
        &[("op", "alloc")],
        report.pool.alloc_ops,
    );
    r.counter_add(
        "cusfft_pool_ops_total",
        pool_help,
        &[("op", "release")],
        report.pool.release_ops,
    );
    let arena_help = "Arena buffer acquisitions by result";
    r.counter_add(
        "cusfft_pool_requests_total",
        arena_help,
        &[("result", "hit")],
        report.pool.reuse_hits,
    );
    r.counter_add(
        "cusfft_pool_requests_total",
        arena_help,
        &[("result", "miss")],
        report.pool.fresh_misses,
    );

    // Latency histograms per (path, QoS).
    for pl in &report.path_latency {
        r.observe_hist(
            "cusfft_request_latency_seconds",
            "Simulated request latency by path and QoS tier",
            &[("path", pl.path.label()), ("qos", pl.qos.label())],
            &pl.hist,
        );
    }

    r
}

/// Renders the Chrome/Perfetto Trace Event JSON for a serve call (see
/// [`cusfft_telemetry::chrome`] for the track layout). Audited reports
/// gain a "policy decisions" process carrying breaker transitions and
/// SLO burn-rate alerts as instant events; unaudited output is
/// byte-identical to before.
pub fn chrome_trace_json(report: &ServeReport) -> String {
    let tree = span_tree(report);
    let notes = report
        .audit
        .as_deref()
        .map(trace_annotations)
        .unwrap_or_default();
    chrome_trace_annotated(&report.timeline.ops, &report.timeline.sched, &tree, &notes)
}

fn trace_annotations(audit: &crate::audit::AuditReport) -> Vec<TraceAnnotation> {
    let mut notes = Vec::new();
    for e in &audit.log.events {
        if e.name != "breaker_transition" {
            continue;
        }
        let attr = |key: &str| {
            e.attrs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .unwrap_or("?")
        };
        notes.push(TraceAnnotation {
            ts: e.ts,
            name: format!("breaker:{}->{}", attr("from"), attr("to")),
            cat: "breaker".into(),
            args: e.attrs.clone(),
        });
    }
    for alert in &audit.slo.alerts {
        notes.push(TraceAnnotation {
            ts: alert.ts,
            name: format!("slo_alert:{}", alert.slo),
            cat: "slo".into(),
            args: vec![
                ("slo".into(), alert.slo.clone()),
                ("window".into(), alert.window.clone()),
                ("long_burn".into(), fmt_f64(alert.long_burn)),
                ("short_burn".into(), fmt_f64(alert.short_burn)),
                ("threshold".into(), fmt_f64(alert.threshold)),
            ],
        });
    }
    notes
}
