//! Per-worker execution arena: the typed buffer pools behind
//! allocation-free steady-state serving.
//!
//! Every device-resident scratch buffer the pipeline acquires per request
//! — bucket rows, async staging chunks, magnitude vectors, reconstruction
//! values, comb masks, request signals — goes through one of these pools.
//! The first request of a group populates them (ordinary tracked
//! allocations, charged against the device `MemPool` and subject to the
//! allocation fault gate); subsequent same-shape acquisitions are free-list
//! hits with **zero** `MemPool` traffic and no fault gate, which is the
//! invariant `tests/steady_state_alloc.rs` pins via `MemPool::alloc_ops`.
//!
//! Determinism: the serving layer calls [`ExecArena::reset`] at every
//! group boundary, so a group's hit/miss pattern (and therefore its fault
//! ordinal sequence) is a pure function of the group itself — never of
//! which worker ran it or what ran before on the same worker. Reports stay
//! bit-identical across worker counts and pool widths.

use fft::cplx::Cplx;
use gpu_sim::{BufferPool, BufferPoolStats};

/// The typed buffer pools one worker (or one single-shot execution)
/// recycles across `prepare`/`run_batched_ffts`/`finish`.
#[derive(Debug, Clone, Default)]
pub struct ExecArena {
    /// Complex scratch: request signals, bucket rows, async staging
    /// chunks and partials, reconstruction values.
    pub cplx: BufferPool<Cplx>,
    /// Real scratch: bucket magnitude vectors.
    pub f64s: BufferPool<f64>,
    /// Byte scratch: comb residue masks.
    pub bytes: BufferPool<u8>,
}

/// Aggregated hit/miss counters across an arena's pools.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Acquisitions satisfied from a free list.
    pub reuse_hits: u64,
    /// Acquisitions that fell through to a fresh tracked allocation.
    pub fresh_misses: u64,
}

impl ArenaStats {
    fn add(&mut self, s: BufferPoolStats) {
        self.reuse_hits += s.reuse_hits;
        self.fresh_misses += s.fresh_misses;
    }
}

impl ExecArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every idle buffer in every pool (their `MemPool`
    /// reservations are released). Called at group boundaries so pool
    /// state never leaks across groups.
    pub fn reset(&self) {
        self.cplx.clear();
        self.f64s.clear();
        self.bytes.clear();
    }

    /// Cumulative hit/miss counters summed over the typed pools.
    pub fn stats(&self) -> ArenaStats {
        let mut s = ArenaStats::default();
        s.add(self.cplx.stats());
        s.add(self.f64s.stats());
        s.add(self.bytes.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, GpuDevice, DEFAULT_STREAM};

    #[test]
    fn arena_stats_aggregate_across_typed_pools() {
        let device = GpuDevice::new(DeviceSpec::test_tiny());
        let arena = ExecArena::new();
        let a = device
            .try_alloc_zeroed_pooled(&arena.cplx, 16, DEFAULT_STREAM)
            .unwrap();
        drop(a);
        let _b = device
            .try_alloc_zeroed_pooled(&arena.cplx, 16, DEFAULT_STREAM)
            .unwrap();
        let _c = device
            .try_alloc_zeroed_pooled(&arena.f64s, 8, DEFAULT_STREAM)
            .unwrap();
        assert_eq!(
            arena.stats(),
            ArenaStats {
                reuse_hits: 1,
                fresh_misses: 2,
            }
        );
        arena.reset();
        assert_eq!(arena.cplx.idle(), 0);
    }
}
