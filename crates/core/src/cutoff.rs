//! GPU cutoff (Step 4): baseline sort&select (Algorithm 3, Thrust) and
//! the optimized fast k-selection (Algorithm 6).

use fft::cplx::Cplx;
use gpu_sim::{
    BufferPool, DevAtomicU32, DeviceBuffer, GpuDevice, GpuError, LaunchConfig, PooledBuffer,
    StreamId,
};

const BLOCK: u32 = 256;

/// The `|Z[b]|²` kernel both cutoff variants share.
fn magnitude_kernel(
    device: &GpuDevice,
    buckets: &DeviceBuffer<Cplx>,
    mags: &mut DeviceBuffer<f64>,
    stream: StreamId,
) -> Result<(), GpuError> {
    let cfg = LaunchConfig::for_elements(buckets.len(), BLOCK);
    device.try_launch_map("magnitude", cfg, stream, mags, |ctx, gm| {
        let z = gm.ld(buckets, ctx.global_id());
        gm.flops(3);
        z.norm_sqr()
    })
}

/// Computes `|Z[b]|²` on the device (the magnitude kernel both cutoff
/// variants share) and returns the device buffer. Fails with a typed
/// device error on an injected allocation or launch fault.
pub fn magnitudes_device(
    device: &GpuDevice,
    buckets: &DeviceBuffer<Cplx>,
    stream: StreamId,
) -> Result<DeviceBuffer<f64>, GpuError> {
    let mut mags: DeviceBuffer<f64> = device.try_alloc_zeroed(buckets.len(), stream)?;
    magnitude_kernel(device, buckets, &mut mags, stream)?;
    Ok(mags)
}

/// [`magnitudes_device`] with the output buffer drawn from a pool: in
/// steady state (a pooled buffer of the right length is idle) this costs
/// no `MemPool` traffic and rolls no allocation fault gate.
pub fn magnitudes_device_pooled(
    device: &GpuDevice,
    pool: &BufferPool<f64>,
    buckets: &DeviceBuffer<Cplx>,
    stream: StreamId,
) -> Result<PooledBuffer<f64>, GpuError> {
    let mut mags = device.try_alloc_zeroed_pooled(pool, buckets.len(), stream)?;
    magnitude_kernel(device, buckets, &mut mags, stream)?;
    Ok(mags)
}

/// Modelled duration of a Thrust radix sort-by-key over `b` elements
/// (8-bit digits over 64-bit keys: 8 passes, each streaming key+value).
fn thrust_sort_model_time(device: &GpuDevice, b: usize) -> f64 {
    let spec = device.spec();
    let passes = 8.0;
    let bytes = (b * (8 + 4)) as f64 * 2.0 * passes;
    // Thrust launches several kernels per pass (histogram, scan, scatter).
    spec.launch_overhead_us * 1e-6 * passes * 3.0 + bytes / spec.effective_bandwidth()
}

/// Baseline cutoff: sort & select (Algorithm 3). Returns the indices of
/// the `num` largest-magnitude buckets, charging a modelled Thrust sort.
pub fn sort_select_device(
    device: &GpuDevice,
    mags: &DeviceBuffer<f64>,
    num: usize,
    stream: StreamId,
) -> Result<Vec<usize>, GpuError> {
    device.try_charge_device_op(
        "cutoff_sort",
        thrust_sort_model_time(device, mags.len()),
        stream,
    )?;
    Ok(kselect::sort_select(mags.as_slice(), num))
}

/// Optimized cutoff: fast k-selection (Algorithm 6). One pass over the
/// magnitudes; every element at or above `threshold` is appended through
/// an atomic cursor. Returns the selected indices (sorted, for
/// determinism — real CUDA output order depends on warp scheduling).
pub fn fast_select_device(
    device: &GpuDevice,
    mags: &DeviceBuffer<f64>,
    threshold: f64,
    stream: StreamId,
) -> Result<Vec<usize>, GpuError> {
    let b = mags.len();
    let out = DevAtomicU32::zeroed(b);
    let cursor = DevAtomicU32::zeroed(1);
    let cfg = LaunchConfig::for_elements(b, BLOCK);
    device.try_launch_foreach("cutoff_select", cfg, stream, |ctx, gm| {
        let tid = ctx.global_id();
        if tid >= b {
            return;
        }
        let v = gm.ld(mags, tid);
        if v >= threshold {
            let slot = cursor.fetch_add(gm, 0, 1) as usize;
            out.store(gm, slot, tid as u32);
        }
    })?;
    let count = cursor.snapshot()[0] as usize;
    let mut sel: Vec<usize> = out.snapshot()[..count].iter().map(|&v| v as usize).collect();
    sel.sort_unstable();
    Ok(sel)
}

/// Chooses the fast-selection threshold from the bucket magnitudes: a
/// sampled noise-floor median times a safety factor (see
/// `kselect::threshold`). Charged as a small sampling kernel.
pub fn noise_threshold_device(
    device: &GpuDevice,
    mags: &DeviceBuffer<f64>,
    factor: f64,
    stream: StreamId,
) -> Result<f64, GpuError> {
    let spec = device.spec();
    device.try_charge_device_op(
        "noise_floor",
        spec.launch_overhead_us * 1e-6 + (512.0 * 8.0) / spec.effective_bandwidth(),
        stream,
    )?;
    Ok(kselect::noise_floor_threshold(mags.as_slice(), 512, factor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft::cplx::ZERO;
    use gpu_sim::{DeviceSpec, DEFAULT_STREAM};

    fn device() -> GpuDevice {
        GpuDevice::new(DeviceSpec::tesla_k20x())
    }

    fn spiky_buckets(b: usize, spikes: &[usize]) -> DeviceBuffer<Cplx> {
        let mut v = vec![ZERO; b];
        for (rank, &i) in spikes.iter().enumerate() {
            v[i] = Cplx::new(10.0 + rank as f64, -3.0);
        }
        for (i, slot) in v.iter_mut().enumerate() {
            if slot.abs() == 0.0 {
                *slot = Cplx::new(1e-7 * ((i % 13) as f64), 0.0);
            }
        }
        DeviceBuffer::from_host(&v)
    }

    #[test]
    fn magnitude_kernel_computes_norm_sqr() {
        let dev = device();
        let buckets = DeviceBuffer::from_host(&[Cplx::new(3.0, 4.0), Cplx::new(1.0, -1.0)]);
        let mags = magnitudes_device(&dev, &buckets, DEFAULT_STREAM).unwrap();
        let host = mags.peek();
        assert!((host[0] - 25.0).abs() < 1e-12);
        assert!((host[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sort_and_fast_select_agree_on_clear_spikes() {
        let dev = device();
        let spikes = [5usize, 100, 731, 1023];
        let buckets = spiky_buckets(2048, &spikes);
        let mags = magnitudes_device(&dev, &buckets, DEFAULT_STREAM).unwrap();

        let mut by_sort = sort_select_device(&dev, &mags, 4, DEFAULT_STREAM).unwrap();
        by_sort.sort_unstable();
        let thresh = noise_threshold_device(&dev, &mags, 16.0, DEFAULT_STREAM).unwrap();
        let by_fast = fast_select_device(&dev, &mags, thresh, DEFAULT_STREAM).unwrap();

        assert_eq!(by_sort, spikes.to_vec());
        assert_eq!(by_fast, spikes.to_vec());
    }

    #[test]
    fn fast_select_is_cheaper_than_sort_on_device_clock() {
        let dev = device();
        let buckets = spiky_buckets(1 << 14, &[3, 9999]);
        let mags = magnitudes_device(&dev, &buckets, DEFAULT_STREAM).unwrap();
        dev.reset_clock();
        let _ = sort_select_device(&dev, &mags, 2, DEFAULT_STREAM);
        let t_sort = dev.elapsed();
        dev.reset_clock();
        let _ = fast_select_device(&dev, &mags, 1.0, DEFAULT_STREAM);
        let t_fast = dev.elapsed();
        assert!(
            t_fast < t_sort,
            "fast select {t_fast:.2e}s must beat sort {t_sort:.2e}s"
        );
    }

    #[test]
    fn fast_select_with_low_threshold_returns_superset() {
        let dev = device();
        let buckets = spiky_buckets(256, &[7, 13]);
        let mags = magnitudes_device(&dev, &buckets, DEFAULT_STREAM).unwrap();
        let sel = fast_select_device(&dev, &mags, 0.0, DEFAULT_STREAM).unwrap();
        assert_eq!(sel.len(), 256, "threshold 0 selects everything");
    }

    #[test]
    fn empty_selection_when_threshold_too_high() {
        let dev = device();
        let buckets = spiky_buckets(128, &[3]);
        let mags = magnitudes_device(&dev, &buckets, DEFAULT_STREAM).unwrap();
        let sel = fast_select_device(&dev, &mags, 1e12, DEFAULT_STREAM).unwrap();
        assert!(sel.is_empty());
    }
}
