//! `cusfft::chaos` — a deterministic chaos explorer for the serving
//! stack.
//!
//! FoundationDB-style testing, third layer: the fault plan makes device
//! failures deterministic, the journal makes host crashes recoverable —
//! this module *searches* that combined failure space. A
//! [`ChaosSchedule`] names one fully reproducible adversity scenario
//! (fault seed, per-class rate vector, an injected host-crash epoch, an
//! optional fleet device-loss rate, worker count, batch size, epoch
//! granularity). [`explore`] runs every schedule in a [`ChaosSpace`]
//! end-to-end through the serve/journal/fleet paths and checks a
//! reusable invariant suite:
//!
//! 1. **Outcome bijection** ([`check_outcome_bijection`]) — every
//!    submitted request resolves to exactly one outcome, and the plan
//!    groups partition the request indices (nothing lost, nothing
//!    double-served).
//! 2. **Oracle integrity** — every full-QoS response's recovered
//!    spectrum matches the dense-FFT oracle within the backend bound;
//!    a miss means a silently corrupted result was *served*, the one
//!    failure the stack must never produce.
//! 3. **Recovery invisibility** — killing the host at the scheduled
//!    epoch and resuming from the journal yields outcomes exactly equal
//!    to the uninterrupted run's.
//! 4. **Worker invariance** — the outcome vector is identical under a
//!    different worker count (the fault-scope determinism contract).
//! 5. **Replay stability** — fleet runs repeat bit-identically.
//!
//! On a violation, [`shrink`] greedily minimizes the schedule — drop
//! the crash, drop the device loss, zero rate classes, halve the batch,
//! collapse workers/epochs — re-running after each step and keeping
//! only changes that still fail. The minimal schedule round-trips
//! through JSON ([`ChaosSchedule::to_json`] / [`ChaosSchedule::from_json`])
//! so CI can attach it as a replayable artifact.
//!
//! Everything is a pure function of the schedule: no wall clock, no OS
//! randomness, so a violation found anywhere reproduces everywhere.

use gpu_sim::{CrashPlan, FaultClass, FaultConfig, FaultRates};

use crate::backend::ORACLE_BOUND_SFFT;
use crate::error::CusFftError;
use crate::fleet::{DeviceFleet, FleetConfig};
use crate::journal::{Journal, JournalOptions, JournalRun};
use crate::pipeline::Variant;
use crate::plan_cache::ServeQos;
use crate::serve::{RequestOutcome, ServeConfig, ServeEngine, ServeReport, ServeRequest};
use gpu_sim::DeviceSpec;
use signal::{MagnitudeModel, SparseSignal};

// ---------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------

/// One fully deterministic adversity scenario. Running the same
/// schedule twice — on any machine — produces bit-identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// Seed of the device fault plan.
    pub fault_seed: u64,
    /// Per-class injection rates.
    pub rates: FaultRates,
    /// Host-crash epoch for the journaled path (`None`: never crash).
    pub crash_epoch: Option<u64>,
    /// Fleet device-loss rate; `Some` routes the schedule through
    /// [`DeviceFleet::serve`] instead of the journaled engine path.
    pub device_loss: Option<f64>,
    /// Serve workers.
    pub workers: usize,
    /// Requests in the batch.
    pub requests: usize,
    /// Plan groups per journal/routing epoch.
    pub epoch_groups: usize,
}

impl Default for ChaosSchedule {
    fn default() -> Self {
        ChaosSchedule {
            fault_seed: 1,
            rates: FaultRates::zero(),
            crash_epoch: None,
            device_loss: None,
            workers: 2,
            requests: 5,
            epoch_groups: 1,
        }
    }
}

impl ChaosSchedule {
    /// Serializes to a replayable JSON object (only non-zero rates are
    /// emitted; floats use Rust's shortest round-trip formatting).
    pub fn to_json(&self) -> String {
        let mut rates = String::new();
        for class in FaultClass::ALL {
            let r = self.rates.get(class);
            if r > 0.0 {
                if !rates.is_empty() {
                    rates.push_str(", ");
                }
                rates.push_str(&format!("\"{}\": {}", class.label(), r));
            }
        }
        let crash = match self.crash_epoch {
            Some(e) => e.to_string(),
            None => "null".into(),
        };
        let loss = match self.device_loss {
            Some(l) => l.to_string(),
            None => "null".into(),
        };
        format!(
            "{{\"fault_seed\": {}, \"rates\": {{{}}}, \"crash_epoch\": {}, \
             \"device_loss\": {}, \"workers\": {}, \"requests\": {}, \"epoch_groups\": {}}}",
            self.fault_seed, rates, crash, loss, self.workers, self.requests, self.epoch_groups
        )
    }

    /// Parses a schedule previously emitted by [`ChaosSchedule::to_json`].
    pub fn from_json(text: &str) -> Result<Self, CusFftError> {
        let bad = |reason: String| CusFftError::BadConfig { reason };
        let v = cusfft_telemetry::parse_json(text)
            .map_err(|e| bad(format!("chaos schedule is not valid JSON: {e}")))?;
        let obj = v
            .as_object()
            .ok_or_else(|| bad("chaos schedule must be a JSON object".into()))?;
        let mut s = ChaosSchedule::default();
        let uint = |v: &cusfft_telemetry::JsonValue, key: &str| -> Result<u64, CusFftError> {
            let n = v
                .as_f64()
                .ok_or_else(|| bad(format!("field '{key}' must be a number")))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(bad(format!("field '{key}' must be a non-negative integer")));
            }
            Ok(n as u64)
        };
        for (key, val) in obj {
            match key.as_str() {
                "fault_seed" => s.fault_seed = uint(val, key)?,
                "workers" => s.workers = uint(val, key)? as usize,
                "requests" => s.requests = uint(val, key)? as usize,
                "epoch_groups" => s.epoch_groups = uint(val, key)? as usize,
                "crash_epoch" => {
                    s.crash_epoch = match val {
                        cusfft_telemetry::JsonValue::Null => None,
                        other => Some(uint(other, key)?),
                    }
                }
                "device_loss" => {
                    s.device_loss = match val {
                        cusfft_telemetry::JsonValue::Null => None,
                        other => Some(
                            other
                                .as_f64()
                                .ok_or_else(|| bad("field 'device_loss' must be a number".into()))?,
                        ),
                    }
                }
                "rates" => {
                    let pairs = val
                        .as_object()
                        .ok_or_else(|| bad("field 'rates' must be an object".into()))?;
                    let mut rates = FaultRates::zero();
                    for (label, rate) in pairs {
                        let class = FaultClass::ALL
                            .into_iter()
                            .find(|c| c.label() == label)
                            .ok_or_else(|| bad(format!("unknown fault class '{label}'")))?;
                        let r = rate
                            .as_f64()
                            .ok_or_else(|| bad(format!("rate '{label}' must be a number")))?;
                        rates.set(class, r);
                    }
                    s.rates = rates;
                }
                other => return Err(bad(format!("unknown schedule field '{other}'"))),
            }
        }
        if s.workers == 0 || s.epoch_groups == 0 {
            return Err(bad("workers and epoch_groups must be at least 1".into()));
        }
        Ok(s)
    }
}

/// A deterministic enumeration of schedules to explore.
#[derive(Debug, Clone)]
pub struct ChaosSpace {
    /// The schedules, in exploration order.
    pub schedules: Vec<ChaosSchedule>,
}

/// The smoke/full schedule spaces. Both are deterministic enumerations:
/// fault seeds × rate patterns (uniform plus per-class one-hots, SDC
/// included) × injected crash epochs, plus a fleet slice sweeping
/// device-loss rates. The smoke space stays small enough for CI (every
/// schedule runs multiple end-to-end serves) while exceeding the
/// 50-schedule floor the acceptance criteria set.
pub fn chaos_space(smoke: bool) -> ChaosSpace {
    let seeds: &[u64] = if smoke { &[1, 7] } else { &[1, 7, 23] };
    let mut patterns: Vec<FaultRates> = vec![
        FaultRates::zero(),
        FaultRates::uniform(0.02),
        FaultRates::uniform(0.2),
        FaultRates::one_hot(FaultClass::Sdc, 0.3),
        FaultRates::one_hot(FaultClass::Launch, 0.5),
        FaultRates::one_hot(FaultClass::Alloc, 0.5),
        FaultRates::one_hot(FaultClass::Timeout, 0.3),
        FaultRates::one_hot(FaultClass::Ecc, 0.5),
        FaultRates::one_hot(FaultClass::H2d, 0.5),
        FaultRates::one_hot(FaultClass::D2h, 0.5),
    ];
    if !smoke {
        patterns.push(FaultRates::uniform(0.05));
        patterns.push(FaultRates::uniform(0.5));
        patterns.push(FaultRates::one_hot(FaultClass::Sdc, 0.8));
    }
    let crash_epochs: &[Option<u64>] = if smoke {
        &[None, Some(0), Some(1)]
    } else {
        &[None, Some(0), Some(1), Some(2)]
    };

    let mut schedules = Vec::new();
    for (si, &seed) in seeds.iter().enumerate() {
        for (pi, rates) in patterns.iter().enumerate() {
            for (ci, &crash) in crash_epochs.iter().enumerate() {
                // Vary geometry deterministically across the grid so the
                // space also covers worker/epoch shape without another
                // multiplicative axis.
                let twist = si + pi + ci;
                schedules.push(ChaosSchedule {
                    fault_seed: seed,
                    rates: *rates,
                    crash_epoch: crash,
                    device_loss: None,
                    workers: 1 + (twist % 2),
                    requests: if smoke { 5 } else { 8 },
                    epoch_groups: 1 + ((twist / 2) % 2),
                });
            }
        }
        // Fleet slice: device loss routed through failover, with and
        // without a background fault load.
        for &loss in &[0.3, 1.0] {
            for rates in [FaultRates::zero(), FaultRates::uniform(0.05)] {
                schedules.push(ChaosSchedule {
                    fault_seed: seed,
                    rates,
                    crash_epoch: None,
                    device_loss: Some(loss),
                    workers: 2,
                    requests: if smoke { 5 } else { 8 },
                    epoch_groups: 2,
                });
            }
        }
    }
    ChaosSpace { schedules }
}

// ---------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------

/// A checked invariant that did not hold for a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// The outcome vector is not a bijection with the submitted
    /// request ids, or the plan groups do not partition them.
    OutcomeBijection {
        /// What broke, precisely.
        detail: String,
    },
    /// A served full-QoS spectrum disagrees with the dense-FFT oracle —
    /// a silent corruption escaped into a response.
    SilentCorruption {
        /// Submission index of the corrupted response.
        request: usize,
        /// Worst per-coefficient deviation from the oracle.
        deviation: f64,
        /// The bound it had to stay within.
        bound: f64,
    },
    /// Crash + resume produced different outcomes than the
    /// uninterrupted run — recovery was visible.
    RecoveryVisible {
        /// What differed.
        detail: String,
    },
    /// A different worker count changed the outcome vector.
    WorkerVariance {
        /// The deviating worker count.
        workers: usize,
        /// What differed.
        detail: String,
    },
    /// The journal machinery itself failed (corrupt log, refused
    /// resume, unexpected crash state).
    JournalFault {
        /// The journal-layer error.
        detail: String,
    },
    /// A repeated fleet run was not bit-identical.
    ReplayUnstable {
        /// What differed.
        detail: String,
    },
    /// An audited run left a request without a complete decision chain
    /// (no admission root, no terminal, or a broken parent forest) —
    /// the flight recorder failed to explain an outcome.
    Unexplained {
        /// The request missing its explanation.
        request: usize,
        /// What was missing.
        detail: String,
    },
    /// A fired SLO alert could not be attributed to terminal audit
    /// events — an alarm with no evidence trail.
    UnattributableAlert {
        /// Which alert, precisely.
        detail: String,
    },
}

impl InvariantViolation {
    /// Stable snake_case label (JSON artifact key).
    pub fn label(&self) -> &'static str {
        match self {
            InvariantViolation::OutcomeBijection { .. } => "outcome_bijection",
            InvariantViolation::SilentCorruption { .. } => "silent_corruption",
            InvariantViolation::RecoveryVisible { .. } => "recovery_visible",
            InvariantViolation::WorkerVariance { .. } => "worker_variance",
            InvariantViolation::JournalFault { .. } => "journal_fault",
            InvariantViolation::ReplayUnstable { .. } => "replay_unstable",
            InvariantViolation::Unexplained { .. } => "unexplained",
            InvariantViolation::UnattributableAlert { .. } => "unattributable_alert",
        }
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::OutcomeBijection { detail } => {
                write!(f, "outcome bijection broken: {detail}")
            }
            InvariantViolation::SilentCorruption {
                request,
                deviation,
                bound,
            } => write!(
                f,
                "request {request}: served spectrum off oracle by {deviation:.3e} (bound {bound:.3e})"
            ),
            InvariantViolation::RecoveryVisible { detail } => {
                write!(f, "recovery visible: {detail}")
            }
            InvariantViolation::WorkerVariance { workers, detail } => {
                write!(f, "outcomes differ at {workers} workers: {detail}")
            }
            InvariantViolation::JournalFault { detail } => write!(f, "journal fault: {detail}"),
            InvariantViolation::ReplayUnstable { detail } => {
                write!(f, "replay unstable: {detail}")
            }
            InvariantViolation::Unexplained { request, detail } => {
                write!(f, "request {request} unexplained: {detail}")
            }
            InvariantViolation::UnattributableAlert { detail } => {
                write!(f, "SLO alert without audit evidence: {detail}")
            }
        }
    }
}

/// Checks the exactly-once shape of a report against the number of
/// submitted requests: one outcome per request, and the executed plan
/// groups reference each request index at most once, all in range.
/// Reused by the proptest suite (`tests/outcome_invariants.rs`) and
/// every chaos run.
pub fn check_outcome_bijection(submitted: usize, report: &ServeReport) -> Result<(), String> {
    if report.outcomes.len() != submitted {
        return Err(format!(
            "{} outcomes for {} submitted requests",
            report.outcomes.len(),
            submitted
        ));
    }
    let mut seen = vec![false; submitted];
    for g in &report.group_info {
        for &idx in &g.indices {
            if idx >= submitted {
                return Err(format!("group {} references request {idx} out of range", g.gid));
            }
            if seen[idx] {
                return Err(format!(
                    "request {idx} appears in more than one plan group"
                ));
            }
            seen[idx] = true;
        }
    }
    Ok(())
}

/// Worst per-coefficient deviation of a served spectrum from the dense
/// oracle of its own input signal (`None` when nothing was recovered).
fn oracle_deviation(req: &ServeRequest, recovered: &[(usize, fft::cplx::Cplx)]) -> Option<f64> {
    let dense = fft::Plan::new(req.time.len()).forward_coefficients(&req.time);
    recovered
        .iter()
        .map(|&(f, c)| {
            let d = dense[f] ;
            ((c.re - d.re).powi(2) + (c.im - d.im).powi(2)).sqrt()
        })
        .fold(None, |acc: Option<f64>, d| Some(acc.map_or(d, |a| a.max(d))))
}

fn check_oracle(
    requests: &[ServeRequest],
    report: &ServeReport,
    out: &mut Vec<InvariantViolation>,
) {
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let Some(resp) = outcome.response() else {
            continue;
        };
        // Degraded-QoS responses trade accuracy for survival by
        // contract; the oracle bound only binds full-QoS serving.
        if resp.qos != ServeQos::Full {
            continue;
        }
        if let Some(dev) = oracle_deviation(&requests[i], &resp.recovered) {
            if dev > ORACLE_BOUND_SFFT {
                out.push(InvariantViolation::SilentCorruption {
                    request: i,
                    deviation: dev,
                    bound: ORACLE_BOUND_SFFT,
                });
            }
        }
    }
}

/// First index where two outcome vectors differ, rendered for a
/// violation detail.
fn first_outcome_diff(a: &[RequestOutcome], b: &[RequestOutcome]) -> String {
    if a.len() != b.len() {
        return format!("{} vs {} outcomes", a.len(), b.len());
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            return format!("first divergence at request {i}");
        }
    }
    "no divergence".into()
}

// ---------------------------------------------------------------------
// Running one schedule
// ---------------------------------------------------------------------

/// Everything one schedule's end-to-end run produced.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The schedule that ran.
    pub schedule: ChaosSchedule,
    /// Violations found (empty: all invariants held).
    pub violations: Vec<InvariantViolation>,
    /// Individual invariant checks performed.
    pub invariants_checked: u64,
    /// Relative cost of crashing and recovering vs the uninterrupted
    /// run — `(wasted + resume) / uninterrupted − 1` over simulated
    /// makespans (`None` for schedules without a crash).
    pub recovery_overhead: Option<f64>,
}

/// Deterministic request batch for a schedule: alternating geometries so
/// every run exercises multiple plan groups, seeds derived from the
/// fault seed so distinct schedules explore distinct signals.
fn build_requests(s: &ChaosSchedule) -> Vec<ServeRequest> {
    (0..s.requests)
        .map(|i| {
            let n = 512usize << (i % 2);
            let k = 4;
            let sig = SparseSignal::generate(
                n,
                k,
                MagnitudeModel::Unit,
                s.fault_seed.wrapping_mul(1009).wrapping_add(i as u64),
            );
            ServeRequest::new(sig.time, k, Variant::Optimized, 31 + 3 * i as u64)
        })
        .collect()
}

fn serve_config(s: &ChaosSchedule, workers: usize) -> ServeConfig {
    let faults = if s.rates.is_zero() && s.device_loss.is_none() {
        None
    } else {
        let mut fc = FaultConfig::from_rates(s.fault_seed, s.rates);
        if let Some(loss) = s.device_loss {
            fc = fc.with_device_loss(loss);
        }
        Some(fc)
    };
    ServeConfig {
        workers,
        faults,
        // Every chaos run flies with the recorder on: the suite checks
        // that each outcome is explainable and each alert attributable.
        audit: true,
        ..ServeConfig::default()
    }
}

/// Checks the flight-recorder invariants on an audited report: the
/// event forest roots at admission events, every request's decision
/// chain is complete (admission root → terminal), and every fired SLO
/// alert names terminal events that exist in the log.
fn check_audit(
    submitted: usize,
    report: &ServeReport,
    violations: &mut Vec<InvariantViolation>,
    checked: &mut u64,
) {
    *checked += 1;
    let Some(audit) = report.audit.as_deref() else {
        violations.push(InvariantViolation::Unexplained {
            request: 0,
            detail: "audited run produced no audit report".into(),
        });
        return;
    };
    if let Err(detail) = audit.validate() {
        violations.push(InvariantViolation::Unexplained { request: 0, detail });
    }
    for r in 0..submitted {
        let complete = crate::audit::explain(report, r).is_some_and(|c| {
            !c.events.is_empty()
                && c.events.iter().any(|e| crate::audit::is_root_kind(&e.name))
                && c.events.iter().any(|e| e.name == "terminal")
        });
        if !complete {
            violations.push(InvariantViolation::Unexplained {
                request: r,
                detail: "decision chain missing admission root or terminal".into(),
            });
        }
    }
    *checked += 1;
    for alert in &audit.slo.alerts {
        let attributable = !alert.contributing.is_empty()
            && alert.contributing.iter().all(|&id| {
                audit
                    .log
                    .events
                    .get(id as usize)
                    .is_some_and(|e| e.name == "terminal")
            });
        if !attributable {
            violations.push(InvariantViolation::UnattributableAlert {
                detail: format!(
                    "{}:{} at ts {} cites {} events",
                    alert.slo,
                    alert.window,
                    alert.ts,
                    alert.contributing.len()
                ),
            });
        }
    }
}

/// Runs one schedule end-to-end and checks every applicable invariant.
/// Pure: same schedule, same outcome, everywhere.
pub fn run_schedule(s: &ChaosSchedule) -> ChaosOutcome {
    let mut violations = Vec::new();
    let mut checked = 0u64;
    let mut recovery_overhead = None;
    let requests = build_requests(s);

    if s.device_loss.is_some() {
        run_fleet_schedule(s, &requests, &mut violations, &mut checked);
    } else {
        run_engine_schedule(
            s,
            &requests,
            &mut violations,
            &mut checked,
            &mut recovery_overhead,
        );
    }

    ChaosOutcome {
        schedule: s.clone(),
        violations,
        invariants_checked: checked,
        recovery_overhead,
    }
}

fn run_engine_schedule(
    s: &ChaosSchedule,
    requests: &[ServeRequest],
    violations: &mut Vec<InvariantViolation>,
    checked: &mut u64,
    recovery_overhead: &mut Option<f64>,
) {
    let engine = |workers: usize| {
        ServeEngine::new(DeviceSpec::tesla_k20x(), serve_config(s, workers))
    };
    let opts = JournalOptions {
        epoch_groups: s.epoch_groups,
        crash: CrashPlan::never(),
    };

    // Uninterrupted journaled run — the reference every other run is
    // compared against.
    let base = match engine(s.workers) {
        Ok(e) => {
            match e
                .serve_journaled(requests, &mut Journal::new(), &opts)
                .into_report()
            {
                Ok(r) => r,
                Err(c) => {
                    violations.push(InvariantViolation::JournalFault {
                        detail: format!("unarmed run crashed at epoch {}", c.epoch),
                    });
                    return;
                }
            }
        }
        Err(e) => {
            violations.push(InvariantViolation::JournalFault {
                detail: format!("engine construction failed: {e}"),
            });
            return;
        }
    };

    *checked += 1;
    if let Err(detail) = check_outcome_bijection(requests.len(), &base) {
        violations.push(InvariantViolation::OutcomeBijection { detail });
    }
    *checked += 1;
    check_oracle(requests, &base, violations);
    check_audit(requests.len(), &base, violations, checked);

    // Worker invariance: a different worker count must not change a
    // single outcome.
    let alt_workers = if s.workers == 1 { 2 } else { 1 };
    if let Ok(alt_engine) = engine(alt_workers) {
        let alt = alt_engine.serve_batch(requests);
        *checked += 1;
        if alt.outcomes != base.outcomes {
            violations.push(InvariantViolation::WorkerVariance {
                workers: alt_workers,
                detail: first_outcome_diff(&base.outcomes, &alt.outcomes),
            });
        }
    }

    // Crash + resume: recovery must be invisible in the outcomes.
    let Some(crash_epoch) = s.crash_epoch else {
        return;
    };
    let crash_opts = JournalOptions {
        epoch_groups: s.epoch_groups,
        crash: CrashPlan::at_epoch(crash_epoch),
    };
    let (Ok(crash_engine), Ok(resume_engine)) = (engine(s.workers), engine(s.workers)) else {
        return;
    };
    let mut journal = Journal::new();
    match crash_engine.serve_journaled(requests, &mut journal, &crash_opts) {
        JournalRun::Completed(done) => {
            // The armed epoch was beyond the run — equivalent to an
            // uninterrupted run, which must match the reference.
            *checked += 1;
            if done.outcomes != base.outcomes {
                violations.push(InvariantViolation::RecoveryVisible {
                    detail: first_outcome_diff(&base.outcomes, &done.outcomes),
                });
            }
        }
        JournalRun::Crashed(crash) => {
            match resume_engine.resume_from(requests, &mut journal, &opts) {
                Ok(JournalRun::Completed(resumed)) => {
                    *checked += 1;
                    if resumed.outcomes != base.outcomes {
                        violations.push(InvariantViolation::RecoveryVisible {
                            detail: first_outcome_diff(&base.outcomes, &resumed.outcomes),
                        });
                    }
                    // The resumed run must explain every outcome too —
                    // including the ones it restored from the journal.
                    check_audit(requests.len(), &resumed, violations, checked);
                    if base.makespan > 0.0 {
                        *recovery_overhead = Some(
                            (crash.wasted_makespan + resumed.makespan) / base.makespan - 1.0,
                        );
                    }
                }
                Ok(JournalRun::Crashed(c)) => {
                    violations.push(InvariantViolation::JournalFault {
                        detail: format!("resume crashed at epoch {} without an armed plan", c.epoch),
                    });
                }
                Err(e) => {
                    violations.push(InvariantViolation::JournalFault {
                        detail: format!("resume refused its own journal: {e}"),
                    });
                }
            }
        }
    }
}

fn run_fleet_schedule(
    s: &ChaosSchedule,
    requests: &[ServeRequest],
    violations: &mut Vec<InvariantViolation>,
    checked: &mut u64,
) {
    let build = || {
        let fleet_cfg = FleetConfig {
            epoch_groups: s.epoch_groups,
            ..FleetConfig::heterogeneous()
        };
        DeviceFleet::new(fleet_cfg, serve_config(s, s.workers))
    };
    let fleet = match build() {
        Ok(f) => f,
        Err(e) => {
            violations.push(InvariantViolation::JournalFault {
                detail: format!("fleet construction failed: {e}"),
            });
            return;
        }
    };
    let report = fleet.serve(requests);

    *checked += 1;
    if let Err(detail) = check_outcome_bijection(requests.len(), &report) {
        violations.push(InvariantViolation::OutcomeBijection { detail });
    }
    *checked += 1;
    check_oracle(requests, &report, violations);
    check_audit(requests.len(), &report, violations, checked);

    // Replay stability: a fresh fleet over the same schedule must be
    // bit-identical.
    if let Ok(again) = build() {
        let replay = again.serve(requests);
        *checked += 1;
        if replay.outcomes != report.outcomes {
            violations.push(InvariantViolation::ReplayUnstable {
                detail: first_outcome_diff(&report.outcomes, &replay.outcomes),
            });
        }
        *checked += 1;
        if replay.audit != report.audit {
            violations.push(InvariantViolation::ReplayUnstable {
                detail: "audit reports differ between identical fleet runs".into(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Shrinking & exploration
// ---------------------------------------------------------------------

/// Simpler variants of `s`, most aggressive first.
fn shrink_candidates(s: &ChaosSchedule) -> Vec<ChaosSchedule> {
    let mut out = Vec::new();
    if s.crash_epoch.is_some() {
        out.push(ChaosSchedule {
            crash_epoch: None,
            ..s.clone()
        });
    }
    if s.device_loss.is_some() {
        out.push(ChaosSchedule {
            device_loss: None,
            ..s.clone()
        });
    }
    for class in FaultClass::ALL {
        if s.rates.get(class) > 0.0 {
            let mut rates = s.rates;
            rates.set(class, 0.0);
            out.push(ChaosSchedule { rates, ..s.clone() });
        }
    }
    if s.requests > 1 {
        out.push(ChaosSchedule {
            requests: s.requests / 2,
            ..s.clone()
        });
    }
    if s.workers > 1 {
        out.push(ChaosSchedule {
            workers: 1,
            ..s.clone()
        });
    }
    if s.epoch_groups > 1 {
        out.push(ChaosSchedule {
            epoch_groups: 1,
            ..s.clone()
        });
    }
    out
}

/// Greedily minimizes a failing schedule: tries each simplification and
/// keeps it whenever the simplified schedule still violates an
/// invariant, until no simplification preserves the failure (or the
/// iteration cap trips). Returns the input unchanged if it does not
/// fail.
pub fn shrink(s: &ChaosSchedule) -> ChaosSchedule {
    if run_schedule(s).violations.is_empty() {
        return s.clone();
    }
    let mut cur = s.clone();
    for _ in 0..32 {
        let next = shrink_candidates(&cur)
            .into_iter()
            .find(|cand| !run_schedule(cand).violations.is_empty());
        match next {
            Some(simpler) => cur = simpler,
            None => break,
        }
    }
    cur
}

/// What an exploration swept and found.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Schedules executed.
    pub explored: usize,
    /// Individual invariant checks performed across all schedules.
    pub invariants_checked: u64,
    /// Violating runs, each with its schedule already shrunk minimal.
    pub violations: Vec<ChaosOutcome>,
    /// Crash schedules that measured a recovery overhead.
    pub crash_runs: usize,
    /// Mean relative recovery overhead across crash runs (`0` if none).
    pub mean_recovery_overhead: f64,
    /// Worst relative recovery overhead (`0` if none).
    pub max_recovery_overhead: f64,
}

/// Runs every schedule in the space, checks the invariant suite, and
/// shrinks any violation to a minimal failing schedule. Deterministic
/// end to end.
pub fn explore(space: &ChaosSpace) -> ChaosReport {
    let mut report = ChaosReport {
        explored: 0,
        invariants_checked: 0,
        violations: Vec::new(),
        crash_runs: 0,
        mean_recovery_overhead: 0.0,
        max_recovery_overhead: 0.0,
    };
    let mut overhead_sum = 0.0;
    for s in &space.schedules {
        let outcome = run_schedule(s);
        report.explored += 1;
        report.invariants_checked += outcome.invariants_checked;
        if let Some(ov) = outcome.recovery_overhead {
            report.crash_runs += 1;
            overhead_sum += ov;
            report.max_recovery_overhead = report.max_recovery_overhead.max(ov);
        }
        if !outcome.violations.is_empty() {
            let minimal = shrink(s);
            let minimal_outcome = run_schedule(&minimal);
            // Keep the minimal schedule's violations when the shrink
            // preserved them; otherwise report the original.
            report.violations.push(if minimal_outcome.violations.is_empty() {
                outcome
            } else {
                minimal_outcome
            });
        }
    }
    if report.crash_runs > 0 {
        report.mean_recovery_overhead = overhead_sum / report.crash_runs as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips_through_json() {
        let s = ChaosSchedule {
            fault_seed: 7,
            rates: FaultRates::one_hot(FaultClass::Launch, 0.25),
            crash_epoch: Some(1),
            device_loss: None,
            workers: 2,
            requests: 5,
            epoch_groups: 2,
        };
        let back = ChaosSchedule::from_json(&s.to_json()).expect("round trip");
        assert_eq!(back, s);

        let fleet = ChaosSchedule {
            device_loss: Some(0.3),
            rates: FaultRates::uniform(0.05),
            ..ChaosSchedule::default()
        };
        assert_eq!(
            ChaosSchedule::from_json(&fleet.to_json()).expect("round trip"),
            fleet
        );
    }

    #[test]
    fn malformed_schedules_fail_typed() {
        for bad in [
            "not json",
            "[1, 2]",
            "{\"fault_seed\": -1}",
            "{\"rates\": {\"warp_drive\": 0.5}}",
            "{\"workers\": 0}",
            "{\"mystery\": 1}",
        ] {
            assert!(
                matches!(
                    ChaosSchedule::from_json(bad),
                    Err(CusFftError::BadConfig { .. })
                ),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn space_enumeration_is_deterministic_and_large_enough() {
        let a = chaos_space(true);
        let b = chaos_space(true);
        assert_eq!(a.schedules, b.schedules);
        assert!(
            a.schedules.len() >= 50,
            "smoke space has {} schedules, need ≥ 50",
            a.schedules.len()
        );
        assert!(chaos_space(false).schedules.len() > a.schedules.len());
    }

    #[test]
    fn clean_schedule_violates_nothing() {
        let outcome = run_schedule(&ChaosSchedule {
            requests: 3,
            ..ChaosSchedule::default()
        });
        assert!(
            outcome.violations.is_empty(),
            "clean run violated: {:?}",
            outcome.violations
        );
        assert!(outcome.invariants_checked >= 3);
    }

    #[test]
    fn bijection_checker_rejects_wrong_cardinality() {
        let s = ChaosSchedule {
            requests: 2,
            ..ChaosSchedule::default()
        };
        let requests = build_requests(&s);
        let engine = ServeEngine::new(DeviceSpec::tesla_k20x(), serve_config(&s, 1))
            .expect("valid config");
        let report = engine.serve_batch(&requests);
        assert!(check_outcome_bijection(requests.len(), &report).is_ok());
        assert!(check_outcome_bijection(requests.len() + 1, &report).is_err());
    }

    #[test]
    fn shrink_keeps_clean_schedules_untouched() {
        let s = ChaosSchedule {
            requests: 2,
            ..ChaosSchedule::default()
        };
        assert_eq!(shrink(&s), s);
    }
}
