//! `cusfft::overload` — overload robustness for the serving layer.
//!
//! [`ServeEngine::serve_overload`] serves an *open-loop arrival trace*
//! (requests stamped with arrival times and optional deadlines) instead
//! of a closed batch, adding five mechanisms on top of the fault
//! recovery in [`crate::serve`]:
//!
//! 1. **Admission control** — a bounded virtual queue. A request whose
//!    predicted queue depth at arrival reaches
//!    [`OverloadConfig::queue_capacity`] is shed (newest-rejected,
//!    [`RequestOutcome::Shed`]) before it costs any device time.
//! 2. **Deadlines** — each admitted request's completion is predicted
//!    against the deterministic service-time model of its backend
//!    ([`crate::backend::Backend::estimate_cost`]); a request that
//!    cannot meet its deadline even now is rejected as
//!    [`RequestOutcome::DeadlineExceeded`] rather than served late.
//! 3. **Graceful brownout** — under queue pressure
//!    ([`OverloadConfig::brownout_depth`]) requests are re-planned onto
//!    [`ServeQos::Degraded`] — a reduced-loop sFFT plan that trades
//!    recovery margin for latency — and report the tier they were
//!    served at ([`ServeResponse::qos`]).
//! 4. **Circuit breaking** — a per-device
//!    [`gpu_sim::CircuitBreaker`] watches fault tallies over a sliding
//!    window of group indices; once tripped, groups are short-circuited
//!    straight to the CPU path instead of burning device time on
//!    retries that will only degrade anyway, with HalfOpen probes
//!    testing recovery.
//! 5. **Straggler hedging** — a group whose simulated duration exceeds
//!    a percentile-based budget is re-executed as a hedged duplicate
//!    under independent fault scopes; the first finisher (by simulated
//!    time, ties to the primary) wins, and both runs stay on the merged
//!    timeline — hedges cost device time and the accounting shows it.
//!
//! ## Determinism
//!
//! Everything above is a pure function of `(trace, config, policy)`:
//!
//! * Admission decisions replay a *virtual* single-server queue fed by
//!   arrival order and the analytic service model — no wall clocks.
//! * Each group executes on a **fresh private device**, so its op
//!   recording, fault decisions (scoped by global group index — see
//!   [`crate::serve::scope_group`]) and simulated duration depend only
//!   on the group itself, never on which worker ran it or what ran
//!   before it on the same device.
//! * The breaker is driven on the coordinator thread in global group
//!   order (admit all, execute the epoch in parallel, observe all), so
//!   its transition log is invariant under the worker count.
//! * The hedging budget is a percentile of the deterministic per-group
//!   durations; the "first finisher" race is decided by comparing those
//!   durations, not by thread timing.
//! * The merged timeline interleaves recordings in a fixed order
//!   (control ops, groups by gid, hedge losers by gid) via
//!   [`gpu_sim::merge_op_groups`].

use std::collections::HashMap;

use gpu_sim::{
    concurrency_profile, merge_op_groups, schedule, BreakerConfig, BreakerDecision, CircuitBreaker,
    DeviceSpec, Op, DEFAULT_STREAM,
};
use sfft_cpu::SfftParams;

use cusfft_telemetry::fmt_f64;

use crate::audit::{finalize_audit, AuditLog, GroupAuditEvent, SloConfig};
use crate::backend::{worker_device, Backend, BackendKind, GpuSimBackend, SfftCpuBackend};
use crate::error::CusFftError;
use crate::pipeline::ExecStreams;
use crate::plan_cache::{PlanKey, ServeQos};
use crate::serve::{
    merge_rollups, rollup_kernels, run_group, validate_request, FaultTally, Group, GroupInfo,
    GroupTelemetry, PathLatency, PoolTally, RequestOutcome, ServeConfig, ServeEngine, ServePath,
    ServeReport, ServeRequest, ServeResponse, ServeTimeline,
};

/// One request in an open-loop arrival trace.
#[derive(Debug, Clone)]
pub struct TimedRequest {
    /// The request itself.
    pub request: ServeRequest,
    /// Simulated arrival time (seconds). Traces must be sorted by
    /// arrival — admission replays them in order.
    pub arrival: f64,
    /// Optional completion deadline, in seconds *after arrival*.
    pub deadline: Option<f64>,
}

impl TimedRequest {
    /// A request arriving at `arrival` with no deadline.
    pub fn at(request: ServeRequest, arrival: f64) -> Self {
        TimedRequest {
            request,
            arrival,
            deadline: None,
        }
    }

    /// Sets the deadline (seconds after arrival).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Overload-control policy for [`ServeEngine::serve_overload`].
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Maximum predicted queue depth before new arrivals are shed.
    pub queue_capacity: usize,
    /// Predicted queue depth at which admitted requests are re-planned
    /// onto [`ServeQos::Degraded`]. Set ≥ `queue_capacity` to disable
    /// brownout.
    pub brownout_depth: usize,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Groups per breaker epoch: the breaker decides an epoch's
    /// admissions up front, the epoch executes in parallel, then the
    /// observations feed back. Smaller epochs react faster; 1 is fully
    /// sequential.
    pub epoch_groups: usize,
    /// Percentile of per-group simulated durations that anchors the
    /// hedging budget (e.g. 0.9 = p90).
    pub hedge_percentile: f64,
    /// Budget multiplier: a group is hedged when its duration strictly
    /// exceeds `percentile × hedge_factor`. Set very large to disable
    /// hedging.
    pub hedge_factor: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_capacity: 64,
            brownout_depth: 16,
            breaker: BreakerConfig::default(),
            epoch_groups: 4,
            hedge_percentile: 0.9,
            hedge_factor: 1.5,
        }
    }
}

/// Overload-control counters for one [`ServeEngine::serve_overload`]
/// call. Deterministic: a function of `(trace, config, policy)` alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadTally {
    /// Requests admitted past the queue and deadline checks.
    pub admitted: u64,
    /// Requests shed by the queue bound.
    pub shed: u64,
    /// Requests rejected because they could not meet their deadline.
    pub deadline_exceeded: u64,
    /// Admitted requests served at [`ServeQos::Degraded`].
    pub degraded: u64,
    /// Requests short-circuited past the device by an open breaker.
    pub breaker_short_circuits: u64,
    /// HalfOpen probe groups the breaker let through.
    pub breaker_probes: u64,
    /// Times the breaker tripped open (including failed probes).
    pub breaker_trips: u64,
    /// Straggler groups that got a hedged duplicate.
    pub hedges: u64,
    /// Hedged duplicates that beat their primary.
    pub hedge_wins: u64,
    /// Highest predicted queue depth the admission controller saw at
    /// any arrival (validated requests only, including ones then shed).
    pub peak_queue_depth: u64,
}

/// Simulated request-latency distribution over completed requests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Completed requests the stats cover.
    pub count: usize,
    /// Median latency (seconds).
    pub p50: f64,
    /// 99th-percentile latency (seconds).
    pub p99: f64,
    /// Worst latency (seconds).
    pub max: f64,
    /// Mean latency (seconds).
    pub mean: f64,
}

impl LatencyStats {
    /// Builds the distribution from raw latencies (empty → all zeros).
    pub fn from_latencies(mut lat: Vec<f64>) -> Self {
        if lat.is_empty() {
            return LatencyStats::default();
        }
        lat.sort_by(f64::total_cmp);
        let count = lat.len();
        let sum: f64 = lat.iter().sum();
        LatencyStats {
            count,
            p50: percentile(&lat, 0.5),
            p99: percentile(&lat, 0.99),
            max: lat[count - 1],
            mean: sum / count as f64,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let len = sorted.len();
    let idx = ((len as f64) * q).ceil() as usize;
    sorted[idx.clamp(1, len) - 1]
}

/// One group's execution on its private device. `pub(crate)` because
/// the fleet router (`crate::fleet`) schedules the same unit of work
/// across heterogeneous members.
pub(crate) struct GroupRun {
    pub(crate) gid: usize,
    /// `(request index, outcome)` for every member.
    pub(crate) results: Vec<(usize, RequestOutcome)>,
    /// The private device's op recording (empty when short-circuited).
    pub(crate) ops: Vec<Op>,
    pub(crate) tally: FaultTally,
    /// Whether the device injected any fault — the breaker's signal.
    pub(crate) faulted: bool,
    /// Simulated makespan of this group's ops alone; the hedging race
    /// and the latency model are decided on it.
    pub(crate) duration: f64,
    /// True when the breaker kept this group off the device.
    pub(crate) short_circuit: bool,
    /// Kernel/pool telemetry of this run (empty when short-circuited or
    /// the worker was lost; a losing hedge's telemetry is discarded
    /// with its results).
    pub(crate) tel: GroupTelemetry,
}

/// Executes one group on a fresh private device. Freshness is what
/// makes each group's recording, tally and duration a function of the
/// group alone (see the module docs).
fn run_group_on_fresh_device(
    spec: &DeviceSpec,
    cfg: &ServeConfig,
    group: &Group,
    requests: &[ServeRequest],
    hedged: bool,
) -> GroupRun {
    run_group_on_device(spec, cfg.faults.as_ref(), 0, cfg, group, requests, hedged)
}

/// [`run_group_on_fresh_device`] with an explicit fault plan and fault-
/// domain salt: the fleet path provisions each run with its *member's*
/// plan and salt (see [`gpu_sim::GpuDevice::set_fault_scope_salt`]), so
/// the same group rolls independent fault timelines on different
/// members.
pub(crate) fn run_group_on_device(
    spec: &DeviceSpec,
    faults: Option<&gpu_sim::FaultConfig>,
    scope_salt: u64,
    cfg: &ServeConfig,
    group: &Group,
    requests: &[ServeRequest],
    hedged: bool,
) -> GroupRun {
    let device = worker_device(spec, faults);
    device.set_fault_scope_salt(scope_salt);
    let streams = ExecStreams::on_device_private(&device, group.plan.num_streams());
    let mut tally = FaultTally::default();
    let mut audit = Vec::new();
    let results = run_group(
        &device,
        group,
        requests,
        &streams,
        cfg,
        &mut tally,
        hedged,
        &mut audit,
    );
    tally.injected = device.faults_injected();
    let ops = device.ops();
    let duration = schedule(&ops, spec.max_concurrent_kernels).makespan;
    // The device is fresh, so the whole recording belongs to this group.
    let arena = streams.arena.stats();
    let tel = GroupTelemetry {
        gid: group.gid,
        kernels: rollup_kernels(&device.records()),
        pool: PoolTally {
            alloc_ops: device.pool_alloc_ops(),
            release_ops: device.pool_release_ops(),
            reuse_hits: arena.reuse_hits,
            fresh_misses: arena.fresh_misses,
        },
        audit,
    };
    GroupRun {
        gid: group.gid,
        results,
        ops,
        faulted: tally.injected > 0,
        tally,
        duration,
        short_circuit: false,
        tel,
    }
}

/// Runs `groups` across up to `workers` threads (round-robin shards)
/// and returns their runs sorted by gid. A worker lost to a panic
/// outside every per-request boundary fails over to per-group CPU
/// recovery, like [`crate::serve`]'s batch path.
fn execute_wave<'g>(
    spec: &DeviceSpec,
    cfg: &ServeConfig,
    groups: &[&'g Group],
    requests: &[ServeRequest],
    workers: usize,
    hedged: bool,
) -> Vec<GroupRun> {
    let workers = workers.max(1).min(groups.len().max(1));
    let mut shards: Vec<Vec<&'g Group>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, g) in groups.iter().enumerate() {
        shards[i % workers].push(g);
    }
    let mut runs: Vec<GroupRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                scope.spawn(move || {
                    shard
                        .iter()
                        .map(|g| run_group_on_fresh_device(spec, cfg, g, requests, hedged))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .zip(&shards)
            .flat_map(|(h, shard)| match h.join() {
                Ok(rs) => rs,
                Err(payload) => shard
                    .iter()
                    .map(|g| recover_group_loss(g, requests, cfg, &*payload))
                    .collect(),
            })
            .collect()
    });
    runs.sort_by_key(|r| r.gid);
    runs
}

/// CPU failover for a group whose worker thread died: serve every
/// member on the CPU path (or fail them typed). The recording is lost
/// with the worker.
pub(crate) fn recover_group_loss(
    group: &Group,
    requests: &[ServeRequest],
    cfg: &ServeConfig,
    payload: &(dyn std::any::Any + Send),
) -> GroupRun {
    let context = crate::error::panic_context("overload worker", payload);
    let mut tally = FaultTally {
        worker_panics: 1,
        ..FaultTally::default()
    };
    let results = group
        .indices
        .iter()
        .map(|&idx| {
            let req = &requests[idx];
            let outcome = if cfg.cpu_fallback {
                tally.cpu_fallbacks += 1;
                let recovered = SfftCpuBackend::reference(group.plan.params(), &req.time, req.seed);
                RequestOutcome::Done(ServeResponse {
                    num_hits: recovered.len(),
                    recovered,
                    path: ServePath::Cpu,
                    qos: group.qos,
                    backend: BackendKind::SfftCpu,
                })
            } else {
                tally.failed += 1;
                RequestOutcome::Failed {
                    error: CusFftError::Panic {
                        context: context.clone(),
                    },
                    after_attempts: 0,
                }
            };
            (idx, outcome)
        })
        .collect();
    GroupRun {
        gid: group.gid,
        results,
        ops: Vec::new(),
        tally,
        faulted: false,
        duration: 0.0,
        short_circuit: false,
        tel: GroupTelemetry {
            gid: group.gid,
            ..GroupTelemetry::default()
        },
    }
}

/// Serves a breaker-short-circuited group on the CPU path without
/// touching any device (or fails it typed when CPU fallback is off).
fn short_circuit_group(
    group: &Group,
    requests: &[ServeRequest],
    cfg: &ServeConfig,
    overload: &mut OverloadTally,
) -> GroupRun {
    let mut tally = FaultTally::default();
    let results = group
        .indices
        .iter()
        .map(|&idx| {
            let req = &requests[idx];
            overload.breaker_short_circuits += 1;
            let outcome = if cfg.cpu_fallback {
                tally.cpu_fallbacks += 1;
                let recovered = SfftCpuBackend::reference(group.plan.params(), &req.time, req.seed);
                RequestOutcome::Done(ServeResponse {
                    num_hits: recovered.len(),
                    recovered,
                    path: ServePath::Cpu,
                    qos: group.qos,
                    backend: BackendKind::SfftCpu,
                })
            } else {
                tally.failed += 1;
                RequestOutcome::Failed {
                    error: CusFftError::CircuitOpen,
                    after_attempts: 0,
                }
            };
            (idx, outcome)
        })
        .collect();
    GroupRun {
        gid: group.gid,
        results,
        ops: Vec::new(),
        tally,
        faulted: false,
        duration: 0.0,
        short_circuit: true,
        tel: GroupTelemetry {
            gid: group.gid,
            ..GroupTelemetry::default()
        },
    }
}

/// The admission controller's service-time estimate for an `(n, k)`
/// full-QoS request served by the simulated GPU on `spec`'s model
/// device (see [`crate::backend::Backend::estimate_cost`]). Benchmarks
/// use this as the pacing unit when constructing offered-load traces,
/// so "load 2.0" means arrivals twice as fast as the admission model
/// believes the server drains.
pub fn nominal_service(spec: &DeviceSpec, n: usize, k: usize) -> f64 {
    let dev = worker_device(spec, None);
    GpuSimBackend::default().estimate_cost(&dev, spec, &SfftParams::tuned(n, k))
}

/// A request admitted past the queue and deadline checks.
struct Admitted {
    idx: usize,
    key: PlanKey,
    /// Predicted completion time on the virtual server.
    finish: f64,
}

impl ServeEngine {
    /// Serves an open-loop arrival trace under overload policy: bounded
    /// admission, deadlines, brownout QoS, a per-device circuit breaker
    /// and straggler hedging on top of [`ServeEngine::serve_batch`]'s
    /// fault recovery. `trace` must be sorted by arrival time.
    ///
    /// Returns outcomes in trace order; rejected requests come back as
    /// [`RequestOutcome::Shed`] / [`RequestOutcome::DeadlineExceeded`]
    /// without ever touching a device. The report is bit-identical for
    /// a fixed `(trace, config, policy)` regardless of worker count and
    /// host pool width.
    pub fn serve_overload(&self, trace: &[TimedRequest], policy: &OverloadConfig) -> ServeReport {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "overload traces must be sorted by arrival time"
        );
        let cfg = self.config;
        let mut overload = OverloadTally::default();
        // The flight recorder. Admission verdicts are recorded here in
        // arrival order (they root the decision forest); coordinator
        // decisions made during epoch execution are buffered per gid and
        // folded onto the phase-5 virtual clock, so event ids stay
        // invariant under worker count and epoch parallelism.
        let mut alog = if cfg.audit {
            Some(AuditLog::new())
        } else {
            None
        };
        // Control-plane markers (sheds, breaker events) are recorded on
        // their own device so they merge into the timeline exactly once,
        // in decision order.
        let control = worker_device(&self.spec, None);
        // The estimator only reads the spec; one device prices all
        // requests.
        let model_dev = worker_device(&self.spec, None);
        let requests: Vec<ServeRequest> = trace.iter().map(|t| t.request.clone()).collect();

        let mut outcomes: Vec<Option<RequestOutcome>> = (0..trace.len()).map(|_| None).collect();

        // ---- Phase 1: admission, in arrival order. --------------------
        // A virtual single-server queue: service times come from the
        // analytic model, so depth and completion predictions are
        // deterministic and need no execution feedback.
        let mut admitted: Vec<Admitted> = Vec::new();
        let mut server_free = 0.0f64;
        for (idx, t) in trace.iter().enumerate() {
            let req = &t.request;
            if let Err(e) = validate_request(req) {
                if let Some(a) = alog.as_mut() {
                    a.record(
                        t.arrival,
                        Some(idx),
                        None,
                        "invalid",
                        vec![("reason".into(), e.to_string())],
                    );
                }
                outcomes[idx] = Some(RequestOutcome::Failed {
                    error: e,
                    after_attempts: 0,
                });
                continue;
            }
            let Some(backend) = self.registry.get(req.backend) else {
                let reason = format!("backend {} is not registered", req.backend.label());
                if let Some(a) = alog.as_mut() {
                    a.record(
                        t.arrival,
                        Some(idx),
                        None,
                        "invalid",
                        vec![("reason".into(), reason.clone())],
                    );
                }
                outcomes[idx] = Some(RequestOutcome::Failed {
                    error: CusFftError::BadRequest { reason },
                    after_attempts: 0,
                });
                continue;
            };
            let depth = admitted.iter().filter(|a| a.finish > t.arrival).count();
            overload.peak_queue_depth = overload.peak_queue_depth.max(depth as u64);
            if depth >= policy.queue_capacity {
                overload.shed += 1;
                control.charge_host_op("shed:queue", 0.0, DEFAULT_STREAM);
                if let Some(a) = alog.as_mut() {
                    a.record(
                        t.arrival,
                        Some(idx),
                        None,
                        "shed",
                        vec![
                            ("depth".into(), depth.to_string()),
                            ("capacity".into(), policy.queue_capacity.to_string()),
                        ],
                    );
                }
                outcomes[idx] = Some(RequestOutcome::Shed { queue_depth: depth });
                continue;
            }
            let qos = if depth >= policy.brownout_depth {
                ServeQos::Degraded
            } else {
                ServeQos::Full
            };
            let key = PlanKey {
                qos,
                ..req.plan_key()
            };
            let plan = self
                .cache
                .get_or_build(&self.home, &self.registry, key)
                .expect("registry membership was checked at admission");
            let est = backend.estimate_cost(&model_dev, &self.spec, plan.params());
            let finish = server_free.max(t.arrival) + est;
            if let Some(deadline) = t.deadline {
                let predicted = finish - t.arrival;
                if predicted > deadline {
                    overload.deadline_exceeded += 1;
                    control.charge_host_op("shed:deadline", 0.0, DEFAULT_STREAM);
                    if let Some(a) = alog.as_mut() {
                        a.record(
                            t.arrival,
                            Some(idx),
                            None,
                            "deadline_rejected",
                            vec![
                                ("predicted".into(), fmt_f64(predicted)),
                                ("deadline".into(), fmt_f64(deadline)),
                                ("est".into(), fmt_f64(est)),
                            ],
                        );
                    }
                    outcomes[idx] = Some(RequestOutcome::DeadlineExceeded {
                        predicted,
                        deadline,
                    });
                    continue;
                }
            }
            overload.admitted += 1;
            if let Some(a) = alog.as_mut() {
                a.record(
                    t.arrival,
                    Some(idx),
                    None,
                    "admitted",
                    vec![
                        ("depth".into(), depth.to_string()),
                        ("qos".into(), qos.label().into()),
                        ("est".into(), fmt_f64(est)),
                        ("finish".into(), fmt_f64(finish)),
                    ],
                );
                if qos == ServeQos::Degraded {
                    // Chains under the admission via the request link.
                    a.record(
                        t.arrival,
                        Some(idx),
                        None,
                        "brownout",
                        vec![
                            ("depth".into(), depth.to_string()),
                            ("threshold".into(), policy.brownout_depth.to_string()),
                        ],
                    );
                }
            }
            if qos == ServeQos::Degraded {
                overload.degraded += 1;
            }
            server_free = finish;
            admitted.push(Admitted { idx, key, finish });
        }

        // ---- Group admitted requests by plan key. ---------------------
        // First-appearance order, like the batch path; a group's arrival
        // is its latest member's (it cannot start before all members
        // exist).
        let mut groups: Vec<Group> = Vec::new();
        let mut group_keys: Vec<PlanKey> = Vec::new();
        let mut group_arrival: Vec<f64> = Vec::new();
        let mut key_to_group: HashMap<PlanKey, usize> = HashMap::new();
        for a in &admitted {
            let gid = match key_to_group.get(&a.key) {
                Some(&g) => g,
                None => {
                    let g = groups.len();
                    key_to_group.insert(a.key, g);
                    groups.push(Group {
                        gid: g,
                        plan: self
                            .cache
                            .get_or_build(&self.home, &self.registry, a.key)
                            .expect("admitted keys resolve to registered backends"),
                        indices: Vec::new(),
                        qos: a.key.qos,
                    });
                    group_keys.push(a.key);
                    group_arrival.push(0.0);
                    g
                }
            };
            groups[gid].indices.push(a.idx);
            group_arrival[gid] = group_arrival[gid].max(trace[a.idx].arrival);
        }

        // ---- Phase 2: breaker-gated execution in epochs. --------------
        // Admit the epoch's groups in gid order, execute the admitted
        // ones in parallel, observe in gid order. The breaker only ever
        // runs on this thread.
        let mut breaker = CircuitBreaker::new(policy.breaker);
        let mut runs: Vec<Option<GroupRun>> = (0..groups.len()).map(|_| None).collect();
        // Coordinator decisions buffered per gid for the audit fold:
        // `pre` at the group's virtual start (admit-time breaker
        // decisions), `post` at its completion (observe-time transitions
        // and hedge outcomes).
        let mut pre: Vec<Vec<GroupAuditEvent>> = vec![Vec::new(); groups.len()];
        let mut post: Vec<Vec<GroupAuditEvent>> = vec![Vec::new(); groups.len()];
        let mut seen_tr = 0usize;
        // Pushes breaker transitions recorded since the last call onto
        // gid's buffer — called right after each admit/observe, so every
        // transition is attributed to the decision that caused it.
        fn note_transitions(
            buf: &mut Vec<GroupAuditEvent>,
            breaker: &CircuitBreaker,
            seen: &mut usize,
            enabled: bool,
        ) {
            let transitions = breaker.transitions();
            if enabled {
                for tr in &transitions[*seen..] {
                    buf.push(GroupAuditEvent {
                        request: None,
                        kind: "breaker_transition",
                        attrs: vec![
                            ("from".into(), tr.from.label().into()),
                            ("to".into(), tr.to.label().into()),
                        ],
                    });
                }
            }
            *seen = transitions.len();
        }
        let gids: Vec<usize> = (0..groups.len()).collect();
        for epoch in gids.chunks(policy.epoch_groups.max(1)) {
            let mut live: Vec<&Group> = Vec::new();
            for &gid in epoch {
                let decision = breaker.admit(gid);
                note_transitions(&mut pre[gid], &breaker, &mut seen_tr, cfg.audit);
                match decision {
                    BreakerDecision::Admit => live.push(&groups[gid]),
                    BreakerDecision::Probe => {
                        overload.breaker_probes += 1;
                        control.charge_host_op("breaker:probe", 0.0, DEFAULT_STREAM);
                        if cfg.audit {
                            pre[gid].push(GroupAuditEvent {
                                request: None,
                                kind: "breaker_probe",
                                attrs: Vec::new(),
                            });
                        }
                        live.push(&groups[gid]);
                    }
                    BreakerDecision::ShortCircuit => {
                        control.charge_host_op("breaker:short_circuit", 0.0, DEFAULT_STREAM);
                        if cfg.audit {
                            pre[gid].push(GroupAuditEvent {
                                request: None,
                                kind: "short_circuit",
                                attrs: vec![(
                                    "fallback".into(),
                                    if cfg.cpu_fallback { "cpu" } else { "fail" }.into(),
                                )],
                            });
                        }
                        runs[gid] =
                            Some(short_circuit_group(&groups[gid], &requests, &cfg, &mut overload));
                    }
                }
            }
            for run in execute_wave(&self.spec, &cfg, &live, &requests, cfg.workers, false) {
                let gid = run.gid;
                breaker.observe(gid, run.faulted);
                note_transitions(&mut post[gid], &breaker, &mut seen_tr, cfg.audit);
                runs[gid] = Some(run);
            }
        }
        for tr in breaker.transitions() {
            control.charge_host_op(&format!("breaker:{}", tr.to.label()), 0.0, DEFAULT_STREAM);
        }
        overload.breaker_trips = breaker.trips();

        // ---- Phase 3: straggler hedging. ------------------------------
        // Budget = percentile of the deterministic per-group durations;
        // strict stragglers re-run as hedged duplicates under
        // independent fault scopes. The winner is the smaller duration
        // (a tie goes to the primary), so the race is itself
        // deterministic. Both runs stay on the timeline.
        let mut hedge_losers: Vec<GroupRun> = Vec::new();
        let mut hedged_gids: Vec<usize> = Vec::new();
        let mut durations: Vec<f64> = runs
            .iter()
            .flatten()
            .filter(|r| !r.short_circuit)
            .map(|r| r.duration)
            .collect();
        if !durations.is_empty() {
            durations.sort_by(f64::total_cmp);
            let budget = percentile(&durations, policy.hedge_percentile) * policy.hedge_factor;
            let stragglers: Vec<&Group> = runs
                .iter()
                .flatten()
                .filter(|r| !r.short_circuit && r.duration > budget)
                .map(|r| &groups[r.gid])
                .collect();
            for hedge in execute_wave(&self.spec, &cfg, &stragglers, &requests, cfg.workers, true) {
                overload.hedges += 1;
                let gid = hedge.gid;
                hedged_gids.push(gid);
                let primary = runs[gid].take().expect("straggler has a primary run");
                let hedge_won = hedge.duration < primary.duration;
                if cfg.audit {
                    post[gid].push(GroupAuditEvent {
                        request: None,
                        kind: "hedge_fired",
                        attrs: vec![
                            ("primary".into(), fmt_f64(primary.duration)),
                            ("hedge".into(), fmt_f64(hedge.duration)),
                            ("budget".into(), fmt_f64(budget)),
                        ],
                    });
                    post[gid].push(GroupAuditEvent {
                        request: None,
                        kind: "hedge_resolved",
                        attrs: vec![(
                            "winner".into(),
                            if hedge_won { "hedge" } else { "primary" }.into(),
                        )],
                    });
                }
                let (mut winner, loser) = if hedge_won {
                    overload.hedge_wins += 1;
                    (hedge, primary)
                } else {
                    (primary, hedge)
                };
                // The loser's results are discarded but its injected
                // faults happened on the simulated device — keep the
                // count (and, below, its ops) honest.
                winner.tally.injected += loser.tally.injected;
                hedge_losers.push(loser);
                runs[gid] = Some(winner);
            }
        }

        // ---- Phase 4: one merged timeline. ----------------------------
        let mut op_groups: Vec<Vec<Op>> = Vec::with_capacity(1 + groups.len() + hedge_losers.len());
        op_groups.push(control.ops());
        op_groups.extend(runs.iter().flatten().map(|r| r.ops.clone()));
        op_groups.extend(hedge_losers.iter().map(|l| l.ops.clone()));
        let merged = merge_op_groups(&op_groups);
        let sched = schedule(&merged, self.spec.max_concurrent_kernels);
        let concurrency = concurrency_profile(&merged, &sched);
        let makespan = concurrency.makespan;

        // ---- Phase 5: latency over a virtual device serving groups in
        // gid order (short-circuited groups complete instantly).
        let mut latencies: Vec<f64> = Vec::new();
        let mut class_samples: Vec<(ServePath, ServeQos, f64)> = Vec::new();
        let mut completion_of: Vec<f64> = vec![0.0; groups.len()];
        let mut clock = 0.0f64;
        for gid in 0..groups.len() {
            let run = runs[gid].as_ref().expect("every group resolves to a run");
            let start = clock.max(group_arrival[gid]);
            let completion = start + run.duration;
            clock = completion;
            completion_of[gid] = completion;
            if let Some(a) = alog.as_mut() {
                // The group's placement links to its first member's
                // admission; everything buffered for the gid folds onto
                // the virtual clock (decisions at start, execution
                // events at completion) in gid order — invariant under
                // worker count and epoch chunking.
                let parent = groups[gid].indices.first().and_then(|&i| a.admission_of(i));
                a.record_linked(
                    start,
                    None,
                    Some(gid),
                    "group_placed",
                    vec![
                        ("members".into(), groups[gid].indices.len().to_string()),
                        ("qos".into(), group_keys[gid].qos.label().into()),
                        ("arrival".into(), fmt_f64(group_arrival[gid])),
                        ("duration".into(), fmt_f64(run.duration)),
                    ],
                    parent,
                );
                a.fold_group(start, gid, &pre[gid]);
                a.fold_group(completion, gid, &run.tel.audit);
                a.fold_group(completion, gid, &post[gid]);
            }
            for (idx, outcome) in &run.results {
                if let Some(resp) = outcome.response() {
                    let lat = completion - trace[*idx].arrival;
                    latencies.push(lat);
                    class_samples.push((resp.path, resp.qos, lat));
                }
            }
        }
        let latency = LatencyStats::from_latencies(latencies);
        let path_latency = path_latency_summary(&class_samples);

        // ---- Collect. -------------------------------------------------
        let mut faults = FaultTally::default();
        for run in runs.iter().flatten() {
            faults.absorb(&run.tally);
        }
        let num_groups = groups.len();
        let group_info: Vec<GroupInfo> = groups
            .iter()
            .map(|g| GroupInfo {
                gid: g.gid,
                indices: g.indices.clone(),
                key: group_keys[g.gid],
                short_circuit: runs[g.gid]
                    .as_ref()
                    .map(|r| r.short_circuit)
                    .unwrap_or(false),
                hedged: hedged_gids.contains(&g.gid),
                device: None,
            })
            .collect();
        let mut tels: Vec<GroupTelemetry> = Vec::new();
        for run in runs.into_iter().flatten() {
            tels.push(run.tel);
            for (idx, outcome) in run.results {
                outcomes[idx] = Some(outcome);
            }
        }
        // Winner-run telemetry only, in gid order (`runs` is indexed by
        // gid): the report's kernel/pool table is invariant under
        // worker count and epoch chunking.
        let kernels = merge_rollups(&tels);
        let mut pool = PoolTally::default();
        for t in &tels {
            pool.absorb(&t.pool);
        }
        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            // Invariant: every trace entry is pre-failed, rejected at
            // admission, or a member of exactly one group run.
            .map(|o| o.expect("every request resolves to exactly one outcome"))
            .collect();

        let completed = outcomes.iter().filter(|o| o.response().is_some()).count();
        let throughput = if makespan > 0.0 {
            completed as f64 / makespan
        } else {
            0.0
        };

        let audit = alog.map(|a| {
            let mut gid_of: Vec<Option<usize>> = vec![None; trace.len()];
            for g in &groups {
                for &i in &g.indices {
                    gid_of[i] = Some(g.gid);
                }
            }
            // Terminals land at the group's virtual completion for
            // executed requests, at arrival for rejected ones.
            let ts_of: Vec<f64> = (0..trace.len())
                .map(|i| {
                    gid_of[i]
                        .map(|g| completion_of[g])
                        .unwrap_or(trace[i].arrival)
                })
                .collect();
            let lat_of: Vec<Option<f64>> = (0..trace.len())
                .map(|i| {
                    outcomes[i]
                        .response()
                        .map(|_| ts_of[i] - trace[i].arrival)
                })
                .collect();
            finalize_audit(a, &outcomes, &gid_of, &ts_of, &lat_of, &SloConfig::default())
        });

        ServeReport {
            outcomes,
            makespan,
            throughput,
            concurrency,
            cache: self.cache.stats(),
            groups: num_groups,
            faults,
            overload,
            latency,
            breaker: breaker.transitions().to_vec(),
            timeline: ServeTimeline { ops: merged, sched },
            group_info,
            path_latency,
            arrivals: trace.iter().map(|t| t.arrival).collect(),
            kernels,
            pool,
            fleet: crate::fleet::FleetTally::default(),
            devices: Vec::new(),
            journal: None,
            audit,
        }
    }
}

/// Folds per-request `(path, qos, latency)` samples into deterministic
/// per-class summaries, scanning classes in a fixed order and keeping
/// only the non-empty ones.
pub(crate) fn path_latency_summary(samples: &[(ServePath, ServeQos, f64)]) -> Vec<PathLatency> {
    const CLASSES: [(ServePath, ServeQos); 6] = [
        (ServePath::Gpu, ServeQos::Full),
        (ServePath::Gpu, ServeQos::Degraded),
        (ServePath::GpuRetry, ServeQos::Full),
        (ServePath::GpuRetry, ServeQos::Degraded),
        (ServePath::Cpu, ServeQos::Full),
        (ServePath::Cpu, ServeQos::Degraded),
    ];
    let mut out = Vec::new();
    for (path, qos) in CLASSES {
        let mut hist = cusfft_telemetry::Histogram::default();
        for (p, q, lat) in samples {
            if *p == path && *q == qos {
                hist.observe(*lat);
            }
        }
        if hist.count > 0 {
            out.push(PathLatency {
                path,
                qos,
                count: hist.count,
                p50: hist.quantile(0.5),
                p95: hist.quantile(0.95),
                p99: hist.quantile(0.99),
                hist,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.75), 3.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn latency_stats_from_latencies() {
        let s = LatencyStats::from_latencies(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p99, 4.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(LatencyStats::from_latencies(vec![]), LatencyStats::default());
    }

    #[test]
    fn service_estimate_scales_with_geometry() {
        let spec = DeviceSpec::tesla_k20x();
        let dev = worker_device(&spec, None);
        let est = |p: &SfftParams| GpuSimBackend::default().estimate_cost(&dev, &spec, p);
        let small = est(&SfftParams::tuned(1 << 10, 4));
        let large = est(&SfftParams::tuned(1 << 14, 4));
        assert!(small > 0.0);
        assert!(large > small, "bigger n must price higher: {large} vs {small}");
        let full = SfftParams::tuned(1 << 12, 8);
        let degraded =
            SfftParams::with_tuning(1 << 12, 8, sfft_cpu::Tuning::default().degraded());
        assert!(
            est(&degraded) < est(&full),
            "degraded plans must price cheaper"
        );
    }
}
