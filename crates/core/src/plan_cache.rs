//! A keyed cache of cusFFT plans for the serving layer.
//!
//! Plan construction is the expensive, amortisable part of the pipeline
//! (filter design + device upload — the paper's plan/execute split, as in
//! FFTW and cuFFT plans). A server handling a stream of requests over a
//! handful of `(n, k, variant)` geometries should build each plan once and
//! share it; this cache provides exactly that, with an LRU bound so a
//! long-tailed workload cannot grow device-resident filter state without
//! limit.
//!
//! Concurrency: one mutex around the map + recency list. Lookups are tiny
//! compared to plan construction, and plan construction itself happens
//! *outside* the lock only for the loser of a race — the common case
//! (steady-state hit) holds the lock for a hash probe. Counters are
//! atomics so `stats()` never blocks the serving path.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpu_sim::GpuDevice;
use parking_lot::Mutex;

use crate::backend::{BackendKind, BackendRegistry, ExecutePlan};
use crate::pipeline::Variant;

/// Quality-of-service tier a request is served at. Under sustained
/// queue pressure the overload layer re-plans requests onto
/// [`ServeQos::Degraded`] — a reduced-accuracy sFFT with halved loop
/// counts ([`sfft_cpu::Tuning::degraded`]) that trades recovery margin
/// for latency. Part of [`PlanKey`], so Full and Degraded plans for
/// the same geometry coexist in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServeQos {
    /// Default-accuracy plan.
    #[default]
    Full,
    /// Brownout plan: fewer location/estimation loops.
    Degraded,
}

impl ServeQos {
    /// Stable label used as a telemetry dimension.
    pub fn label(self) -> &'static str {
        match self {
            ServeQos::Full => "full",
            ServeQos::Degraded => "degraded",
        }
    }
}

/// Identity of a plan: the signal geometry, implementation tier, QoS
/// tier and execution backend. Two requests with equal keys are served
/// by the same [`ExecutePlan`]. `backend` is part of the key so a
/// degraded-QoS GPU plan and a CPU plan for the same `(n, k)` can
/// never alias in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Signal length (power of two).
    pub n: usize,
    /// Expected sparsity.
    pub k: usize,
    /// Implementation tier.
    pub variant: Variant,
    /// Accuracy tier.
    pub qos: ServeQos,
    /// Execution backend.
    pub backend: BackendKind,
}

/// Snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served by an existing plan.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Plans dropped by the LRU bound.
    pub evictions: u64,
    /// Plans currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner {
    plans: HashMap<PlanKey, Arc<dyn ExecutePlan>>,
    /// Keys from least- to most-recently used. Every key in `plans`
    /// appears exactly once.
    recency: VecDeque<PlanKey>,
}

/// LRU-bounded, thread-safe [`PlanKey`]` → Arc<dyn ExecutePlan>` cache.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "plan cache capacity must be at least 1");
        PlanCache {
            capacity,
            inner: Mutex::new(Inner {
                plans: HashMap::new(),
                recency: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The LRU bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the plan for `key`, building it with `build` on a miss.
    ///
    /// On a miss `build` runs outside the lock (plan construction designs
    /// filters — far too slow to serialise other lookups behind). If two
    /// threads miss the same key concurrently, both build but only the
    /// first insert wins; the loser's plan is dropped and the winner's is
    /// returned, so all callers still share one plan per key.
    pub fn get_or_insert_with<F>(&self, key: PlanKey, build: F) -> Arc<dyn ExecutePlan>
    where
        F: FnOnce() -> Arc<dyn ExecutePlan>,
    {
        if let Some(plan) = self.lookup(key) {
            return plan;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let candidate = build();
        let mut inner = self.inner.lock();
        if let Some(existing) = inner.plans.get(&key).cloned() {
            // Lost the build race: count the other thread's insert as our
            // hit source but keep the counters simple — the miss already
            // recorded the build we paid for.
            touch(&mut inner.recency, key);
            return existing;
        }
        inner.plans.insert(key, Arc::clone(&candidate));
        inner.recency.push_back(key);
        while inner.plans.len() > self.capacity {
            let victim = inner
                .recency
                .pop_front()
                .expect("recency list tracks every resident plan");
            inner.plans.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        candidate
    }

    /// Hit path: probe and touch the recency list.
    fn lookup(&self, key: PlanKey) -> Option<Arc<dyn ExecutePlan>> {
        let mut inner = self.inner.lock();
        let plan = inner.plans.get(&key).cloned()?;
        touch(&mut inner.recency, key);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(plan)
    }

    /// Builds the plan for `key` through `registry` — the backend named
    /// by `key.backend` applies the key's QoS tuning (default for
    /// [`ServeQos::Full`], [`sfft_cpu::Tuning::degraded`] for
    /// [`ServeQos::Degraded`]). Returns `None` (without touching the
    /// counters) when `key.backend` is not registered; the serving
    /// layer turns that into a typed rejection.
    pub fn get_or_build(
        &self,
        device: &Arc<GpuDevice>,
        registry: &BackendRegistry,
        key: PlanKey,
    ) -> Option<Arc<dyn ExecutePlan>> {
        let backend = registry.get(key.backend)?;
        Some(self.get_or_insert_with(key, || backend.build_plan(device, key)))
    }

    /// Counter snapshot. `hits + misses` equals total lookups.
    pub fn stats(&self) -> CacheStats {
        let len = self.inner.lock().plans.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len,
        }
    }
}

/// Moves `key` to the most-recently-used end.
fn touch(recency: &mut VecDeque<PlanKey>, key: PlanKey) {
    if let Some(pos) = recency.iter().position(|&k| k == key) {
        recency.remove(pos);
    }
    recency.push_back(key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn key(n: usize, k: usize, variant: Variant) -> PlanKey {
        PlanKey {
            n,
            k,
            variant,
            qos: ServeQos::Full,
            backend: BackendKind::GpuSim,
        }
    }

    fn device() -> Arc<GpuDevice> {
        Arc::new(GpuDevice::new(DeviceSpec::tesla_k20x()))
    }

    fn registry() -> BackendRegistry {
        BackendRegistry::with_defaults()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let cache = PlanCache::new(4);
        let dev = device();
        let reg = registry();
        let a = cache
            .get_or_build(&dev, &reg, key(1 << 10, 4, Variant::Optimized))
            .unwrap();
        let b = cache
            .get_or_build(&dev, &reg, key(1 << 10, 4, Variant::Optimized))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn distinct_variants_get_distinct_plans() {
        let cache = PlanCache::new(4);
        let dev = device();
        let reg = registry();
        let a = cache
            .get_or_build(&dev, &reg, key(1 << 10, 4, Variant::Baseline))
            .unwrap();
        let b = cache
            .get_or_build(&dev, &reg, key(1 << 10, 4, Variant::Optimized))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.variant(), Variant::Baseline);
        assert_eq!(b.variant(), Variant::Optimized);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cache = PlanCache::new(2);
        let dev = device();
        let reg = registry();
        let k1 = key(1 << 9, 2, Variant::Baseline);
        let k2 = key(1 << 10, 2, Variant::Baseline);
        let k3 = key(1 << 11, 2, Variant::Baseline);
        cache.get_or_build(&dev, &reg, k1);
        cache.get_or_build(&dev, &reg, k2);
        cache.get_or_build(&dev, &reg, k1); // k2 is now least recent
        cache.get_or_build(&dev, &reg, k3); // evicts k2
        let s = cache.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 1);
        cache.get_or_build(&dev, &reg, k2); // rebuilt: a miss
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn plans_match_their_key() {
        let cache = PlanCache::new(3);
        let dev = device();
        let reg = registry();
        for &(n, k) in &[(1 << 9, 2), (1 << 10, 4), (1 << 11, 8)] {
            let plan = cache
                .get_or_build(&dev, &reg, key(n, k, Variant::Optimized))
                .unwrap();
            assert_eq!(plan.params().n, n);
            assert_eq!(plan.params().k, k);
        }
    }

    #[test]
    fn qos_tiers_get_distinct_plans() {
        let cache = PlanCache::new(4);
        let dev = device();
        let reg = registry();
        let full = cache
            .get_or_build(&dev, &reg, key(1 << 10, 4, Variant::Optimized))
            .unwrap();
        let degraded = cache
            .get_or_build(
                &dev,
                &reg,
                PlanKey {
                    qos: ServeQos::Degraded,
                    ..key(1 << 10, 4, Variant::Optimized)
                },
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&full, &degraded));
        assert!(degraded.params().loops_total() < full.params().loops_total());
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn backends_get_distinct_plans_and_unregistered_kinds_miss() {
        let cache = PlanCache::new(8);
        let dev = device();
        let reg = registry();
        let gpu = cache
            .get_or_build(&dev, &reg, key(1 << 10, 4, Variant::Optimized))
            .unwrap();
        let cpu = cache
            .get_or_build(
                &dev,
                &reg,
                PlanKey {
                    backend: BackendKind::SfftCpu,
                    ..key(1 << 10, 4, Variant::Optimized)
                },
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&gpu, &cpu));
        assert_eq!(gpu.backend(), BackendKind::GpuSim);
        assert_eq!(cpu.backend(), BackendKind::SfftCpu);
        assert_eq!(cache.stats().len, 2);

        // An empty registry resolves nothing and leaves counters alone.
        let empty = crate::backend::BackendRegistry::empty();
        let before = cache.stats();
        assert!(cache
            .get_or_build(&dev, &empty, key(1 << 10, 4, Variant::Optimized))
            .is_none());
        assert_eq!(cache.stats(), before);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        PlanCache::new(0);
    }
}
